//! Text-table rendering for the figure binaries.

/// A printable, column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Returns the table with its title prefixed by `prefix — `.
    pub fn with_title_prefix(mut self, prefix: &str) -> Table {
        self.title = format!("{prefix} — {}", self.title);
        self
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout, and — when `ERRFLOW_JSON_DIR`
    /// is set — also writes the table as JSON into that directory (one file
    /// per table, named from the slugified title).
    pub fn print(&self) {
        println!("{}", self.render());
        if let Ok(dir) = std::env::var("ERRFLOW_JSON_DIR") {
            let path = std::path::Path::new(&dir).join(format!("{}.json", self.slug()));
            if let Err(e) = std::fs::write(&path, self.to_json()) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
    }

    /// Machine-readable form: `{"title", "headers", "rows"}` (hand-rolled;
    /// the workspace carries no serialization dependency).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::object();
        w.field_str("title", &self.title);
        w.field_str_array("headers", &self.headers);
        w.raw_field(
            "rows",
            &format!(
                "[{}]",
                self.rows
                    .iter()
                    .map(|r| {
                        let mut a = String::from("[");
                        for (i, cell) in r.iter().enumerate() {
                            if i > 0 {
                                a.push(',');
                            }
                            a.push_str(&json_string(cell));
                        }
                        a.push(']');
                        a
                    })
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        );
        w.finish()
    }

    /// Filesystem-safe slug of the title.
    fn slug(&self) -> String {
        self.title
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect::<String>()
            .split('_')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("_")
    }
}

/// Escapes and quotes a string per RFC 8259.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // `{}` prints the shortest round-tripping representation.
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Minimal single-level JSON object writer.
pub struct JsonWriter {
    buf: String,
    first: bool,
}

impl JsonWriter {
    /// Starts an object.
    pub fn object() -> Self {
        JsonWriter {
            buf: String::from("{"),
            first: true,
        }
    }

    fn sep(&mut self) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
    }

    /// Adds a string field.
    pub fn field_str(&mut self, key: &str, value: &str) {
        self.sep();
        self.buf
            .push_str(&format!("{}:{}", json_string(key), json_string(value)));
    }

    /// Adds a numeric field.
    pub fn field_f64(&mut self, key: &str, value: f64) {
        self.sep();
        self.buf
            .push_str(&format!("{}:{}", json_string(key), json_f64(value)));
    }

    /// Adds an integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) {
        self.sep();
        self.buf.push_str(&format!("{}:{value}", json_string(key)));
    }

    /// Adds an array-of-strings field.
    pub fn field_str_array(&mut self, key: &str, values: &[String]) {
        self.sep();
        self.buf.push_str(&format!("{}:[", json_string(key)));
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str(&json_string(v));
        }
        self.buf.push(']');
    }

    /// Adds a field whose value is already-serialized JSON.
    pub fn raw_field(&mut self, key: &str, raw_json: &str) {
        self.sep();
        self.buf
            .push_str(&format!("{}:{raw_json}", json_string(key)));
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Scientific notation with 3 significant digits (`1.23e-4`).
pub fn sci(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.is_infinite() {
        "inf".to_string()
    } else {
        format!("{v:.2e}")
    }
}

/// Fixed-point with 2 decimals (throughputs, ratios).
pub fn fixed(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long_header"]);
        t.push(vec!["1".into(), "2".into()]);
        t.push(vec!["333".into(), "4".into()]);
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.contains("long_header"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["1".into()]);
    }

    #[test]
    fn json_shape() {
        let mut t = Table::new("Fig. 9 — demo (L∞)", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        let j = t.to_json();
        assert!(j.contains("\"headers\":[\"a\",\"b\"]"), "{j}");
        assert!(j.contains("\"rows\":[[\"1\",\"2\"]]"), "{j}");
        assert_eq!(t.slug(), "fig_9_demo_l");
    }

    #[test]
    fn json_escaping_and_numbers() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("контроль"), "\"контроль\"");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        let mut w = JsonWriter::object();
        w.field_str("k", "v");
        w.field_f64("x", 0.25);
        w.field_u64("n", 7);
        assert_eq!(w.finish(), "{\"k\":\"v\",\"x\":0.25,\"n\":7}");
    }

    #[test]
    fn sci_formatting() {
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(1.234e-4), "1.23e-4");
        assert_eq!(sci(f64::INFINITY), "inf");
    }

    #[test]
    fn fixed_formatting() {
        assert_eq!(fixed(3.14159), "3.14");
    }
}
