//! Text-table rendering for the figure binaries.

/// A printable, column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Returns the table with its title prefixed by `prefix — `.
    pub fn with_title_prefix(mut self, prefix: &str) -> Table {
        self.title = format!("{prefix} — {}", self.title);
        self
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout, and — when `ERRFLOW_JSON_DIR`
    /// is set — also writes the table as JSON into that directory (one file
    /// per table, named from the slugified title).
    pub fn print(&self) {
        println!("{}", self.render());
        if let Ok(dir) = std::env::var("ERRFLOW_JSON_DIR") {
            let path = std::path::Path::new(&dir).join(format!("{}.json", self.slug()));
            if let Err(e) = std::fs::write(&path, self.to_json().to_string()) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
    }

    /// Machine-readable form: `{"title", "headers", "rows"}`.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "title": self.title,
            "headers": self.headers,
            "rows": self.rows,
        })
    }

    /// Filesystem-safe slug of the title.
    fn slug(&self) -> String {
        self.title
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
            .collect::<String>()
            .split('_')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("_")
    }
}

/// Scientific notation with 3 significant digits (`1.23e-4`).
pub fn sci(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.is_infinite() {
        "inf".to_string()
    } else {
        format!("{v:.2e}")
    }
}

/// Fixed-point with 2 decimals (throughputs, ratios).
pub fn fixed(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long_header"]);
        t.push(vec!["1".into(), "2".into()]);
        t.push(vec!["333".into(), "4".into()]);
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.contains("long_header"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["1".into()]);
    }

    #[test]
    fn json_shape() {
        let mut t = Table::new("Fig. 9 — demo (L∞)", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        let j = t.to_json();
        assert_eq!(j["headers"][0], "a");
        assert_eq!(j["rows"][0][1], "2");
        assert_eq!(t.slug(), "fig_9_demo_l");
    }

    #[test]
    fn sci_formatting() {
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(1.234e-4), "1.23e-4");
        assert_eq!(sci(f64::INFINITY), "inf");
    }

    #[test]
    fn fixed_formatting() {
        assert_eq!(fixed(3.14159), "3.14");
    }
}
