//! # errflow-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (see DESIGN.md §4 for the experiment index).
//!
//! * [`report`] — aligned text tables and scientific-notation formatting;
//!   each `fig*` binary prints the series the corresponding figure plots.
//! * [`tasks`] — the trained-model registry: each of the three workloads
//!   trained in each regularisation mode, cached per process.
//! * [`experiments`] — the experiment implementations shared by the
//!   figure binaries (L∞ and L2 variants of a figure share one function).
//!
//! Set `ERRFLOW_FAST=1` to run every figure on reduced workloads (smaller
//! grids, fewer epochs) — used by CI and the smoke tests.

pub mod experiments;
pub mod report;
pub mod tasks;
