//! Fig. 2: percentage of inference time spent in data loading,
//! preprocessing, and model execution across the model zoo.
use errflow_bench::report::{fixed, Table};
use errflow_pipeline::stage::breakdown;
use errflow_pipeline::StorageModel;
use errflow_quant::throughput::ExecutionModel;
use errflow_quant::QuantFormat;

fn main() {
    let storage = StorageModel::default();
    let exec = ExecutionModel::default();
    let zoo: [(&str, f64, usize); 6] = [
        ("resnet18", 1.8e9, 224 * 224 * 3 * 4),
        ("resnet34", 3.6e9, 224 * 224 * 3 * 4),
        ("resnet50", 4.1e9, 224 * 224 * 3 * 4),
        ("mlp_s", 0.5e6, 256 * 4),
        ("mlp_m", 4.2e6, 1024 * 4),
        ("mlp_l", 33.7e6, 4096 * 4),
    ];
    let mut table = Table::new(
        "Fig. 2 — inference time breakdown (%, FP32, batch of 10k samples)",
        &["model", "load_pct", "preprocess_pct", "execute_pct"],
    );
    for (name, flops, bytes) in zoo {
        let b = breakdown(&storage, &exec, 10_000, bytes, flops, QuantFormat::Fp32);
        let (l, p, x) = b.percentages();
        table.push(vec![name.to_string(), fixed(l), fixed(p), fixed(x)]);
    }
    table.print();
}
