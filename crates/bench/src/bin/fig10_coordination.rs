//! Fig. 10: coordination of data reduction and quantization, prioritizing
//! quantization, on the H2 combustion task.
use errflow_bench::experiments::{coordination_table, pipeline_table};
use errflow_bench::tasks::TrainedTask;
use errflow_scidata::task::TrainingMode;
use errflow_scidata::TaskKind;
use errflow_tensor::norms::Norm;

fn main() {
    let tt = TrainedTask::prepare(TaskKind::H2Combustion, TrainingMode::Psn, 7);
    let tols = [1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1];
    coordination_table(&tt, Norm::LInf, &tols, true).print();
    // Right panel: phase throughputs with quantization prioritised.
    let backend = errflow_compress::SzCompressor::default();
    pipeline_table(
        std::slice::from_ref(&tt),
        &backend,
        Norm::LInf,
        &tols,
        &[0.9],
        300,
        true,
    )
    .print();
}
