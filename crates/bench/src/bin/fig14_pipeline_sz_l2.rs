//! Fig. 14: predicted bound and throughput vs user tolerance — SzCompressor, L2.
use errflow_bench::experiments::{pipeline_table, standard_shares, standard_tolerances};
use errflow_bench::tasks::TrainedTask;
use errflow_tensor::norms::Norm;

fn main() {
    let tasks = TrainedTask::prepare_all_psn(7);
    let backend = errflow_compress::SzCompressor::default();
    pipeline_table(
        &tasks,
        &backend,
        Norm::L2,
        &standard_tolerances(),
        &standard_shares(),
        300,
        true,
    )
    .print();
}
