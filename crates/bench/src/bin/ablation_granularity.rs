//! Ablation: quantization granularity — per-tensor vs row-wise vs
//! block-wise INT8 (the paper's Future Work comparison).
//!
//! Quantizes each trained model's weights at the three granularities and
//! reports the achieved QoI error plus the per-tensor Table-I bound (which
//! must dominate all three, since finer granularities only shrink steps).
use errflow_bench::report::{sci, Table};
use errflow_bench::tasks::TrainedTask;
use errflow_nn::Model;
use errflow_quant::blockwise::quantize_int8_blockwise;
use errflow_quant::rowwise::quantize_int8_rowwise;
use errflow_quant::QuantFormat;
use errflow_scidata::task::TrainingMode;
use errflow_scidata::TaskKind;
use errflow_tensor::norms::{diff_norm, Norm};

fn main() {
    let mut table = Table::new(
        "Ablation — INT8 granularity: per-tensor vs row-wise vs block-wise (L2, relative)",
        &[
            "task",
            "tensor_bound",
            "per_tensor",
            "row_wise",
            "block_wise_8",
        ],
    );
    for kind in TaskKind::ALL {
        let tt = TrainedTask::prepare(kind, TrainingMode::Psn, 7);
        let per_tensor = errflow_core::quantize_model(&tt.model, QuantFormat::Int8);
        let row = tt
            .model
            .map_weights(&mut |w| quantize_int8_rowwise(w).dequantize());
        let block = tt
            .model
            .map_weights(&mut |w| quantize_int8_blockwise(w, 8).dequantize());
        let mut worst = [0.0f64; 3];
        let mut reference = 0.0f64;
        for x in tt.task.ordered_inputs().iter().take(150) {
            let y = tt.model.forward(x);
            reference = reference.max(Norm::L2.eval(&y));
            for (i, qm) in [&per_tensor, &row, &block].iter().enumerate() {
                worst[i] = worst[i].max(diff_norm(&y, &qm.forward(x), Norm::L2));
            }
        }
        let refv = reference.max(f64::MIN_POSITIVE);
        table.push(vec![
            kind.name().to_string(),
            sci(tt.analysis.quantization_bound(QuantFormat::Int8) / refv),
            sci(worst[0] / refv),
            sci(worst[1] / refv),
            sci(worst[2] / refv),
        ]);
    }
    table.print();
}
