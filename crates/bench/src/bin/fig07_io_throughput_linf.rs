//! Fig. 7: I/O throughput vs user QoI tolerance (L∞), three backends.
use errflow_bench::experiments::{io_throughput_table, standard_tolerances};
use errflow_bench::tasks::TrainedTask;
use errflow_tensor::norms::Norm;

fn main() {
    let tasks = TrainedTask::prepare_all_psn(7);
    io_throughput_table(&tasks, Norm::LInf, &standard_tolerances()).print();
}
