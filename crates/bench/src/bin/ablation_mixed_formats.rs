//! Ablation: per-layer mixed-format quantization — the optimization space
//! §IV-D closes on ("per-layer quantization with different formats ...
//! a significantly larger optimization space").
//!
//! A greedy assigner walks the layers in descending-FLOPs order, upgrading
//! each to the fastest format whose *mixed* bound still fits the budget
//! (the quantization bound at a 50% share of a 1e-1 relative tolerance).
//! Compared against the best admissible uniform format: the mixed plan
//! should hold the same bound while executing more layers in cheap formats.

use errflow_bench::experiments::calibration;
use errflow_bench::report::{sci, Table};
use errflow_bench::tasks::TrainedTask;
use errflow_core::{quantize_model_mixed, NetworkAnalysis};
use errflow_nn::Model;
use errflow_quant::QuantFormat;
use errflow_scidata::task::TrainingMode;
use errflow_scidata::TaskKind;
use errflow_tensor::norms::{diff_norm, Norm};

/// Greedy per-layer assignment under a quantization-error budget.
fn greedy_mixed(analysis: &NetworkAnalysis, n_layers: usize, budget: f64) -> Vec<QuantFormat> {
    let mut formats = vec![QuantFormat::Fp32; n_layers];
    // Fastest-first candidates per layer.
    let candidates = [
        QuantFormat::Int8,
        QuantFormat::Fp16,
        QuantFormat::Bf16,
        QuantFormat::Tf32,
    ];
    for l in 0..n_layers {
        for cand in candidates {
            let mut trial = formats.clone();
            trial[l] = cand;
            if analysis.combined_bound_mixed(0.0, &trial).quantization <= budget {
                formats[l] = cand;
                break;
            }
        }
    }
    formats
}

fn main() {
    let mut table = Table::new(
        "Ablation — per-layer mixed formats vs best uniform (quant budget = 0.05×QoI ref)",
        &[
            "task",
            "uniform_format",
            "uniform_bound",
            "mixed_formats",
            "mixed_bound",
            "mixed_achieved",
            "reduced_layers",
        ],
    );
    for kind in TaskKind::ALL {
        let tt = TrainedTask::prepare(kind, TrainingMode::Psn, 7);
        let analysis = NetworkAnalysis::of_calibrated(&tt.model, &calibration(&tt), 1.5);
        let n_layers: usize = analysis.blocks().iter().map(|b| b.layers.len()).sum();
        // Budget: 5% of the mean QoI L2 magnitude.
        let mut ref_acc = 0.0;
        for x in calibration(&tt) {
            ref_acc += Norm::L2.eval(&tt.model.forward(&x));
        }
        let budget = 0.05 * ref_acc / calibration(&tt).len() as f64;

        // Best admissible uniform format (fastest first).
        let mut uniform = QuantFormat::Fp32;
        for f in [
            QuantFormat::Int8,
            QuantFormat::Fp16,
            QuantFormat::Bf16,
            QuantFormat::Tf32,
        ] {
            if analysis.quantization_bound(f) <= budget {
                uniform = f;
                break;
            }
        }
        let uniform_bound = analysis.quantization_bound(uniform);

        let mixed = greedy_mixed(&analysis, n_layers, budget);
        let mixed_bound = analysis.combined_bound_mixed(0.0, &mixed).quantization;
        let qm = quantize_model_mixed(&tt.model, &mixed);
        let mut achieved = 0.0f64;
        for x in tt.task.ordered_inputs().iter().take(120) {
            let y = tt.model.forward(x);
            achieved = achieved.max(diff_norm(&y, &qm.forward(x), Norm::L2));
        }
        assert!(achieved <= mixed_bound + 1e-9, "mixed bound violated");
        let reduced = mixed.iter().filter(|f| **f != QuantFormat::Fp32).count();
        table.push(vec![
            kind.name().to_string(),
            uniform.label().to_string(),
            sci(uniform_bound),
            mixed
                .iter()
                .map(|f| f.label().chars().next().unwrap_or('?').to_string())
                .collect::<Vec<_>>()
                .join(""),
            sci(mixed_bound),
            sci(achieved),
            format!("{reduced}/{n_layers}"),
        ]);
    }
    table.print();
}
