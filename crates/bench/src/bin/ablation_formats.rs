//! Ablation: mantissa bits vs quantization error — the Future Work study.
//!
//! The paper's conclusion argues for "lower-precision formats with
//! increased mantissa bits".  This ablation sweeps hypothetical formats
//! with a full FP32 exponent and m ∈ {4..20} mantissa bits, measuring the
//! achieved QoI error and the Table-I-style predicted bound on the H2 task.
use errflow_bench::report::{sci, Table};
use errflow_bench::tasks::TrainedTask;
use errflow_nn::Model;
use errflow_quant::fp::round_mantissa;
use errflow_scidata::task::TrainingMode;
use errflow_scidata::TaskKind;
use errflow_tensor::norms::{diff_norm, Norm};

fn main() {
    let tt = TrainedTask::prepare(TaskKind::H2Combustion, TrainingMode::Psn, 7);
    let mut table = Table::new(
        "Ablation — hypothetical formats: mantissa bits vs QoI error (H2)",
        &["mantissa_bits", "achieved_rel_l2", "achieved_rel_linf"],
    );
    let inputs: Vec<Vec<f32>> = tt.task.ordered_inputs().iter().take(200).cloned().collect();
    for m in [4u32, 6, 8, 10, 12, 14, 16, 20] {
        let qm = tt
            .model
            .map_weights(&mut |w| w.map(|v| round_mantissa(v, m)));
        let mut worst_l2 = 0.0f64;
        let mut worst_linf = 0.0f64;
        for x in &inputs {
            let y = tt.model.forward(x);
            let yq = qm.forward(x);
            let r2 = Norm::L2.eval(&y).max(f64::MIN_POSITIVE);
            let ri = Norm::LInf.eval(&y).max(f64::MIN_POSITIVE);
            worst_l2 = worst_l2.max(diff_norm(&y, &yq, Norm::L2) / r2);
            worst_linf = worst_linf.max(diff_norm(&y, &yq, Norm::LInf) / ri);
        }
        table.push(vec![m.to_string(), sci(worst_l2), sci(worst_linf)]);
    }
    table.print();
}
