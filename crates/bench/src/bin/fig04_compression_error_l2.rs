//! Fig. 4: compression-error bound vs achieved error (L2), global and
//! per-feature, PSN vs baseline vs weight decay.
use errflow_bench::experiments::{compression_error_table, per_feature_table};
use errflow_bench::tasks::TrainedTask;
use errflow_scidata::task::TrainingMode;
use errflow_scidata::TaskKind;
use errflow_tensor::norms::Norm;

fn main() {
    let levels = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2];
    for kind in TaskKind::ALL {
        let psn = TrainedTask::prepare(kind, TrainingMode::Psn, 7);
        let plain = TrainedTask::prepare(kind, TrainingMode::Plain, 7);
        let wd = TrainedTask::prepare(kind, TrainingMode::WeightDecay, 7);
        let variants = [("psn", &psn), ("baseline", &plain), ("weight_decay", &wd)];
        compression_error_table(&variants, Norm::L2, &levels, 5, 200).print();
        per_feature_table(&psn, Norm::L2, 1e-5, 200).print();
    }
}
