//! Fig. 9: model-execution throughput vs quantization format, model zoo.
use errflow_bench::experiments::exec_throughput_table;

fn main() {
    exec_throughput_table().print();
}
