//! `compress-bench` — throughput sweep for the error-bounded codecs.
//!
//! Sweeps every backend (SZ, ZFP, MGARD) over payload sizes and relative
//! tolerances, comparing the optimized hot paths against the frozen
//! seed-path decoders retained in `errflow_compress::reference`, plus a
//! chunked-decode thread sweep, and emits `BENCH_compress.json` so the
//! codec perf trajectory is tracked in-repo (mirroring `gemm-bench`).
//!
//! ```sh
//! cargo run --release -p errflow-bench --bin compress-bench            # full sweep
//! cargo run --release -p errflow-bench --bin compress-bench -- --smoke # CI gate
//! ```
//!
//! Every measured decode is also checked **bit-identical** against the
//! reference decoder and verified against its error bound — the bench
//! doubles as a format-stability test.  `--smoke` runs a reduced sweep
//! and **fails** (exit 1) if any optimized decoder is slower than its
//! seed-path baseline at the default chunk size (65 536 values).

use errflow_compress::chunked::{ChunkedCompressor, DEFAULT_CHUNK};
use errflow_compress::{
    reference, scratch, Compressor, ErrorBound, MgardCompressor, SzCompressor, ZfpCompressor,
};
use errflow_tensor::pool;
use errflow_tensor::rng::StdRng;
use std::fmt::Write as _;
use std::time::Instant;

struct CodecResult {
    backend: &'static str,
    /// Stream container version the row measured: `"v1"` (legacy layout,
    /// bit-identical to the frozen reference decoder) or `"v2"`
    /// (interleaved multi-stream).
    format: &'static str,
    n: usize,
    rel_tol: f64,
    ratio: f64,
    compress_secs: f64,
    decompress_secs: f64,
    decompress_into_secs: f64,
    reference_secs: f64,
    /// Whether the row was proven bit-identical against the reference
    /// decoder (v1 rows only — the oracle predates v2).
    bit_identical: bool,
}

struct ChunkedResult {
    backend: &'static str,
    n: usize,
    /// `(threads, best_secs)` per swept thread count.
    threads: Vec<(usize, f64)>,
}

/// Conservative absolute floors for v2 single-thread decode throughput
/// (`decompress_into`, GB/s) at the default chunk size — see CI gate 2.
const SMOKE_DECODE_FLOORS_GBPS: &[(&str, f64)] = &[("sz", 0.35), ("zfp", 0.5)];

fn gbps(n_values: usize, secs: f64) -> f64 {
    (n_values * 4) as f64 / secs / 1e9
}

/// Best-of-`reps` wall time for one invocation of `f`.
fn time_best(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// A smooth scientific-looking field with mild noise: compressible like
/// the simulation data the paper targets, but not degenerate.
fn field(n: usize) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(n as u64 ^ 0x9e3779b97f4a7c15);
    (0..n)
        .map(|i| {
            let x = i as f32;
            (x * 0.003).sin() * 3.0 + 0.2 * (x * 0.041).cos() + rng.gen_range(-0.001f32..0.001)
        })
        .collect()
}

/// `(backend, format, measured compressor, v1 seed compressor)`.  The seed
/// compressor emits the legacy layout the frozen reference decoder
/// understands; for v1 rows it is the measured compressor itself, so the
/// row is additionally proven bit-identical against the oracle.
#[allow(clippy::type_complexity)]
fn backends() -> Vec<(
    &'static str,
    &'static str,
    Box<dyn Compressor>,
    Box<dyn Compressor>,
)> {
    vec![
        (
            "sz",
            "v2",
            Box::new(SzCompressor::default()) as Box<dyn Compressor>,
            Box::new(SzCompressor::v1_format()) as Box<dyn Compressor>,
        ),
        (
            "zfp",
            "v2",
            Box::new(ZfpCompressor::default()),
            Box::new(ZfpCompressor::v1_format()),
        ),
        (
            "sz",
            "v1",
            Box::new(SzCompressor::v1_format()),
            Box::new(SzCompressor::v1_format()),
        ),
        (
            "zfp",
            "v1",
            Box::new(ZfpCompressor::v1_format()),
            Box::new(ZfpCompressor::v1_format()),
        ),
        (
            "mgard",
            "v1",
            Box::new(MgardCompressor::default()),
            Box::new(MgardCompressor::default()),
        ),
    ]
}

fn run_codec(
    backend: &'static str,
    format: &'static str,
    c: &dyn Compressor,
    seed_c: &dyn Compressor,
    data: &[f32],
    rel_tol: f64,
    reps: usize,
) -> CodecResult {
    let n = data.len();
    let bound = ErrorBound::rel_linf(rel_tol);
    let stream = c.compress(data, &bound).expect("compress");

    // Correctness first.  v1 rows must agree bit-for-bit with the frozen
    // seed-path decoder; v2 rows (which the oracle predates) are held to
    // the error-bound contract plus decompress/decompress_into agreement.
    let fast = c.decompress(&stream).expect("decompress");
    let bit_identical = format == "v1";
    if bit_identical {
        let slow = reference::decompress(backend, &stream).expect("reference decompress");
        assert_eq!(fast.len(), slow.len(), "{backend}: length mismatch");
        for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{backend}: optimized and reference decoders diverged at index {i}"
            );
        }
    }
    assert!(
        bound.verify(data, &fast),
        "{backend}/{format}: bound violated"
    );

    let compress_secs = time_best(reps, || {
        std::hint::black_box(c.compress(data, &bound).expect("compress"));
    });
    let decompress_secs = time_best(reps, || {
        std::hint::black_box(c.decompress(&stream).expect("decompress"));
    });
    let mut out = vec![0.0f32; n];
    let mut sc = scratch::acquire();
    let decompress_into_secs = time_best(reps, || {
        c.decompress_into(&stream, &mut out, &mut sc)
            .expect("decompress_into");
        std::hint::black_box(&out);
    });
    assert_eq!(out, fast, "{backend}: decompress_into diverged");
    // Seed baseline: the frozen decoder on a legacy-layout stream of the
    // same data, so every row's speedup is against the same yardstick.
    let seed_stream = seed_c.compress(data, &bound).expect("seed compress");
    let reference_secs = time_best(reps, || {
        std::hint::black_box(reference::decompress(backend, &seed_stream).expect("reference"));
    });

    CodecResult {
        backend,
        format,
        n,
        rel_tol,
        ratio: (n * 4) as f64 / stream.len() as f64,
        compress_secs,
        decompress_secs,
        decompress_into_secs,
        reference_secs,
        bit_identical,
    }
}

fn run_chunked<C: Compressor>(
    backend: &'static str,
    make: impl Fn() -> C,
    n: usize,
    thread_counts: &[usize],
    reps: usize,
) -> ChunkedResult {
    let data = field(n);
    let bound = ErrorBound::rel_linf(1e-4);
    let stream = ChunkedCompressor::new(make())
        .compress(&data, &bound)
        .expect("chunked compress");
    let mut threads = Vec::new();
    for &t in thread_counts {
        let c = ChunkedCompressor::new(make()).with_threads(t);
        let recon = c.decompress(&stream).expect("chunked decompress");
        assert!(
            bound.verify(&data, &recon),
            "{backend} bound violated at {t}T"
        );
        let secs = time_best(reps, || {
            std::hint::black_box(c.decompress(&stream).expect("chunked decompress"));
        });
        threads.push((t, secs));
    }
    ChunkedResult {
        backend,
        n,
        threads,
    }
}

fn to_json(codec: &[CodecResult], chunked: &[ChunkedResult]) -> String {
    let (hits, misses) = scratch::pool_stats();
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"compress\",");
    let _ = writeln!(
        s,
        "  \"pool_concurrency\": {},",
        pool::global().max_concurrency()
    );
    let _ = writeln!(s, "  \"hardware_threads\": {},", pool::hardware_threads());
    let _ = writeln!(
        s,
        "  \"default_chunk_threads\": {},",
        pool::global()
            .max_concurrency()
            .min(pool::hardware_threads())
            .max(1)
    );
    let _ = writeln!(s, "  \"default_chunk_values\": {DEFAULT_CHUNK},");
    let _ = writeln!(
        s,
        "  \"scratch_pool\": {{\"hits\": {hits}, \"misses\": {misses}}},"
    );
    s.push_str("  \"results\": [\n");
    for (i, r) in codec.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"backend\": \"{}\", \"format\": \"{}\", \"n\": {}, \"rel_tol\": {:.0e}, \
             \"ratio\": {:.2}, \
             \"compress_gbps\": {:.3}, \"decompress_gbps\": {:.3}, \
             \"decompress_into_gbps\": {:.3}, \"reference_gbps\": {:.3}, \
             \"speedup_vs_reference\": {:.2}, \"bit_identical\": {}}}",
            r.backend,
            r.format,
            r.n,
            r.rel_tol,
            r.ratio,
            gbps(r.n, r.compress_secs),
            gbps(r.n, r.decompress_secs),
            gbps(r.n, r.decompress_into_secs),
            gbps(r.n, r.reference_secs),
            r.reference_secs / r.decompress_secs,
            r.bit_identical,
        );
        s.push_str(if i + 1 < codec.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"chunked\": [\n");
    let hw = pool::hardware_threads();
    for (i, r) in chunked.iter().enumerate() {
        let t1 = r.threads.first().map_or(f64::NAN, |&(_, s)| s);
        let _ = write!(
            s,
            "    {{\"backend\": \"{}\", \"n\": {}, \"threads\": [",
            r.backend, r.n
        );
        for (j, &(t, secs)) in r.threads.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            let _ = write!(
                s,
                "{{\"threads\": {t}, \"gbps\": {:.3}, \"speedup_vs_1t\": {:.2}, \
                 \"oversubscribed\": {}}}",
                gbps(r.n, secs),
                t1 / secs,
                t > hw,
            );
        }
        s.push_str("]}");
        s.push_str(if i + 1 < chunked.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    // The sweep intentionally measures oversubscription when it exceeds
    // `hardware_threads`; the default decode path no longer does (see the
    // chunked-scaling diagnosis in the notes).
    let _ = writeln!(
        s,
        "  \"notes\": \"Thread counts above hardware_threads measure \
         oversubscription, not scaling: the flat chunked sweep recorded on a \
         1-core host (1.09x at 4T, before) was the pool's 4-thread exercise \
         floor leaking into ChunkedCompressor::new's default fan-out. The \
         default now clamps to min(pool_concurrency, hardware_threads) = \
         default_chunk_threads (after), so single-core hosts decode serially \
         and multi-core hosts keep the full pool width. Explicit \
         with_threads(N) still honours N for sweeps like this one.\""
    );
    s.push_str("}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_compress.json".to_string());

    let sizes: Vec<usize> = if smoke {
        vec![DEFAULT_CHUNK]
    } else {
        vec![DEFAULT_CHUNK, 1 << 20]
    };
    let tolerances: Vec<f64> = if smoke {
        vec![1e-4]
    } else {
        vec![1e-2, 1e-4, 1e-6]
    };
    let max_t = pool::global().max_concurrency();
    let hw = pool::hardware_threads();
    let mut thread_counts: Vec<usize> = vec![1, 2, 4]
        .into_iter()
        .filter(|&t| t == 1 || t <= max_t)
        .collect();
    // The sweep extension is capped at the physical core count: widths
    // beyond it only measure oversubscription (and the standard 2/4-wide
    // points already carry an `"oversubscribed"` marker when they do).
    if max_t > 4 && hw > 4 {
        thread_counts.push(max_t.min(hw));
    }

    eprintln!(
        "[compress-bench] sizes={sizes:?} tolerances={tolerances:?} chunk_threads={thread_counts:?}"
    );
    let mut codec = Vec::new();
    for &n in &sizes {
        let data = field(n);
        let reps = if smoke {
            2
        } else if n <= DEFAULT_CHUNK {
            // Best-of needs headroom against scheduler noise on shared
            // hosts; the single-chunk sizes are cheap enough to repeat.
            11
        } else {
            3
        };
        for &tol in &tolerances {
            for (name, format, c, seed_c) in backends() {
                let r = run_codec(name, format, c.as_ref(), seed_c.as_ref(), &data, tol, reps);
                eprintln!(
                    "[compress-bench] {name}/{format} n={n} tol={tol:.0e}: ratio {0:.1}x; \
                     comp {1:.2} GB/s; decomp {2:.2} GB/s (into {3:.2}); \
                     reference {4:.2} GB/s ({5:.1}x speedup)",
                    r.ratio,
                    gbps(n, r.compress_secs),
                    gbps(n, r.decompress_secs),
                    gbps(n, r.decompress_into_secs),
                    gbps(n, r.reference_secs),
                    r.reference_secs / r.decompress_secs,
                );
                codec.push(r);
            }
        }
    }

    let chunked_n = if smoke { DEFAULT_CHUNK * 4 } else { 1 << 20 };
    let chunked_reps = if smoke { 2 } else { 3 };
    // Every backend/format the serve path can wrap gets the thread sweep
    // (mgard has no v2 container, so it is v1-only).
    let chunked = vec![
        run_chunked(
            "chunked-sz-v2",
            SzCompressor::default,
            chunked_n,
            &thread_counts,
            chunked_reps,
        ),
        run_chunked(
            "chunked-sz-v1",
            SzCompressor::v1_format,
            chunked_n,
            &thread_counts,
            chunked_reps,
        ),
        run_chunked(
            "chunked-zfp-v2",
            ZfpCompressor::default,
            chunked_n,
            &thread_counts,
            chunked_reps,
        ),
        run_chunked(
            "chunked-zfp-v1",
            ZfpCompressor::v1_format,
            chunked_n,
            &thread_counts,
            chunked_reps,
        ),
        run_chunked(
            "chunked-mgard-v1",
            MgardCompressor::default,
            chunked_n,
            &thread_counts,
            chunked_reps,
        ),
    ];
    for r in &chunked {
        eprintln!(
            "[compress-bench] {} n={}: {}",
            r.backend,
            r.n,
            r.threads
                .iter()
                .map(|&(t, s)| format!("{t}T {:.2} GB/s", gbps(r.n, s)))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    let json = to_json(&codec, &chunked);
    if smoke {
        println!("{json}");
        // CI gate 1: at the default chunk size every optimized decoder must
        // be at least as fast as its frozen seed-path baseline (5% timing
        // slack for loaded CI machines).
        let mut failed = false;
        for r in codec.iter().filter(|r| r.n == DEFAULT_CHUNK) {
            if r.decompress_secs > r.reference_secs * 1.05 {
                eprintln!(
                    "[compress-bench] FAIL: {}/{} optimized decode {:.4}s slower than \
                     seed path {:.4}s at n={}",
                    r.backend, r.format, r.decompress_secs, r.reference_secs, r.n
                );
                failed = true;
            }
        }
        // CI gate 2: absolute decode-throughput floors for the v2 SIMD
        // kernels, set well below (≈ 40% of) the numbers recorded in
        // BENCH_compress.json so only a real regression — a kernel
        // silently falling back to scalar, a format change serializing
        // the lanes — trips them on a loaded CI box.
        for &(backend, floor) in SMOKE_DECODE_FLOORS_GBPS {
            for r in codec
                .iter()
                .filter(|r| r.backend == backend && r.format == "v2" && r.n == DEFAULT_CHUNK)
            {
                let got = gbps(r.n, r.decompress_into_secs);
                if got < floor {
                    eprintln!(
                        "[compress-bench] FAIL: {backend}/v2 decompress_into {got:.3} GB/s \
                         below the {floor:.3} GB/s smoke floor at n={}",
                        r.n
                    );
                    failed = true;
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("[compress-bench] smoke OK");
    } else {
        std::fs::write(&out_path, &json).expect("write bench json");
        eprintln!("[compress-bench] wrote {out_path}");
        println!("{json}");
    }
}
