//! Regenerates every table and figure of the paper in one run, sharing
//! trained models across experiments.  Output is the markdown body of
//! EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p errflow-bench --bin all_figures | tee experiments.out
//! ```

use errflow_bench::experiments::*;
use errflow_bench::report::{sci, Table};
use errflow_bench::tasks::TrainedTask;
use errflow_core::analysis::format_index;
use errflow_pipeline::stage::breakdown;
use errflow_pipeline::StorageModel;
use errflow_quant::throughput::ExecutionModel;
use errflow_quant::QuantFormat;
use errflow_scidata::task::TrainingMode;
use errflow_scidata::TaskKind;
use errflow_tensor::norms::Norm;

fn main() {
    let t0 = std::time::Instant::now();
    eprintln!("[all_figures] training models (3 kinds x 3 modes)...");
    let psn = TrainedTask::prepare_all_psn(7);
    let plain: Vec<TrainedTask> = TaskKind::ALL
        .iter()
        .map(|&k| TrainedTask::prepare(k, TrainingMode::Plain, 7))
        .collect();
    let wd: Vec<TrainedTask> = TaskKind::ALL
        .iter()
        .map(|&k| TrainedTask::prepare(k, TrainingMode::WeightDecay, 7))
        .collect();
    eprintln!(
        "[all_figures] models ready in {:.1}s",
        t0.elapsed().as_secs_f64()
    );

    // ---- Table I ------------------------------------------------------
    let mut t1 = Table::new(
        "Table I — average quantization step size q(W) per layer (PSN models)",
        &["task", "layer", "tf32", "fp16", "bf16", "int8"],
    );
    for tt in &psn {
        for (b, block) in tt.analysis.blocks().iter().enumerate() {
            for (l, layer) in block.layers.iter().enumerate() {
                t1.push(vec![
                    tt.name().to_string(),
                    format!("b{b}.l{l}"),
                    sci(layer.q_steps[format_index(QuantFormat::Tf32)]),
                    sci(layer.q_steps[format_index(QuantFormat::Fp16)]),
                    sci(layer.q_steps[format_index(QuantFormat::Bf16)]),
                    sci(layer.q_steps[format_index(QuantFormat::Int8)]),
                ]);
            }
        }
    }
    t1.print();

    // ---- Fig. 2 ---------------------------------------------------------
    let storage = StorageModel::default();
    let exec = ExecutionModel::default();
    let zoo: [(&str, f64, usize); 6] = [
        ("resnet18", 1.8e9, 224 * 224 * 3 * 4),
        ("resnet34", 3.6e9, 224 * 224 * 3 * 4),
        ("resnet50", 4.1e9, 224 * 224 * 3 * 4),
        ("mlp_s", 0.5e6, 256 * 4),
        ("mlp_m", 4.2e6, 1024 * 4),
        ("mlp_l", 33.7e6, 4096 * 4),
    ];
    let mut f2 = Table::new(
        "Fig. 2 — inference time breakdown (%, FP32)",
        &["model", "load_pct", "preprocess_pct", "execute_pct"],
    );
    for (name, flops, bytes) in zoo {
        let b = breakdown(&storage, &exec, 10_000, bytes, flops, QuantFormat::Fp32);
        let (l, p, x) = b.percentages();
        f2.push(vec![
            name.to_string(),
            format!("{l:.1}"),
            format!("{p:.1}"),
            format!("{x:.1}"),
        ]);
    }
    f2.print();

    // ---- Figs. 3 & 4 ----------------------------------------------------
    let levels = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2];
    for norm in [Norm::LInf, Norm::L2] {
        let fig = if norm == Norm::LInf { 3 } else { 4 };
        eprintln!("[all_figures] fig {fig} ({norm})...");
        for i in 0..3 {
            let variants = [
                ("psn", &psn[i]),
                ("baseline", &plain[i]),
                ("weight_decay", &wd[i]),
            ];
            let mut t = compression_error_table(&variants, norm, &levels, 5, 200);
            t = retitle(t, format!("Fig. {fig}"));
            t.print();
            let mut pf = per_feature_table(&psn[i], norm, 1e-5, 200);
            pf = retitle(pf, format!("Fig. {fig} (per-feature)"));
            pf.print();
        }
    }

    // ---- Figs. 5 & 6 ----------------------------------------------------
    eprintln!("[all_figures] figs 5-6...");
    retitle(
        quantization_error_table(&psn, Norm::LInf, 5, 200),
        "Fig. 5".into(),
    )
    .print();
    retitle(
        quantization_error_table(&psn, Norm::L2, 5, 200),
        "Fig. 6".into(),
    )
    .print();
    for tt in &psn {
        retitle(
            per_feature_quantization_table(tt, QuantFormat::Fp16, 200),
            "Fig. 5/6 (per-feature)".into(),
        )
        .print();
    }

    // ---- Figs. 7 & 8 ----------------------------------------------------
    eprintln!("[all_figures] figs 7-8...");
    retitle(
        io_throughput_table(&psn, Norm::LInf, &standard_tolerances()),
        "Fig. 7".into(),
    )
    .print();
    retitle(
        io_throughput_table(&psn, Norm::L2, &standard_tolerances()),
        "Fig. 8".into(),
    )
    .print();

    // ---- Fig. 9 ---------------------------------------------------------
    retitle(exec_throughput_table(), "Fig. 9".into()).print();

    // ---- Fig. 10 --------------------------------------------------------
    eprintln!("[all_figures] fig 10...");
    let tols10 = [1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1];
    retitle(
        coordination_table(&psn[0], Norm::LInf, &tols10, true),
        "Fig. 10 (left)".into(),
    )
    .print();
    let sz = errflow_compress::SzCompressor::default();
    retitle(
        pipeline_table(
            std::slice::from_ref(&psn[0]),
            &sz,
            Norm::LInf,
            &tols10,
            &[0.9],
            300,
            true,
        ),
        "Fig. 10 (right)".into(),
    )
    .print();

    // ---- Figs. 11–15 ----------------------------------------------------
    let mgard = errflow_compress::MgardCompressor;
    let zfp = errflow_compress::ZfpCompressor::default();
    let specs: [(&str, &dyn errflow_compress::Compressor, Norm); 5] = [
        ("Fig. 11", &mgard, Norm::LInf),
        ("Fig. 12", &mgard, Norm::L2),
        ("Fig. 13", &sz, Norm::LInf),
        ("Fig. 14", &sz, Norm::L2),
        ("Fig. 15", &zfp, Norm::LInf),
    ];
    for (fig, backend, norm) in specs {
        eprintln!("[all_figures] {fig}...");
        retitle(
            pipeline_table(
                &psn,
                backend,
                norm,
                &standard_tolerances(),
                &standard_shares(),
                300,
                true,
            ),
            fig.into(),
        )
        .print();
    }

    eprintln!(
        "[all_figures] complete in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}

/// Prefixes a table's title with the figure id.
fn retitle(t: Table, prefix: String) -> Table {
    t.with_title_prefix(&prefix)
}
