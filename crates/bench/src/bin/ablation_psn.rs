//! Ablation: bound tightness with PSN vs plain training vs weight decay.
//!
//! The paper's Figs. 3–4 argue that parameterized spectral normalization is
//! what makes the predicted bounds tight (within one order of magnitude of
//! the achieved error).  This ablation quantifies the gap directly: the
//! network amplification Πσ and the bound/achieved ratio per training mode.
use errflow_bench::experiments::{calibration, layout_for};
use errflow_bench::report::{fixed, sci, Table};
use errflow_bench::tasks::TrainedTask;
use errflow_compress::{Compressor, ErrorBound, SzCompressor};
use errflow_nn::Model;
use errflow_pipeline::planner::flatten;
use errflow_pipeline::planner::unflatten;
use errflow_scidata::task::TrainingMode;
use errflow_scidata::TaskKind;
use errflow_tensor::norms::{diff_norm, Norm};

fn main() {
    let mut table = Table::new(
        "Ablation — PSN vs baselines: amplification and bound tightness",
        &[
            "task",
            "mode",
            "amplification",
            "bound_rel",
            "achieved_rel",
            "tightness(bound/achieved)",
        ],
    );
    let sz = SzCompressor::default();
    for kind in TaskKind::ALL {
        for (label, mode) in [
            ("psn", TrainingMode::Psn),
            ("plain", TrainingMode::Plain),
            ("weight_decay", TrainingMode::WeightDecay),
        ] {
            let tt = TrainedTask::prepare(kind, mode, 7);
            let inputs = calibration(&tt);
            let layout = layout_for(kind);
            let payload = flatten(&inputs, layout);
            let stream = sz
                .compress(&payload, &ErrorBound::rel_linf(1e-4))
                .expect("sz compress");
            let recon_payload = sz.decompress(&stream).expect("own stream");
            let recon = unflatten(&recon_payload, inputs.len(), inputs[0].len(), layout);
            let mut worst_ach = 0.0f64;
            let mut worst_bound = 0.0f64;
            for (x, xt) in inputs.iter().zip(&recon) {
                let dx = diff_norm(x, xt, Norm::L2);
                let y = tt.model.forward(x);
                let yt = tt.model.forward(xt);
                let refn = Norm::L2.eval(&y).max(f64::MIN_POSITIVE);
                worst_ach = worst_ach.max(diff_norm(&y, &yt, Norm::L2) / refn);
                worst_bound = worst_bound.max(tt.analysis.compression_bound(dx) / refn);
            }
            table.push(vec![
                kind.name().to_string(),
                label.to_string(),
                fixed(tt.analysis.amplification()),
                sci(worst_bound),
                sci(worst_ach),
                fixed(worst_bound / worst_ach.max(f64::MIN_POSITIVE)),
            ]);
        }
    }
    table.print();
}
