//! Ablation: fixed quantization share vs exhaustive best allocation vs the
//! model-based optimizer.
//!
//! §IV-D observes that no fixed share of the tolerance is optimal across
//! all tolerance values and calls for an allocation optimizer (future
//! work).  This ablation quantifies the gap: end-to-end throughput of each
//! fixed share, the best share found by exhaustive *execution*, and the
//! share chosen by `Planner::plan_optimal` (the future-work algorithm,
//! which only probes a payload sample through the ratio model).
use errflow_bench::experiments::{calibration, figure_storage, layout_for};
use errflow_bench::report::{fixed, sci, Table};
use errflow_bench::tasks::TrainedTask;
use errflow_pipeline::planner::flatten;
use errflow_pipeline::{Planner, PlannerConfig};
use errflow_scidata::task::TrainingMode;
use errflow_scidata::TaskKind;
use errflow_tensor::norms::Norm;

fn main() {
    let backend = errflow_compress::SzCompressor::default();
    let mut table = Table::new(
        "Ablation — fixed vs best tolerance allocation (SZ, L-infinity)",
        &[
            "task",
            "qoi_tolerance",
            "gbps_share_0.1",
            "gbps_share_0.5",
            "gbps_share_0.9",
            "best_share",
            "best_gbps",
            "optimizer_share",
            "optimizer_gbps",
        ],
    );
    for kind in TaskKind::ALL {
        let tt = TrainedTask::prepare(kind, TrainingMode::Psn, 7);
        let planner = Planner::new_calibrated(&tt.model, &calibration(&tt), 1.5)
            .with_storage_model(figure_storage());
        let inputs: Vec<Vec<f32>> = tt.task.ordered_inputs().iter().take(300).cloned().collect();
        let layout = layout_for(kind);
        for tol in [1e-4, 1e-3, 1e-2] {
            let run = |share: f64| -> f64 {
                let plan = planner.plan(&PlannerConfig {
                    rel_tolerance: tol,
                    norm: Norm::LInf,
                    quant_share: share,
                });
                planner
                    .execute(&plan, &backend, &inputs, Norm::LInf, layout)
                    .map(|r| r.end_to_end_gbps)
                    .unwrap_or(0.0)
            };
            let fixed_shares = [0.1, 0.5, 0.9];
            let fixed_results: Vec<f64> = fixed_shares.iter().map(|&s| run(s)).collect();
            let mut best = (0.0, 0.0);
            for i in 1..10 {
                let s = i as f64 / 10.0;
                let g = run(s);
                if g > best.1 {
                    best = (s, g);
                }
            }
            // Model-based optimizer (no full execution in the loop).
            let payload = flatten(&inputs, layout);
            let d = inputs[0].len();
            let (opt_plan, _) = planner
                .plan_optimal(tol, Norm::LInf, &backend, &payload, d)
                .expect("optimizer");
            // Find the share that produced this plan (approximate label).
            let opt_share = opt_plan.predicted_quant_bound / opt_plan.abs_tolerance.max(1e-300);
            let opt_gbps = planner
                .execute(&opt_plan, &backend, &inputs, Norm::LInf, layout)
                .map(|r| r.end_to_end_gbps)
                .unwrap_or(0.0);
            table.push(vec![
                kind.name().to_string(),
                sci(tol),
                fixed(fixed_results[0]),
                fixed(fixed_results[1]),
                fixed(fixed_results[2]),
                fixed(best.0),
                fixed(best.1),
                fixed(opt_share),
                fixed(opt_gbps),
            ]);
        }
    }
    table.print();
}
