//! Table I: average quantization step size q(W) per numerical format,
//! evaluated on each trained model's weight matrices.
use errflow_bench::report::{sci, Table};
use errflow_bench::tasks::TrainedTask;
use errflow_core::analysis::format_index;
use errflow_scidata::task::TrainingMode;
use errflow_scidata::TaskKind;

fn main() {
    let mut table = Table::new(
        "Table I — average quantization step size q(W) per layer",
        &["task", "layer", "tf32", "fp16", "bf16", "int8"],
    );
    for kind in TaskKind::ALL {
        let tt = TrainedTask::prepare(kind, TrainingMode::Psn, 7);
        for (b, block) in tt.analysis.blocks().iter().enumerate() {
            for (l, layer) in block.layers.iter().enumerate() {
                table.push(vec![
                    kind.name().to_string(),
                    format!("b{b}.l{l}"),
                    sci(layer.q_steps[format_index(errflow_quant::QuantFormat::Tf32)]),
                    sci(layer.q_steps[format_index(errflow_quant::QuantFormat::Fp16)]),
                    sci(layer.q_steps[format_index(errflow_quant::QuantFormat::Bf16)]),
                    sci(layer.q_steps[format_index(errflow_quant::QuantFormat::Int8)]),
                ]);
            }
        }
    }
    table.print();
}
