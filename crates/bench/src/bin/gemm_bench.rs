//! `gemm-bench` — throughput sweep for the blocked GEMM kernel.
//!
//! Sweeps square sizes and thread counts, comparing the blocked,
//! panel-packed kernel (`errflow_tensor::gemm`) against the retained
//! textbook baseline (`Matrix::matmul_naive`), and emits `BENCH_gemm.json`
//! so the perf trajectory is tracked in-repo from PR 2 onward.
//!
//! ```sh
//! cargo run --release -p errflow-bench --bin gemm-bench            # full sweep
//! cargo run --release -p errflow-bench --bin gemm-bench -- --smoke # CI gate
//! ```
//!
//! `--smoke` runs a reduced sweep and **fails** (exit 1) if the blocked
//! kernel is slower than the naive loop at 512×512 — the regression gate
//! wired into CI.

use errflow_tensor::rng::StdRng;
use errflow_tensor::{gemm, pool, Matrix};
use std::fmt::Write as _;
use std::time::Instant;

struct SizeResult {
    size: usize,
    naive_secs: f64,
    /// `(threads, best_secs)` per swept thread count.
    blocked: Vec<(usize, f64)>,
    /// Single-thread time with `B` packed once up front (the serve
    /// plan-cache pattern: `PackedB` + `gemm_prepacked`).
    prepacked_secs: f64,
    /// Whether the prepacked driver matched `gemm` bit-for-bit.
    prepacked_bitwise: bool,
    max_rel_err: f64,
}

fn gflops(size: usize, secs: f64) -> f64 {
    2.0 * (size as f64).powi(3) / secs / 1e9
}

/// Best-of-`reps` wall time for one invocation of `f`.
fn time_best(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Reps scaled so small sizes average over noise and big sizes stay cheap.
fn reps_for(size: usize) -> usize {
    match size {
        0..=128 => 20,
        129..=512 => 6,
        513..=1024 => 3,
        _ => 1,
    }
}

fn run_size(size: usize, threads: &[usize], smoke: bool) -> SizeResult {
    let mut rng = StdRng::seed_from_u64(size as u64 ^ 0x9e3779b97f4a7c15);
    let a = Matrix::from_fn(size, size, |_, _| rng.gen_range(-1.0f32..1.0));
    let b = Matrix::from_fn(size, size, |_, _| rng.gen_range(-1.0f32..1.0));
    let reps = if smoke { 2 } else { reps_for(size) };

    let mut naive_out = Matrix::zeros(0, 0);
    let naive_secs = time_best(reps.min(3), || {
        naive_out = a.matmul_naive(&b).expect("square shapes agree");
    });

    let mut blocked = Vec::new();
    let mut max_rel_err = 0.0f64;
    // Parity is measured BLAS-style: elementwise |blocked - naive|
    // normalised by ‖C‖∞, which is insensitive to benign cancellation in
    // near-zero elements (both kernels are exact reorderings of the same
    // sum; they differ only in f32 rounding).
    let c_scale = naive_out.max_abs().max(1.0) as f64;
    let mut blocked_1t = vec![0.0f32; size * size];
    gemm::gemm(
        size,
        size,
        size,
        a.as_slice(),
        b.as_slice(),
        &mut blocked_1t,
        1,
    );
    for &t in threads {
        let mut out = vec![0.0f32; size * size];
        let secs = time_best(reps, || {
            out.fill(0.0);
            gemm::gemm(size, size, size, a.as_slice(), b.as_slice(), &mut out, t);
        });
        blocked.push((t, secs));
        for (&x, &y) in out.iter().zip(naive_out.as_slice()) {
            let rel = ((x as f64) - (y as f64)).abs() / c_scale;
            max_rel_err = max_rel_err.max(rel);
        }
    }
    // Prepacked: pack B once up front (the serve plan-cache pattern), then
    // run the pack-free driver.  Bitwise parity with the single-thread
    // blocked kernel is part of the measurement — the prepacked path runs
    // the identical traversal and microkernels.
    let packed = gemm::PackedB::pack(b.as_slice(), size, size);
    let mut pre_out = vec![0.0f32; size * size];
    let prepacked_secs = time_best(reps, || {
        pre_out.fill(0.0);
        gemm::gemm_prepacked(size, a.as_slice(), &packed, &mut pre_out, 1);
    });
    let prepacked_bitwise = pre_out
        .iter()
        .zip(&blocked_1t)
        .all(|(x, y)| x.to_bits() == y.to_bits());
    SizeResult {
        size,
        naive_secs,
        blocked,
        prepacked_secs,
        prepacked_bitwise,
        max_rel_err,
    }
}

fn to_json(results: &[SizeResult], threads: &[usize]) -> String {
    let kernel = match gemm::kernel_kind() {
        gemm::KernelKind::Avx2Fma => "avx2_fma",
        gemm::KernelKind::Generic => "generic",
    };
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"gemm\",");
    let _ = writeln!(s, "  \"kernel\": \"{kernel}\",");
    let _ = writeln!(
        s,
        "  \"available_parallelism\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let _ = writeln!(
        s,
        "  \"pool_concurrency\": {},",
        pool::global().max_concurrency()
    );
    let _ = writeln!(
        s,
        "  \"blocking\": {{\"mc\": {}, \"kc\": {}, \"nc\": {}}},",
        gemm::MC,
        gemm::KC,
        gemm::NC
    );
    let _ = writeln!(
        s,
        "  \"threads_swept\": [{}],",
        threads
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"size\": {}, \"naive_gflops\": {:.3}, \"max_rel_err\": {:.3e}, \
             \"prepacked_gflops\": {:.3}, \"prepacked_bitwise\": {}, \"blocked\": [",
            r.size,
            gflops(r.size, r.naive_secs),
            r.max_rel_err,
            gflops(r.size, r.prepacked_secs),
            r.prepacked_bitwise
        );
        for (j, &(t, secs)) in r.blocked.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            let _ = write!(
                s,
                "{{\"threads\": {t}, \"gflops\": {:.3}, \"speedup_vs_naive\": {:.2}}}",
                gflops(r.size, secs),
                r.naive_secs / secs
            );
        }
        s.push_str("]}");
        s.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_gemm.json".to_string());

    let max_t = pool::global().max_concurrency();
    let mut threads: Vec<usize> = vec![1, 2, 4]
        .into_iter()
        .filter(|&t| t == 1 || t <= max_t)
        .collect();
    if max_t > 4 {
        threads.push(max_t);
    }
    let sizes: Vec<usize> = if smoke {
        vec![128, 512]
    } else {
        vec![64, 128, 256, 512, 1024, 2048]
    };

    eprintln!(
        "[gemm-bench] kernel={:?} pool_concurrency={max_t} sizes={sizes:?} threads={threads:?}",
        gemm::kernel_kind()
    );
    let mut results = Vec::new();
    for &size in &sizes {
        let r = run_size(size, &threads, smoke);
        eprintln!(
            "[gemm-bench] {0}x{0}: naive {1:.2} GFLOP/s; blocked {2} (max rel err {3:.1e})",
            size,
            gflops(size, r.naive_secs),
            r.blocked
                .iter()
                .map(|&(t, s)| format!(
                    "{t}T {:.2} GFLOP/s ({:.1}x)",
                    gflops(size, s),
                    r.naive_secs / s
                ))
                .collect::<Vec<_>>()
                .join(", "),
            r.max_rel_err
        );
        assert!(
            r.max_rel_err <= 1e-5,
            "blocked/naive outputs diverged at {size}: {}",
            r.max_rel_err
        );
        assert!(
            r.prepacked_bitwise,
            "prepacked GEMM diverged from gemm() at {size}x{size}"
        );
        eprintln!(
            "[gemm-bench] {0}x{0}: prepacked 1T {1:.2} GFLOP/s",
            size,
            gflops(size, r.prepacked_secs)
        );
        results.push(r);
    }

    let json = to_json(&results, &threads);
    if smoke {
        // CI gate: blocked must beat naive at the largest smoke size.
        let gate = results.last().expect("smoke sweep is nonempty");
        let best_blocked = gate
            .blocked
            .iter()
            .map(|&(_, s)| s)
            .fold(f64::INFINITY, f64::min);
        let single_thread = gate.blocked[0].1;
        println!("{json}");
        if single_thread > gate.naive_secs && best_blocked > gate.naive_secs {
            eprintln!(
                "[gemm-bench] FAIL: blocked GEMM slower than naive at {0}x{0} \
                 (blocked {1:.3}s vs naive {2:.3}s)",
                gate.size, single_thread, gate.naive_secs
            );
            std::process::exit(1);
        }
        // CI gate: skipping the per-call pack must not make the kernel
        // slower (25% slack for loaded CI machines).
        if gate.prepacked_secs > single_thread * 1.25 {
            eprintln!(
                "[gemm-bench] FAIL: prepacked GEMM slower than pack-per-call at {0}x{0} \
                 (prepacked {1:.3}s vs blocked {2:.3}s)",
                gate.size, gate.prepacked_secs, single_thread
            );
            std::process::exit(1);
        }
        eprintln!("[gemm-bench] smoke OK");
    } else {
        std::fs::write(&out_path, &json).expect("write bench json");
        eprintln!("[gemm-bench] wrote {out_path}");
        println!("{json}");
    }
}
