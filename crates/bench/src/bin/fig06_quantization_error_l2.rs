//! Fig. 6: quantization bound vs achieved relative QoI error per format (L2).
use errflow_bench::experiments::quantization_error_table;
use errflow_bench::tasks::TrainedTask;
use errflow_tensor::norms::Norm;

fn main() {
    let tasks = TrainedTask::prepare_all_psn(7);
    quantization_error_table(&tasks, Norm::L2, 5, 200).print();
}
