//! Fig. 8: I/O throughput vs user QoI tolerance (L2), SZ and MGARD only (ZFP has no L2 mode).
use errflow_bench::experiments::{io_throughput_table, standard_tolerances};
use errflow_bench::tasks::TrainedTask;
use errflow_tensor::norms::Norm;

fn main() {
    let tasks = TrainedTask::prepare_all_psn(7);
    io_throughput_table(&tasks, Norm::L2, &standard_tolerances()).print();
}
