//! `serve-bench-sweep` — payload-size × batch-cap throughput sweep for the
//! serving hot path, emitting `BENCH_serve.json`.
//!
//! Each sweep point builds a fresh [`Server`] over the same MLP and drives
//! it with the closed-loop loadgen behind `errflow-cli serve-bench`, so the
//! numbers tracked in-repo measure exactly the production request path:
//! admission → plan cache → error-bounded compression roundtrip → batched
//! forward → certified response.
//!
//! ```sh
//! cargo run --release -p errflow-bench --bin serve-bench-sweep                       # fresh sweep
//! cargo run --release -p errflow-bench --bin serve-bench-sweep -- \
//!     --baseline /tmp/before.json --out BENCH_serve.json                             # before/after
//! ```
//!
//! With `--baseline <file>` the previous sweep is embedded verbatim under
//! `"before"` and a per-point `speedup_vs_baseline` column is computed by
//! pairing points in sweep order (the point grid is fixed, so order is
//! identity across runs on the same version of this binary).

use errflow_nn::{Activation, Mlp};
use errflow_pipeline::planner::PayloadLayout;
use errflow_serve::{run_loadgen, BenchSummary, LoadgenConfig, ServeConfig, Server};
use errflow_tensor::norms::Norm;
use errflow_tensor::pool;
use errflow_tensor::rng::StdRng;
use std::fmt::Write as _;

/// Model input dimension; payload sizes are `samples × INPUT_DIM` values.
const INPUT_DIM: usize = 256;

/// The sweep grid: `(payload values per request, requests per client)`.
/// 64 Ki / 256 Ki / 1 Mi values = 256 KiB / 1 MiB / 4 MiB payloads.
const PAYLOADS: &[(usize, usize)] = &[(1 << 16, 12), (1 << 18, 8), (1 << 20, 6)];

/// Batch caps swept at every payload size.
const BATCH_CAPS: &[usize] = &[1, 4];

struct SweepPoint {
    payload_values: usize,
    samples: usize,
    batch_cap: usize,
    layout: &'static str,
    summary: BenchSummary,
}

fn model() -> Mlp {
    Mlp::new(
        &[INPUT_DIM, 128, 16],
        Activation::Tanh,
        Activation::Identity,
        11,
        None,
    )
}

fn calibration(n: usize) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(23);
    (0..n)
        .map(|_| {
            (0..INPUT_DIM)
                .map(|_| rng.gen_range(-1.0f32..1.0))
                .collect()
        })
        .collect()
}

fn run_point(
    payload_values: usize,
    requests_per_client: usize,
    batch_cap: usize,
    layout: PayloadLayout,
) -> SweepPoint {
    let samples = payload_values / INPUT_DIM;
    let server = Server::new(
        model(),
        calibration(8),
        ServeConfig {
            workers: 1,
            max_batch: batch_cap,
            ..ServeConfig::default()
        },
    );
    let summary = run_loadgen(
        &server,
        &LoadgenConfig {
            clients: 2,
            requests_per_client,
            samples_per_request: samples,
            tolerances: vec![1e-3],
            norm: Norm::L2,
            layout,
            seed: 41,
        },
    );
    SweepPoint {
        payload_values,
        samples,
        batch_cap,
        layout: match layout {
            PayloadLayout::FeatureMajor => "feature-major",
            PayloadLayout::SampleMajor => "sample-major",
        },
        summary,
    }
}

/// Extracts every `"throughput_rps":<number>` from a prior sweep's JSON, in
/// order (hand-rolled: the workspace carries no JSON dependency).
fn baseline_rps(json: &str) -> Vec<f64> {
    const KEY: &str = "\"throughput_rps\":";
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find(KEY) {
        rest = &rest[at + KEY.len()..];
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
            .unwrap_or(rest.len());
        if let Ok(v) = rest[..end].parse::<f64>() {
            out.push(v);
        }
    }
    out
}

fn to_json(points: &[SweepPoint], baseline: Option<&str>) -> String {
    // The baseline text embeds under "before"; pair its headline rps
    // numbers (one per point, sweep order) to compute speedups.  A prior
    // sweep's own "before" section is excluded by truncating at the
    // `"before"` key if present.
    let base_rps = baseline.map(|b| {
        let own = b.find("\"before\"").map_or(b.len(), |i| i);
        baseline_rps(&b[..own])
    });
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"serve\",");
    let _ = writeln!(
        s,
        "  \"pool_concurrency\": {},",
        pool::global().max_concurrency()
    );
    let _ = writeln!(s, "  \"hardware_threads\": {},", pool::hardware_threads());
    let _ = writeln!(
        s,
        "  \"model\": \"mlp-{INPUT_DIM}x128x16\", \"backend\": \"sz\", \"workers\": 1, \
         \"clients\": 2, \"tolerance\": 1e-3, \"norm\": \"l2\","
    );
    s.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        let lat = &p.summary.latency;
        let bw = &p.summary.stages.batch_wait;
        let speedup = base_rps
            .as_ref()
            .and_then(|b| b.get(i))
            .map(|&b| p.summary.throughput_rps / b);
        let _ = write!(
            s,
            "    {{\"payload_values\": {}, \"samples\": {}, \"batch_cap\": {}, \
             \"layout\": \"{}\",\n     \"throughput_rps\": {:.3}, \
             \"payload_mbps\": {:.1}, \"decode_gbps\": {:.3}, \
             \"batch_wait_share\": {:.3}, \"speedup_vs_baseline\": {},\n     \"summary\": {}}}",
            p.payload_values,
            p.samples,
            p.batch_cap,
            p.layout,
            p.summary.throughput_rps,
            p.summary.throughput_rps * (p.payload_values * 4) as f64 / 1e6,
            p.summary.decomp_gbps,
            if lat.mean_us > 0.0 {
                bw.mean_us / lat.mean_us
            } else {
                0.0
            },
            speedup.map_or("null".to_string(), |v| format!("{v:.2}")),
            p.summary.to_json(),
        );
        s.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]");
    if let Some(b) = baseline {
        s.push_str(",\n  \"before\": ");
        s.push_str(b.trim());
    }
    s.push_str("\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let baseline = flag("--baseline").map(|p| std::fs::read_to_string(&p).expect("read baseline"));

    let mut points = Vec::new();
    for &(values, reqs) in PAYLOADS {
        for &cap in BATCH_CAPS {
            let p = run_point(values, reqs, cap, PayloadLayout::SampleMajor);
            eprintln!(
                "[serve-bench-sweep] {} values cap={cap} sample-major: {:.2} req/s \
                 (p50 {:.0}us, decode {:.2} GB/s, mean batch {:.2})",
                values,
                p.summary.throughput_rps,
                p.summary.latency.p50_us,
                p.summary.decomp_gbps,
                p.summary.mean_batch_size,
            );
            points.push(p);
        }
    }
    // One feature-major point at the largest payload, so the layout cost
    // (transpose on the decode path) stays visible in the tracked numbers.
    let (values, reqs) = PAYLOADS[PAYLOADS.len() - 1];
    let p = run_point(
        values,
        reqs,
        BATCH_CAPS[BATCH_CAPS.len() - 1],
        PayloadLayout::FeatureMajor,
    );
    eprintln!(
        "[serve-bench-sweep] {} values cap={} feature-major: {:.2} req/s",
        values,
        BATCH_CAPS[BATCH_CAPS.len() - 1],
        p.summary.throughput_rps,
    );
    points.push(p);

    for p in &points {
        assert!(p.summary.all_bounds_certified && p.summary.bound_fail == 0);
        // Stage attribution must stay sound under whatever pipelining the
        // server does: per-request stage sums are ≤ end-to-end latency, so
        // the *mean* stage sum is ≤ the mean latency (small slack for
        // histogram bucketing error).
        let stage_sum_us = p.summary.stages.batch_wait.mean_us
            + p.summary.stages.plan.mean_us
            + p.summary.stages.decompress.mean_us
            + p.summary.stages.forward.mean_us
            + p.summary.stages.respond.mean_us;
        assert!(
            stage_sum_us <= p.summary.latency.mean_us * 1.10 + 100.0,
            "stage sum {stage_sum_us:.0}us exceeds mean latency {:.0}us at n={}",
            p.summary.latency.mean_us,
            p.payload_values,
        );
    }

    let json = to_json(&points, baseline.as_deref());
    std::fs::write(&out_path, &json).expect("write bench json");
    eprintln!("[serve-bench-sweep] wrote {out_path}");
    println!("{json}");
}
