//! Ablation: worst-case vs calibrated-magnitude quantization bounds.
//!
//! The paper bounds each layer's activation magnitude by `√n₀·Πσ̃`, which
//! compounds badly with depth.  The calibrated extension
//! (`NetworkAnalysis::of_calibrated`) replaces it with measured magnitudes
//! × a 1.5 safety factor.  This ablation reports, per task and format:
//! both bounds, the achieved error, and the tolerance at which each
//! planner variant first unlocks a reduced-precision format.
use errflow_bench::experiments::{calibration, make_planner};
use errflow_bench::report::{sci, Table};
use errflow_bench::tasks::TrainedTask;
use errflow_core::{quantize_model, NetworkAnalysis};
use errflow_nn::Model;
use errflow_pipeline::PlannerConfig;
use errflow_quant::QuantFormat;
use errflow_scidata::task::TrainingMode;
use errflow_scidata::TaskKind;
use errflow_tensor::norms::{diff_norm, Norm};

fn main() {
    let mut bounds_table = Table::new(
        "Ablation — quantization bound: worst-case vs calibrated (L2, absolute)",
        &["task", "format", "worst_case", "calibrated", "achieved_max"],
    );
    let mut unlock_table = Table::new(
        "Ablation — first reduced-format unlock tolerance (relative, share 0.5)",
        &["task", "worst_case_unlock", "calibrated_unlock"],
    );
    for kind in TaskKind::ALL {
        let tt = TrainedTask::prepare(kind, TrainingMode::Psn, 7);
        let cal_inputs = calibration(&tt);
        let worst = &tt.analysis;
        let calibrated = NetworkAnalysis::of_calibrated(&tt.model, &cal_inputs, 1.5);
        for format in QuantFormat::REDUCED {
            let qm = quantize_model(&tt.model, format);
            let mut achieved = 0.0f64;
            for x in tt.task.ordered_inputs().iter().take(150) {
                let y = tt.model.forward(x);
                let yq = qm.forward(x);
                achieved = achieved.max(diff_norm(&y, &yq, Norm::L2));
            }
            bounds_table.push(vec![
                kind.name().to_string(),
                format.label().to_string(),
                sci(worst.quantization_bound(format)),
                sci(calibrated.quantization_bound(format)),
                sci(achieved),
            ]);
        }
        let unlock = |calibrated: bool| -> String {
            let planner = make_planner(&tt, calibrated);
            for i in 0..240 {
                let tol = 10f64.powf(-8.0 + i as f64 * 0.05);
                let plan = planner.plan(&PlannerConfig {
                    rel_tolerance: tol,
                    norm: Norm::LInf,
                    quant_share: 0.5,
                });
                if plan.format != QuantFormat::Fp32 {
                    return sci(tol);
                }
            }
            "never".to_string()
        };
        unlock_table.push(vec![kind.name().to_string(), unlock(false), unlock(true)]);
    }
    bounds_table.print();
    unlock_table.print();
}
