//! Fig. 12: predicted bound and throughput vs user tolerance — MgardCompressor, L2.
use errflow_bench::experiments::{pipeline_table, standard_shares, standard_tolerances};
use errflow_bench::tasks::TrainedTask;
use errflow_tensor::norms::Norm;

fn main() {
    let tasks = TrainedTask::prepare_all_psn(7);
    let backend = errflow_compress::MgardCompressor;
    pipeline_table(
        &tasks,
        &backend,
        Norm::L2,
        &standard_tolerances(),
        &standard_shares(),
        300,
        true,
    )
    .print();
}
