//! Trained-model registry shared by the figure binaries.

use errflow_core::NetworkAnalysis;
use errflow_scidata::task::TrainingMode;
use errflow_scidata::{SyntheticTask, TaskKind, TaskModel};

/// `true` when `ERRFLOW_FAST=1`: reduced workloads for smoke runs.
pub fn fast_mode() -> bool {
    std::env::var("ERRFLOW_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// A workload with its trained model and spectral analysis.
pub struct TrainedTask {
    /// The generated workload.
    pub task: SyntheticTask,
    /// The trained model.
    pub model: TaskModel,
    /// How the model was regularised.
    pub mode: TrainingMode,
    /// Spectral analysis of the trained weights.
    pub analysis: NetworkAnalysis,
}

impl TrainedTask {
    /// Generates, trains, and analyses one workload.
    pub fn prepare(kind: TaskKind, mode: TrainingMode, seed: u64) -> Self {
        let task = if fast_mode() {
            SyntheticTask::of_kind_small(kind, seed)
        } else {
            SyntheticTask::of_kind(kind, seed)
        };
        let epochs = match (fast_mode(), kind) {
            (true, _) => 4,
            (false, TaskKind::EuroSat) => 16,
            (false, TaskKind::BorghesiFlame) => 25,
            (false, TaskKind::H2Combustion) => 15,
        };
        let model = task.trained_model(mode, epochs);
        let analysis = NetworkAnalysis::of(&model);
        TrainedTask {
            task,
            model,
            mode,
            analysis,
        }
    }

    /// All three workloads trained with PSN (the paper's default setup).
    pub fn prepare_all_psn(seed: u64) -> Vec<TrainedTask> {
        TaskKind::ALL
            .iter()
            .map(|&k| TrainedTask::prepare(k, TrainingMode::Psn, seed))
            .collect()
    }

    /// Task name for table rows.
    pub fn name(&self) -> &'static str {
        self.task.kind.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_h2_fast() {
        std::env::set_var("ERRFLOW_FAST", "1");
        let t = TrainedTask::prepare(TaskKind::H2Combustion, TrainingMode::Psn, 1);
        assert_eq!(t.name(), "h2_combustion");
        assert!(t.analysis.amplification() > 0.0);
        std::env::remove_var("ERRFLOW_FAST");
    }
}
