//! Experiment implementations shared by the figure binaries.
//!
//! Each public function regenerates the data series of one paper figure
//! (or a figure pair differing only in norm) and returns printable tables.
//! The mapping to figures is in DESIGN.md §4.

use crate::report::{fixed, sci, Table};
use crate::tasks::TrainedTask;
use errflow_compress::{Compressor, ErrorBound};
use errflow_core::{quantize_model, NetworkAnalysis};
use errflow_nn::Model;
use errflow_pipeline::planner::{flatten, unflatten, PayloadLayout};
use errflow_pipeline::{Planner, PlannerConfig, StorageModel};
use errflow_quant::throughput::ExecutionModel;
use errflow_quant::QuantFormat;
use errflow_scidata::{TaskKind, TaskModel};
use errflow_tensor::norms::{l2, linf, Norm};
use errflow_tensor::stats::geometric_mean;

/// Payload layout for a task: gridded workloads flatten feature-major (each
/// field contiguous); image workloads sample-major.
pub fn layout_for(kind: TaskKind) -> PayloadLayout {
    match kind {
        TaskKind::EuroSat => PayloadLayout::SampleMajor,
        _ => PayloadLayout::FeatureMajor,
    }
}

/// Splits ordered inputs into `n` contiguous batches (spatial order kept).
pub fn batches(inputs: &[Vec<f32>], n: usize) -> Vec<&[Vec<f32>]> {
    let size = inputs.len().div_ceil(n);
    inputs.chunks(size).collect()
}

/// Norm of a concatenated batch of vectors.
fn batch_norm(vs: &[Vec<f32>], norm: Norm) -> f64 {
    match norm {
        Norm::L2 => vs
            .iter()
            .map(|v| {
                let n = l2(v);
                n * n
            })
            .sum::<f64>()
            .sqrt(),
        Norm::LInf => vs.iter().map(|v| linf(v)).fold(0.0, f64::max),
    }
}

/// Norm of the concatenated element-wise difference of two batches.
fn batch_diff_norm(a: &[Vec<f32>], b: &[Vec<f32>], norm: Norm) -> f64 {
    let diffs: Vec<Vec<f32>> = a
        .iter()
        .zip(b)
        .map(|(x, y)| x.iter().zip(y).map(|(&p, &q)| p - q).collect())
        .collect();
    batch_norm(&diffs, norm)
}

/// Largest per-sample input L2 error in a batch — the `‖Δx‖₂` that enters
/// the per-sample bound when aggregating in L∞.
fn max_sample_l2_err(a: &[Vec<f32>], b: &[Vec<f32>]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            x.iter()
                .zip(y)
                .map(|(&p, &q)| ((p - q) as f64).powi(2))
                .sum::<f64>()
                .sqrt()
        })
        .fold(0.0, f64::max)
}

/// One trained variant's bound/achieved pair for the Figs. 3–4 comparison.
struct VariantResult {
    bound_rel: f64,
    achieved_rel: Vec<f64>,
}

/// Figs. 3 and 4: compression-error bound vs. achieved error, per task and
/// compressor, across input error levels, for the three training modes.
///
/// `variants` holds (label, trained task) triples for PSN / baseline /
/// weight-decay models of the *same* workload kind.
pub fn compression_error_table(
    variants: &[(&str, &TrainedTask)],
    norm: Norm,
    levels: &[f64],
    n_batches: usize,
    sample_cap: usize,
) -> Table {
    let mut headers: Vec<String> = vec![
        "task".into(),
        "compressor".into(),
        "input_rel_err".into(),
        "achieved_input".into(),
    ];
    for (label, _) in variants {
        headers.push(format!("{label}_bound"));
        headers.push(format!("{label}_achieved"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let kind = variants[0].1.task.kind;
    let mut table = Table::new(
        format!(
            "Compression error ({norm}) — bound vs achieved, task={}",
            kind.name()
        ),
        &header_refs,
    );

    let inputs = variants[0].1.task.ordered_inputs();
    let layout = layout_for(kind);
    let backends = errflow_compress::all_backends();
    for &level in levels {
        for backend in &backends {
            let bound_mode = match norm {
                Norm::LInf => ErrorBound::rel_linf(level),
                Norm::L2 => ErrorBound::rel_l2(level),
            };
            if !backend.supports(&bound_mode) {
                continue;
            }
            let mut achieved_inputs = Vec::new();
            let mut results: Vec<VariantResult> = variants
                .iter()
                .map(|_| VariantResult {
                    bound_rel: 0.0,
                    achieved_rel: Vec::new(),
                })
                .collect();
            for batch in batches(inputs, n_batches) {
                let batch: Vec<Vec<f32>> = batch.iter().take(sample_cap).cloned().collect();
                let payload = flatten(&batch, layout);
                let stream = backend
                    .compress(&payload, &bound_mode)
                    .expect("supported bound");
                let recon_payload = backend.decompress(&stream).expect("own stream");
                let recon = unflatten(&recon_payload, batch.len(), batch[0].len(), layout);

                achieved_inputs
                    .push(batch_diff_norm(&batch, &recon, norm) / batch_norm(&batch, norm));

                for ((_, tt), res) in variants.iter().zip(&mut results) {
                    let ys: Vec<Vec<f32>> = batch.iter().map(|x| tt.model.forward(x)).collect();
                    let yrs: Vec<Vec<f32>> = recon.iter().map(|x| tt.model.forward(x)).collect();
                    let ref_norm = batch_norm(&ys, norm).max(f64::MIN_POSITIVE);
                    res.achieved_rel
                        .push(batch_diff_norm(&ys, &yrs, norm) / ref_norm);
                    // Bound: L2 concat uses ‖Δpayload‖₂; L∞ uses the worst
                    // per-sample ‖Δx‖₂ (see module docs).
                    let dx = match norm {
                        Norm::L2 => batch_diff_norm(&batch, &recon, Norm::L2),
                        Norm::LInf => max_sample_l2_err(&batch, &recon),
                    };
                    let b = tt.analysis.compression_bound(dx) / ref_norm;
                    res.bound_rel = res.bound_rel.max(b);
                }
            }
            let mut row = vec![
                kind.name().to_string(),
                backend.name().to_string(),
                sci(level),
                sci(geometric_mean(&achieved_inputs)),
            ];
            for res in &results {
                row.push(sci(res.bound_rel));
                row.push(sci(geometric_mean(&res.achieved_rel)));
            }
            table.push(row);
        }
    }
    table
}

/// The per-feature panel of Figs. 3–4: bounds and achieved errors for each
/// output feature at one input error level.
pub fn per_feature_table(tt: &TrainedTask, norm: Norm, level: f64, sample_cap: usize) -> Table {
    let mut table = Table::new(
        format!(
            "Per-feature QoI error ({norm}) at input rel err {} — task={}",
            sci(level),
            tt.name()
        ),
        &["feature", "bound", "achieved_max", "achieved_geo"],
    );
    let inputs: Vec<Vec<f32>> = tt
        .task
        .ordered_inputs()
        .iter()
        .take(sample_cap)
        .cloned()
        .collect();
    let layout = layout_for(tt.task.kind);
    let payload = flatten(&inputs, layout);
    let bound_mode = match norm {
        Norm::LInf => ErrorBound::rel_linf(level),
        Norm::L2 => ErrorBound::rel_l2(level),
    };
    let sz = errflow_compress::SzCompressor::default();
    let stream = sz.compress(&payload, &bound_mode).expect("sz supports all");
    let recon_payload = sz.decompress(&stream).expect("own stream");
    let recon = unflatten(&recon_payload, inputs.len(), inputs[0].len(), layout);

    let dx = max_sample_l2_err(&inputs, &recon);
    let bounds = tt.analysis.per_feature_bounds(dx, QuantFormat::Fp32);

    let dim_out = tt.model.output_dim();
    let mut per_feature_err: Vec<Vec<f64>> = vec![Vec::new(); dim_out];
    let mut per_feature_ref: Vec<f64> = vec![0.0; dim_out];
    for (x, xt) in inputs.iter().zip(&recon) {
        let y = tt.model.forward(x);
        let yt = tt.model.forward(xt);
        for i in 0..dim_out {
            per_feature_err[i].push(((y[i] - yt[i]) as f64).abs());
            per_feature_ref[i] = per_feature_ref[i].max((y[i] as f64).abs());
        }
    }
    for i in 0..dim_out {
        let refv = per_feature_ref[i].max(f64::MIN_POSITIVE);
        let max_err = per_feature_err[i].iter().copied().fold(0.0, f64::max) / refv;
        let geo = geometric_mean(&per_feature_err[i]) / refv;
        table.push(vec![
            i.to_string(),
            sci(bounds[i] / refv),
            sci(max_err),
            sci(geo),
        ]);
    }
    table
}

/// Figs. 5 and 6: quantization bound vs. achieved relative QoI error per
/// format.
pub fn quantization_error_table(
    tasks: &[TrainedTask],
    norm: Norm,
    n_batches: usize,
    sample_cap: usize,
) -> Table {
    let mut table = Table::new(
        format!("Quantization error ({norm}) — bound vs achieved"),
        &[
            "task",
            "format",
            "bound_rel",
            "achieved_geo",
            "achieved_min",
            "achieved_max",
        ],
    );
    for tt in tasks {
        for format in QuantFormat::REDUCED {
            let qm = quantize_model(&tt.model, format);
            let mut achieved = Vec::new();
            let mut ref_acc: f64 = 0.0;
            for batch in batches(tt.task.ordered_inputs(), n_batches) {
                let batch: Vec<Vec<f32>> = batch.iter().take(sample_cap).cloned().collect();
                let ys: Vec<Vec<f32>> = batch.iter().map(|x| tt.model.forward(x)).collect();
                let yqs: Vec<Vec<f32>> = batch.iter().map(|x| qm.forward(x)).collect();
                let ref_norm = batch_norm(&ys, norm).max(f64::MIN_POSITIVE);
                ref_acc = ref_acc.max(ref_norm);
                achieved.push(batch_diff_norm(&ys, &yqs, norm) / ref_norm);
            }
            let bound_rel = tt.analysis.quantization_bound(format) / ref_acc;
            table.push(vec![
                tt.name().to_string(),
                format.label().to_string(),
                sci(bound_rel),
                sci(geometric_mean(&achieved)),
                sci(achieved.iter().copied().fold(f64::INFINITY, f64::min)),
                sci(achieved.iter().copied().fold(0.0, f64::max)),
            ]);
        }
    }
    table
}

/// The per-feature panel of Figs. 5–6: per-output-feature quantization
/// bounds vs. achieved per-feature errors for one format.
pub fn per_feature_quantization_table(
    tt: &TrainedTask,
    format: QuantFormat,
    sample_cap: usize,
) -> Table {
    let mut table = Table::new(
        format!(
            "Per-feature quantization error ({}) — task={}",
            format.label(),
            tt.name()
        ),
        &["feature", "bound", "achieved_max", "achieved_geo"],
    );
    let bounds = tt.analysis.per_feature_bounds(0.0, format);
    let qm = quantize_model(&tt.model, format);
    let dim_out = tt.model.output_dim();
    let mut errs: Vec<Vec<f64>> = vec![Vec::new(); dim_out];
    let mut refs: Vec<f64> = vec![0.0; dim_out];
    for x in tt.task.ordered_inputs().iter().take(sample_cap) {
        let y = tt.model.forward(x);
        let yq = qm.forward(x);
        for i in 0..dim_out {
            errs[i].push(((y[i] - yq[i]) as f64).abs());
            refs[i] = refs[i].max((y[i] as f64).abs());
        }
    }
    for i in 0..dim_out {
        let refv = refs[i].max(f64::MIN_POSITIVE);
        table.push(vec![
            i.to_string(),
            sci(bounds[i] / refv),
            sci(errs[i].iter().copied().fold(0.0, f64::max) / refv),
            sci(geometric_mean(&errs[i]) / refv),
        ]);
    }
    table
}

/// Figs. 7 and 8: effective I/O throughput vs. QoI tolerance per backend
/// (compression-only pipelines; the tolerance buys input error budget).
pub fn io_throughput_table(tasks: &[TrainedTask], norm: Norm, tolerances: &[f64]) -> Table {
    let storage = figure_storage();
    let mut table = Table::new(
        format!(
            "I/O throughput vs QoI tolerance ({norm}) — baseline {} GB/s",
            fixed(storage.baseline_gbps())
        ),
        &[
            "task",
            "backend",
            "qoi_tolerance",
            "ratio",
            "decomp_gbps",
            "effective_gbps",
        ],
    );
    for tt in tasks {
        let planner = Planner::new(&tt.model, &calibration(tt));
        let layout = layout_for(tt.task.kind);
        let inputs = tt.task.ordered_inputs().to_vec();
        let d = inputs[0].len();
        // Tile the payload to ≥ 4 MB so wall-clock decode timing is stable
        // (simulation payloads are many timesteps of the same fields).
        let base = flatten(&inputs, layout);
        let tiles = (1_000_000 / base.len().max(1)).clamp(1, 64);
        let mut payload = Vec::with_capacity(base.len() * tiles);
        for _ in 0..tiles {
            payload.extend_from_slice(&base);
        }
        for backend in errflow_compress::all_backends() {
            for &tol in tolerances {
                let abs_tol = tol * planner.qoi_reference(norm);
                let amplification = planner.analysis().amplification();
                // Compression-only: the whole tolerance buys input error.
                let bound = match norm {
                    Norm::L2 => {
                        // Per-sample budget abs_tol/A; tiling scales the
                        // whole-buffer L2 budget by √(samples).
                        let n_samples = (inputs.len() * tiles) as f64;
                        ErrorBound::abs_l2(abs_tol / amplification * n_samples.sqrt())
                    }
                    Norm::LInf => {
                        // per-sample ‖Δx‖₂ ≤ √d·t must stay under abs_tol/A.
                        ErrorBound::abs_linf(abs_tol / amplification / (d as f64).sqrt())
                    }
                };
                if !backend.supports(&bound) {
                    continue;
                }
                let (_, mut stats) = backend.roundtrip(&payload, &bound).expect("supported");
                if stats.decompress_secs < 0.01 {
                    let stream = backend.compress(&payload, &bound).expect("supported");
                    let reps = ((0.02 / stats.decompress_secs.max(1e-7)) as usize).clamp(3, 100);
                    let t0 = std::time::Instant::now();
                    for _ in 0..reps {
                        backend.decompress(&stream).expect("own stream");
                    }
                    stats.decompress_secs = t0.elapsed().as_secs_f64() / reps as f64;
                }
                table.push(vec![
                    tt.name().to_string(),
                    backend.name().to_string(),
                    sci(tol),
                    fixed(stats.ratio()),
                    fixed(stats.decompress_gbps()),
                    fixed(storage.effective_read_gbps(&stats)),
                ]);
            }
        }
    }
    table
}

/// Fig. 9: model-execution throughput per quantization format for the
/// paper's model zoo (ResNet18/34/50-class + mlp_s/m/l).
pub fn exec_throughput_table() -> Table {
    let exec = ExecutionModel::default();
    let zoo: [(&str, f64, usize); 6] = [
        // (name, FLOPs per sample, input bytes per sample)
        ("resnet18", 1.8e9, 224 * 224 * 3 * 4),
        ("resnet34", 3.6e9, 224 * 224 * 3 * 4),
        ("resnet50", 4.1e9, 224 * 224 * 3 * 4),
        ("mlp_s", 0.5e6, 256 * 4),
        ("mlp_m", 4.2e6, 1024 * 4),
        ("mlp_l", 33.7e6, 4096 * 4),
    ];
    let mut table = Table::new(
        "Execution throughput vs quantization format",
        &[
            "model",
            "format",
            "samples_per_sec",
            "ingest_gbps",
            "speedup_vs_fp32",
        ],
    );
    for (name, flops, bytes) in zoo {
        for format in QuantFormat::ALL {
            table.push(vec![
                name.to_string(),
                format.label().to_string(),
                fixed(exec.samples_per_sec(flops, format)),
                fixed(exec.ingest_gbps(flops, bytes, format)),
                fixed(exec.speedup(flops, format)),
            ]);
        }
    }
    table
}

/// Calibration inputs for a planner (a slice of the ordered inputs).
pub fn calibration(tt: &TrainedTask) -> Vec<Vec<f32>> {
    tt.task.ordered_inputs().iter().take(64).cloned().collect()
}

/// Storage model used by the figure experiments.
///
/// The paper's Lustre baseline is 2.8 GB/s against node-parallel
/// multi-GB/s decompression; this machine decompresses at ~0.2–0.9 GB/s on
/// two cores, so the figures scale the simulated bandwidth to 0.05 GB/s to
/// preserve the decode-speed/bandwidth ratio that determines the Fig. 7
/// crossover shape (DESIGN.md §3, substitution 4).  Override with
/// `ERRFLOW_BANDWIDTH=<GB/s>`.
pub fn figure_storage() -> StorageModel {
    let gbps = std::env::var("ERRFLOW_BANDWIDTH")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.05);
    StorageModel::new(gbps)
}

/// Builds the planner for a trained task.  `calibrated = true` uses the
/// measured-magnitude bound extension (safety ×1.5), which is what the
/// pipeline figures use — the worst-case variant shifts every format-unlock
/// point to looser tolerances (see `ablation_calibration`).
pub fn make_planner<'a>(tt: &'a TrainedTask, calibrated: bool) -> Planner<'a, TaskModel> {
    let cal = calibration(tt);
    let planner = if calibrated {
        Planner::new_calibrated(&tt.model, &cal, 1.5)
    } else {
        Planner::new(&tt.model, &cal)
    };
    planner.with_storage_model(figure_storage())
}

/// Figs. 10–15: full pipeline (compression + quantization) under the
/// tolerance allocator, per backend/norm, sweeping tolerance × quant share.
pub fn pipeline_table(
    tasks: &[TrainedTask],
    backend: &dyn Compressor,
    norm: Norm,
    tolerances: &[f64],
    shares: &[f64],
    sample_cap: usize,
    calibrated: bool,
) -> Table {
    let mut table = Table::new(
        format!("Pipeline sweep — backend={}, norm={norm}", backend.name()),
        &[
            "task",
            "qoi_tolerance",
            "quant_share",
            "format",
            "pred_bound",
            "achieved_max",
            "io_gbps",
            "exec_gbps",
            "total_gbps",
        ],
    );
    for tt in tasks {
        let planner = make_planner(tt, calibrated);
        let inputs: Vec<Vec<f32>> = tt
            .task
            .ordered_inputs()
            .iter()
            .take(sample_cap)
            .cloned()
            .collect();
        let layout = layout_for(tt.task.kind);
        for &tol in tolerances {
            for &share in shares {
                let cfg = PlannerConfig {
                    rel_tolerance: tol,
                    norm,
                    quant_share: share,
                };
                let plan = planner.plan(&cfg);
                let report = planner
                    .execute(&plan, backend, &inputs, norm, layout)
                    .expect("pipeline execution");
                table.push(vec![
                    tt.name().to_string(),
                    sci(tol),
                    fixed(share),
                    plan.format.label().to_string(),
                    sci(report.predicted_rel_bound),
                    sci(report.achieved_rel_error.max),
                    fixed(report.io_gbps),
                    fixed(report.exec_gbps),
                    fixed(report.end_to_end_gbps),
                ]);
            }
        }
    }
    table
}

/// Fig. 10's left panel: how the allocator splits the tolerance when
/// quantization is prioritised.
pub fn coordination_table(
    tt: &TrainedTask,
    norm: Norm,
    tolerances: &[f64],
    calibrated: bool,
) -> Table {
    let planner = make_planner(tt, calibrated);
    let mut table = Table::new(
        format!(
            "Tolerance coordination (quantization prioritised) — task={}",
            tt.name()
        ),
        &[
            "qoi_tolerance",
            "format",
            "quant_bound_rel",
            "compression_budget_rel",
            "unused_rel",
        ],
    );
    for &tol in tolerances {
        let plan = planner.plan(&PlannerConfig {
            rel_tolerance: tol,
            norm,
            quant_share: 0.9,
        });
        let r = planner.qoi_reference(norm);
        table.push(vec![
            sci(tol),
            plan.format.label().to_string(),
            sci(plan.predicted_quant_bound / r),
            sci(plan.compression_budget / r),
            sci((plan.abs_tolerance - plan.predicted_total_bound).max(0.0) / r),
        ]);
    }
    table
}

/// The standard tolerance sweep used by the pipeline figures.
pub fn standard_tolerances() -> Vec<f64> {
    vec![1e-5, 1e-4, 1e-3, 1e-2, 1e-1]
}

/// The quantization-share sweep of Figs. 11–15 (the paper sweeps 10–90%).
pub fn standard_shares() -> Vec<f64> {
    vec![0.1, 0.5, 0.9]
}

/// Builds a `TaskModel` reference usable by generic experiment code.
pub fn model_of(tt: &TrainedTask) -> &TaskModel {
    &tt.model
}

/// Convenience: amplification per training mode for the PSN ablation.
pub fn amplification_of(analysis: &NetworkAnalysis) -> f64 {
    analysis.amplification()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::TrainedTask;
    use errflow_scidata::task::TrainingMode;

    fn fast_task() -> TrainedTask {
        std::env::set_var("ERRFLOW_FAST", "1");
        TrainedTask::prepare(TaskKind::H2Combustion, TrainingMode::Psn, 3)
    }

    #[test]
    fn batch_split_covers_all() {
        let inputs: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32]).collect();
        let bs = batches(&inputs, 3);
        let total: usize = bs.iter().map(|b| b.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(bs.len(), 3);
    }

    #[test]
    fn quantization_table_has_all_rows() {
        let tt = fast_task();
        let t = quantization_error_table(std::slice::from_ref(&tt), Norm::L2, 2, 50);
        assert_eq!(t.len(), 4); // 4 reduced formats × 1 task
    }

    #[test]
    fn io_table_skips_zfp_for_l2() {
        let tt = fast_task();
        let linf = io_throughput_table(std::slice::from_ref(&tt), Norm::LInf, &[1e-3]);
        let l2t = io_throughput_table(std::slice::from_ref(&tt), Norm::L2, &[1e-3]);
        assert_eq!(linf.len(), 3); // zfp + sz + mgard
        assert_eq!(l2t.len(), 2); // sz + mgard only
    }

    #[test]
    fn exec_table_covers_zoo() {
        let t = exec_throughput_table();
        assert_eq!(t.len(), 6 * 5);
    }
}
