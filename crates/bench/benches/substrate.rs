//! Criterion micro-benchmarks of every substrate the figures depend on:
//! GEMM, spectral-norm estimation, the three compressors (both directions),
//! weight quantization, bound evaluation, and pipeline planning.
//!
//! These measured numbers back the analytical throughput models in
//! DESIGN.md §3 (substitutions 3 and 4).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use errflow_compress::{Compressor, ErrorBound, MgardCompressor, SzCompressor, ZfpCompressor};
use errflow_core::{quantize_model, NetworkAnalysis};
use errflow_nn::{Activation, Mlp, Model};
use errflow_pipeline::{Planner, PlannerConfig};
use errflow_quant::QuantFormat;
use errflow_tensor::spectral::{power_iteration, PowerIterationOpts};
use errflow_tensor::init;
use errflow_tensor::norms::Norm;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn smooth_payload(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let t = i as f32 / n as f32;
            (t * 14.0).sin() * 2.0 + 0.3 * (t * 90.0).cos()
        })
        .collect()
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor/gemm");
    for n in [64usize, 128, 256] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = init::uniform(n, n, 1.0, &mut rng);
        let b = init::uniform(n, n, 1.0, &mut rng);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_function(format!("{n}x{n}"), |bench| {
            bench.iter(|| a.matmul(&b).unwrap())
        });
    }
    group.finish();
}

fn bench_spectral(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor/spectral_norm");
    for n in [50usize, 200] {
        let mut rng = StdRng::seed_from_u64(2);
        let w = init::uniform(n, n, 1.0, &mut rng);
        group.bench_function(format!("power_iteration_{n}"), |bench| {
            bench.iter(|| power_iteration(&w, PowerIterationOpts::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_compressors(c: &mut Criterion) {
    let data = smooth_payload(65_536);
    let bound = ErrorBound::rel_linf(1e-4);
    let backends: Vec<Box<dyn Compressor>> = vec![
        Box::new(ZfpCompressor::default()),
        Box::new(SzCompressor::default()),
        Box::new(MgardCompressor::default()),
    ];
    let mut group = c.benchmark_group("compress");
    group.throughput(Throughput::Bytes((data.len() * 4) as u64));
    for backend in &backends {
        group.bench_function(format!("{}/compress", backend.name()), |bench| {
            bench.iter(|| backend.compress(&data, &bound).unwrap())
        });
        let stream = backend.compress(&data, &bound).unwrap();
        group.bench_function(format!("{}/decompress", backend.name()), |bench| {
            bench.iter(|| backend.decompress(&stream).unwrap())
        });
    }
    group.finish();
}

fn bench_chunked_and_2d(c: &mut Criterion) {
    use errflow_compress::chunked::ChunkedCompressor;
    use errflow_compress::sz2d::Sz2dCompressor;
    let data = smooth_payload(262_144);
    let bound = ErrorBound::abs_linf(1e-4);
    let mut group = c.benchmark_group("compress/parallel_and_2d");
    group.throughput(Throughput::Bytes((data.len() * 4) as u64));
    let chunked = ChunkedCompressor::new(SzCompressor::default());
    let stream = chunked.compress(&data, &bound).unwrap();
    group.bench_function("chunked_sz/decompress", |bench| {
        bench.iter(|| chunked.decompress(&stream).unwrap())
    });
    let serial = ChunkedCompressor::new(SzCompressor::default()).with_threads(1);
    group.bench_function("chunked_sz/decompress_1thread", |bench| {
        bench.iter(|| serial.decompress(&stream).unwrap())
    });
    let sz2d = Sz2dCompressor::new();
    let stream2d = sz2d.compress(&data, 512, 512, &bound).unwrap();
    group.bench_function("sz2d/compress", |bench| {
        bench.iter(|| sz2d.compress(&data, 512, 512, &bound).unwrap())
    });
    group.bench_function("sz2d/decompress", |bench| {
        bench.iter(|| sz2d.decompress(&stream2d).unwrap())
    });
    group.finish();
}

fn bench_huffman(c: &mut Criterion) {
    use errflow_compress::huffman;
    let mut rng = StdRng::seed_from_u64(8);
    use rand::Rng;
    // Skewed alphabet typical of quantization codes.
    let symbols: Vec<u32> = (0..262_144)
        .map(|_| {
            if rng.gen_bool(0.9) {
                32768
            } else {
                32768 + rng.gen_range(-20i64..20) as u32
            }
        })
        .collect();
    let stream = huffman::encode(&symbols);
    let mut group = c.benchmark_group("compress/huffman");
    group.throughput(Throughput::Elements(symbols.len() as u64));
    group.bench_function("encode", |bench| bench.iter(|| huffman::encode(&symbols)));
    group.bench_function("decode", |bench| {
        bench.iter(|| huffman::decode(&stream).unwrap())
    });
    group.finish();
}

fn bench_quantization(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let w = init::uniform(256, 256, 0.5, &mut rng);
    let mut group = c.benchmark_group("quant");
    group.throughput(Throughput::Elements((256 * 256) as u64));
    for format in QuantFormat::REDUCED {
        group.bench_function(format!("quantize_matrix/{}", format.label()), |bench| {
            bench.iter(|| format.quantize_matrix(&w))
        });
        group.bench_function(format!("step_size/{}", format.label()), |bench| {
            bench.iter(|| format.step_size(&w))
        });
    }
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let model = Mlp::new(
        &[13, 48, 48, 48, 48, 48, 48, 48, 48, 3],
        Activation::PRelu(0.25),
        Activation::Identity,
        4,
        None,
    );
    let mut group = c.benchmark_group("core");
    group.bench_function("network_analysis/9_layer_mlp", |bench| {
        bench.iter(|| NetworkAnalysis::of(&model))
    });
    let analysis = NetworkAnalysis::of(&model);
    group.bench_function("combined_bound", |bench| {
        bench.iter(|| analysis.combined_bound(1e-4, QuantFormat::Fp16))
    });
    group.bench_function("per_feature_bounds", |bench| {
        bench.iter(|| analysis.per_feature_bounds(1e-4, QuantFormat::Fp16))
    });
    group.bench_function("quantize_model/fp16", |bench| {
        bench.iter(|| quantize_model(&model, QuantFormat::Fp16))
    });
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let model = Mlp::new(
        &[9, 50, 50, 9],
        Activation::Tanh,
        Activation::Identity,
        5,
        None,
    );
    let mut rng = StdRng::seed_from_u64(6);
    let calibration: Vec<Vec<f32>> = (0..32)
        .map(|_| init::uniform_vec(9, 1.0, &mut rng))
        .collect();
    let mut group = c.benchmark_group("pipeline");
    group.bench_function("planner_new", |bench| {
        bench.iter_batched(
            || calibration.clone(),
            |cal| Planner::new(&model, &cal),
            BatchSize::SmallInput,
        )
    });
    let planner = Planner::new(&model, &calibration);
    group.bench_function("plan", |bench| {
        bench.iter(|| {
            planner.plan(&PlannerConfig {
                rel_tolerance: 1e-3,
                norm: Norm::LInf,
                quant_share: 0.5,
            })
        })
    });
    group.bench_function("forward/h2_mlp", |bench| {
        let x = init::uniform_vec(9, 1.0, &mut rng);
        bench.iter(|| model.forward(&x))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_spectral,
    bench_compressors,
    bench_chunked_and_2d,
    bench_huffman,
    bench_quantization,
    bench_analysis,
    bench_pipeline
);
criterion_main!(benches);
