//! Micro-benchmarks of every substrate the figures depend on: GEMM,
//! spectral-norm estimation, the three compressors (both directions),
//! weight quantization, bound evaluation, and pipeline planning.
//!
//! These measured numbers back the analytical throughput models in
//! DESIGN.md §3 (substitutions 3 and 4).
//!
//! The harness is hand-rolled (adaptive iteration count + median-of-runs
//! timing) so the workspace stays free of external dependencies; the
//! target is opt-in behind the `criterion` feature:
//!
//! ```sh
//! cargo bench -p errflow-bench --features criterion
//! ```

use errflow_compress::{Compressor, ErrorBound, MgardCompressor, SzCompressor, ZfpCompressor};
use errflow_core::{quantize_model, NetworkAnalysis};
use errflow_nn::{Activation, Mlp, Model};
use errflow_pipeline::{Planner, PlannerConfig};
use errflow_quant::QuantFormat;
use errflow_tensor::init;
use errflow_tensor::norms::Norm;
use errflow_tensor::rng::StdRng;
use errflow_tensor::spectral::{power_iteration, PowerIterationOpts};
use std::time::Instant;

/// How work is counted for the derived rate column.
enum Throughput {
    None,
    Bytes(u64),
    Elements(u64),
}

/// Times `f` with an adaptive iteration count and prints one result line.
fn bench<R>(name: &str, throughput: Throughput, mut f: impl FnMut() -> R) {
    // Warm up and size the batch to ~50 ms.
    let t0 = Instant::now();
    std::hint::black_box(f());
    let once = t0.elapsed().as_secs_f64().max(1e-9);
    let iters = ((0.05 / once) as usize).clamp(1, 10_000);
    // Median of 3 batches rejects scheduler noise.
    let mut samples = Vec::with_capacity(3);
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        samples.push(t.elapsed().as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let per_iter = samples[1];
    let rate = match throughput {
        Throughput::None => String::new(),
        Throughput::Bytes(b) => format!("  {:8.3} GB/s", b as f64 / per_iter / 1e9),
        Throughput::Elements(n) => format!("  {:8.2} Melem/s", n as f64 / per_iter / 1e6),
    };
    println!("{name:<44} {:>12.1} ns/iter{rate}", per_iter * 1e9);
}

fn smooth_payload(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let t = i as f32 / n as f32;
            (t * 14.0).sin() * 2.0 + 0.3 * (t * 90.0).cos()
        })
        .collect()
}

fn bench_gemm() {
    for n in [64usize, 128, 256] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = init::uniform(n, n, 1.0, &mut rng);
        let b = init::uniform(n, n, 1.0, &mut rng);
        bench(
            &format!("tensor/gemm/{n}x{n}"),
            Throughput::Elements((2 * n * n * n) as u64),
            || a.matmul(&b).unwrap(),
        );
    }
}

fn bench_spectral() {
    for n in [50usize, 200] {
        let mut rng = StdRng::seed_from_u64(2);
        let w = init::uniform(n, n, 1.0, &mut rng);
        bench(
            &format!("tensor/spectral_norm/power_iteration_{n}"),
            Throughput::None,
            || power_iteration(&w, PowerIterationOpts::default()).unwrap(),
        );
    }
}

fn bench_compressors() {
    let data = smooth_payload(65_536);
    let bound = ErrorBound::rel_linf(1e-4);
    let backends: Vec<Box<dyn Compressor>> = vec![
        Box::new(ZfpCompressor::default()),
        Box::new(SzCompressor::default()),
        Box::new(MgardCompressor::default()),
    ];
    let bytes = (data.len() * 4) as u64;
    for backend in &backends {
        bench(
            &format!("compress/{}/compress", backend.name()),
            Throughput::Bytes(bytes),
            || backend.compress(&data, &bound).unwrap(),
        );
        let stream = backend.compress(&data, &bound).unwrap();
        bench(
            &format!("compress/{}/decompress", backend.name()),
            Throughput::Bytes(bytes),
            || backend.decompress(&stream).unwrap(),
        );
    }
}

fn bench_chunked_and_2d() {
    use errflow_compress::chunked::ChunkedCompressor;
    use errflow_compress::sz2d::Sz2dCompressor;
    let data = smooth_payload(262_144);
    let bound = ErrorBound::abs_linf(1e-4);
    let bytes = (data.len() * 4) as u64;
    let chunked = ChunkedCompressor::new(SzCompressor::default());
    let stream = chunked.compress(&data, &bound).unwrap();
    bench(
        "compress/chunked_sz/decompress",
        Throughput::Bytes(bytes),
        || chunked.decompress(&stream).unwrap(),
    );
    let serial = ChunkedCompressor::new(SzCompressor::default()).with_threads(1);
    bench(
        "compress/chunked_sz/decompress_1thread",
        Throughput::Bytes(bytes),
        || serial.decompress(&stream).unwrap(),
    );
    let sz2d = Sz2dCompressor::new();
    let stream2d = sz2d.compress(&data, 512, 512, &bound).unwrap();
    bench("compress/sz2d/compress", Throughput::Bytes(bytes), || {
        sz2d.compress(&data, 512, 512, &bound).unwrap()
    });
    bench("compress/sz2d/decompress", Throughput::Bytes(bytes), || {
        sz2d.decompress(&stream2d).unwrap()
    });
}

fn bench_huffman() {
    use errflow_compress::huffman;
    let mut rng = StdRng::seed_from_u64(8);
    // Skewed alphabet typical of quantization codes.
    let symbols: Vec<u32> = (0..262_144)
        .map(|_| {
            if rng.gen_bool(0.9) {
                32768
            } else {
                32768 + rng.gen_range(-20i64..20) as u32
            }
        })
        .collect();
    let stream = huffman::encode(&symbols);
    let n = symbols.len() as u64;
    bench("compress/huffman/encode", Throughput::Elements(n), || {
        huffman::encode(&symbols)
    });
    bench("compress/huffman/decode", Throughput::Elements(n), || {
        huffman::decode(&stream).unwrap()
    });
}

fn bench_quantization() {
    let mut rng = StdRng::seed_from_u64(3);
    let w = init::uniform(256, 256, 0.5, &mut rng);
    for format in QuantFormat::REDUCED {
        bench(
            &format!("quant/quantize_matrix/{}", format.label()),
            Throughput::Elements((256 * 256) as u64),
            || format.quantize_matrix(&w),
        );
        bench(
            &format!("quant/step_size/{}", format.label()),
            Throughput::Elements((256 * 256) as u64),
            || format.step_size(&w),
        );
    }
}

fn bench_analysis() {
    let model = Mlp::new(
        &[13, 48, 48, 48, 48, 48, 48, 48, 48, 3],
        Activation::PRelu(0.25),
        Activation::Identity,
        4,
        None,
    );
    bench(
        "core/network_analysis/9_layer_mlp",
        Throughput::None,
        || NetworkAnalysis::of(&model),
    );
    let analysis = NetworkAnalysis::of(&model);
    bench("core/combined_bound", Throughput::None, || {
        analysis.combined_bound(1e-4, QuantFormat::Fp16)
    });
    bench("core/per_feature_bounds", Throughput::None, || {
        analysis.per_feature_bounds(1e-4, QuantFormat::Fp16)
    });
    bench("core/quantize_model/fp16", Throughput::None, || {
        quantize_model(&model, QuantFormat::Fp16)
    });
}

fn bench_pipeline() {
    let model = Mlp::new(
        &[9, 50, 50, 9],
        Activation::Tanh,
        Activation::Identity,
        5,
        None,
    );
    let mut rng = StdRng::seed_from_u64(6);
    let calibration: Vec<Vec<f32>> = (0..32)
        .map(|_| init::uniform_vec(9, 1.0, &mut rng))
        .collect();
    bench("pipeline/planner_new", Throughput::None, || {
        Planner::new(&model, &calibration)
    });
    let planner = Planner::new(&model, &calibration);
    bench("pipeline/plan", Throughput::None, || {
        planner.plan(&PlannerConfig {
            rel_tolerance: 1e-3,
            norm: Norm::LInf,
            quant_share: 0.5,
        })
    });
    let x = init::uniform_vec(9, 1.0, &mut rng);
    bench("pipeline/forward/h2_mlp", Throughput::None, || {
        model.forward(&x)
    });
}

fn main() {
    println!("{:<44} {:>20}", "benchmark", "median");
    bench_gemm();
    bench_spectral();
    bench_compressors();
    bench_chunked_and_2d();
    bench_huffman();
    bench_quantization();
    bench_analysis();
    bench_pipeline();
}
