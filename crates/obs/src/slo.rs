//! Declarative service-level objectives over the telemetry plane.
//!
//! An [`Objective`] names a signal (a retained time series or a pair of
//! registry counters) and a threshold; the [`SloEngine`] evaluates all
//! objectives on each telemetry tick into [`SloState`]s with
//! **hysteresis**: the published state only changes after
//! [`Objective::hysteresis`] consecutive ticks agree on the new raw
//! verdict, so a single noisy sample cannot flap a badge.  Between `Ok`
//! and `Breach` sits `Warn`, entered when the signal crosses
//! `warn_ratio` × threshold (on the breaching side).
//!
//! Objective kinds map onto the serve path's four canonical health
//! questions:
//! - [`SloKind::P99Ceiling`] — "is stage latency under its ceiling?"
//!   (reads the `<series>.p99` tier-0 window's max),
//! - [`SloKind::RatioFloor`] — "are enough requests certified?"
//!   (cumulative `num / (num + den)` from two registry counters, e.g.
//!   `serve.bound_pass` vs `serve.bound_fail`),
//! - [`SloKind::RatioBudget`] — "are rejections inside budget?"
//!   (same ratio, breach when *above* the budget),
//! - [`SloKind::RateFloor`] — "is decode throughput above its floor?"
//!   (reads a rate series' recent mean, e.g. decoded bytes/s).
//!
//! No data is vacuously `Ok`: a floor on a ratio whose denominator is
//! zero, or a ceiling on a series with no points, reports `Ok` rather
//! than `Breach` — an idle server is healthy, not failing.
//!
//! The engine holds no locks of its own beyond its global registration
//! ([`global`]); evaluation reads a [`Sampler`] the caller already
//! locked, and cumulative counters via lock-free handles.

use crate::lock_recover;
use crate::registry;
use crate::timeseries::Sampler;
use std::sync::{Mutex, OnceLock};

/// What an objective measures and the threshold it is judged against.
#[derive(Debug, Clone, PartialEq)]
pub enum SloKind {
    /// Max of the last `window` tier-0 points of `series` must stay
    /// `< ceiling`.
    P99Ceiling {
        /// Retained series name (typically `<hist>.p99`, in the
        /// histogram's native unit).
        series: String,
        /// Exclusive upper bound in the series' unit.
        ceiling: f64,
        /// How many recent base-tier points to consider.
        window: usize,
    },
    /// Cumulative `num / (num + den)` must stay `>= floor`.
    RatioFloor {
        /// Registry counter of successes.
        num: String,
        /// Registry counter of failures.
        den: String,
        /// Inclusive lower bound on the success ratio.
        floor: f64,
    },
    /// Cumulative `num / (num + den)` must stay `<= budget`.
    RatioBudget {
        /// Registry counter of budget-consuming events (e.g. rejections).
        num: String,
        /// Registry counter of the complementary events (e.g. accepted).
        den: String,
        /// Inclusive upper bound on the event ratio.
        budget: f64,
    },
    /// Mean of the last `window` tier-0 points of `series` must stay
    /// `>= floor`.
    RateFloor {
        /// Retained series name (typically a counter's rate series).
        series: String,
        /// Inclusive lower bound in the series' unit per second.
        floor: f64,
        /// How many recent base-tier points to consider.
        window: usize,
    },
}

/// One declarative objective.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    /// Stable identifier shown on dashboards and the health frame.
    pub name: String,
    /// Signal and threshold.
    pub kind: SloKind,
    /// Fraction of the threshold at which `Warn` begins (e.g. `0.8`
    /// warns a ceiling at 80% of it, a floor at 1/0.8 = 125% … of the
    /// margin side). Clamped to `(0, 1]`.
    pub warn_ratio: f64,
    /// Consecutive ticks a *changed* raw verdict must persist before the
    /// published state moves (≥ 1).
    pub hysteresis: u32,
}

impl Objective {
    /// Convenience constructor with the default warn ratio (0.8) and
    /// hysteresis (3 ticks).
    pub fn new(name: &str, kind: SloKind) -> Self {
        Objective {
            name: name.to_string(),
            kind,
            warn_ratio: 0.8,
            hysteresis: 3,
        }
    }
}

/// Published health state of one objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloState {
    /// Signal comfortably inside the objective.
    Ok,
    /// Signal inside the objective but past the warn fraction.
    Warn,
    /// Objective violated.
    Breach,
}

impl SloState {
    /// Wire encoding (0 = ok, 1 = warn, 2 = breach).
    pub fn code(self) -> u8 {
        match self {
            SloState::Ok => 0,
            SloState::Warn => 1,
            SloState::Breach => 2,
        }
    }

    /// Inverse of [`SloState::code`]; unknown codes read as `Breach`
    /// (fail loud on protocol skew).
    pub fn from_code(c: u8) -> SloState {
        match c {
            0 => SloState::Ok,
            1 => SloState::Warn,
            _ => SloState::Breach,
        }
    }
}

/// Evaluated status of one objective, as published to dashboards and the
/// EFNP health frame.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// Objective name.
    pub name: String,
    /// Hysteresis-filtered state.
    pub state: SloState,
    /// Last measured signal value (0 when no data).
    pub value: f64,
    /// The objective's threshold, for display.
    pub threshold: f64,
}

#[derive(Debug)]
struct Tracked {
    obj: Objective,
    published: SloState,
    candidate: SloState,
    streak: u32,
    last_value: f64,
}

/// Evaluates a set of [`Objective`]s against the telemetry plane (module
/// docs describe semantics and hysteresis).
#[derive(Debug, Default)]
pub struct SloEngine {
    tracked: Vec<Tracked>,
}

impl SloEngine {
    /// Creates an engine tracking `objectives`.
    pub fn new(objectives: Vec<Objective>) -> Self {
        SloEngine {
            tracked: objectives
                .into_iter()
                .map(|obj| Tracked {
                    obj,
                    published: SloState::Ok,
                    candidate: SloState::Ok,
                    streak: 0,
                    last_value: 0.0,
                })
                .collect(),
        }
    }

    /// Replaces the tracked objectives (resets all hysteresis state).
    pub fn install(&mut self, objectives: Vec<Objective>) {
        *self = SloEngine::new(objectives);
    }

    /// Number of tracked objectives.
    pub fn len(&self) -> usize {
        self.tracked.len()
    }

    /// Whether no objectives are tracked.
    pub fn is_empty(&self) -> bool {
        self.tracked.is_empty()
    }

    /// Evaluates every objective against `sampler` (already locked by
    /// the caller) and cumulative registry counters, advancing hysteresis
    /// by one tick.
    pub fn evaluate(&mut self, sampler: &Sampler) {
        for t in &mut self.tracked {
            let (raw, value) = raw_verdict(&t.obj, sampler);
            t.last_value = value;
            if raw == t.published {
                // Signal agrees with what we publish: cancel any pending
                // transition.
                t.candidate = raw;
                t.streak = 0;
                continue;
            }
            if raw == t.candidate {
                t.streak += 1;
            } else {
                t.candidate = raw;
                t.streak = 1;
            }
            if t.streak >= t.obj.hysteresis.max(1) {
                t.published = raw;
                t.streak = 0;
            }
        }
    }

    /// Current hysteresis-filtered statuses, in objective order.
    pub fn statuses(&self) -> Vec<SloStatus> {
        self.tracked
            .iter()
            .map(|t| SloStatus {
                name: t.obj.name.clone(),
                state: t.published,
                value: t.last_value,
                threshold: threshold_of(&t.obj.kind),
            })
            .collect()
    }

    /// Renders statuses as a JSON array:
    /// `[{"name":..,"state":"ok|warn|breach","value":..,"threshold":..}]`.
    pub fn export_json(&self) -> String {
        let mut out = String::from("[");
        for (i, s) in self.statuses().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let state = match s.state {
                SloState::Ok => "ok",
                SloState::Warn => "warn",
                SloState::Breach => "breach",
            };
            let num = |v: f64| {
                if v.is_finite() {
                    format!("{v}")
                } else {
                    "null".to_string()
                }
            };
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"state\":\"{state}\",\"value\":{},\"threshold\":{}}}",
                s.name,
                num(s.value),
                num(s.threshold)
            ));
        }
        out.push(']');
        out
    }
}

fn threshold_of(kind: &SloKind) -> f64 {
    match kind {
        SloKind::P99Ceiling { ceiling, .. } => *ceiling,
        SloKind::RatioFloor { floor, .. } => *floor,
        SloKind::RatioBudget { budget, .. } => *budget,
        SloKind::RateFloor { floor, .. } => *floor,
    }
}

/// Measures one objective's signal and classifies it (no hysteresis).
fn raw_verdict(obj: &Objective, sampler: &Sampler) -> (SloState, f64) {
    let warn = obj.warn_ratio.clamp(1e-6, 1.0);
    match &obj.kind {
        SloKind::P99Ceiling {
            series,
            ceiling,
            window,
        } => match sampler.recent_max(series, (*window).max(1)) {
            None => (SloState::Ok, 0.0),
            Some(v) => {
                let state = if v >= *ceiling {
                    SloState::Breach
                } else if v >= ceiling * warn {
                    SloState::Warn
                } else {
                    SloState::Ok
                };
                (state, v)
            }
        },
        SloKind::RatioFloor { num, den, floor } => {
            let n = registry::counter(num).get() as f64;
            let d = registry::counter(den).get() as f64;
            if n + d == 0.0 {
                return (SloState::Ok, 0.0);
            }
            let ratio = n / (n + d);
            // Warn band sits between the floor and the floor plus a
            // `1 - warn` fraction of the remaining headroom.
            let warn_at = floor + (1.0 - floor) * (1.0 - warn);
            let state = if ratio < *floor {
                SloState::Breach
            } else if ratio < warn_at {
                SloState::Warn
            } else {
                SloState::Ok
            };
            (state, ratio)
        }
        SloKind::RatioBudget { num, den, budget } => {
            let n = registry::counter(num).get() as f64;
            let d = registry::counter(den).get() as f64;
            if n + d == 0.0 {
                return (SloState::Ok, 0.0);
            }
            let ratio = n / (n + d);
            let state = if ratio > *budget {
                SloState::Breach
            } else if ratio > budget * warn {
                SloState::Warn
            } else {
                SloState::Ok
            };
            (state, ratio)
        }
        SloKind::RateFloor {
            series,
            floor,
            window,
        } => match sampler.recent_mean(series, (*window).max(1)) {
            None => (SloState::Ok, 0.0),
            Some(v) => {
                let state = if v < *floor {
                    SloState::Breach
                } else if v < floor / warn {
                    SloState::Warn
                } else {
                    SloState::Ok
                };
                (state, v)
            }
        },
    }
}

/// The process-wide SLO engine the telemetry tick evaluates and the
/// health frame reads.  Starts empty; the serve layer installs its
/// default objectives when telemetry starts.
pub fn global() -> &'static Mutex<SloEngine> {
    static GLOBAL: OnceLock<Mutex<SloEngine>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(SloEngine::default()))
}

/// Convenience: snapshot the global engine's statuses.
pub fn global_statuses() -> Vec<SloStatus> {
    let engine = global();
    lock_recover(engine).statuses()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricSnapshot;
    use crate::timeseries::TierSpec;

    fn sampler_gauge(series: &str, values: &[i64]) -> Sampler {
        let mut s = Sampler::new(&[TierSpec {
            step_ms: 1000,
            len: 64,
        }]);
        for (k, &v) in values.iter().enumerate() {
            s.tick_with(
                1_000 * (k as u64 + 1),
                &[(series.to_string(), MetricSnapshot::Gauge(v))],
            );
        }
        s
    }

    #[test]
    fn empty_series_is_vacuously_ok() {
        let s = Sampler::default();
        let mut e = SloEngine::new(vec![Objective::new(
            "lat",
            SloKind::P99Ceiling {
                series: "missing.p99".into(),
                ceiling: 100.0,
                window: 10,
            },
        )]);
        e.evaluate(&s);
        assert_eq!(e.statuses()[0].state, SloState::Ok);
    }

    #[test]
    fn ceiling_breach_requires_hysteresis_streak() {
        let mut obj = Objective::new(
            "lat",
            SloKind::P99Ceiling {
                series: "g".into(),
                ceiling: 100.0,
                window: 1,
            },
        );
        obj.hysteresis = 3;
        let mut e = SloEngine::new(vec![obj]);
        // Two breaching ticks: still published Ok.
        let s = sampler_gauge("g", &[500]);
        e.evaluate(&s);
        e.evaluate(&s);
        assert_eq!(e.statuses()[0].state, SloState::Ok, "needs 3 ticks");
        // Third consecutive breach flips the published state.
        e.evaluate(&s);
        assert_eq!(e.statuses()[0].state, SloState::Breach);
        // Recovery also needs a streak: one healthy tick is not enough.
        let healthy = sampler_gauge("g", &[10]);
        e.evaluate(&healthy);
        assert_eq!(e.statuses()[0].state, SloState::Breach);
        e.evaluate(&healthy);
        e.evaluate(&healthy);
        assert_eq!(e.statuses()[0].state, SloState::Ok);
    }

    #[test]
    fn flapping_signal_does_not_flip_state() {
        let mut obj = Objective::new(
            "lat",
            SloKind::P99Ceiling {
                series: "g".into(),
                ceiling: 100.0,
                window: 1,
            },
        );
        obj.hysteresis = 2;
        let mut e = SloEngine::new(vec![obj]);
        let bad = sampler_gauge("g", &[500]);
        let good = sampler_gauge("g", &[10]);
        for _ in 0..5 {
            e.evaluate(&bad);
            e.evaluate(&good);
        }
        assert_eq!(
            e.statuses()[0].state,
            SloState::Ok,
            "alternating verdicts never accumulate a streak"
        );
    }

    #[test]
    fn warn_band_sits_below_ceiling() {
        let mut obj = Objective::new(
            "lat",
            SloKind::P99Ceiling {
                series: "g".into(),
                ceiling: 100.0,
                window: 1,
            },
        );
        obj.warn_ratio = 0.8;
        obj.hysteresis = 1;
        let mut e = SloEngine::new(vec![obj]);
        e.evaluate(&sampler_gauge("g", &[85]));
        assert_eq!(e.statuses()[0].state, SloState::Warn);
        let v = e.statuses()[0].value;
        assert!((v - 85.0).abs() < 1e-9, "{v}");
    }

    #[test]
    fn ratio_floor_and_budget_read_registry_counters() {
        registry::counter("test.slo.pass").add(999);
        registry::counter("test.slo.fail").add(1);
        registry::counter("test.slo.rej").add(10);
        registry::counter("test.slo.acc").add(90);
        let s = Sampler::default();
        let mut floor = Objective::new(
            "cert",
            SloKind::RatioFloor {
                num: "test.slo.pass".into(),
                den: "test.slo.fail".into(),
                floor: 0.99,
            },
        );
        floor.hysteresis = 1;
        let mut budget = Objective::new(
            "rej",
            SloKind::RatioBudget {
                num: "test.slo.rej".into(),
                den: "test.slo.acc".into(),
                budget: 0.05,
            },
        );
        budget.hysteresis = 1;
        let mut e = SloEngine::new(vec![floor, budget]);
        e.evaluate(&s);
        let st = e.statuses();
        assert_eq!(st[0].state, SloState::Ok, "{st:?}");
        assert!((st[0].value - 0.999).abs() < 1e-9);
        assert_eq!(st[1].state, SloState::Breach, "10% rejections > 5%");
        assert!((st[1].value - 0.10).abs() < 1e-9);
    }

    #[test]
    fn zero_denominator_ratios_are_ok() {
        let s = Sampler::default();
        let mut obj = Objective::new(
            "cert",
            SloKind::RatioFloor {
                num: "test.slo.none.a".into(),
                den: "test.slo.none.b".into(),
                floor: 0.999,
            },
        );
        obj.hysteresis = 1;
        let mut e = SloEngine::new(vec![obj]);
        e.evaluate(&s);
        assert_eq!(e.statuses()[0].state, SloState::Ok, "idle is healthy");
    }

    #[test]
    fn rate_floor_uses_recent_mean() {
        let mut obj = Objective::new(
            "decode",
            SloKind::RateFloor {
                series: "g".into(),
                floor: 100.0,
                window: 4,
            },
        );
        obj.hysteresis = 1;
        let mut e = SloEngine::new(vec![obj]);
        e.evaluate(&sampler_gauge("g", &[50, 60, 70]));
        assert_eq!(e.statuses()[0].state, SloState::Breach);
        e.install(vec![{
            let mut o = Objective::new(
                "decode",
                SloKind::RateFloor {
                    series: "g".into(),
                    floor: 100.0,
                    window: 4,
                },
            );
            o.hysteresis = 1;
            o
        }]);
        e.evaluate(&sampler_gauge("g", &[500, 600, 700]));
        assert_eq!(e.statuses()[0].state, SloState::Ok);
    }

    #[test]
    fn export_json_is_balanced() {
        let mut obj = Objective::new(
            "lat",
            SloKind::P99Ceiling {
                series: "g".into(),
                ceiling: 100.0,
                window: 1,
            },
        );
        obj.hysteresis = 1;
        let mut e = SloEngine::new(vec![obj]);
        e.evaluate(&sampler_gauge("g", &[42]));
        let j = e.export_json();
        assert!(j.contains("\"name\":\"lat\""), "{j}");
        assert!(j.contains("\"state\":\"ok\""), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn state_codes_roundtrip() {
        for s in [SloState::Ok, SloState::Warn, SloState::Breach] {
            assert_eq!(SloState::from_code(s.code()), s);
        }
        assert_eq!(SloState::from_code(200), SloState::Breach);
    }
}
