//! Process-wide metrics registry.
//!
//! Metrics are registered once by name (`"serve.submitted"`) and then
//! updated through lock-free handles — [`counter`] / [`gauge`] /
//! [`histogram`] take a registry lock only on the first lookup of a name;
//! the returned handle is an `Arc`'d atomic the hot path bumps with
//! relaxed ordering.  Names use dot-separated segments; exposition
//! sanitises them per target format.
//!
//! Registry metrics are **process totals**: two servers in one process
//! share `"serve.submitted"`.  Components that need per-instance numbers
//! (the serve stats surface, whose tests construct many servers) keep an
//! instance-local handle and mirror into the registry via
//! [`ScopedCounter`].
//!
//! Exposition:
//! - [`export_prometheus`]: Prometheus text format (`errflow_` prefix,
//!   histograms as cumulative `_bucket{le=...}` series plus `_sum`/`_count`).
//! - [`export_json`]: one JSON object with `counters`, `gauges`, and
//!   `histograms` (count/sum/min/max/p50/p99) — hand-rolled, the workspace
//!   carries no serialization dependency.

use crate::hist::{Log2Histogram, BUCKETS};
use crate::lock_recover;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter handle.  Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A detached counter (not registered under any name) — useful for
    /// per-instance stats that are mirrored rather than registered.
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge handle (signed, set/add semantics).  Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A per-instance counter that mirrors every update into a named
/// process-wide registry counter.  [`ScopedCounter::get`] reads the
/// instance value (isolated from other instances); the registry name
/// accumulates the process total for exposition.
#[derive(Debug)]
pub struct ScopedCounter {
    local: Counter,
    global: Counter,
}

impl ScopedCounter {
    /// Creates a fresh instance counter mirroring into `global_name`.
    pub fn new(global_name: &str) -> Self {
        ScopedCounter {
            local: Counter::detached(),
            global: counter(global_name),
        }
    }

    /// Adds 1 to both the instance counter and the process total.
    #[inline]
    pub fn inc(&self) {
        self.local.inc();
        self.global.inc();
    }

    /// Adds `n` to both the instance counter and the process total.
    #[inline]
    pub fn add(&self, n: u64) {
        self.local.add(n);
        self.global.add(n);
    }

    /// The instance-local value (since this `ScopedCounter` was created).
    #[inline]
    pub fn get(&self) -> u64 {
        self.local.get()
    }
}

enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<Log2Histogram>),
}

fn registry() -> &'static Mutex<BTreeMap<String, Slot>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Slot>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Gets or registers the process-wide counter `name`.  If `name` is
/// already registered as a different metric kind, a detached handle is
/// returned instead (the existing metric keeps its kind; nothing panics
/// on a hot path).
pub fn counter(name: &str) -> Counter {
    let mut reg = lock_recover(registry());
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Slot::Counter(Arc::new(AtomicU64::new(0))))
    {
        Slot::Counter(cell) => Counter {
            cell: Arc::clone(cell),
        },
        _ => Counter::detached(),
    }
}

/// Gets or registers the process-wide gauge `name` (kind-mismatch policy
/// as in [`counter`]).
pub fn gauge(name: &str) -> Gauge {
    let mut reg = lock_recover(registry());
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Slot::Gauge(Arc::new(AtomicI64::new(0))))
    {
        Slot::Gauge(cell) => Gauge {
            cell: Arc::clone(cell),
        },
        _ => Gauge::default(),
    }
}

/// Gets or registers the process-wide histogram `name` (kind-mismatch
/// policy as in [`counter`]).
pub fn histogram(name: &str) -> Arc<Log2Histogram> {
    let mut reg = lock_recover(registry());
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Slot::Histogram(Arc::new(Log2Histogram::new())))
    {
        Slot::Histogram(h) => Arc::clone(h),
        _ => Arc::new(Log2Histogram::new()),
    }
}

/// Point-in-time copy of one histogram's aggregates and bucket counts.
#[derive(Debug, Clone)]
pub struct HistSnapshot {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of recorded observations.
    pub sum: u64,
    /// Per-bucket counts (bucket *i* covers `[2^i, 2^(i+1))`).
    pub buckets: [u64; BUCKETS],
}

/// Point-in-time copy of one registered metric's value.
#[derive(Debug, Clone)]
pub enum MetricSnapshot {
    /// A monotone counter's current total.
    Counter(u64),
    /// A gauge's current value.
    Gauge(i64),
    /// A histogram's aggregates and bucket counts.
    Histogram(HistSnapshot),
}

/// Copies every registered metric into an owned, name-sorted vector.
/// This is the read surface the time-series sampler diffs against on
/// every tick — one registry lock per tick, no handles retained.
pub fn snapshot_all() -> Vec<(String, MetricSnapshot)> {
    let reg = lock_recover(registry());
    reg.iter()
        .map(|(name, slot)| {
            let snap = match slot {
                Slot::Counter(c) => MetricSnapshot::Counter(c.load(Ordering::Relaxed)),
                Slot::Gauge(g) => MetricSnapshot::Gauge(g.load(Ordering::Relaxed)),
                Slot::Histogram(h) => MetricSnapshot::Histogram(HistSnapshot {
                    count: h.count(),
                    sum: h.sum(),
                    buckets: h.buckets(),
                }),
            };
            (name.clone(), snap)
        })
        .collect()
}

/// Sanitises a dotted metric name into a Prometheus metric name.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("errflow_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders every registered metric in the Prometheus text exposition
/// format.  Histograms are rendered as cumulative `_bucket{le="..."}`
/// series over the log₂ grid plus `_sum` and `_count`.  Every metric
/// carries a `# HELP` / `# TYPE` pair (exposition-format conformance —
/// the help string echoes the registry's dotted source name).
pub fn export_prometheus() -> String {
    let reg = lock_recover(registry());
    let mut out = String::new();
    for (name, slot) in reg.iter() {
        let p = prom_name(name);
        out.push_str(&format!("# HELP {p} errflow metric {name}\n"));
        match slot {
            Slot::Counter(c) => {
                out.push_str(&format!("# TYPE {p} counter\n"));
                out.push_str(&format!("{p} {}\n", c.load(Ordering::Relaxed)));
            }
            Slot::Gauge(g) => {
                out.push_str(&format!("# TYPE {p} gauge\n"));
                out.push_str(&format!("{p} {}\n", g.load(Ordering::Relaxed)));
            }
            Slot::Histogram(h) => {
                out.push_str(&format!("# TYPE {p} histogram\n"));
                let buckets = h.buckets();
                let mut cum = 0u64;
                for (i, count) in buckets.iter().enumerate() {
                    cum += count;
                    if *count > 0 {
                        // Upper bound of bucket i is 2^(i+1) (exclusive);
                        // Prometheus `le` is inclusive, so report 2^(i+1)-1.
                        let le = if i >= 63 {
                            u64::MAX
                        } else {
                            (1u64 << (i + 1)) - 1
                        };
                        out.push_str(&format!("{p}_bucket{{le=\"{le}\"}} {cum}\n"));
                    }
                }
                out.push_str(&format!("{p}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
                out.push_str(&format!("{p}_sum {}\n", h.sum()));
                out.push_str(&format!("{p}_count {}\n", h.count()));
            }
        }
    }
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Renders every registered metric as one JSON object:
/// `{"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,max,p50,p99}}}`.
pub fn export_json() -> String {
    let reg = lock_recover(registry());
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut hists = Vec::new();
    for (name, slot) in reg.iter() {
        match slot {
            Slot::Counter(c) => {
                counters.push(format!("\"{name}\":{}", c.load(Ordering::Relaxed)));
            }
            Slot::Gauge(g) => gauges.push(format!("\"{name}\":{}", g.load(Ordering::Relaxed))),
            Slot::Histogram(h) => {
                let count = h.count();
                let (min, max) = if count == 0 {
                    (0, 0)
                } else {
                    (h.min(), h.max())
                };
                hists.push(format!(
                    "\"{name}\":{{\"count\":{count},\"sum\":{},\"min\":{min},\"max\":{max},\"p50\":{},\"p99\":{}}}",
                    h.sum(),
                    json_num(h.quantile(0.50)),
                    json_num(h.quantile(0.99)),
                ));
            }
        }
    }
    format!(
        "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
        counters.join(","),
        gauges.join(","),
        hists.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip_and_sharing() {
        let a = counter("test.registry.counter_roundtrip");
        let b = counter("test.registry.counter_roundtrip");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5, "same name shares one cell");
        assert_eq!(b.get(), 5);
    }

    #[test]
    fn gauge_set_and_add() {
        let g = gauge("test.registry.gauge");
        g.set(10);
        g.add(-3);
        assert_eq!(gauge("test.registry.gauge").get(), 7);
    }

    #[test]
    fn histogram_is_shared_by_name() {
        let h1 = histogram("test.registry.hist");
        let h2 = histogram("test.registry.hist");
        h1.record(100);
        assert_eq!(h2.count(), 1);
    }

    #[test]
    fn kind_mismatch_returns_detached_handle() {
        counter("test.registry.kinded");
        let g = gauge("test.registry.kinded");
        g.set(99);
        // The counter keeps its identity; the mismatched gauge is detached.
        assert_eq!(counter("test.registry.kinded").get(), 0);
        assert_eq!(g.get(), 99);
    }

    #[test]
    fn scoped_counter_isolates_instances_and_mirrors_total() {
        let total = counter("test.registry.scoped.total");
        let a = ScopedCounter::new("test.registry.scoped.total");
        let b = ScopedCounter::new("test.registry.scoped.total");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 3, "instance A sees only its own bumps");
        assert_eq!(b.get(), 1);
        assert_eq!(total.get(), 4, "registry sees the process total");
    }

    #[test]
    fn prometheus_exposition_contains_registered_metrics() {
        counter("test.prom.requests").add(7);
        gauge("test.prom.depth").set(3);
        histogram("test.prom.latency").record(1500);
        let text = export_prometheus();
        assert!(text.contains("# TYPE errflow_test_prom_requests counter"));
        assert!(text.contains("errflow_test_prom_requests 7"));
        assert!(text.contains("errflow_test_prom_depth 3"));
        assert!(text.contains("# TYPE errflow_test_prom_latency histogram"));
        assert!(text.contains("errflow_test_prom_latency_count 1"));
        assert!(text.contains("errflow_test_prom_latency_bucket{le=\"+Inf\"} 1"));
        // 1500 lands in bucket 10 ([1024, 2048)), le = 2047.
        assert!(text.contains("errflow_test_prom_latency_bucket{le=\"2047\"} 1"));
    }

    #[test]
    fn prometheus_exposition_pairs_help_with_type() {
        counter("test.prom.helped").inc();
        let text = export_prometheus();
        assert!(text.contains("# HELP errflow_test_prom_helped errflow metric test.prom.helped"));
        // Every TYPE line has a HELP line and vice versa.
        let helps = text.matches("# HELP ").count();
        let types = text.matches("# TYPE ").count();
        assert_eq!(helps, types, "{text}");
    }

    #[test]
    fn snapshot_all_reflects_registered_values() {
        counter("test.snap.c").add(9);
        gauge("test.snap.g").set(-4);
        histogram("test.snap.h").record(1000);
        let snap = snapshot_all();
        let get = |n: &str| {
            snap.iter()
                .find(|(name, _)| name == n)
                .map(|(_, v)| v.clone())
        };
        match get("test.snap.c") {
            Some(MetricSnapshot::Counter(v)) => assert_eq!(v, 9),
            other => panic!("unexpected {other:?}"),
        }
        match get("test.snap.g") {
            Some(MetricSnapshot::Gauge(v)) => assert_eq!(v, -4),
            other => panic!("unexpected {other:?}"),
        }
        match get("test.snap.h") {
            Some(MetricSnapshot::Histogram(h)) => {
                assert_eq!(h.count, 1);
                assert_eq!(h.sum, 1000);
                assert_eq!(h.buckets[9], 1, "1000 lands in [512, 1024)");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Name-sorted, as documented.
        let names: Vec<_> = snap.iter().map(|(n, _)| n.clone()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn json_exposition_is_balanced_and_contains_metrics() {
        counter("test.json.c").inc();
        histogram("test.json.h").record(42);
        let j = export_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"test.json.c\":1"), "{j}");
        assert!(j.contains("\"test.json.h\":{\"count\":1"), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
