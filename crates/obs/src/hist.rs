//! Fixed-size log₂-bucket histograms.
//!
//! [`Log2Histogram`] records unsigned integer observations into 64
//! power-of-two buckets (bucket *i* covers `[2^i, 2^(i+1))`), so it needs
//! no allocation, no lock, and covers the full `u64` range in constant
//! space.  Quantiles walk the cumulative counts and interpolate linearly
//! inside the target bucket, so ranks that land in the same bucket still
//! produce distinct estimates; worst-case error stays bounded by the 2×
//! bucket width.
//!
//! [`LatencyHistogram`] is the latency-flavoured wrapper the serve layer
//! uses (observations are `Duration`s recorded in nanoseconds, summaries
//! in microseconds).  Both types [`merge`](Log2Histogram::merge) so
//! multi-worker histograms aggregate into one summary.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two buckets (covers the full `u64` range).
pub const BUCKETS: usize = 64;

/// A fixed-size concurrent histogram of `u64` observations on a log₂
/// bucket grid.  All operations are relaxed atomics — safe to record from
/// any thread, cheap enough for hot paths.
#[derive(Debug)]
pub struct Log2Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        // `const` so histograms can live in statics (the registry keeps
        // them behind `Arc`, but e.g. per-stage arrays are plain fields).
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Log2Histogram {
            buckets: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.  Zero is clamped to 1 so it lands in
    /// bucket 0 rather than underflowing the log.
    pub fn record(&self, value: u64) {
        let v = value.max(1);
        let bucket = (63 - v.leading_zeros()) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded observations (after zero-clamping).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded observation, or `u64::MAX` when empty.
    pub fn min(&self) -> u64 {
        self.min.load(Ordering::Relaxed)
    }

    /// Largest recorded observation, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the per-bucket counts (bucket *i* covers
    /// `[2^i, 2^(i+1))`).
    pub fn buckets(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Folds `other`'s observations into `self`: bucket counts, count and
    /// sum add; min/max combine.  After the merge, `self` summarises the
    /// union of both recording streams — the aggregation primitive for
    /// per-worker histograms.
    pub fn merge(&self, other: &Log2Histogram) {
        for i in 0..BUCKETS {
            let c = other.buckets[i].load(Ordering::Relaxed);
            if c > 0 {
                self.buckets[i].fetch_add(c, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Approximate `q`-quantile with within-bucket linear interpolation
    /// (see [`quantile_from_buckets`]).
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_from_buckets(&self.buckets(), q)
    }
}

/// Approximate `q`-quantile of a log₂ bucket-count array (bucket *i*
/// covers `[2^i, 2^(i+1))`).
///
/// The target rank is located by walking cumulative counts; within the
/// target bucket the estimate interpolates linearly between the bucket's
/// bounds, placing rank *k* of *c* in-bucket observations at fraction
/// `(k − ½) / c` of the width.  Distinct ranks inside one bucket therefore
/// yield distinct estimates (p50 ≠ p99 on any spread distribution), and a
/// single-observation bucket reports its midpoint rather than an edge.
/// Also the quantile estimator the sampler applies to per-interval bucket
/// *deltas*, where no `Log2Histogram` instance exists.
pub fn quantile_from_buckets(buckets: &[u64; BUCKETS], q: f64) -> f64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let rank = (q * total as f64).ceil().max(1.0) as u64;
    let mut cum = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        if c > 0 && cum + c >= rank {
            let lo = 2f64.powi(i as i32);
            let frac = (((rank - cum) as f64 - 0.5) / c as f64).clamp(0.0, 1.0);
            return lo * (1.0 + frac);
        }
        cum += c;
    }
    2f64.powi(BUCKETS as i32 - 1)
}

/// Snapshot of a latency distribution, in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Number of observations.
    pub count: u64,
    /// Smallest observed latency.
    pub min_us: f64,
    /// Largest observed latency.
    pub max_us: f64,
    /// Arithmetic mean.
    pub mean_us: f64,
    /// Median (histogram-approximate).
    pub p50_us: f64,
    /// 99th percentile (histogram-approximate).
    pub p99_us: f64,
}

/// A [`Log2Histogram`] of latencies recorded in nanoseconds and
/// summarised in microseconds — the histogram behind `Server::stats`.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    inner: Log2Histogram,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        LatencyHistogram {
            inner: Log2Histogram::new(),
        }
    }

    /// Records one latency observation.
    pub fn record(&self, latency: Duration) {
        self.inner.record(latency.as_nanos() as u64);
    }

    /// Records one latency observation given in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.inner.record(ns);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// Point-in-time copy of the per-bucket counts (bucket *i* covers
    /// `[2^i, 2^(i+1))` nanoseconds).
    pub fn buckets(&self) -> [u64; BUCKETS] {
        self.inner.buckets()
    }

    /// Folds `other`'s observations into `self` (see
    /// [`Log2Histogram::merge`]) so per-worker latency histograms can be
    /// aggregated into one summary.
    pub fn merge(&self, other: &LatencyHistogram) {
        self.inner.merge(&other.inner);
    }

    /// The underlying unit-agnostic histogram.
    pub fn as_log2(&self) -> &Log2Histogram {
        &self.inner
    }

    /// Point-in-time summary of the recorded distribution.
    pub fn summary(&self) -> LatencySummary {
        let count = self.inner.count();
        if count == 0 {
            return LatencySummary::default();
        }
        LatencySummary {
            count,
            min_us: self.inner.min() as f64 / 1e3,
            max_us: self.inner.max() as f64 / 1e3,
            mean_us: self.inner.sum() as f64 / count as f64 / 1e3,
            p50_us: self.inner.quantile(0.50) / 1e3,
            p99_us: self.inner.quantile(0.99) / 1e3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_summarises_to_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.summary(), LatencySummary::default());
        assert_eq!(h.buckets(), [0; BUCKETS]);
    }

    #[test]
    fn records_land_in_log2_buckets() {
        let h = Log2Histogram::new();
        h.record(0); // clamps to 1 → bucket 0
        h.record(1);
        h.record(7); // bucket 2
        h.record(8); // bucket 3
        let b = h.buckets();
        assert_eq!(b[0], 2);
        assert_eq!(b[2], 1);
        assert_eq!(b[3], 1);
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 8);
    }

    #[test]
    fn merged_quantiles_match_single_combined_histogram() {
        // Two workers record disjoint halves of a distribution; merging
        // their histograms must reproduce exactly the histogram that
        // recorded everything — buckets, count, sum, min, max, and hence
        // every quantile.
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let combined = LatencyHistogram::new();
        let mut ns = 17u64;
        for i in 0..2000u64 {
            // A deterministic spread over ~6 decades.
            ns = ns
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = 50 + ns % (10_000_000 * (1 + i % 7));
            if i % 2 == 0 {
                a.record_ns(v);
            } else {
                b.record_ns(v);
            }
            combined.record_ns(v);
        }
        a.merge(&b);
        assert_eq!(a.buckets(), combined.buckets());
        let (ma, mc) = (a.summary(), combined.summary());
        assert_eq!(ma.count, mc.count);
        assert_eq!(ma.p50_us, mc.p50_us, "{ma:?} vs {mc:?}");
        assert_eq!(ma.p99_us, mc.p99_us);
        assert_eq!(ma.min_us, mc.min_us);
        assert_eq!(ma.max_us, mc.max_us);
        assert!((ma.mean_us - mc.mean_us).abs() < 1e-9);
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.as_log2().quantile(q), combined.as_log2().quantile(q));
        }
    }

    #[test]
    fn merge_into_empty_is_identity() {
        let src = Log2Histogram::new();
        for v in [3, 900, 12_345, 1 << 40] {
            src.record(v);
        }
        let dst = Log2Histogram::new();
        dst.merge(&src);
        assert_eq!(dst.buckets(), src.buckets());
        assert_eq!(dst.count(), src.count());
        assert_eq!(dst.sum(), src.sum());
        assert_eq!(dst.min(), src.min());
        assert_eq!(dst.max(), src.max());
    }

    #[test]
    fn interpolation_separates_quantiles_within_a_bucket() {
        // 1000 evenly spread values inside one log₂ bucket [4096, 8192):
        // before interpolation every quantile collapsed to the bucket
        // midpoint (the p50 == p99 coarseness serve-bench exhibited).
        let h = Log2Histogram::new();
        for k in 0..1000u64 {
            h.record(4096 + k * 4);
        }
        let (p50, p90, p99) = (h.quantile(0.50), h.quantile(0.90), h.quantile(0.99));
        assert!(p50 < p90 && p90 < p99, "p50={p50} p90={p90} p99={p99}");
        // Linear interpolation puts rank q·n of n uniform in-bucket
        // observations near lo + q·width.
        assert!((p50 - 6144.0).abs() < 64.0, "p50={p50}");
        assert!((p99 - 8151.0).abs() < 64.0, "p99={p99}");
        // And across buckets the estimate stays inside the right bucket.
        assert!(p99 < 8192.0);
    }

    #[test]
    fn interpolated_quantiles_differ_on_spread_distribution() {
        // A realistic latency-like spread across several buckets must
        // produce strictly increasing p50 < p90 < p99.
        let h = Log2Histogram::new();
        let mut ns = 99u64;
        for _ in 0..5000 {
            ns = ns
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            h.record(10_000 + ns % 900_000);
        }
        let (p50, p90, p99) = (h.quantile(0.50), h.quantile(0.90), h.quantile(0.99));
        assert!(
            p50 < p90 && p90 < p99,
            "quantiles must be distinct: p50={p50} p90={p90} p99={p99}"
        );
    }

    #[test]
    fn single_observation_reports_bucket_interior() {
        let h = Log2Histogram::new();
        h.record(5000); // bucket 12: [4096, 8192)
        for q in [0.01, 0.5, 0.99] {
            let v = h.quantile(q);
            assert!((4096.0..8192.0).contains(&v), "q={q} v={v}");
        }
    }

    #[test]
    fn quantiles_are_ordered() {
        let h = Log2Histogram::new();
        for us in [5u64, 10, 20, 40, 80, 160, 320, 640, 1280, 100_000] {
            h.record(us * 1000);
        }
        let q50 = h.quantile(0.5);
        let q99 = h.quantile(0.99);
        assert!(q50 <= q99);
        assert!(h.min() as f64 <= q50 * std::f64::consts::SQRT_2);
    }
}
