//! Span tracing into per-thread ring buffers.
//!
//! [`span`] returns a scoped guard; when it drops, a [`TraceEvent`] —
//! name, start, duration, thread id — is appended to the recording
//! thread's fixed-capacity ring buffer (oldest events are overwritten, so
//! steady-state tracing costs no allocation and never blocks on another
//! thread: the only lock taken is the recording thread's own ring, which
//! an exporter contends on only while snapshotting).  Cross-thread
//! intervals that cannot live in one scope (e.g. queue wait, measured
//! from enqueue on the client thread to dequeue on the worker) are
//! recorded explicitly with [`record_span`].
//!
//! [`export_chrome_trace`] renders every thread's buffered events as
//! chrome://tracing / Perfetto trace-event JSON (`ph:"X"` complete
//! events, microsecond timestamps).
//!
//! Two off-switches:
//! - **Runtime**: [`set_enabled`]`(false)` makes [`span`] return an inert
//!   guard (one relaxed atomic load on the hot path).  This is what the
//!   serve overhead-guard test uses to A/B tracing cost in one binary.
//! - **Compile time**: the `obs-off` cargo feature replaces [`span`],
//!   [`record_span`], and the exporters with empty inlined stubs and
//!   makes [`Span`] a zero-sized type, so instrumented hot paths compile
//!   to exactly the uninstrumented code.

#[cfg(not(feature = "obs-off"))]
use crate::lock_recover;
#[cfg(not(feature = "obs-off"))]
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
#[cfg(not(feature = "obs-off"))]
use std::sync::{Arc, Mutex, OnceLock};
#[cfg(not(feature = "obs-off"))]
use std::time::Instant;

/// One completed span: `[start_ns, start_ns + dur_ns)` on thread `tid`,
/// timestamps in nanoseconds since the process trace epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Static span name (`"serve.forward"`, `"gemm"`, ...).
    pub name: &'static str,
    /// Start, in nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (≥ 1).
    pub dur_ns: u64,
    /// Small sequential id of the recording thread.
    pub tid: u64,
}

/// Events retained per thread.  At ~20 events per served request this
/// keeps the most recent few hundred requests per worker; older events
/// are overwritten (ring semantics), never reallocated.
pub const RING_CAPACITY: usize = 8192;

#[cfg(not(feature = "obs-off"))]
mod imp {
    use super::*;

    pub(super) struct RingInner {
        pub events: Vec<TraceEvent>,
        /// Next write position once `events` reaches capacity.
        pub next: usize,
        /// Total events ever recorded (≥ `events.len()`).
        pub total: u64,
    }

    pub(super) struct Ring {
        pub tid: u64,
        pub inner: Mutex<RingInner>,
    }

    impl Ring {
        pub fn push(&self, ev: TraceEvent) {
            let mut g = lock_recover(&self.inner);
            g.total += 1;
            if g.events.len() < RING_CAPACITY {
                g.events.push(ev);
            } else {
                let at = g.next;
                g.events[at] = ev;
                g.next = (at + 1) % RING_CAPACITY;
            }
        }
    }

    pub(super) static ENABLED: AtomicBool = AtomicBool::new(true);
    pub(super) static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    pub(super) static RINGS: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());

    pub(super) fn epoch() -> Instant {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        *EPOCH.get_or_init(Instant::now)
    }

    thread_local! {
        pub(super) static LOCAL: std::cell::OnceCell<Arc<Ring>> =
            const { std::cell::OnceCell::new() };
    }

    pub(super) fn with_local_ring(f: impl FnOnce(&Ring)) {
        LOCAL.with(|cell| {
            let ring = cell.get_or_init(|| {
                let ring = Arc::new(Ring {
                    tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                    inner: Mutex::new(RingInner {
                        events: Vec::new(),
                        next: 0,
                        total: 0,
                    }),
                });
                lock_recover(&RINGS).push(Arc::clone(&ring));
                ring
            });
            f(ring);
        });
    }
}

// ---------------------------------------------------------------------------
// Recording API (live implementation)
// ---------------------------------------------------------------------------

/// Nanoseconds since the process trace epoch (first observability use).
/// Pairs with [`record_span`] for intervals measured across threads.
#[cfg(not(feature = "obs-off"))]
pub fn now_ns() -> u64 {
    imp::epoch().elapsed().as_nanos() as u64
}

/// Runtime tracing toggle (default on).  Disabling makes [`span`] return
/// an inert guard; already-buffered events are retained.
#[cfg(not(feature = "obs-off"))]
pub fn set_enabled(on: bool) {
    imp::ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span recording is currently enabled.
#[cfg(not(feature = "obs-off"))]
pub fn enabled() -> bool {
    imp::ENABLED.load(Ordering::Relaxed)
}

/// A scoped span guard: records a [`TraceEvent`] from construction to
/// drop.  `start_ns == u64::MAX` marks an inert guard (tracing disabled).
#[cfg(not(feature = "obs-off"))]
#[must_use = "a span records on drop; binding it to `_` drops immediately"]
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start_ns: u64,
}

#[cfg(not(feature = "obs-off"))]
impl Drop for Span {
    fn drop(&mut self) {
        if self.start_ns != u64::MAX {
            let end = now_ns();
            record_span(self.name, self.start_ns, end);
        }
    }
}

/// Opens a span named `name`; the returned guard records on drop.
#[cfg(not(feature = "obs-off"))]
#[inline]
pub fn span(name: &'static str) -> Span {
    let start_ns = if enabled() { now_ns() } else { u64::MAX };
    Span { name, start_ns }
}

/// Records an already-measured interval (for spans whose start and end
/// live on different threads, e.g. queue wait).  `end_ns ≤ start_ns`
/// records a 1 ns event at `start_ns`.
#[cfg(not(feature = "obs-off"))]
pub fn record_span(name: &'static str, start_ns: u64, end_ns: u64) {
    if !enabled() {
        return;
    }
    imp::with_local_ring(|ring| {
        ring.push(TraceEvent {
            name,
            start_ns,
            dur_ns: end_ns.saturating_sub(start_ns).max(1),
            tid: ring.tid,
        })
    });
}

/// Snapshot of every thread's buffered events, sorted by start time.
#[cfg(not(feature = "obs-off"))]
pub fn snapshot() -> Vec<TraceEvent> {
    let rings: Vec<_> = lock_recover(&imp::RINGS).iter().cloned().collect();
    let mut out = Vec::new();
    for ring in rings {
        out.extend(lock_recover(&ring.inner).events.iter().copied());
    }
    out.sort_by_key(|e| e.start_ns);
    out
}

/// Total events ever recorded (including ones overwritten in the rings).
#[cfg(not(feature = "obs-off"))]
pub fn recorded_total() -> u64 {
    lock_recover(&imp::RINGS)
        .iter()
        .map(|r| lock_recover(&r.inner).total)
        .sum()
}

/// Clears every ring buffer (counters in [`recorded_total`] reset too).
/// Exports after a `clear` contain only events recorded since.
#[cfg(not(feature = "obs-off"))]
pub fn clear() {
    for ring in lock_recover(&imp::RINGS).iter() {
        let mut g = lock_recover(&ring.inner);
        g.events.clear();
        g.next = 0;
        g.total = 0;
    }
}

/// Renders buffered events as chrome://tracing trace-event JSON
/// (loadable in chrome://tracing or https://ui.perfetto.dev).
#[cfg(not(feature = "obs-off"))]
pub fn export_chrome_trace() -> String {
    let events = snapshot();
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Timestamps and durations are microseconds (f64) per the
        // trace-event spec; names are static identifiers, no escaping
        // needed.
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"errflow\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
            e.name,
            e.tid,
            e.start_ns as f64 / 1e3,
            e.dur_ns as f64 / 1e3,
        ));
    }
    out.push_str("]}");
    out
}

// ---------------------------------------------------------------------------
// obs-off: every recording path compiles to nothing
// ---------------------------------------------------------------------------

/// Zero-sized inert span guard (`obs-off` build).
#[cfg(feature = "obs-off")]
#[must_use = "a span records on drop; binding it to `_` drops immediately"]
#[derive(Debug)]
pub struct Span;

/// No-op (`obs-off` build): returns a zero-sized guard.
#[cfg(feature = "obs-off")]
#[inline(always)]
pub fn span(_name: &'static str) -> Span {
    Span
}

/// No-op (`obs-off` build): always 0.
#[cfg(feature = "obs-off")]
#[inline(always)]
pub fn now_ns() -> u64 {
    0
}

/// No-op (`obs-off` build).
#[cfg(feature = "obs-off")]
#[inline(always)]
pub fn set_enabled(_on: bool) {}

/// Always `false` in an `obs-off` build.
#[cfg(feature = "obs-off")]
#[inline(always)]
pub fn enabled() -> bool {
    false
}

/// No-op (`obs-off` build).
#[cfg(feature = "obs-off")]
#[inline(always)]
pub fn record_span(_name: &'static str, _start_ns: u64, _end_ns: u64) {}

/// Always empty in an `obs-off` build.
#[cfg(feature = "obs-off")]
pub fn snapshot() -> Vec<TraceEvent> {
    Vec::new()
}

/// Always 0 in an `obs-off` build.
#[cfg(feature = "obs-off")]
pub fn recorded_total() -> u64 {
    0
}

/// No-op (`obs-off` build).
#[cfg(feature = "obs-off")]
pub fn clear() {}

/// An empty trace in an `obs-off` build.
#[cfg(feature = "obs-off")]
pub fn export_chrome_trace() -> String {
    "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}".to_string()
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;

    /// Tracing state (the enabled toggle, the ring totals) is process
    /// global; tests that flip or count it must not interleave.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        lock_recover(&LOCK)
    }

    #[test]
    fn span_records_one_event() {
        let _serial = serial();
        set_enabled(true);
        let before = recorded_total();
        {
            let _s = span("test.trace.one");
            std::hint::black_box(1 + 1);
        }
        assert_eq!(recorded_total(), before + 1);
        let evs = snapshot();
        let ev = evs
            .iter()
            .find(|e| e.name == "test.trace.one")
            .copied()
            .unwrap_or(TraceEvent {
                name: "",
                start_ns: 0,
                dur_ns: 0,
                tid: 0,
            });
        assert_eq!(ev.name, "test.trace.one");
        assert!(ev.dur_ns >= 1);
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _serial = serial();
        set_enabled(false);
        let before = recorded_total();
        {
            let _s = span("test.trace.disabled");
        }
        record_span("test.trace.disabled", 1, 2);
        set_enabled(true);
        assert_eq!(recorded_total(), before);
        assert!(snapshot().iter().all(|e| e.name != "test.trace.disabled"));
    }

    #[test]
    fn record_span_clamps_inverted_interval() {
        let _serial = serial();
        set_enabled(true);
        record_span("test.trace.inverted", 100, 50);
        let evs = snapshot();
        let ev = evs.iter().find(|e| e.name == "test.trace.inverted");
        assert!(matches!(ev, Some(e) if e.dur_ns == 1 && e.start_ns == 100));
    }

    #[test]
    fn ring_overwrites_beyond_capacity() {
        let _serial = serial();
        set_enabled(true);
        for _ in 0..RING_CAPACITY + 10 {
            record_span("test.trace.flood", 1, 2);
        }
        let mine: usize = snapshot()
            .iter()
            .filter(|e| e.name == "test.trace.flood")
            .count();
        assert!(mine <= RING_CAPACITY);
        assert!(mine >= RING_CAPACITY / 2, "flood events mostly retained");
    }

    #[test]
    fn chrome_export_is_loadable_json_shape() {
        let _serial = serial();
        set_enabled(true);
        {
            let _s = span("test.trace.export");
        }
        let j = export_chrome_trace();
        assert!(j.starts_with("{\"displayTimeUnit\""), "{j}");
        assert!(j.ends_with("]}"), "{j}");
        assert!(j.contains("\"traceEvents\":["));
        assert!(j.contains("\"name\":\"test.trace.export\""));
        assert!(j.contains("\"ph\":\"X\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }
}
