//! Tiered, fixed-memory time-series retention over the metrics registry.
//!
//! A [`Sampler`] turns the point-in-time registry ([`crate::registry`])
//! into *history*: on every tick it snapshots all registered metrics,
//! diffs them against the previous tick, and appends derived points into
//! per-series ring buffers at several resolutions (**tiers**).  The
//! default layout retains 1 s × 300, 10 s × 360, and 60 s × 1440 — five
//! minutes at full resolution, an hour at 10 s, a day at one minute — in
//! a constant memory envelope (see [`Sampler::memory_bound`]).
//!
//! Derivation rules per metric kind:
//! - **counter** `name` → one series `name` holding the per-second rate
//!   over the tick interval,
//! - **gauge** `name` → one series `name` holding the sampled value,
//! - **histogram** `name` → `name.rate` (observations/s) plus `name.p50`
//!   / `name.p99` computed from the *interval-local* bucket deltas with
//!   the interpolating estimator ([`crate::hist::quantile_from_buckets`]),
//!   so tier points reflect what happened in that interval rather than
//!   the process-lifetime distribution.
//!
//! Coarser tiers aggregate the base tier on tick boundaries: every
//! `step/base_step` ticks a tier flushes one point whose value combines
//! the interval's base samples under the series' aggregation policy —
//! `Mean` for rates and medians, `Max` for p99s (a spike must survive
//! downsampling), `Last` for gauges.
//!
//! The sampler itself spawns no threads (this crate has no dependencies;
//! thread creation is pool-owned): a dedicated thread in the serve layer
//! drives [`tick_global`] at the base period.  Everything here is
//! panic-free on library paths and bounded: at most [`MAX_SERIES`]
//! series are retained, later registrations are counted in
//! [`Sampler::dropped_series`].

use crate::hist::{quantile_from_buckets, BUCKETS};
use crate::lock_recover;
use crate::registry::{self, MetricSnapshot};
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// One retention tier: a ring of `len` points spaced `step_ms` apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierSpec {
    /// Nominal spacing between points in this tier, in milliseconds.
    pub step_ms: u64,
    /// Number of points retained (ring capacity).
    pub len: usize,
}

/// Default retention: 5 min @ 1 s, 1 h @ 10 s, 24 h @ 60 s.
pub const DEFAULT_TIERS: [TierSpec; 3] = [
    TierSpec {
        step_ms: 1_000,
        len: 300,
    },
    TierSpec {
        step_ms: 10_000,
        len: 360,
    },
    TierSpec {
        step_ms: 60_000,
        len: 1_440,
    },
];

/// Hard cap on retained series; registrations beyond it are dropped (and
/// counted), never allocated — the sampler's memory is a constant.
pub const MAX_SERIES: usize = 256;

/// Hard cap on tier count accepted over the wire and in configuration.
pub const MAX_TIERS: usize = 8;

/// Series names longer than this are truncated on first registration so
/// the per-series memory bound holds regardless of registry naming.
pub const MAX_SERIES_NAME: usize = 120;

/// One retained sample: wall-clock milliseconds and a value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Wall-clock timestamp (ms since the Unix epoch) of the tick that
    /// produced this point.
    pub t_ms: u64,
    /// Derived value (rate, quantile, or gauge reading).
    pub v: f64,
}

/// How a series combines base-tier samples when flushing into a coarser
/// tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// Arithmetic mean of the interval's samples (rates, medians).
    Mean,
    /// Maximum of the interval's samples (tail quantiles — a p99 spike
    /// must survive downsampling).
    Max,
    /// Most recent sample (gauges).
    Last,
}

/// Fixed-capacity ring of [`Point`]s.
#[derive(Debug)]
struct Ring {
    buf: Vec<Point>,
    cap: usize,
    /// Index of the next write (== oldest element once full).
    head: usize,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring {
            buf: Vec::new(),
            cap: cap.max(1),
            head: 0,
        }
    }

    fn push(&mut self, p: Point) {
        if self.buf.len() < self.cap {
            self.buf.push(p);
        } else {
            self.buf[self.head] = p;
        }
        self.head = (self.head + 1) % self.cap;
    }

    /// Last `n` points, oldest first (`n == 0` → everything retained).
    fn tail(&self, n: usize) -> Vec<Point> {
        let len = self.buf.len();
        let take = if n == 0 { len } else { n.min(len) };
        let mut out = Vec::with_capacity(take);
        // Oldest element sits at `head` once the ring has wrapped.
        let start = if len < self.cap { 0 } else { self.head };
        for k in (len - take)..len {
            out.push(self.buf[(start + k) % len.max(1)]);
        }
        out
    }
}

/// Per-tier aggregation accumulator (tiers ≥ 1).
#[derive(Debug, Clone, Copy, Default)]
struct Pending {
    ticks: u32,
    n: u32,
    sum: f64,
    max: f64,
    last: f64,
    last_t_ms: u64,
}

#[derive(Debug)]
struct Series {
    agg: Agg,
    rings: Vec<Ring>,
    pending: Vec<Pending>,
}

/// Previous-tick view of a cumulative metric, for diffing.
#[derive(Debug)]
enum Prev {
    Counter(u64),
    Hist { count: u64, buckets: [u64; BUCKETS] },
}

/// Everything one scrape needs: the retained series of one or all tiers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TieredDump {
    /// Timestamp of the most recent tick (ms since the Unix epoch).
    pub now_ms: u64,
    /// Requested tiers, each with its series windows.
    pub tiers: Vec<TierDump>,
}

/// One tier's slice of a [`TieredDump`].
#[derive(Debug, Clone, PartialEq)]
pub struct TierDump {
    /// Tier index in the sampler's configuration.
    pub tier: u8,
    /// Point spacing of this tier, in milliseconds.
    pub step_ms: u64,
    /// Retained series windows, name-sorted.
    pub series: Vec<SeriesDump>,
}

/// One series' window within a [`TierDump`].
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesDump {
    /// Derived series name (`serve.completed`, `serve.latency_ns.p99`, …).
    pub name: String,
    /// Points, oldest first.
    pub points: Vec<Point>,
}

/// Tiered ring-buffer sampler over the metrics registry (module docs
/// describe the derivation and aggregation rules).
#[derive(Debug)]
pub struct Sampler {
    tiers: Vec<TierSpec>,
    series: BTreeMap<String, Series>,
    prev: BTreeMap<String, Prev>,
    last_tick_ms: u64,
    ticks: u64,
    dropped_series: u64,
}

impl Sampler {
    /// Creates a sampler with the given tier layout.  Tiers beyond
    /// [`MAX_TIERS`] are ignored; an empty slice falls back to
    /// [`DEFAULT_TIERS`].
    pub fn new(tiers: &[TierSpec]) -> Self {
        let tiers: Vec<TierSpec> = if tiers.is_empty() {
            DEFAULT_TIERS.to_vec()
        } else {
            tiers.iter().copied().take(MAX_TIERS).collect()
        };
        Sampler {
            tiers,
            series: BTreeMap::new(),
            prev: BTreeMap::new(),
            last_tick_ms: 0,
            ticks: 0,
            dropped_series: 0,
        }
    }

    /// The configured tier layout.
    pub fn tiers(&self) -> &[TierSpec] {
        &self.tiers
    }

    /// Number of ticks processed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Series registrations refused because [`MAX_SERIES`] was reached.
    pub fn dropped_series(&self) -> u64 {
        self.dropped_series
    }

    /// Timestamp of the most recent tick (0 before the first).
    pub fn last_tick_ms(&self) -> u64 {
        self.last_tick_ms
    }

    /// Upper bound, in bytes, on the point storage a sampler with `tiers`
    /// can ever hold: `MAX_SERIES` series × the full tier capacity (16 B
    /// per point) plus per-series bookkeeping and a name of at most
    /// [`MAX_SERIES_NAME`] bytes.  [`Sampler::memory_bytes`] never
    /// exceeds this, which the tests assert.
    pub fn memory_bound(tiers: &[TierSpec]) -> usize {
        let points: usize = tiers.iter().take(MAX_TIERS).map(|t| t.len.max(1)).sum();
        let per_series = MAX_SERIES_NAME
            + points * std::mem::size_of::<Point>()
            + tiers.len().min(MAX_TIERS)
                * (std::mem::size_of::<Ring>() + std::mem::size_of::<Pending>())
            + 128; // map-node and Vec headers, generously rounded
        MAX_SERIES * per_series
    }

    /// Current point-storage footprint in bytes (ring capacities are
    /// pre-committed, so this moves only when a new series registers).
    pub fn memory_bytes(&self) -> usize {
        self.series
            .iter()
            .map(|(name, s)| {
                name.len()
                    + s.rings
                        .iter()
                        .map(|r| r.cap * std::mem::size_of::<Point>() + std::mem::size_of::<Ring>())
                        .sum::<usize>()
                    + s.pending.len() * std::mem::size_of::<Pending>()
                    + 128
            })
            .sum()
    }

    /// Processes one tick at wall-clock `now_ms` against a registry
    /// snapshot (see [`registry::snapshot_all`]).  Split from
    /// [`tick_global`] so tests can drive deterministic clocks and
    /// synthetic snapshots.
    pub fn tick_with(&mut self, now_ms: u64, snapshot: &[(String, MetricSnapshot)]) {
        let dt_s = if self.last_tick_ms > 0 && now_ms > self.last_tick_ms {
            (now_ms - self.last_tick_ms) as f64 / 1e3
        } else {
            // First tick (or a clock step backwards): assume the base
            // period so rates stay finite.
            self.tiers.first().map_or(1.0, |t| t.step_ms as f64 / 1e3)
        };
        for (name, snap) in snapshot {
            match snap {
                MetricSnapshot::Counter(cur) => {
                    match self.prev.get_mut(name.as_str()) {
                        Some(Prev::Counter(prev)) => {
                            let rate = cur.saturating_sub(*prev) as f64 / dt_s;
                            *prev = *cur;
                            self.push(name, now_ms, rate, Agg::Mean);
                        }
                        Some(_) => {}
                        None => {
                            // First sighting: establish the baseline; a
                            // rate needs two observations.
                            if self.prev.len() < 4 * MAX_SERIES {
                                self.prev.insert(name.clone(), Prev::Counter(*cur));
                            }
                        }
                    }
                }
                MetricSnapshot::Gauge(v) => {
                    self.push(name, now_ms, *v as f64, Agg::Last);
                }
                MetricSnapshot::Histogram(h) => match self.prev.get_mut(name.as_str()) {
                    Some(Prev::Hist { count, buckets }) => {
                        let dcount = h.count.saturating_sub(*count);
                        let mut delta = [0u64; BUCKETS];
                        for i in 0..BUCKETS {
                            delta[i] = h.buckets[i].saturating_sub(buckets[i]);
                        }
                        *count = h.count;
                        *buckets = h.buckets;
                        let mut rate_name = String::with_capacity(name.len() + 5);
                        rate_name.push_str(name);
                        rate_name.push_str(".rate");
                        self.push(&rate_name, now_ms, dcount as f64 / dt_s, Agg::Mean);
                        if dcount > 0 {
                            let p50 = quantile_from_buckets(&delta, 0.50);
                            let p99 = quantile_from_buckets(&delta, 0.99);
                            let mut n50 = String::with_capacity(name.len() + 4);
                            n50.push_str(name);
                            n50.push_str(".p50");
                            let mut n99 = String::with_capacity(name.len() + 4);
                            n99.push_str(name);
                            n99.push_str(".p99");
                            self.push(&n50, now_ms, p50, Agg::Mean);
                            self.push(&n99, now_ms, p99, Agg::Max);
                        }
                    }
                    Some(_) => {}
                    None => {
                        if self.prev.len() < 4 * MAX_SERIES {
                            self.prev.insert(
                                name.clone(),
                                Prev::Hist {
                                    count: h.count,
                                    buckets: h.buckets,
                                },
                            );
                        }
                    }
                },
            }
        }
        self.end_tick(now_ms);
        self.last_tick_ms = now_ms;
        self.ticks += 1;
    }

    /// Records one derived sample into the base tier and the coarser-tier
    /// accumulators.
    fn push(&mut self, name: &str, t_ms: u64, v: f64, agg: Agg) {
        if !v.is_finite() {
            return;
        }
        // Truncate over-long names on a char boundary so the per-series
        // memory bound holds regardless of registry naming.
        let mut end = MAX_SERIES_NAME.min(name.len());
        while !name.is_char_boundary(end) {
            end -= 1;
        }
        let key = &name[..end];
        if !self.series.contains_key(key) {
            if self.series.len() >= MAX_SERIES {
                self.dropped_series += 1;
                return;
            }
            let n_tiers = self.tiers.len();
            self.series.insert(
                key.to_string(),
                Series {
                    agg,
                    rings: self.tiers.iter().map(|t| Ring::new(t.len)).collect(),
                    pending: vec![Pending::default(); n_tiers],
                },
            );
        }
        let Some(slot) = self.series.get_mut(key) else {
            return;
        };
        if let Some(r0) = slot.rings.first_mut() {
            r0.push(Point { t_ms, v });
        }
        for p in slot.pending.iter_mut().skip(1) {
            p.n += 1;
            p.sum += v;
            if p.n == 1 || v > p.max {
                p.max = v;
            }
            p.last = v;
            p.last_t_ms = t_ms;
        }
    }

    /// Advances coarse-tier accumulators by one base tick, flushing any
    /// tier whose interval completed.
    fn end_tick(&mut self, _now_ms: u64) {
        let base_step = self.tiers.first().map_or(1, |t| t.step_ms.max(1));
        let ratios: Vec<u32> = self
            .tiers
            .iter()
            .map(|t| (t.step_ms / base_step).max(1) as u32)
            .collect();
        for s in self.series.values_mut() {
            for (t, p) in s.pending.iter_mut().enumerate().skip(1) {
                p.ticks += 1;
                if p.ticks >= ratios[t.min(ratios.len() - 1)] {
                    if p.n > 0 {
                        let v = match s.agg {
                            Agg::Mean => p.sum / p.n as f64,
                            Agg::Max => p.max,
                            Agg::Last => p.last,
                        };
                        if let Some(ring) = s.rings.get_mut(t) {
                            ring.push(Point {
                                t_ms: p.last_t_ms,
                                v,
                            });
                        }
                    }
                    *p = Pending::default();
                }
            }
        }
    }

    /// Names of all retained series, sorted.
    pub fn series_names(&self) -> Vec<String> {
        self.series.keys().cloned().collect()
    }

    /// Last `max_points` points of `name` in `tier`, oldest first
    /// (`max_points == 0` → the tier's full retention).  Empty when the
    /// series or tier does not exist.
    pub fn window(&self, name: &str, tier: usize, max_points: usize) -> Vec<Point> {
        self.series
            .get(name)
            .and_then(|s| s.rings.get(tier))
            .map_or_else(Vec::new, |r| r.tail(max_points))
    }

    /// Maximum over the last `n` base-tier points of `name`, if any.
    pub fn recent_max(&self, name: &str, n: usize) -> Option<f64> {
        let w = self.window(name, 0, n);
        w.iter().map(|p| p.v).fold(None, |acc, v| {
            Some(match acc {
                Some(a) if a >= v => a,
                _ => v,
            })
        })
    }

    /// Mean over the last `n` base-tier points of `name`, if any.
    pub fn recent_mean(&self, name: &str, n: usize) -> Option<f64> {
        let w = self.window(name, 0, n);
        if w.is_empty() {
            return None;
        }
        Some(w.iter().map(|p| p.v).sum::<f64>() / w.len() as f64)
    }

    /// Copies the retained series of `tier_sel` (or all tiers when
    /// `None`) into an owned [`TieredDump`], at most `window` points per
    /// series (`0` → full retention).
    pub fn dump(&self, tier_sel: Option<usize>, window: usize) -> TieredDump {
        let mut tiers = Vec::new();
        for (t, spec) in self.tiers.iter().enumerate() {
            if let Some(sel) = tier_sel {
                if sel != t {
                    continue;
                }
            }
            let mut series = Vec::with_capacity(self.series.len());
            for (name, s) in &self.series {
                let points = s.rings.get(t).map_or_else(Vec::new, |r| r.tail(window));
                if !points.is_empty() {
                    series.push(SeriesDump {
                        name: name.clone(),
                        points,
                    });
                }
            }
            tiers.push(TierDump {
                tier: t as u8,
                step_ms: spec.step_ms,
                series,
            });
        }
        TieredDump {
            now_ms: self.last_tick_ms,
            tiers,
        }
    }

    /// Renders a [`TieredDump`] selection as JSON:
    /// `{"now_ms":..,"tiers":[{"tier":0,"step_ms":1000,"series":{"name":[[t_ms,v],..]}}]}`.
    pub fn export_json(&self, tier_sel: Option<usize>, window: usize) -> String {
        let dump = self.dump(tier_sel, window);
        let mut out = String::with_capacity(4096);
        out.push_str(&format!("{{\"now_ms\":{},\"tiers\":[", dump.now_ms));
        for (i, tier) in dump.tiers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"tier\":{},\"step_ms\":{},\"series\":{{",
                tier.tier, tier.step_ms
            ));
            for (j, s) in tier.series.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":[", s.name));
                for (k, p) in s.points.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    let v = if p.v.is_finite() {
                        format!("{}", p.v)
                    } else {
                        "null".to_string()
                    };
                    out.push_str(&format!("[{},{v}]", p.t_ms));
                }
                out.push(']');
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

impl Default for Sampler {
    fn default() -> Self {
        Sampler::new(&DEFAULT_TIERS)
    }
}

/// The process-wide sampler ([`DEFAULT_TIERS`]), shared by the telemetry
/// tick thread and the scrape handlers.
pub fn global() -> &'static Mutex<Sampler> {
    static GLOBAL: OnceLock<Mutex<Sampler>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(Sampler::default()))
}

/// Wall-clock milliseconds since the Unix epoch (0 if the clock is
/// before the epoch).
pub fn wall_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Snapshots the registry and advances the global sampler by one tick.
/// The registry lock and the sampler lock are taken in sequence, never
/// nested.
pub fn tick_global() {
    let snap = registry::snapshot_all();
    let now = wall_ms();
    let sampler = global();
    lock_recover(sampler).tick_with(now, &snap);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::HistSnapshot;

    fn counter(name: &str, v: u64) -> (String, MetricSnapshot) {
        (name.to_string(), MetricSnapshot::Counter(v))
    }

    fn gauge(name: &str, v: i64) -> (String, MetricSnapshot) {
        (name.to_string(), MetricSnapshot::Gauge(v))
    }

    fn hist(name: &str, values: &[u64]) -> (String, MetricSnapshot) {
        let mut buckets = [0u64; BUCKETS];
        let mut sum = 0u64;
        for &v in values {
            let v = v.max(1);
            buckets[(63 - v.leading_zeros()) as usize] += 1;
            sum += v;
        }
        (
            name.to_string(),
            MetricSnapshot::Histogram(HistSnapshot {
                count: values.len() as u64,
                sum,
                buckets,
            }),
        )
    }

    #[test]
    fn counter_becomes_rate_series() {
        let mut s = Sampler::new(&[TierSpec {
            step_ms: 1000,
            len: 8,
        }]);
        s.tick_with(1_000, &[counter("c", 100)]);
        // First sighting establishes a baseline, no point yet.
        assert!(s.window("c", 0, 0).is_empty());
        s.tick_with(2_000, &[counter("c", 150)]);
        let w = s.window("c", 0, 0);
        assert_eq!(w.len(), 1);
        assert!((w[0].v - 50.0).abs() < 1e-9, "{w:?}");
        assert_eq!(w[0].t_ms, 2_000);
        // Irregular interval: 2 s gap, +100 → 50/s.
        s.tick_with(4_000, &[counter("c", 250)]);
        let w = s.window("c", 0, 0);
        assert!((w[1].v - 50.0).abs() < 1e-9, "{w:?}");
    }

    #[test]
    fn gauge_is_sampled_directly() {
        let mut s = Sampler::new(&[TierSpec {
            step_ms: 1000,
            len: 4,
        }]);
        s.tick_with(1_000, &[gauge("g", 7)]);
        s.tick_with(2_000, &[gauge("g", -3)]);
        let w = s.window("g", 0, 0);
        assert_eq!(w.len(), 2);
        assert_eq!(w[1].v, -3.0);
    }

    #[test]
    fn histogram_derives_interval_quantiles_and_rate() {
        let mut s = Sampler::new(&[TierSpec {
            step_ms: 1000,
            len: 8,
        }]);
        s.tick_with(1_000, &[hist("h", &[])]);
        // Interval adds 100 observations around 1000 and 4 around 1<<20.
        let mut vals: Vec<u64> = (0..100).map(|k| 1024 + k * 8).collect();
        vals.extend([1 << 20; 4]);
        s.tick_with(2_000, &[hist("h", &vals)]);
        let rate = s.window("h.rate", 0, 0);
        assert_eq!(rate.len(), 1);
        assert!((rate[0].v - 104.0).abs() < 1e-9, "{rate:?}");
        let p50 = s.window("h.p50", 0, 0);
        let p99 = s.window("h.p99", 0, 0);
        assert_eq!(p50.len(), 1);
        assert!(p50[0].v >= 1024.0 && p50[0].v < 2048.0, "{p50:?}");
        assert!(p99[0].v >= (1 << 20) as f64, "{p99:?}");
        // Quiet interval: rate 0, no quantile points emitted.
        s.tick_with(3_000, &[hist("h", &vals)]);
        assert_eq!(s.window("h.rate", 0, 0).len(), 2);
        assert_eq!(s.window("h.p50", 0, 0).len(), 1);
    }

    #[test]
    fn coarse_tiers_aggregate_on_tick_boundaries() {
        let tiers = [
            TierSpec {
                step_ms: 1000,
                len: 16,
            },
            TierSpec {
                step_ms: 4000,
                len: 4,
            },
        ];
        let mut mean = Sampler::new(&tiers);
        let mut mx = Sampler::new(&tiers);
        let mut last = Sampler::new(&tiers);
        for k in 0..8u64 {
            let t = 1_000 * (k + 1);
            // Mean: counter rate 0,10,20,... (needs a baseline tick).
            mean.tick_with(t, &[counter("c", 10 * k * t / 1000)]);
            mx.push("m", t, k as f64, Agg::Max);
            mx.end_tick(t);
            last.push("l", t, k as f64, Agg::Last);
            last.end_tick(t);
        }
        // Max: after 8 ticks two tier-1 points, max of each 4-tick window.
        let w = mx.window("m", 1, 0);
        assert_eq!(w.len(), 2, "{w:?}");
        assert_eq!(w[0].v, 3.0);
        assert_eq!(w[1].v, 7.0);
        // Last: the final sample of each window.
        let w = last.window("l", 1, 0);
        assert_eq!(
            w,
            vec![
                Point {
                    t_ms: 4_000,
                    v: 3.0
                },
                Point {
                    t_ms: 8_000,
                    v: 7.0
                }
            ]
        );
        // The counter series appears one tick late (baseline tick emits
        // nothing), so only one full 4-tick window completes: rates
        // 20, 40, 60, 80 → mean 50.
        let w = mean.window("c", 1, 0);
        assert_eq!(w.len(), 1, "{w:?}");
        assert!((w[0].v - 50.0).abs() < 1e-9, "{w:?}");
    }

    #[test]
    fn rings_wrap_and_memory_stays_bounded() {
        let tiers = [
            TierSpec {
                step_ms: 1000,
                len: 4,
            },
            TierSpec {
                step_ms: 2000,
                len: 3,
            },
        ];
        let mut s = Sampler::new(&tiers);
        for k in 0..100u64 {
            s.tick_with(1_000 * (k + 1), &[gauge("g", k as i64)]);
        }
        let w = s.window("g", 0, 0);
        assert_eq!(w.len(), 4, "ring capped at tier len");
        assert_eq!(w.last().map(|p| p.v), Some(99.0));
        assert_eq!(w.first().map(|p| p.v), Some(96.0), "oldest first: {w:?}");
        assert_eq!(s.window("g", 1, 0).len(), 3);
        assert!(s.memory_bytes() <= Sampler::memory_bound(&tiers));
    }

    #[test]
    fn series_cap_drops_and_counts() {
        let tiers = [TierSpec {
            step_ms: 1000,
            len: 2,
        }];
        let mut s = Sampler::new(&tiers);
        let snap: Vec<_> = (0..MAX_SERIES + 10)
            .map(|k| gauge(&format!("g.{k:04}"), k as i64))
            .collect();
        for tick in 0..3u64 {
            s.tick_with(1_000 * (tick + 1), &snap);
        }
        assert_eq!(s.series_names().len(), MAX_SERIES);
        // 10 refused registrations per tick.
        assert_eq!(s.dropped_series(), 30);
        assert!(s.memory_bytes() <= Sampler::memory_bound(&tiers));
    }

    #[test]
    fn default_layout_memory_bound_is_constant_and_small() {
        // The headline guarantee: the default sampler can never exceed
        // ~16 MiB of retained points no matter what the registry holds.
        let bound = Sampler::memory_bound(&DEFAULT_TIERS);
        assert!(bound <= 16 << 20, "bound {bound} exceeds 16 MiB");
        // Stress: more series than the cap, long runtimes.
        let mut s = Sampler::default();
        let snap: Vec<_> = (0..400)
            .map(|k| counter(&format!("stress.{k:03}"), k as u64))
            .collect();
        for tick in 0..50u64 {
            s.tick_with(1_000 * (tick + 1), &snap);
        }
        assert!(s.memory_bytes() <= bound);
    }

    #[test]
    fn window_respects_max_points_and_missing_series() {
        let mut s = Sampler::new(&[TierSpec {
            step_ms: 1000,
            len: 8,
        }]);
        for k in 0..6u64 {
            s.tick_with(1_000 * (k + 1), &[gauge("g", k as i64)]);
        }
        let w = s.window("g", 0, 2);
        assert_eq!(w.len(), 2);
        assert_eq!(w[1].v, 5.0);
        assert!(s.window("nope", 0, 0).is_empty());
        assert!(s.window("g", 7, 0).is_empty(), "missing tier is empty");
        assert_eq!(s.recent_max("g", 3), Some(5.0));
        assert_eq!(s.recent_mean("g", 2), Some(4.5));
        assert_eq!(s.recent_max("nope", 3), None);
    }

    #[test]
    fn dump_and_json_have_expected_shape() {
        let mut s = Sampler::new(&[
            TierSpec {
                step_ms: 1000,
                len: 4,
            },
            TierSpec {
                step_ms: 2000,
                len: 4,
            },
        ]);
        for k in 0..4u64 {
            s.tick_with(1_000 * (k + 1), &[gauge("g", k as i64)]);
        }
        let d = s.dump(None, 0);
        assert_eq!(d.now_ms, 4_000);
        assert_eq!(d.tiers.len(), 2);
        assert_eq!(d.tiers[0].series.len(), 1);
        assert_eq!(d.tiers[0].series[0].name, "g");
        assert_eq!(d.tiers[0].series[0].points.len(), 4);
        let one = s.dump(Some(1), 0);
        assert_eq!(one.tiers.len(), 1);
        assert_eq!(one.tiers[0].tier, 1);
        let j = s.export_json(None, 0);
        assert!(j.contains("\"now_ms\":4000"), "{j}");
        assert!(j.contains("\"g\":[["), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn global_tick_populates_from_registry() {
        registry::counter("test.ts.global").add(5);
        tick_global();
        registry::counter("test.ts.global").add(5);
        tick_global();
        let s = lock_recover(global());
        assert!(s.ticks() >= 2);
        // The series exists (rate value depends on wall-clock spacing).
        assert!(!s.window("test.ts.global", 0, 0).is_empty());
    }
}
