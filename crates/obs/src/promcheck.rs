//! Prometheus text exposition-format conformance checker.
//!
//! A deliberately small validator for the subset of the exposition
//! format errflow emits, used by the CI `obs-smoke` job (via
//! `errflow-cli scrape --prom --validate`) and the net e2e tests to keep
//! [`crate::registry::export_prometheus`] honest:
//!
//! - metric names match `[a-zA-Z_:][a-zA-Z0-9_:]*`, label names match
//!   `[a-zA-Z_][a-zA-Z0-9_]*`,
//! - every sample's base metric (with `_bucket`/`_sum`/`_count`
//!   stripped for histograms) is preceded by exactly one `# HELP` and
//!   one `# TYPE` line,
//! - no duplicate series (same name + same label set),
//! - sample values parse as floats (`NaN`/`+Inf`/`-Inf` allowed),
//! - histogram `_bucket` series carry an `le` label and end in `+Inf`.
//!
//! [`validate`] returns every violation found (empty = conformant) so a
//! failing scrape prints all problems at once.

use std::collections::{BTreeMap, BTreeSet};

/// Validates `text` against the exposition-format subset above,
/// returning one human-readable violation per problem (empty when
/// conformant).
pub fn validate(text: &str) -> Vec<String> {
    let mut errors = Vec::new();
    let mut helps: BTreeSet<String> = BTreeSet::new();
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut series: BTreeSet<String> = BTreeSet::new();
    let mut bucket_metrics: BTreeSet<String> = BTreeSet::new();
    let mut inf_buckets: BTreeSet<String> = BTreeSet::new();

    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap_or("");
            check_metric_name(name, ln, &mut errors);
            if !helps.insert(name.to_string()) {
                errors.push(format!("line {ln}: duplicate HELP for {name}"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            check_metric_name(name, ln, &mut errors);
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                errors.push(format!("line {ln}: invalid TYPE '{kind}' for {name}"));
            }
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                errors.push(format!("line {ln}: duplicate TYPE for {name}"));
            }
            if !helps.contains(name) {
                errors.push(format!("line {ln}: TYPE for {name} without preceding HELP"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }

        // Sample line: name[{labels}] value [timestamp]
        let (name_labels, value) = match split_sample(line) {
            Some(pair) => pair,
            None => {
                errors.push(format!("line {ln}: unparsable sample '{line}'"));
                continue;
            }
        };
        let (name, labels) = match split_labels(name_labels) {
            Ok(pair) => pair,
            Err(e) => {
                errors.push(format!("line {ln}: {e}"));
                continue;
            }
        };
        check_metric_name(name, ln, &mut errors);
        for (lname, _) in &labels {
            if !valid_label_name(lname) {
                errors.push(format!("line {ln}: invalid label name '{lname}'"));
            }
        }
        if value.parse::<f64>().is_err() && !matches!(value, "NaN" | "+Inf" | "-Inf" | "Inf") {
            errors.push(format!("line {ln}: invalid sample value '{value}'"));
        }
        let key = format!(
            "{name}{{{}}}",
            labels
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(",")
        );
        if !series.insert(key.clone()) {
            errors.push(format!("line {ln}: duplicate series {key}"));
        }
        let base = base_name(name);
        if !types.contains_key(base) {
            errors.push(format!("line {ln}: sample {name} without TYPE for {base}"));
        }
        if !helps.contains(base) {
            errors.push(format!("line {ln}: sample {name} without HELP for {base}"));
        }
        if let Some(stripped) = name.strip_suffix("_bucket") {
            if types.get(stripped).map(String::as_str) == Some("histogram") {
                bucket_metrics.insert(stripped.to_string());
                match labels.iter().find(|(k, _)| k == "le") {
                    None => errors.push(format!("line {ln}: _bucket sample without le label")),
                    Some((_, le)) if le == "+Inf" => {
                        inf_buckets.insert(stripped.to_string());
                    }
                    Some(_) => {}
                }
            }
        }
    }
    for m in &bucket_metrics {
        if !inf_buckets.contains(m) {
            errors.push(format!("histogram {m} has no +Inf bucket"));
        }
    }
    for (name, kind) in &types {
        if kind == "histogram" && !series.contains(&format!("{name}_count{{}}")) {
            errors.push(format!("histogram {name} missing _count series"));
        }
    }
    errors
}

/// Strips the histogram sample suffixes to the declared metric name.
fn base_name(name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stripped) = name.strip_suffix(suffix) {
            return stripped;
        }
    }
    name
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn check_metric_name(name: &str, ln: usize, errors: &mut Vec<String>) {
    if !valid_metric_name(name) {
        errors.push(format!("line {ln}: invalid metric name '{name}'"));
    }
}

/// Splits a sample line into (name-with-labels, value), tolerating an
/// optional trailing timestamp.
fn split_sample(line: &str) -> Option<(&str, &str)> {
    // The name+labels part ends at the first whitespace outside braces.
    let mut depth = 0usize;
    let mut split_at = None;
    for (i, c) in line.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => depth = depth.saturating_sub(1),
            ' ' | '\t' if depth == 0 => {
                split_at = Some(i);
                break;
            }
            _ => {}
        }
    }
    let at = split_at?;
    let value = line[at..].split_whitespace().next()?;
    Some((&line[..at], value))
}

/// Splits `name{k="v",...}` into the name and label pairs (values
/// unescaped enough for identity checks).
fn split_labels(s: &str) -> Result<(&str, Vec<(String, String)>), String> {
    match s.find('{') {
        None => Ok((s, Vec::new())),
        Some(open) => {
            if !s.ends_with('}') {
                return Err(format!("unterminated label set in '{s}'"));
            }
            let name = &s[..open];
            let body = &s[open + 1..s.len() - 1];
            let mut labels = Vec::new();
            for pair in body.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("label pair '{pair}' missing '='"))?;
                let v = v
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("label value {v} not quoted"))?;
                labels.push((k.to_string(), v.to_string()));
            }
            Ok((name, labels))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_export_is_conformant() {
        crate::registry::counter("test.promcheck.c").add(3);
        crate::registry::gauge("test.promcheck.g").set(-1);
        crate::registry::histogram("test.promcheck.h").record(300);
        let text = crate::registry::export_prometheus();
        let errors = validate(&text);
        assert!(errors.is_empty(), "{errors:#?}\n---\n{text}");
    }

    #[test]
    fn accepts_minimal_valid_exposition() {
        let text = "\
# HELP m_a help text
# TYPE m_a counter
m_a 3
# HELP m_h h
# TYPE m_h histogram
m_h_bucket{le=\"1\"} 1
m_h_bucket{le=\"+Inf\"} 2
m_h_sum 3
m_h_count 2
";
        assert_eq!(validate(text), Vec::<String>::new());
    }

    #[test]
    fn rejects_bad_metric_name() {
        let text = "# HELP 9bad x\n# TYPE 9bad counter\n9bad 1\n";
        let errors = validate(text);
        assert!(
            errors.iter().any(|e| e.contains("invalid metric name")),
            "{errors:?}"
        );
    }

    #[test]
    fn rejects_type_without_help() {
        let text = "# TYPE m counter\nm 1\n";
        let errors = validate(text);
        assert!(
            errors.iter().any(|e| e.contains("without preceding HELP")),
            "{errors:?}"
        );
    }

    #[test]
    fn rejects_sample_without_type() {
        let text = "# HELP m x\nm 1\n";
        let errors = validate(text);
        assert!(
            errors.iter().any(|e| e.contains("without TYPE")),
            "{errors:?}"
        );
    }

    #[test]
    fn rejects_duplicate_series() {
        let text = "# HELP m x\n# TYPE m counter\nm 1\nm 2\n";
        let errors = validate(text);
        assert!(
            errors.iter().any(|e| e.contains("duplicate series")),
            "{errors:?}"
        );
    }

    #[test]
    fn distinct_label_sets_are_not_duplicates() {
        let text = "\
# HELP m x
# TYPE m histogram
m_bucket{le=\"1\"} 1
m_bucket{le=\"+Inf\"} 1
m_sum 1
m_count 1
";
        assert_eq!(validate(text), Vec::<String>::new());
    }

    #[test]
    fn rejects_bad_label_and_value() {
        let text = "# HELP m x\n# TYPE m gauge\nm{0l=\"v\"} 1\n";
        let errors = validate(text);
        assert!(
            errors.iter().any(|e| e.contains("invalid label name")),
            "{errors:?}"
        );
        let text = "# HELP m x\n# TYPE m gauge\nm pizza\n";
        let errors = validate(text);
        assert!(
            errors.iter().any(|e| e.contains("invalid sample value")),
            "{errors:?}"
        );
    }

    #[test]
    fn histogram_without_inf_bucket_is_flagged() {
        let text = "\
# HELP m x
# TYPE m histogram
m_bucket{le=\"1\"} 1
m_sum 1
m_count 1
";
        let errors = validate(text);
        assert!(
            errors.iter().any(|e| e.contains("no +Inf bucket")),
            "{errors:?}"
        );
    }
}
