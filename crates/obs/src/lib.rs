//! # errflow-obs
//!
//! Dependency-free observability for the errflow workspace: the answer to
//! *"where inside a request does time (and error budget) go?"*.
//!
//! The paper's pipeline is a chain of stages — decompress → plan →
//! quantized forward → bound certification — and every performance PR
//! needs to attribute its effect to one of them.  This crate provides the
//! three attribution primitives, built on `std` alone:
//!
//! 1. **Metrics registry** ([`registry`]): named process-wide counters,
//!    gauges, and log₂-bucket histograms with lock-free hot-path handles
//!    (registration takes a lock once; increments are relaxed atomics).
//!    Exposition as Prometheus text or JSON.
//! 2. **Histograms** ([`hist`]): the fixed-size log₂-bucket
//!    [`Log2Histogram`] (generalized from the serve layer's latency
//!    histogram) and the latency-flavoured [`LatencyHistogram`] wrapper,
//!    both mergeable across workers.
//! 3. **Span tracing** ([`trace`]): scoped [`trace::span`] guards writing
//!    into per-thread ring buffers, exportable as chrome://tracing
//!    trace-event JSON.  The `obs-off` cargo feature compiles every
//!    recording path to a no-op (guards become zero-sized), and a runtime
//!    [`trace::set_enabled`] toggle supports A/B overhead measurement in a
//!    single binary.
//! 4. **Tiered time series** ([`timeseries`]): fixed-memory ring-buffer
//!    retention of registry-derived rate/quantile points at 1 s / 10 s /
//!    60 s resolution, filled by a caller-driven sampler tick (this crate
//!    spawns no threads — the serve layer's telemetry thread drives
//!    [`timeseries::tick_global`]).
//! 5. **SLO engine** ([`slo`]): declarative latency/ratio/rate
//!    objectives evaluated against the time-series plane into
//!    ok/warn/breach states with hysteresis.
//! 6. **Exposition conformance** ([`promcheck`]): a small validator for
//!    the Prometheus text format CI runs against live scrapes.
//!
//! This crate sits at the bottom of the workspace dependency graph —
//! `tensor`, `compress`, `pipeline`, and `serve` all record into it — so
//! it must not depend on any other errflow crate.

pub mod hist;
pub mod promcheck;
pub mod registry;
pub mod slo;
pub mod timeseries;
pub mod trace;

pub use hist::{quantile_from_buckets, LatencyHistogram, LatencySummary, Log2Histogram};
pub use registry::{
    counter, export_json, export_prometheus, gauge, histogram, snapshot_all, Counter, Gauge,
    HistSnapshot, MetricSnapshot, ScopedCounter,
};
pub use slo::{Objective, SloEngine, SloKind, SloState, SloStatus};
pub use timeseries::{Point, Sampler, SeriesDump, TierDump, TierSpec, TieredDump, DEFAULT_TIERS};
pub use trace::{span, Span, TraceEvent};

use std::sync::{Mutex, MutexGuard};

/// Poison-recovering lock: a panicked holder leaves these structures in a
/// consistent state (counters and ring buffers have no multi-step
/// invariants), so observers keep working instead of cascading the panic.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Scoped span guard: `span_guard!("name")` is shorthand for binding
/// [`trace::span`] to a local that records on scope exit.
///
/// ```
/// let _s = errflow_obs::span!("example.stage");
/// // ... work attributed to "example.stage" ...
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::span($name)
    };
}
