//! Verifies the `obs-off` feature compiles span recording to zero-cost
//! no-ops.  Run with `cargo test -p errflow-obs --features obs-off`; the
//! whole file is compiled out otherwise.
#![cfg(feature = "obs-off")]

use errflow_obs::trace;

#[test]
fn span_guard_is_zero_sized() {
    assert_eq!(
        std::mem::size_of::<trace::Span>(),
        0,
        "obs-off Span must be a ZST so guards vanish entirely"
    );
}

#[test]
fn recording_is_a_no_op() {
    trace::set_enabled(true);
    {
        let _s = trace::span("obs_off.should_not_record");
    }
    trace::record_span("obs_off.should_not_record", 0, 100);
    assert_eq!(trace::recorded_total(), 0);
    assert!(trace::snapshot().is_empty());
    assert!(!trace::enabled(), "obs-off reports tracing disabled");
}

#[test]
fn export_is_empty_but_loadable() {
    let j = trace::export_chrome_trace();
    assert_eq!(j, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
}

#[test]
fn metrics_registry_stays_active() {
    // obs-off disables *tracing*; the metrics registry keeps working (the
    // serve stats surface depends on it).
    let c = errflow_obs::counter("obs_off.metrics.alive");
    c.add(2);
    assert_eq!(c.get(), 2);
}
