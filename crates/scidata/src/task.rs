//! [`SyntheticTask`]: one of the paper's three workloads packaged with its
//! architecture, optimizer, and training modes.

use crate::{borghesi, eurosat, h2};
use errflow_nn::loss::Loss;
use errflow_nn::train::{train_convnet, train_mlp, OptimizerKind, TrainConfig, TrainReport};
use errflow_nn::{Activation, BlockView, ConvNet, Dataset, Mlp, Model, Regularizer};
use errflow_tensor::conv::MapShape;
use errflow_tensor::Matrix;

/// Which scientific workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// 9-species hydrogen combustion: reaction-rate regression (Tanh MLP,
    /// SGD) — low QoI sensitivity.
    H2Combustion,
    /// n-dodecane jet flame: dissipation-rate regression (8-hidden-layer
    /// PReLU MLP, Adam) — high QoI sensitivity.
    BorghesiFlame,
    /// Multispectral land-use classification (compact ResNet, SGD); the QoI
    /// is the 10-dim final feature map.
    EuroSat,
}

impl TaskKind {
    /// All three workloads, in the paper's presentation order.
    pub const ALL: [TaskKind; 3] = [
        TaskKind::H2Combustion,
        TaskKind::BorghesiFlame,
        TaskKind::EuroSat,
    ];

    /// Short name used by figure binaries.
    pub fn name(&self) -> &'static str {
        match self {
            TaskKind::H2Combustion => "h2_combustion",
            TaskKind::BorghesiFlame => "borghesi_flame",
            TaskKind::EuroSat => "eurosat",
        }
    }
}

impl std::fmt::Display for TaskKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Training regularisation mode (the Figs. 3–4 comparison axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainingMode {
    /// Plain training ("baseline").
    Plain,
    /// Weight decay ("baseline w. weight decay").
    WeightDecay,
    /// Parameterized spectral normalization + spectral penalty (the
    /// paper's method).
    Psn,
}

/// A task-specific model: MLP for the combustion tasks, ConvNet for
/// EuroSAT.  Implements [`Model`] by delegation so the analysis and
/// pipeline layers stay architecture-agnostic.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // a handful of models exist per process
pub enum TaskModel {
    /// MLP-backed model.
    Mlp(Mlp),
    /// Compact-ResNet-backed model.
    Conv(ConvNet),
}

impl Model for TaskModel {
    fn forward(&self, x: &[f32]) -> Vec<f32> {
        match self {
            TaskModel::Mlp(m) => m.forward(x),
            TaskModel::Conv(m) => m.forward(x),
        }
    }

    fn forward_batch(&self, xs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        match self {
            TaskModel::Mlp(m) => m.forward_batch(xs),
            TaskModel::Conv(m) => m.forward_batch(xs),
        }
    }

    fn input_dim(&self) -> usize {
        match self {
            TaskModel::Mlp(m) => m.input_dim(),
            TaskModel::Conv(m) => m.input_dim(),
        }
    }

    fn output_dim(&self) -> usize {
        match self {
            TaskModel::Mlp(m) => m.output_dim(),
            TaskModel::Conv(m) => m.output_dim(),
        }
    }

    fn blocks(&self) -> Vec<BlockView<'_>> {
        match self {
            TaskModel::Mlp(m) => m.blocks(),
            TaskModel::Conv(m) => m.blocks(),
        }
    }

    fn flops(&self) -> f64 {
        match self {
            TaskModel::Mlp(m) => m.flops(),
            TaskModel::Conv(m) => m.flops(),
        }
    }

    fn num_params(&self) -> usize {
        match self {
            TaskModel::Mlp(m) => m.num_params(),
            TaskModel::Conv(m) => m.num_params(),
        }
    }

    fn map_weights(&self, f: &mut dyn FnMut(&Matrix) -> Matrix) -> Self {
        match self {
            TaskModel::Mlp(m) => TaskModel::Mlp(m.map_weights(f)),
            TaskModel::Conv(m) => TaskModel::Conv(m.map_weights(f)),
        }
    }

    fn layer_input_magnitudes(&self, x: &[f32]) -> Vec<f64> {
        match self {
            TaskModel::Mlp(m) => m.layer_input_magnitudes(x),
            TaskModel::Conv(m) => m.layer_input_magnitudes(x),
        }
    }
}

/// A generated workload instance: dataset + compression payload + the
/// recipe for building and training the paper's model for it.
#[derive(Debug, Clone)]
pub struct SyntheticTask {
    /// Which workload this is.
    pub kind: TaskKind,
    /// Normalized supervised dataset (shuffled grid samples / images).
    pub dataset: Dataset,
    payload: Vec<f32>,
    ordered_inputs: Vec<Vec<f32>>,
    seed: u64,
    image_size: usize,
}

impl SyntheticTask {
    /// Full-size H2Combustion workload (64×64 grid, 1500 samples).
    pub fn h2_combustion(seed: u64) -> Self {
        Self::h2_sized(seed, 64, 1500)
    }

    /// Reduced H2Combustion for quick runs and doc examples.
    pub fn h2_combustion_small(seed: u64) -> Self {
        Self::h2_sized(seed, 24, 200)
    }

    fn h2_sized(seed: u64, grid: usize, n: usize) -> Self {
        let w = h2::generate(grid, n, seed);
        let payload = h2::compression_payload(&w);
        let ordered_inputs = ordered_grid_inputs(
            &w.species_fields
                .iter()
                .map(|f| f.data.as_slice())
                .collect::<Vec<_>>(),
            &w.normalizer,
        );
        SyntheticTask {
            kind: TaskKind::H2Combustion,
            dataset: w.dataset,
            payload,
            ordered_inputs,
            seed,
            image_size: 0,
        }
    }

    /// Full-size BorghesiFlame workload (64×64 grid, 1500 samples).
    pub fn borghesi(seed: u64) -> Self {
        Self::borghesi_sized(seed, 64, 1500)
    }

    /// Reduced BorghesiFlame workload.
    pub fn borghesi_small(seed: u64) -> Self {
        Self::borghesi_sized(seed, 24, 200)
    }

    fn borghesi_sized(seed: u64, grid: usize, n: usize) -> Self {
        let w = borghesi::generate(grid, n, seed);
        let payload = borghesi::compression_payload(&w);
        let ordered_inputs = ordered_grid_inputs(
            &w.variable_fields
                .iter()
                .map(|f| f.data.as_slice())
                .collect::<Vec<_>>(),
            &w.normalizer,
        );
        SyntheticTask {
            kind: TaskKind::BorghesiFlame,
            dataset: w.dataset,
            payload,
            ordered_inputs,
            seed,
            image_size: 0,
        }
    }

    /// Full-size EuroSAT workload (12×12 px, 300 images).
    pub fn eurosat(seed: u64) -> Self {
        Self::eurosat_sized(seed, 12, 300)
    }

    /// Reduced EuroSAT workload.
    pub fn eurosat_small(seed: u64) -> Self {
        Self::eurosat_sized(seed, 8, 80)
    }

    fn eurosat_sized(seed: u64, size: usize, n: usize) -> Self {
        let imgs = eurosat::generate_images(size, n, seed);
        let payload = eurosat::compression_payload(&imgs);
        let ordered_inputs = imgs.iter().map(|im| im.pixels.clone()).collect();
        SyntheticTask {
            kind: TaskKind::EuroSat,
            dataset: eurosat::to_dataset(&imgs),
            payload,
            ordered_inputs,
            seed,
            image_size: size,
        }
    }

    /// Builds the given kind at its full size.
    pub fn of_kind(kind: TaskKind, seed: u64) -> Self {
        match kind {
            TaskKind::H2Combustion => Self::h2_combustion(seed),
            TaskKind::BorghesiFlame => Self::borghesi(seed),
            TaskKind::EuroSat => Self::eurosat(seed),
        }
    }

    /// Builds the given kind at its reduced size.
    pub fn of_kind_small(kind: TaskKind, seed: u64) -> Self {
        match kind {
            TaskKind::H2Combustion => Self::h2_combustion_small(seed),
            TaskKind::BorghesiFlame => Self::borghesi_small(seed),
            TaskKind::EuroSat => Self::eurosat_small(seed),
        }
    }

    /// Network input dimension.
    pub fn input_dim(&self) -> usize {
        self.dataset.inputs[0].len()
    }

    /// QoI dimension.
    pub fn output_dim(&self) -> usize {
        self.dataset.targets[0].len()
    }

    /// The spatially-ordered field data the I/O experiments compress.
    pub fn compression_payload(&self) -> &[f32] {
        &self.payload
    }

    /// Normalized per-sample inputs in *spatial grid order* (or image
    /// order for EuroSAT).  This is the ordering the inference pipeline
    /// actually streams: flattening it feature-major keeps each field
    /// contiguous and smooth, so the compressors see realistic data.
    pub fn ordered_inputs(&self) -> &[Vec<f32>] {
        &self.ordered_inputs
    }

    /// Builds the paper's architecture for this task, untrained.
    pub fn build_model(&self, mode: TrainingMode) -> TaskModel {
        let psn = match mode {
            TrainingMode::Psn => Some(self.seed.wrapping_mul(31).wrapping_add(1000)),
            _ => None,
        };
        match self.kind {
            TaskKind::H2Combustion => TaskModel::Mlp(Mlp::new(
                &[9, 50, 50, 9],
                Activation::Tanh,
                Activation::Identity,
                self.seed.wrapping_add(1),
                psn,
            )),
            TaskKind::BorghesiFlame => {
                let mut dims = vec![13];
                dims.extend(std::iter::repeat_n(48, 8));
                dims.push(3);
                TaskModel::Mlp(Mlp::new(
                    &dims,
                    Activation::PRelu(0.25),
                    Activation::Identity,
                    self.seed.wrapping_add(2),
                    psn,
                ))
            }
            TaskKind::EuroSat => TaskModel::Conv(ConvNet::new(
                MapShape::new(eurosat::NUM_BANDS, self.image_size, self.image_size),
                8,
                2,
                eurosat::NUM_CLASSES,
                Activation::Relu,
                self.seed.wrapping_add(3),
                psn,
            )),
        }
    }

    /// The paper's training configuration for this task: SGD for
    /// H2/EuroSAT, Adam for Borghesi; MSE for regression QoIs, softmax
    /// cross-entropy for classification.
    pub fn train_config(&self, mode: TrainingMode, epochs: usize) -> TrainConfig {
        // The spectral-penalty strength is per-task: deeper stacks (the
        // 9-layer Borghesi MLP, the conv ResNet) need a stronger pull on
        // Πσ to keep the quantization bound practical, while the shallow
        // H2 MLP would collapse under the same λ.
        let lambda = match self.kind {
            TaskKind::H2Combustion => 2e-4,
            TaskKind::BorghesiFlame => 2e-2,
            TaskKind::EuroSat => 2e-3,
        };
        let regularizer = match mode {
            TrainingMode::Plain => Regularizer::None,
            TrainingMode::WeightDecay => Regularizer::WeightDecay(1e-4),
            TrainingMode::Psn => Regularizer::SpectralPenalty(lambda),
        };
        let (optimizer, lr, loss) = match self.kind {
            TaskKind::H2Combustion => (OptimizerKind::Sgd { momentum: 0.9 }, 0.05, Loss::Mse),
            TaskKind::BorghesiFlame => (OptimizerKind::Adam, 0.002, Loss::Mse),
            TaskKind::EuroSat => (
                OptimizerKind::Sgd { momentum: 0.9 },
                0.05,
                Loss::SoftmaxCrossEntropy,
            ),
        };
        TrainConfig {
            epochs,
            batch_size: 16,
            lr,
            optimizer,
            loss,
            regularizer,
            seed: self.seed.wrapping_add(99),
        }
    }

    /// Trains a model built by [`SyntheticTask::build_model`] on this task.
    pub fn train(&self, model: &mut TaskModel, cfg: &TrainConfig) -> TrainReport {
        match model {
            TaskModel::Mlp(m) => train_mlp(m, &self.dataset, cfg),
            TaskModel::Conv(m) => train_convnet(m, &self.dataset, cfg),
        }
    }

    /// Builds and trains the PSN model with a small epoch budget — enough
    /// for examples, doc tests, and bound validation (the error bounds hold
    /// for any weights; training only shapes the spectra).
    pub fn train_quick(&self) -> TaskModel {
        self.trained_model(TrainingMode::Psn, 8)
    }

    /// Builds and trains a model in the given mode.
    pub fn trained_model(&self, mode: TrainingMode, epochs: usize) -> TaskModel {
        let mut model = self.build_model(mode);
        let cfg = self.train_config(mode, epochs);
        self.train(&mut model, &cfg);
        model
    }
}

/// Builds normalized per-grid-point feature vectors in row-major spatial
/// order from a set of same-sized fields.
fn ordered_grid_inputs(
    fields: &[&[f32]],
    normalizer: &crate::normalize::Normalizer,
) -> Vec<Vec<f32>> {
    let n = fields.first().map_or(0, |f| f.len());
    (0..n)
        .map(|idx| {
            let raw: Vec<f32> = fields.iter().map(|f| f[idx]).collect();
            normalizer.apply(&raw)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_inputs_cover_grid_and_are_smooth() {
        let t = SyntheticTask::h2_combustion_small(5);
        let ordered = t.ordered_inputs();
        assert_eq!(ordered.len(), 24 * 24);
        assert_eq!(ordered[0].len(), 9);
        // Consecutive grid points differ by much less than the data range.
        let mut jumps = 0;
        for w in ordered.windows(2) {
            if (w[1][0] - w[0][0]).abs() > 0.5 {
                jumps += 1;
            }
        }
        assert!(jumps < 24, "ordering is not spatially smooth: {jumps}");
    }

    #[test]
    fn eurosat_ordered_inputs_are_the_images() {
        let t = SyntheticTask::eurosat_small(6);
        assert_eq!(t.ordered_inputs().len(), 80);
        assert_eq!(t.ordered_inputs()[0].len(), t.input_dim());
    }

    #[test]
    fn h2_task_shapes() {
        let t = SyntheticTask::h2_combustion_small(1);
        assert_eq!(t.input_dim(), 9);
        assert_eq!(t.output_dim(), 9);
        assert!(!t.compression_payload().is_empty());
        let m = t.build_model(TrainingMode::Plain);
        assert_eq!(m.input_dim(), 9);
        assert_eq!(m.output_dim(), 9);
    }

    #[test]
    fn borghesi_task_shapes() {
        let t = SyntheticTask::borghesi_small(2);
        assert_eq!(t.input_dim(), 13);
        assert_eq!(t.output_dim(), 3);
        let m = t.build_model(TrainingMode::Psn);
        // 8 hidden layers + output = 9 dense layers.
        match &m {
            TaskModel::Mlp(mlp) => assert_eq!(mlp.layers().len(), 9),
            _ => panic!("borghesi is an MLP"),
        }
    }

    #[test]
    fn eurosat_task_shapes() {
        let t = SyntheticTask::eurosat_small(3);
        assert_eq!(t.input_dim(), 13 * 64);
        assert_eq!(t.output_dim(), 10);
        let m = t.build_model(TrainingMode::Plain);
        assert!(matches!(m, TaskModel::Conv(_)));
        assert_eq!(m.input_dim(), 13 * 64);
    }

    #[test]
    fn training_reduces_loss_on_all_tasks() {
        for kind in TaskKind::ALL {
            let t = SyntheticTask::of_kind_small(kind, 7);
            let mut m = t.build_model(TrainingMode::Psn);
            let cfg = t.train_config(TrainingMode::Psn, 5);
            let report = t.train(&mut m, &cfg);
            let first = report.loss_history[0];
            let last = report.final_loss();
            assert!(
                last < first,
                "{kind}: loss did not decrease ({first} → {last})"
            );
        }
    }

    #[test]
    fn task_model_delegates_model_trait() {
        let t = SyntheticTask::h2_combustion_small(4);
        let m = t.build_model(TrainingMode::Plain);
        assert!(m.flops() > 0.0);
        assert!(m.num_params() > 0);
        assert_eq!(m.blocks().len(), 1);
        let x = vec![0.1f32; 9];
        let zeroed = m.map_weights(&mut |w| Matrix::zeros(w.rows(), w.cols()));
        assert!(zeroed.forward(&x).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn kind_names() {
        assert_eq!(TaskKind::H2Combustion.name(), "h2_combustion");
        assert_eq!(TaskKind::EuroSat.to_string(), "eurosat");
    }
}
