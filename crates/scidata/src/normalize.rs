//! Input normalization to `[-1, 1]` — the preprocessing the paper's error
//! theory assumes ("we assume the inputs are normalized within the range
//! [-1, 1] during preprocessing", §III-B).

/// Per-feature min-max scaler mapping each feature to `[-1, 1]`.
#[derive(Debug, Clone)]
pub struct Normalizer {
    mins: Vec<f32>,
    maxs: Vec<f32>,
}

impl Normalizer {
    /// Fits the scaler on a set of feature vectors.
    pub fn fit(samples: &[Vec<f32>]) -> Self {
        assert!(!samples.is_empty(), "cannot fit a normalizer on no data");
        let dim = samples[0].len();
        let mut mins = vec![f32::INFINITY; dim];
        let mut maxs = vec![f32::NEG_INFINITY; dim];
        for s in samples {
            assert_eq!(s.len(), dim, "inconsistent feature dimension");
            for (i, &v) in s.iter().enumerate() {
                mins[i] = mins[i].min(v);
                maxs[i] = maxs[i].max(v);
            }
        }
        Normalizer { mins, maxs }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.mins.len()
    }

    /// Maps one vector into `[-1, 1]` per feature (constant features → 0).
    pub fn apply(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.dim());
        x.iter()
            .enumerate()
            .map(|(i, &v)| {
                let range = self.maxs[i] - self.mins[i];
                if range <= 0.0 {
                    0.0
                } else {
                    2.0 * (v - self.mins[i]) / range - 1.0
                }
            })
            .collect()
    }

    /// Applies in bulk.
    pub fn apply_all(&self, xs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        xs.iter().map(|x| self.apply(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_to_unit_box() {
        let data = vec![vec![0.0, 10.0], vec![4.0, 20.0], vec![2.0, 15.0]];
        let n = Normalizer::fit(&data);
        let mapped = n.apply_all(&data);
        for m in &mapped {
            for &v in m {
                assert!((-1.0..=1.0).contains(&v));
            }
        }
        assert_eq!(mapped[0], vec![-1.0, -1.0]);
        assert_eq!(mapped[1], vec![1.0, 1.0]);
        assert_eq!(mapped[2], vec![0.0, 0.0]);
    }

    #[test]
    fn constant_feature_maps_to_zero() {
        let data = vec![vec![5.0, 1.0], vec![5.0, 2.0]];
        let n = Normalizer::fit(&data);
        assert_eq!(n.apply(&[5.0, 1.5])[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_fit_panics() {
        Normalizer::fit(&[]);
    }

    #[test]
    fn out_of_range_values_extrapolate() {
        let data = vec![vec![0.0], vec![1.0]];
        let n = Normalizer::fit(&data);
        assert_eq!(n.apply(&[2.0]), vec![3.0]);
    }
}
