//! Smooth 2-D field generators: the spatial substrate of the synthetic
//! scientific datasets.

use errflow_tensor::rng::StdRng;

/// A scalar field on an `nx × ny` grid, stored row-major.
#[derive(Debug, Clone)]
pub struct Field {
    /// Grid width.
    pub nx: usize,
    /// Grid height.
    pub ny: usize,
    /// Row-major values.
    pub data: Vec<f32>,
}

impl Field {
    /// Builds a field from a generator over normalized coordinates
    /// `(u, v) ∈ [0, 1]²`.
    pub fn from_fn(nx: usize, ny: usize, mut f: impl FnMut(f32, f32) -> f32) -> Self {
        let mut data = Vec::with_capacity(nx * ny);
        for j in 0..ny {
            let v = j as f32 / (ny.max(2) - 1) as f32;
            for i in 0..nx {
                let u = i as f32 / (nx.max(2) - 1) as f32;
                data.push(f(u, v));
            }
        }
        Field { nx, ny, data }
    }

    /// Value at grid point `(i, j)`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f32 {
        self.data[j * self.nx + i]
    }

    /// Central-difference ∂/∂x field (one-sided at boundaries).
    pub fn grad_x(&self) -> Field {
        let mut out = vec![0.0f32; self.data.len()];
        for j in 0..self.ny {
            for i in 0..self.nx {
                let l = if i > 0 {
                    self.at(i - 1, j)
                } else {
                    self.at(i, j)
                };
                let r = if i + 1 < self.nx {
                    self.at(i + 1, j)
                } else {
                    self.at(i, j)
                };
                let h = if i > 0 && i + 1 < self.nx { 2.0 } else { 1.0 };
                out[j * self.nx + i] = (r - l) / h * self.nx as f32;
            }
        }
        Field {
            nx: self.nx,
            ny: self.ny,
            data: out,
        }
    }

    /// Central-difference ∂/∂y field (one-sided at boundaries).
    pub fn grad_y(&self) -> Field {
        let mut out = vec![0.0f32; self.data.len()];
        for j in 0..self.ny {
            for i in 0..self.nx {
                let d = if j > 0 {
                    self.at(i, j - 1)
                } else {
                    self.at(i, j)
                };
                let u = if j + 1 < self.ny {
                    self.at(i, j + 1)
                } else {
                    self.at(i, j)
                };
                let h = if j > 0 && j + 1 < self.ny { 2.0 } else { 1.0 };
                out[j * self.nx + i] = (u - d) / h * self.ny as f32;
            }
        }
        Field {
            nx: self.nx,
            ny: self.ny,
            data: out,
        }
    }
}

/// A single-vortex stream function centred in the domain — the H2-combustion
/// turbulence structure ("a single vortex structure positioned at the
/// center, serving as the source of turbulence").
pub fn vortex_field(nx: usize, ny: usize, strength: f32) -> Field {
    Field::from_fn(nx, ny, |u, v| {
        let dx = u - 0.5;
        let dy = v - 0.5;
        let r2 = dx * dx + dy * dy;
        // Lamb–Oseen-style vortex: swirl amplitude peaks near the core and
        // decays smoothly outward.
        strength * (-r2 * 18.0).exp() * (8.0 * (dx * dy)).sin() + 0.4 * strength * (-r2 * 6.0).exp()
    })
}

/// Multiscale "turbulence" as a sum of random Fourier modes with a decaying
/// amplitude spectrum (`k^-roughness`), mimicking the broadband content of
/// a DNS field.  Larger `roughness` → smoother field.
pub fn turbulence_field(nx: usize, ny: usize, seed: u64, roughness: f32) -> Field {
    let mut rng = StdRng::seed_from_u64(seed);
    let modes: Vec<(f32, f32, f32, f32)> = (1..=12)
        .map(|k| {
            let kx = rng.gen_range(0.5f32..1.5) * k as f32;
            let ky = rng.gen_range(0.5f32..1.5) * k as f32;
            let phase = rng.gen_range(0.0..std::f32::consts::TAU);
            let amp = (k as f32).powf(-roughness);
            (kx, ky, phase, amp)
        })
        .collect();
    Field::from_fn(nx, ny, |u, v| {
        modes
            .iter()
            .map(|&(kx, ky, phase, amp)| {
                amp * (std::f32::consts::TAU * (kx * u + ky * v) + phase).sin()
            })
            .sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_from_fn_indexing() {
        let f = Field::from_fn(4, 3, |u, v| u + 10.0 * v);
        assert_eq!(f.data.len(), 12);
        assert_eq!(f.at(0, 0), 0.0);
        assert!((f.at(3, 0) - 1.0).abs() < 1e-6);
        assert!((f.at(0, 2) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn vortex_peaks_near_center() {
        let f = vortex_field(33, 33, 1.0);
        let centre = f.at(16, 16).abs();
        let corner = f.at(0, 0).abs();
        assert!(centre > corner, "centre {centre} corner {corner}");
    }

    #[test]
    fn vortex_is_smooth() {
        // Neighbouring samples differ by much less than the field range.
        let f = vortex_field(64, 64, 1.0);
        let range = f.data.iter().cloned().fold(f32::MIN, f32::max)
            - f.data.iter().cloned().fold(f32::MAX, f32::min);
        for j in 0..64 {
            for i in 0..63 {
                assert!((f.at(i + 1, j) - f.at(i, j)).abs() < 0.2 * range);
            }
        }
    }

    #[test]
    fn turbulence_deterministic_in_seed() {
        let a = turbulence_field(32, 32, 7, 1.5);
        let b = turbulence_field(32, 32, 7, 1.5);
        assert_eq!(a.data, b.data);
        let c = turbulence_field(32, 32, 8, 1.5);
        assert_ne!(a.data, c.data);
    }

    #[test]
    fn rougher_spectrum_has_more_high_frequency_energy() {
        let smooth = turbulence_field(64, 64, 3, 2.5);
        let rough = turbulence_field(64, 64, 3, 0.5);
        let hf = |f: &Field| -> f32 {
            let mut acc = 0.0;
            for j in 0..f.ny {
                for i in 0..f.nx - 1 {
                    acc += (f.at(i + 1, j) - f.at(i, j)).powi(2);
                }
            }
            acc
        };
        assert!(hf(&rough) > hf(&smooth));
    }

    #[test]
    fn gradients_of_linear_field_are_constant() {
        let f = Field::from_fn(16, 16, |u, v| 2.0 * u + 3.0 * v);
        let gx = f.grad_x();
        let gy = f.grad_y();
        // Interior gradient ≈ 2·nx/(nx-1)-ish scale; just check constancy.
        let g0 = gx.at(5, 5);
        for j in 1..15 {
            for i in 1..15 {
                assert!((gx.at(i, j) - g0).abs() < 1e-3);
            }
        }
        let h0 = gy.at(5, 5);
        assert!(h0 > 0.0);
        assert!(g0 > 0.0);
    }
}
