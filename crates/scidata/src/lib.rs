//! # errflow-scidata
//!
//! Synthetic generators for the paper's three scientific workloads
//! (DESIGN.md §3, substitution 1).  The real datasets (Sandia H2 DNS,
//! Borghesi n-dodecane DNS, EuroSAT imagery) are not distributable, so each
//! generator reproduces the *structural properties the experiments depend
//! on*:
//!
//! * [`h2`] — **H2Combustion**: 9 species mass fractions on a 2-D grid with
//!   a single central vortex (the paper: "the turbulence is mainly
//!   concentrated around the single vortex at the center", which is why the
//!   H2 inputs compress so well).  QoI: 9 reaction rates, *low* input
//!   sensitivity.
//! * [`borghesi`] — **BorghesiFlame**: 13 thermochemical state variables
//!   (mixture-fraction / progress-variable gradients and derived fields)
//!   from multiscale turbulence.  QoI: 3 filtered dissipation rates, *high*
//!   input sensitivity.
//! * [`eurosat`] — **EuroSAT**: 16-bit multispectral imagery (13 bands),
//!   10 land-use classes, spectral-signature + texture composition.  QoI:
//!   the 10-dim final feature map.
//!
//! [`SyntheticTask`] packages a generator with the paper's architecture for
//! that task (2×50 Tanh MLP / 8-hidden-layer PReLU MLP / compact ResNet)
//! and training configuration (SGD / Adam / SGD respectively), and exposes
//! the spatially-ordered `compression_payload` the I/O experiments compress.

pub mod borghesi;
pub mod eurosat;
pub mod field;
pub mod h2;
pub mod normalize;
pub mod task;

pub use task::{SyntheticTask, TaskKind, TaskModel, TrainingMode};
