//! Synthetic H2Combustion workload: 9-species hydrogen mechanism on a
//! single-vortex field.
//!
//! The paper's H2 network maps the mass fractions of 9 species
//! (H₂, O₂, H₂O, H, O, OH, HO₂, H₂O₂, N₂) to their reaction rates.  The
//! synthetic mechanism here keeps the properties the experiments rely on:
//! smooth spatially-correlated inputs concentrated around a central vortex
//! (highly compressible), mass fractions in a physical range, and a smooth
//! *low-sensitivity* rate function (the paper: a 10⁻³ input perturbation
//! produces a 10⁻³ QoI change in L2).

use crate::field::{vortex_field, Field};
use crate::normalize::Normalizer;
use errflow_nn::Dataset;
use errflow_tensor::rng::SliceRandom;
use errflow_tensor::rng::StdRng;

/// Number of chemical species in the mechanism.
pub const NUM_SPECIES: usize = 9;

/// Synthetic Arrhenius-style reaction-rate surrogate.
///
/// `y` are normalized mass fractions in `[-1, 1]`; the rates mix pairwise
/// products through a temperature-like exponential.  Coefficients are fixed
/// so the function is deterministic and has O(1) Lipschitz constant.
pub fn reaction_rates(y: &[f32]) -> Vec<f32> {
    assert_eq!(y.len(), NUM_SPECIES);
    // Temperature surrogate: weighted mean of the first species.
    let temp: f32 = 0.5 + 0.25 * (y[0] + y[1] + y[2]) / 3.0;
    (0..NUM_SPECIES)
        .map(|i| {
            let j = (i + 1) % NUM_SPECIES;
            let k = (i + 4) % NUM_SPECIES;
            let a = 0.35 + 0.05 * i as f32;
            let forward = a * y[i] * y[j] * (-0.8 / (0.6 + temp * temp)).exp();
            let reverse = 0.12 * y[k];
            (forward - reverse).tanh() * 0.8
        })
        .collect()
}

/// The generated workload: spatially-ordered species fields (for the
/// compression experiments) plus a pointwise training set.
#[derive(Debug, Clone)]
pub struct H2Workload {
    /// One field per species, each `grid × grid`, spatially smooth.
    pub species_fields: Vec<Field>,
    /// Normalized training set: 9 mass fractions → 9 reaction rates.
    pub dataset: Dataset,
    /// The fitted input scaler.
    pub normalizer: Normalizer,
}

/// Generates the workload on a `grid × grid` domain, sampling `n_samples`
/// training points from the grid.
pub fn generate(grid: usize, n_samples: usize, seed: u64) -> H2Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    // Species fields: vortex-driven mixing with species-specific offsets.
    let base = vortex_field(grid, grid, 1.0);
    let species_fields: Vec<Field> = (0..NUM_SPECIES)
        .map(|s| {
            let phase = s as f32 * 0.7;
            let scale = 0.5 + 0.06 * s as f32;
            Field {
                nx: grid,
                ny: grid,
                data: base
                    .data
                    .iter()
                    .enumerate()
                    .map(|(idx, &v)| {
                        let u = (idx % grid) as f32 / grid as f32;
                        let w = (idx / grid) as f32 / grid as f32;
                        // Mass-fraction-like: positive, smooth, bounded.
                        (0.5 + scale * v + 0.1 * ((u + w) * 4.0 + phase).sin()).clamp(0.0, 1.2)
                    })
                    .collect(),
            }
        })
        .collect();

    // Raw samples at random grid points.
    let mut indices: Vec<usize> = (0..grid * grid).collect();
    indices.shuffle(&mut rng);
    indices.truncate(n_samples.min(grid * grid));
    let raw: Vec<Vec<f32>> = indices
        .iter()
        .map(|&idx| species_fields.iter().map(|f| f.data[idx]).collect())
        .collect();
    let normalizer = Normalizer::fit(&raw);
    let inputs = normalizer.apply_all(&raw);
    let targets: Vec<Vec<f32>> = inputs.iter().map(|x| reaction_rates(x)).collect();
    H2Workload {
        species_fields,
        dataset: Dataset::new(inputs, targets),
        normalizer,
    }
}

/// Spatially-ordered flat payload for compression experiments: all species
/// fields concatenated band-by-band (smooth within each band).
pub fn compression_payload(w: &H2Workload) -> Vec<f32> {
    w.species_fields
        .iter()
        .flat_map(|f| f.data.iter().copied())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_sizes() {
        let w = generate(32, 200, 1);
        assert_eq!(w.species_fields.len(), 9);
        assert_eq!(w.species_fields[0].data.len(), 32 * 32);
        assert_eq!(w.dataset.len(), 200);
        assert_eq!(w.dataset.inputs[0].len(), 9);
        assert_eq!(w.dataset.targets[0].len(), 9);
    }

    #[test]
    fn inputs_are_normalized() {
        let w = generate(32, 300, 2);
        for x in &w.dataset.inputs {
            for &v in x {
                assert!((-1.0..=1.0).contains(&v), "v={v}");
            }
        }
    }

    #[test]
    fn rates_are_bounded_and_smooth() {
        let w = generate(16, 50, 3);
        for x in &w.dataset.inputs {
            let r = reaction_rates(x);
            assert!(r.iter().all(|&v| v.abs() <= 0.8));
            // Low sensitivity: small perturbation → comparable-scale change.
            let xp: Vec<f32> = x.iter().map(|&v| v + 1e-3).collect();
            let rp = reaction_rates(&xp);
            let d: f32 = r
                .iter()
                .zip(&rp)
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum::<f32>()
                .sqrt();
            assert!(d < 1e-2, "sensitivity too high: {d}");
        }
    }

    #[test]
    fn payload_is_spatially_smooth() {
        let w = generate(64, 10, 4);
        let p = compression_payload(&w);
        assert_eq!(p.len(), 9 * 64 * 64);
        // Adjacent in-band samples are close (compressibility proxy).
        let mut big_jumps = 0;
        for band in 0..9 {
            let s = &p[band * 4096..(band + 1) * 4096];
            for w in s.windows(2) {
                if (w[1] - w[0]).abs() > 0.2 {
                    big_jumps += 1;
                }
            }
        }
        assert!(big_jumps < 9 * 64, "too many discontinuities: {big_jumps}");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(16, 40, 9);
        let b = generate(16, 40, 9);
        assert_eq!(a.dataset.inputs, b.dataset.inputs);
    }
}
