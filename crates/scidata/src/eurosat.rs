//! Synthetic EuroSAT workload: 16-bit multispectral imagery, 10 land-use
//! classes.
//!
//! EuroSAT samples are Sentinel-2 patches over 13 spectral bands.  The
//! synthetic generator composes each image as
//! `class spectral signature × spatial texture + noise`, then quantizes to
//! 16-bit levels (the paper stresses the data is 16-bit, which is why it
//! "necessitates enhanced numerical accuracy") before normalizing to
//! `[-1, 1]`.  The QoI is the network's 10-dim final feature map, per the
//! paper's choice for this task.

use errflow_nn::Dataset;
use errflow_tensor::rng::StdRng;

/// Spectral bands per image (Sentinel-2 has 13).
pub const NUM_BANDS: usize = 13;

/// Land-use classes.
pub const NUM_CLASSES: usize = 10;

/// One generated image with its label.
#[derive(Debug, Clone)]
pub struct LabeledImage {
    /// CHW pixel buffer, normalized to `[-1, 1]`.
    pub pixels: Vec<f32>,
    /// Class index in `0..NUM_CLASSES`.
    pub class: usize,
}

/// Per-class spectral signature: a fixed 13-vector of band reflectances.
fn class_signature(class: usize) -> [f32; NUM_BANDS] {
    std::array::from_fn(|b| {
        let t = (class as f32 * 1.3 + b as f32 * 0.7).sin();
        0.5 + 0.4 * t
    })
}

/// Per-class spatial texture over normalized coordinates.
fn class_texture(class: usize, u: f32, v: f32) -> f32 {
    match class % 5 {
        // Fields/crops: broad horizontal stripes.
        0 => (v * 6.0 + class as f32).sin() * 0.5 + 0.5,
        // Forest: blotchy low-frequency pattern.
        1 => ((u * 4.0).sin() * (v * 4.0).cos() * 0.5 + 0.5).powf(1.5),
        // Urban: fine checkerboard.
        2 => (((u * 12.0).sin() * (v * 12.0).sin()) * 0.5 + 0.5).round(),
        // Water: nearly flat.
        3 => 0.9 - 0.1 * (u * 2.0 + v).sin(),
        // Highway/river: diagonal band.
        _ => (-((u - v) * (u - v)) * 30.0).exp(),
    }
}

/// Generates `n` labeled images of `size × size` pixels.
pub fn generate_images(size: usize, n: usize, seed: u64) -> Vec<LabeledImage> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let class = i % NUM_CLASSES;
            let sig = class_signature(class);
            let jitter: f32 = rng.gen_range(0.9..1.1);
            let mut pixels = Vec::with_capacity(NUM_BANDS * size * size);
            for (b, &s) in sig.iter().enumerate() {
                for y in 0..size {
                    for x in 0..size {
                        let u = x as f32 / size as f32;
                        let v = y as f32 / size as f32;
                        let value = s * jitter * class_texture(class, u, v)
                            + rng.gen_range(-0.03f32..0.03)
                            + 0.05 * b as f32 / NUM_BANDS as f32;
                        // 16-bit quantization of reflectance in [0, 1.5].
                        let q = (value.clamp(0.0, 1.5) / 1.5 * 65535.0).round() / 65535.0 * 1.5;
                        // Normalize to [-1, 1].
                        pixels.push(q / 0.75 - 1.0);
                    }
                }
            }
            LabeledImage { pixels, class }
        })
        .collect()
}

/// Packages images as a one-hot-target [`Dataset`].
pub fn to_dataset(images: &[LabeledImage]) -> Dataset {
    let inputs = images.iter().map(|im| im.pixels.clone()).collect();
    let targets = images
        .iter()
        .map(|im| {
            let mut t = vec![0.0f32; NUM_CLASSES];
            t[im.class] = 1.0;
            t
        })
        .collect();
    Dataset::new(inputs, targets)
}

/// Spatially-ordered flat payload for compression experiments: the images
/// concatenated (each already band-major, smooth within bands).
pub fn compression_payload(images: &[LabeledImage]) -> Vec<f32> {
    images
        .iter()
        .flat_map(|im| im.pixels.iter().copied())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shapes() {
        let imgs = generate_images(8, 20, 1);
        assert_eq!(imgs.len(), 20);
        assert_eq!(imgs[0].pixels.len(), 13 * 64);
        // Classes cycle 0..10.
        assert_eq!(imgs[0].class, 0);
        assert_eq!(imgs[10].class, 0);
        assert_eq!(imgs[13].class, 3);
    }

    #[test]
    fn pixels_normalized() {
        for im in generate_images(8, 30, 2) {
            assert!(im.pixels.iter().all(|&p| (-1.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn sixteen_bit_quantization_grid() {
        // Every pixel must sit on the 16-bit grid (up to f32 rounding).
        for im in generate_images(4, 5, 3) {
            for &p in &im.pixels {
                let level = (p + 1.0) * 0.75 / 1.5 * 65535.0;
                assert!((level - level.round()).abs() < 1e-2, "p={p} level={level}");
            }
        }
    }

    #[test]
    fn classes_are_spectrally_distinct() {
        let imgs = generate_images(8, 10, 4);
        // Mean per-band vectors of different classes must differ.
        let mean_band = |im: &LabeledImage, b: usize| -> f32 {
            im.pixels[b * 64..(b + 1) * 64].iter().sum::<f32>() / 64.0
        };
        let a: Vec<f32> = (0..13).map(|b| mean_band(&imgs[0], b)).collect();
        let c: Vec<f32> = (0..13).map(|b| mean_band(&imgs[3], b)).collect();
        let dist: f32 = a
            .iter()
            .zip(&c)
            .map(|(&x, &y)| (x - y) * (x - y))
            .sum::<f32>()
            .sqrt();
        assert!(dist > 0.1, "class signatures too close: {dist}");
    }

    #[test]
    fn dataset_one_hot_targets() {
        let imgs = generate_images(4, 12, 5);
        let ds = to_dataset(&imgs);
        assert_eq!(ds.len(), 12);
        for (t, im) in ds.targets.iter().zip(&imgs) {
            assert_eq!(t.iter().sum::<f32>(), 1.0);
            assert_eq!(t[im.class], 1.0);
        }
    }

    #[test]
    fn payload_concatenates() {
        let imgs = generate_images(4, 3, 6);
        assert_eq!(compression_payload(&imgs).len(), 3 * 13 * 16);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate_images(4, 6, 7);
        let b = generate_images(4, 6, 7);
        assert_eq!(a[2].pixels, b[2].pixels);
    }
}
