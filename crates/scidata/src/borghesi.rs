//! Synthetic BorghesiFlame workload: 13 thermochemical state variables →
//! 3 filtered dissipation rates.
//!
//! The paper's Borghesi network consumes "mixture fraction gradients,
//! progress variable gradients, and several other derived parameters" and
//! predicts three dissipation rates (mixture-fraction, progress-variable,
//! and cross-dissipation).  Dissipation rates are quadratic in gradients,
//! which is what makes this QoI *highly sensitive* to input perturbations
//! (the paper: a 10⁻³ input change moves the QoI by 10⁻²).  The synthetic
//! target keeps exactly that structure: squared-gradient combinations with
//! steep exponential weighting.

use crate::field::{turbulence_field, Field};
use crate::normalize::Normalizer;
use errflow_nn::Dataset;
use errflow_tensor::rng::SliceRandom;
use errflow_tensor::rng::StdRng;

/// Number of thermochemical input variables.
pub const NUM_VARS: usize = 13;

/// Number of output dissipation rates.
pub const NUM_RATES: usize = 3;

/// Dissipation-rate surrogate over normalized inputs.
///
/// `x\[0\]` plays the mixture fraction Z, `x\[1\]` the progress variable C,
/// `x[2..6]` their gradients, and the rest derived parameters.  Rates are
/// gradient-quadratic with exponential state weighting — steep by design.
pub fn dissipation_rates(x: &[f32]) -> Vec<f32> {
    assert_eq!(x.len(), NUM_VARS);
    let z = x[0];
    let c = x[1];
    let gz2 = x[2] * x[2] + x[3] * x[3];
    let gc2 = x[4] * x[4] + x[5] * x[5];
    let cross = x[2] * x[4] + x[3] * x[5];
    let weight = (1.6 * z - 0.8 * c).exp(); // steep state dependence
    let chi_z = 2.0 * gz2 * weight + 0.1 * x[6];
    let chi_c = 2.0 * gc2 * (0.9 + 0.5 * c * c) + 0.1 * x[7];
    let chi_zc = 2.0 * cross * (1.0 + 0.4 * z) + 0.05 * x[8] * x[9];
    vec![chi_z, chi_c, chi_zc]
}

/// The generated workload.
#[derive(Debug, Clone)]
pub struct BorghesiWorkload {
    /// The 13 input-variable fields (spatially ordered, for compression).
    pub variable_fields: Vec<Field>,
    /// Normalized training set.
    pub dataset: Dataset,
    /// The fitted input scaler.
    pub normalizer: Normalizer,
}

/// Generates the workload on a `grid × grid` domain.
pub fn generate(grid: usize, n_samples: usize, seed: u64) -> BorghesiWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    // Mixture fraction and progress variable from moderately rough
    // turbulence; gradients derived by finite differences; the remaining
    // variables are smooth derived fields.
    let z = turbulence_field(grid, grid, seed.wrapping_add(1), 1.8);
    let c = turbulence_field(grid, grid, seed.wrapping_add(2), 1.6);
    let zx = z.grad_x();
    let zy = z.grad_y();
    let cx = c.grad_x();
    let cy = c.grad_y();
    let mut variable_fields = vec![z.clone(), c.clone(), zx, zy, cx, cy];
    for extra in 0..(NUM_VARS - 6) {
        variable_fields.push(turbulence_field(
            grid,
            grid,
            seed.wrapping_add(10 + extra as u64),
            2.0,
        ));
    }

    let mut indices: Vec<usize> = (0..grid * grid).collect();
    indices.shuffle(&mut rng);
    indices.truncate(n_samples.min(grid * grid));
    let raw: Vec<Vec<f32>> = indices
        .iter()
        .map(|&idx| variable_fields.iter().map(|f| f.data[idx]).collect())
        .collect();
    let normalizer = Normalizer::fit(&raw);
    let inputs = normalizer.apply_all(&raw);
    let targets: Vec<Vec<f32>> = inputs.iter().map(|x| dissipation_rates(x)).collect();
    BorghesiWorkload {
        variable_fields,
        dataset: Dataset::new(inputs, targets),
        normalizer,
    }
}

/// Spatially-ordered flat payload for compression experiments.
pub fn compression_payload(w: &BorghesiWorkload) -> Vec<f32> {
    w.variable_fields
        .iter()
        .flat_map(|f| f.data.iter().copied())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_sizes() {
        let w = generate(32, 150, 1);
        assert_eq!(w.variable_fields.len(), 13);
        assert_eq!(w.dataset.len(), 150);
        assert_eq!(w.dataset.inputs[0].len(), 13);
        assert_eq!(w.dataset.targets[0].len(), 3);
    }

    #[test]
    fn inputs_normalized() {
        let w = generate(32, 200, 2);
        for x in &w.dataset.inputs {
            assert!(x.iter().all(|&v| (-1.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn higher_sensitivity_than_h2() {
        // The defining property: dissipation rates respond much more
        // strongly to input perturbations than the H2 reaction rates.
        let w = generate(32, 100, 3);
        let mut borghesi_sens = 0.0f32;
        for x in w.dataset.inputs.iter().take(50) {
            let r = dissipation_rates(x);
            let xp: Vec<f32> = x.iter().map(|&v| v + 1e-3).collect();
            let rp = dissipation_rates(&xp);
            let d: f32 = r
                .iter()
                .zip(&rp)
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum::<f32>()
                .sqrt();
            borghesi_sens = borghesi_sens.max(d);
        }
        let h2w = crate::h2::generate(32, 100, 3);
        let mut h2_sens = 0.0f32;
        for x in h2w.dataset.inputs.iter().take(50) {
            let r = crate::h2::reaction_rates(x);
            let xp: Vec<f32> = x.iter().map(|&v| v + 1e-3).collect();
            let rp = crate::h2::reaction_rates(&xp);
            let d: f32 = r
                .iter()
                .zip(&rp)
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum::<f32>()
                .sqrt();
            h2_sens = h2_sens.max(d);
        }
        assert!(
            borghesi_sens > 2.0 * h2_sens,
            "borghesi {borghesi_sens} vs h2 {h2_sens}"
        );
    }

    #[test]
    fn gradient_fields_are_rougher_than_state_fields() {
        let w = generate(64, 10, 4);
        let roughness = |f: &Field| -> f32 {
            let mut acc = 0.0;
            let range = f.data.iter().cloned().fold(f32::MIN, f32::max)
                - f.data.iter().cloned().fold(f32::MAX, f32::min);
            for win in f.data.windows(2) {
                acc += ((win[1] - win[0]) / range.max(1e-9)).abs();
            }
            acc
        };
        assert!(roughness(&w.variable_fields[2]) > roughness(&w.variable_fields[0]));
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(
            generate(16, 30, 5).dataset.inputs,
            generate(16, 30, 5).dataset.inputs
        );
    }

    #[test]
    fn payload_size() {
        let w = generate(16, 10, 6);
        assert_eq!(compression_payload(&w).len(), 13 * 256);
    }
}
