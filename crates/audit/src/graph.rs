//! Small dense digraph used by the phase-2 analyses: BFS reachability with
//! parent tracking (for `--explain` call-chain traces) and iterative Tarjan
//! SCC detection (for lock-order cycles).  Nodes are `u32` indices into
//! whatever table the caller owns (functions, lock identities).

/// Directed graph over nodes `0..n` with parallel-edge-free adjacency lists.
pub struct Digraph {
    succ: Vec<Vec<u32>>,
}

impl Digraph {
    pub fn new(n: usize) -> Self {
        Digraph {
            succ: vec![Vec::new(); n],
        }
    }

    pub fn len(&self) -> usize {
        self.succ.len()
    }

    pub fn is_empty(&self) -> bool {
        self.succ.is_empty()
    }

    /// Adds `from -> to`, ignoring duplicates (adjacency stays a set).
    pub fn add_edge(&mut self, from: u32, to: u32) {
        let list = &mut self.succ[from as usize];
        if !list.contains(&to) {
            list.push(to);
        }
    }

    pub fn successors(&self, v: u32) -> &[u32] {
        &self.succ[v as usize]
    }

    pub fn has_edge(&self, from: u32, to: u32) -> bool {
        self.succ[from as usize].contains(&to)
    }

    /// Multi-source BFS.  Returns, per node, `Some(parent)` when reached
    /// through `parent`, `Some(self)` for the seeds themselves, `None` when
    /// unreachable.  Deterministic: seeds are visited in the order given and
    /// adjacency in insertion order.
    pub fn bfs_parents(&self, seeds: &[u32]) -> Vec<Option<u32>> {
        let mut parent: Vec<Option<u32>> = vec![None; self.succ.len()];
        let mut queue = std::collections::VecDeque::new();
        for &s in seeds {
            if parent[s as usize].is_none() {
                parent[s as usize] = Some(s);
                queue.push_back(s);
            }
        }
        while let Some(v) = queue.pop_front() {
            for &w in &self.succ[v as usize] {
                if parent[w as usize].is_none() {
                    parent[w as usize] = Some(v);
                    queue.push_back(w);
                }
            }
        }
        parent
    }

    /// Reconstructs the seed→`v` path from a [`Digraph::bfs_parents`] map;
    /// empty when `v` was not reached.
    pub fn path_to(parents: &[Option<u32>], v: u32) -> Vec<u32> {
        if parents[v as usize].is_none() {
            return Vec::new();
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = parents[cur as usize] {
            if p == cur {
                break; // reached a seed
            }
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Strongly connected components, iterative Tarjan (no recursion: the
    /// call graph of a large workspace can chain deeper than the stack).
    /// Components are returned in reverse topological order; node order
    /// within a component is deterministic.
    pub fn sccs(&self) -> Vec<Vec<u32>> {
        let n = self.succ.len();
        const UNSEEN: u32 = u32::MAX;
        let mut index = vec![UNSEEN; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 0u32;
        let mut out = Vec::new();
        // Explicit DFS frames: (node, next-successor position).
        let mut frames: Vec<(u32, usize)> = Vec::new();
        for root in 0..n as u32 {
            if index[root as usize] != UNSEEN {
                continue;
            }
            frames.push((root, 0));
            while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
                let vi = v as usize;
                if *pos == 0 {
                    index[vi] = next_index;
                    low[vi] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[vi] = true;
                }
                if let Some(&w) = self.succ[vi].get(*pos) {
                    *pos += 1;
                    let wi = w as usize;
                    if index[wi] == UNSEEN {
                        frames.push((w, 0));
                    } else if on_stack[wi] {
                        low[vi] = low[vi].min(index[wi]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(p, _)) = frames.last() {
                        let pi = p as usize;
                        low[pi] = low[pi].min(low[vi]);
                    }
                    if low[vi] == index[vi] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w as usize] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        out.push(comp);
                    }
                }
            }
        }
        out
    }

    /// Cyclic components: SCCs with more than one node, plus self-loops.
    pub fn cycles(&self) -> Vec<Vec<u32>> {
        self.sccs()
            .into_iter()
            .filter(|c| c.len() > 1 || self.has_edge(c[0], c[0]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_paths_reconstruct() {
        let mut g = Digraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 3);
        let parents = g.bfs_parents(&[0]);
        assert_eq!(Digraph::path_to(&parents, 2), vec![0, 1, 2]);
        assert_eq!(Digraph::path_to(&parents, 0), vec![0]);
        assert!(Digraph::path_to(&parents, 4).is_empty());
    }

    #[test]
    fn scc_finds_cycle_and_self_loop() {
        let mut g = Digraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(2, 2);
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 2);
        assert!(cycles.contains(&vec![0, 1]));
        assert!(cycles.contains(&vec![2]));
    }

    #[test]
    fn acyclic_graph_has_no_cycles() {
        let mut g = Digraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        assert!(g.cycles().is_empty());
    }
}
