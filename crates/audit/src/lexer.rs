//! A minimal Rust lexer for static analysis.
//!
//! The goal is not a conforming front-end but a token stream that is
//! *comment-, string-, and char-literal-aware*, so rules never fire on text
//! inside a doc comment or a string literal the way regex-over-raw-lines
//! linters do. Comments are captured out-of-band (with line spans) because
//! several rules key off adjacent `// SAFETY:` justifications.

/// Token classification. `Punct` carries the single ASCII byte; multi-byte
/// operators (`::`, `->`, `=>`) appear as adjacent single-byte puncts, which
/// rules reconstruct from byte positions when adjacency matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Punct(u8),
    Literal,
    Lifetime,
}

#[derive(Debug, Clone, Copy)]
pub struct Token {
    pub kind: TokKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
}

/// A line (`//`) or block (`/* */`, nesting-aware) comment.
#[derive(Debug, Clone, Copy)]
pub struct Comment {
    pub start: usize,
    pub end: usize,
    pub line: u32,
    pub end_line: u32,
}

pub struct Lexed<'a> {
    pub src: &'a str,
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl<'a> Lexed<'a> {
    pub fn text(&self, idx: usize) -> &'a str {
        let t = &self.tokens[idx];
        &self.src[t.start..t.end]
    }

    pub fn comment_text(&self, c: &Comment) -> &'a str {
        &self.src[c.start..c.end]
    }

    /// True when tokens `i` and `i + 1` are adjacent in the source with no
    /// intervening bytes (used to distinguish `::` from `:` `:` across space,
    /// and `->` from a bare `>`).
    pub fn adjacent(&self, i: usize) -> bool {
        i + 1 < self.tokens.len() && self.tokens[i].end == self.tokens[i + 1].start
    }

    pub fn is_punct(&self, idx: usize, b: u8) -> bool {
        matches!(self.tokens.get(idx), Some(t) if t.kind == TokKind::Punct(b))
    }

    pub fn is_ident(&self, idx: usize, s: &str) -> bool {
        matches!(self.tokens.get(idx), Some(t) if t.kind == TokKind::Ident) && self.text(idx) == s
    }
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic() || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80
}

pub fn lex(src: &str) -> Lexed<'_> {
    let b = src.as_bytes();
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                comments.push(Comment {
                    start,
                    end: i,
                    line,
                    end_line: line,
                });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let (start, start_line) = (i, line);
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                comments.push(Comment {
                    start,
                    end: i,
                    line: start_line,
                    end_line: line,
                });
            }
            b'"' => {
                let (start, start_line) = (i, line);
                i += 1;
                scan_string_body(b, &mut i, &mut line);
                tokens.push(Token {
                    kind: TokKind::Literal,
                    start,
                    end: i,
                    line: start_line,
                });
            }
            b'\'' => {
                let start = i;
                // Disambiguate char literal from lifetime: a lifetime is `'`
                // followed by an identifier not closed by another quote.
                if b.get(i + 1) == Some(&b'\\') {
                    // Escaped char literal: skip to closing quote.
                    i += 2;
                    if i < b.len() {
                        i += 1; // escaped byte
                    }
                    while i < b.len() && b[i] != b'\'' {
                        i += 1; // \u{...} escapes
                    }
                    i += 1;
                    tokens.push(Token {
                        kind: TokKind::Literal,
                        start,
                        end: i.min(b.len()),
                        line,
                    });
                } else if b.get(i + 1).is_some_and(|&n| is_ident_continue(n))
                    && b.get(i + 2) != Some(&b'\'')
                {
                    i += 1;
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                    tokens.push(Token {
                        kind: TokKind::Lifetime,
                        start,
                        end: i,
                        line,
                    });
                } else {
                    // 'x' or '(' etc: plain char literal.
                    i += 1;
                    while i < b.len() && b[i] != b'\'' {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i += 1;
                    tokens.push(Token {
                        kind: TokKind::Literal,
                        start,
                        end: i.min(b.len()),
                        line,
                    });
                }
            }
            _ if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                // Raw string / byte string / raw identifier prefixes:
                // r"..", r#".."#, br"..", b"..", cr"..", and r#ident.
                let word = &src[start..i];
                if matches!(word, "r" | "b" | "br" | "c" | "cr") {
                    if b.get(i) == Some(&b'"') {
                        let start_line = line;
                        i += 1;
                        if word == "b" || word == "c" {
                            scan_string_body(b, &mut i, &mut line);
                        } else {
                            scan_raw_string_body(b, &mut i, &mut line, 0);
                        }
                        tokens.push(Token {
                            kind: TokKind::Literal,
                            start,
                            end: i,
                            line: start_line,
                        });
                        continue;
                    }
                    if word != "b" && word != "c" && b.get(i) == Some(&b'#') {
                        let mut hashes = 0usize;
                        let mut j = i;
                        while b.get(j) == Some(&b'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if b.get(j) == Some(&b'"') {
                            let start_line = line;
                            i = j + 1;
                            scan_raw_string_body(b, &mut i, &mut line, hashes);
                            tokens.push(Token {
                                kind: TokKind::Literal,
                                start,
                                end: i,
                                line: start_line,
                            });
                            continue;
                        }
                        if word == "r"
                            && hashes == 1
                            && b.get(j).is_some_and(|&n| is_ident_start(n))
                        {
                            // Raw identifier r#type: emit the identifier part.
                            i = j;
                            while i < b.len() && is_ident_continue(b[i]) {
                                i += 1;
                            }
                            tokens.push(Token {
                                kind: TokKind::Ident,
                                start: j,
                                end: i,
                                line,
                            });
                            continue;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokKind::Ident,
                    start,
                    end: i,
                    line,
                });
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < b.len()
                    && (is_ident_continue(b[i])
                        || (b[i] == b'.' && b.get(i + 1).is_some_and(|n| n.is_ascii_digit())))
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokKind::Literal,
                    start,
                    end: i,
                    line,
                });
            }
            _ => {
                tokens.push(Token {
                    kind: TokKind::Punct(c),
                    start: i,
                    end: i + 1,
                    line,
                });
                i += 1;
            }
        }
    }

    Lexed {
        src,
        tokens,
        comments,
    }
}

/// Scans a regular (escaped) string body; `i` points past the opening quote
/// on entry and past the closing quote on exit (clamped to the buffer end on
/// an unterminated literal, so token spans never exceed the source).
fn scan_string_body(b: &[u8], i: &mut usize, line: &mut u32) {
    while *i < b.len() {
        match b[*i] {
            b'\\' => {
                // A `\<newline>` line continuation still ends a source line;
                // skipping it without counting desynchronizes every token
                // line number after the string.
                if b.get(*i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                *i += 2;
            }
            b'"' => {
                *i += 1;
                return;
            }
            b'\n' => {
                *line += 1;
                *i += 1;
            }
            _ => *i += 1,
        }
    }
    // Unterminated string ending in `\`: the escape skip may step past the
    // end; clamp so the token's end offset stays a valid slice bound.
    *i = (*i).min(b.len());
}

/// Scans a raw string body terminated by `"` followed by `hashes` `#`s.
fn scan_raw_string_body(b: &[u8], i: &mut usize, line: &mut u32, hashes: usize) {
    while *i < b.len() {
        if b[*i] == b'\n' {
            *line += 1;
            *i += 1;
        } else if b[*i] == b'"'
            && b[*i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&h| h == b'#')
                .count()
                == hashes
        {
            *i += 1 + hashes;
            return;
        } else {
            *i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        let lx = lex(src);
        (0..lx.tokens.len())
            .filter(|&i| lx.tokens[i].kind == TokKind::Ident)
            .map(|i| lx.text(i).to_string())
            .collect()
    }

    #[test]
    fn comments_are_not_tokens() {
        let lx = lex("let x = 1; // unsafe unwrap()\n/* panic! */ let y = 2;");
        assert!((0..lx.tokens.len()).all(|i| lx.text(i) != "unsafe" && lx.text(i) != "panic"));
        assert_eq!(lx.comments.len(), 2);
    }

    #[test]
    fn strings_hide_keywords() {
        assert_eq!(
            idents(r#"let s = "unsafe { unwrap() }";"#),
            vec!["let", "s"]
        );
        assert_eq!(idents(r##"let s = r#"panic!()"#;"##), vec!["let", "s"]);
        assert_eq!(idents(r#"let s = b"spawn";"#), vec!["let", "s"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lx = lex("fn f<'a>(x: &'a str) -> char { 'a' }");
        let lifetimes = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal && lx.src[t.start..].starts_with('\''))
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn nested_block_comments() {
        let lx = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert_eq!(lx.comments.len(), 1);
        assert!(lx.is_ident(0, "fn"));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let lx = lex("a\nb\n\nc");
        let lines: Vec<u32> = lx.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn escaped_quote_in_string() {
        assert_eq!(
            idents(r#"let s = "he said \"unsafe\""; done"#),
            vec!["let", "s", "done"]
        );
    }
}
