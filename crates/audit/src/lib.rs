//! errflow-audit: dependency-free static analysis for the errflow workspace.
//!
//! The unsafe SIMD microkernels, unchecked bitstream readers, and
//! lock-sharing thread pool introduced by the performance work are exactly
//! the code where a latent bug silently corrupts the error bounds the system
//! certifies. This crate enforces the workspace's soundness conventions as
//! machine-checked invariants:
//!
//! 1. `safety-comment` — every `unsafe` site carries a `// SAFETY:` note.
//! 2. `unchecked-contract` — `*_unchecked` calls carry a `debug_assert!`
//!    contract or adjacent SAFETY note.
//! 3. `panic-reach` — no `unwrap`/`expect`/`panic!` reachable from a library
//!    entry point through the workspace call graph (ratcheted: the count may
//!    only decrease).
//! 4. `unchecked-header-cast` — untrusted codec header fields flow through
//!    checked-cast helpers before indexing or allocation.
//! 5. `thread-discipline` — no `thread::spawn` outside the shared pool.
//! 6. `lock-order` — no cycles in the workspace lock-order graph, no
//!    blocking operations while a lock is held (ratcheted).
//! 7. `pool-blocking` — functions reachable from `parallel_for` job bodies
//!    must not block a pool worker (ratcheted).
//!
//! The analysis runs in two phases — a hand-rolled lexer
//! (comment/string/char-literal aware) feeding per-file token rules, then a
//! workspace symbol table + approximate call graph (see DESIGN.md §14)
//! feeding the graph rules — no regex over raw lines, no syn, no deps.

pub mod callgraph;
pub mod graph;
pub mod lexer;
pub mod locks;
pub mod report;
pub mod rules;

pub use report::{
    audit_tree, audit_tree_opts, check, counts, render_human, render_json, CheckOutcome, Ratchet,
};
pub use rules::{audit_files, audit_files_opts, audit_source, Finding, Hop};
