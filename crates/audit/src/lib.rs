//! errflow-audit: dependency-free static analysis for the errflow workspace.
//!
//! The unsafe SIMD microkernels, unchecked bitstream readers, and
//! lock-sharing thread pool introduced by the performance work are exactly
//! the code where a latent bug silently corrupts the error bounds the system
//! certifies. This crate enforces the workspace's soundness conventions as
//! machine-checked invariants:
//!
//! 1. `safety-comment` — every `unsafe` site carries a `// SAFETY:` note.
//! 2. `unchecked-contract` — `*_unchecked` calls carry a `debug_assert!`
//!    contract or adjacent SAFETY note.
//! 3. `no-panic` — no `unwrap`/`expect`/`panic!` in serve/compress/obs
//!    library paths (ratcheted: the count may only decrease).
//! 4. `unchecked-header-cast` — untrusted codec header fields flow through
//!    checked-cast helpers before indexing or allocation.
//! 5. `thread-discipline` — no `thread::spawn` outside the shared pool.
//!
//! The analysis is a hand-rolled lexer (comment/string/char-literal aware)
//! feeding token-level rules — no regex over raw lines, no syn, no deps.

pub mod lexer;
pub mod report;
pub mod rules;

pub use report::{audit_tree, check, counts, render_human, render_json, CheckOutcome, Ratchet};
pub use rules::{audit_source, Finding};
