//! Rule engine: per-file lexical rules (test spans, fn bodies, allow
//! annotations) plus orchestration of the phase-2 graph analyses.
//!
//! Rule identifiers are stable strings — they appear in reports, in
//! `// audit:allow(<rule>)` annotations, and as keys in the ratchet file.

use crate::callgraph::{self, fn_digraph, CallGraph};
use crate::graph::Digraph;
use crate::lexer::{lex, Lexed, TokKind};
use crate::locks;
use std::collections::HashMap;

pub const RULE_SAFETY: &str = "safety-comment";
pub const RULE_UNCHECKED: &str = "unchecked-contract";
pub const RULE_PANIC_REACH: &str = "panic-reach";
pub const RULE_HEADER_CAST: &str = "unchecked-header-cast";
pub const RULE_THREADS: &str = "thread-discipline";
pub const RULE_LOCK_ORDER: &str = "lock-order";
pub const RULE_POOL_BLOCK: &str = "pool-blocking";

pub const ALL_RULES: [&str; 7] = [
    RULE_SAFETY,
    RULE_UNCHECKED,
    RULE_PANIC_REACH,
    RULE_HEADER_CAST,
    RULE_THREADS,
    RULE_LOCK_ORDER,
    RULE_POOL_BLOCK,
];

/// Graph-analysis rules: waivable with `audit:allow`, ratcheted in
/// `AUDIT_RATCHET.json` (the unwaived count may only decrease).
pub const SOFT_RULES: [&str; 3] = [RULE_PANIC_REACH, RULE_LOCK_ORDER, RULE_POOL_BLOCK];

/// Rules where a finding — waived or not — fails `--check`. Only the soft
/// (graph) rules accept `audit:allow` annotations; the unsafe/untrusted-input
/// rules must be satisfied structurally.
pub fn is_hard_rule(rule: &str) -> bool {
    !SOFT_RULES.contains(&rule)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// `src/*.rs` of a library crate (and the root crate).
    Lib,
    /// `src/bin/*.rs`.
    Bin,
    /// `examples/` or `benches/`.
    Aux,
    /// Integration tests under `tests/`.
    Test,
    Other,
}

pub fn classify(rel: &str) -> FileClass {
    let rel = rel.trim_start_matches("./");
    if rel.contains("/tests/") || rel.starts_with("tests/") {
        FileClass::Test
    } else if rel.contains("/examples/")
        || rel.starts_with("examples/")
        || rel.contains("/benches/")
        || rel.starts_with("benches/")
    {
        FileClass::Aux
    } else if rel.contains("src/bin/") {
        FileClass::Bin
    } else if rel.contains("/src/") || rel.starts_with("src/") {
        FileClass::Lib
    } else {
        FileClass::Other
    }
}

/// One step of a call-chain trace: where a function (or lock-order edge)
/// on the path to a finding lives.
#[derive(Debug, Clone)]
pub struct Hop {
    pub file: String,
    pub line: u32,
    pub func: String,
}

#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
    /// True when an `// audit:allow(rule)` annotation covers the site. Waived
    /// findings are excluded from ratchet counts but still reported, and they
    /// are still fatal for hard rules.
    pub waived: bool,
    /// For graph rules: the entry-point→site call chain (empty for per-file
    /// lexical rules).  Rendered by `--explain` and always present in JSON.
    pub chain: Vec<Hop>,
}

/// Span of a function body as a token-index range `[open_brace, close_brace]`.
struct FnSpan {
    name: String,
    body: (usize, usize),
}

struct FileCtx<'a> {
    rel: &'a str,
    lx: &'a Lexed<'a>,
    class: FileClass,
    /// Token-index ranges covered by `#[cfg(test)] mod ... { }`.
    test_spans: Vec<(usize, usize)>,
    fns: Vec<FnSpan>,
    /// Line → rules waived on that line and the next.
    allows: HashMap<u32, Vec<String>>,
}

impl<'a> FileCtx<'a> {
    fn in_test(&self, tok: usize) -> bool {
        self.class == FileClass::Test || self.test_spans.iter().any(|&(a, b)| tok >= a && tok <= b)
    }

    /// Innermost function body containing token `tok`.
    fn enclosing_fn(&self, tok: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| tok >= f.body.0 && tok <= f.body.1)
            .min_by_key(|f| f.body.1 - f.body.0)
    }

    fn waived(&self, rule: &str, line: u32) -> bool {
        [line, line.saturating_sub(1)].iter().any(|l| {
            self.allows
                .get(l)
                .is_some_and(|rs| rs.iter().any(|r| r == rule))
        })
    }

    /// True when some comment containing `needle` ends within `window` lines
    /// above (or on) `line`.
    fn comment_near(&self, needle: &str, line: u32, window: u32) -> bool {
        self.lx.comments.iter().any(|c| {
            c.end_line <= line
                && c.end_line + window >= line
                && self.lx.comment_text(c).contains(needle)
        })
    }
}

/// Finds the matching close brace for the open brace at token `open`.
fn match_brace(lx: &Lexed, open: usize) -> usize {
    let mut depth = 0usize;
    for i in open..lx.tokens.len() {
        match lx.tokens[i].kind {
            TokKind::Punct(b'{') => depth += 1,
            TokKind::Punct(b'}') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    lx.tokens.len().saturating_sub(1)
}

fn build_ctx<'a>(rel: &'a str, lx: &'a Lexed<'a>, class: FileClass) -> FileCtx<'a> {
    // #[cfg(test)] mod spans: `#` `[` ... cfg ... test ... `]` then (more
    // attributes) then `mod name {`.
    let mut test_spans = Vec::new();
    let n = lx.tokens.len();
    let mut i = 0usize;
    while i < n {
        if lx.is_punct(i, b'#') && lx.is_punct(i + 1, b'[') {
            // Find matching `]`.
            let mut depth = 0usize;
            let mut close = i + 1;
            let mut saw_cfg = false;
            let mut saw_test = false;
            for j in i + 1..n {
                match lx.tokens[j].kind {
                    TokKind::Punct(b'[') => depth += 1,
                    TokKind::Punct(b']') => {
                        depth -= 1;
                        if depth == 0 {
                            close = j;
                            break;
                        }
                    }
                    TokKind::Ident => {
                        let t = lx.text(j);
                        saw_cfg |= t == "cfg";
                        saw_test |= t == "test";
                    }
                    _ => {}
                }
            }
            if saw_cfg && saw_test {
                // Skip any further attributes, then expect `mod name {`.
                let mut k = close + 1;
                while lx.is_punct(k, b'#') && lx.is_punct(k + 1, b'[') {
                    let mut d = 0usize;
                    while k < n {
                        match lx.tokens[k].kind {
                            TokKind::Punct(b'[') => d += 1,
                            TokKind::Punct(b']') => {
                                d -= 1;
                                if d == 0 {
                                    k += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
                if lx.is_ident(k, "mod") {
                    let mut open = k + 1;
                    while open < n && !lx.is_punct(open, b'{') {
                        if lx.is_punct(open, b';') {
                            break; // out-of-line module
                        }
                        open += 1;
                    }
                    if lx.is_punct(open, b'{') {
                        test_spans.push((i, match_brace(lx, open)));
                    }
                }
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }

    // Function spans: `fn` + ident name, scan to the first `{` at paren depth
    // zero (a `;` first means a bodiless trait/extern decl). `fn` followed by
    // `(` is a function-pointer type, not a declaration.
    let mut fns = Vec::new();
    for i in 0..n {
        if lx.is_ident(i, "fn")
            && matches!(lx.tokens.get(i + 1), Some(t) if t.kind == TokKind::Ident)
        {
            let name = lx.text(i + 1).to_string();
            let mut depth = 0i32;
            let mut j = i + 2;
            while j < n {
                match lx.tokens[j].kind {
                    TokKind::Punct(b'(') => depth += 1,
                    TokKind::Punct(b')') => depth -= 1,
                    TokKind::Punct(b';') if depth == 0 => break,
                    TokKind::Punct(b'{') if depth == 0 => {
                        fns.push(FnSpan {
                            name,
                            body: (j, match_brace(lx, j)),
                        });
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
    }

    // `// audit:allow(rule-a, rule-b) reason` annotations.  The reason may
    // wrap over several comment lines; the waiver attaches to the *end* of
    // the contiguous comment block so it covers the line right below it.
    let mut allows: HashMap<u32, Vec<String>> = HashMap::new();
    for (ci, c) in lx.comments.iter().enumerate() {
        let text = lx.comment_text(c);
        if let Some(at) = text.find("audit:allow(") {
            if let Some(close) = text[at..].find(')') {
                let inner = &text[at + "audit:allow(".len()..at + close];
                let rules: Vec<String> = inner
                    .split(',')
                    .map(|r| r.trim().to_string())
                    .filter(|r| !r.is_empty())
                    .collect();
                let mut end = c.end_line;
                for next in &lx.comments[ci + 1..] {
                    if next.line == end + 1 {
                        end = next.end_line;
                    } else {
                        break;
                    }
                }
                allows.entry(end).or_default().extend(rules);
            }
        }
    }

    FileCtx {
        rel,
        lx,
        class,
        test_spans,
        fns,
        allows,
    }
}

/// Runs the full engine against one source file — the per-file lexical rules
/// plus the graph analyses restricted to this file's own call graph.  `rel`
/// must be the workspace-relative path with `/` separators — rule scoping
/// keys off it.
pub fn audit_source(rel: &str, src: &str) -> Vec<Finding> {
    audit_files(&[(rel.to_string(), src.to_string())])
}

/// Runs every rule across a set of files as one workspace: phase 1 extracts
/// the symbol table and call graph, phase 2 runs the graph analyses, and the
/// per-file lexical rules run alongside.  Findings are sorted by
/// (file, line, rule) for stable reports.
pub fn audit_files(files: &[(String, String)]) -> Vec<Finding> {
    audit_files_opts(files, false)
}

/// [`audit_files`] with `strict_panics`: when set, indexing/slicing sites
/// (`buf[i]`) count as panic-capable too.  Off by default — the workspace
/// convention is that index invariants are covered by `debug_assert!`
/// contracts, and flagging every slice access would drown the signal.
pub fn audit_files_opts(files: &[(String, String)], strict_panics: bool) -> Vec<Finding> {
    let mut out = Vec::new();
    for (rel, src) in files {
        let lx = lex(src);
        let class = classify(rel);
        let ctx = build_ctx(rel, &lx, class);
        rule_safety_comment(&ctx, &mut out);
        rule_unchecked_contract(&ctx, &mut out);
        rule_header_cast(&ctx, &mut out);
        rule_thread_discipline(&ctx, &mut out);
    }
    let cg = callgraph::build(files);
    rule_panic_reach(&cg, strict_panics, &mut out);
    locks::analyze(&cg, &mut out);
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

fn push(ctx: &FileCtx, out: &mut Vec<Finding>, rule: &'static str, line: u32, message: String) {
    out.push(Finding {
        rule,
        file: ctx.rel.to_string(),
        line,
        message,
        waived: ctx.waived(rule, line),
        chain: Vec::new(),
    });
}

/// Rule 1: every `unsafe` block / fn / impl / trait carries an adjacent
/// `// SAFETY:` justification (a `# Safety` doc section also satisfies it
/// for `unsafe fn` declarations). `unsafe fn(..)` pointer *types* are not
/// declaration sites and are skipped.
fn rule_safety_comment(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !matches!(ctx.class, FileClass::Lib | FileClass::Bin | FileClass::Aux) {
        return;
    }
    let lx = ctx.lx;
    for i in 0..lx.tokens.len() {
        if !lx.is_ident(i, "unsafe") || ctx.in_test(i) {
            continue;
        }
        let what = if lx.is_punct(i + 1, b'{') {
            "unsafe block"
        } else if lx.is_ident(i + 1, "impl") {
            "unsafe impl"
        } else if lx.is_ident(i + 1, "trait") {
            "unsafe trait"
        } else if lx.is_ident(i + 1, "fn")
            && matches!(lx.tokens.get(i + 2), Some(t) if t.kind == TokKind::Ident)
        {
            "unsafe fn"
        } else if lx.is_ident(i + 1, "extern") {
            "unsafe extern"
        } else {
            continue; // `unsafe fn(..)` pointer type or similar
        };
        let line = lx.tokens[i].line;
        let justified = ctx.comment_near("SAFETY:", line, 6)
            || (what == "unsafe fn" && ctx.comment_near("# Safety", line, 8));
        if !justified {
            push(
                ctx,
                out,
                RULE_SAFETY,
                line,
                format!("{what} without an adjacent `// SAFETY:` justification"),
            );
        }
    }
}

/// Rule 2: `*_unchecked` call sites in compress/tensor must have a
/// `debug_assert!` contract in the enclosing function or a `SAFETY:` note
/// immediately above the call. Definitions (`fn foo_unchecked`) are exempt —
/// the contract belongs at the call site.
fn rule_unchecked_contract(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let scoped =
        ctx.rel.starts_with("crates/compress/src") || ctx.rel.starts_with("crates/tensor/src");
    if !scoped || ctx.class != FileClass::Lib {
        return;
    }
    let lx = ctx.lx;
    for i in 0..lx.tokens.len() {
        let t = &lx.tokens[i];
        if t.kind != TokKind::Ident || !lx.text(i).ends_with("_unchecked") || ctx.in_test(i) {
            continue;
        }
        if i > 0 && lx.is_ident(i - 1, "fn") {
            continue; // definition, not a call
        }
        // Call syntax: `name(` or `name::<..>(`.
        if !(lx.is_punct(i + 1, b'(') || lx.is_punct(i + 1, b':')) {
            continue;
        }
        let has_contract = match ctx.enclosing_fn(i) {
            Some(f) => (f.body.0..=f.body.1).any(|j| {
                lx.tokens[j].kind == TokKind::Ident && lx.text(j).starts_with("debug_assert")
            }),
            None => false,
        };
        if !has_contract && !ctx.comment_near("SAFETY:", t.line, 3) {
            push(
                ctx,
                out,
                RULE_UNCHECKED,
                t.line,
                format!(
                    "`{}` call without a debug_assert! contract in the enclosing fn or an adjacent SAFETY note",
                    lx.text(i)
                ),
            );
        }
    }
}

/// Library paths whose every public-facing function is an analysis entry
/// point for panic-reachability: the serve/decode request paths, the frame
/// parsers facing untrusted bytes, observability (which must never take a
/// server down), and the nn/quant model paths.
const ENTRY_PATHS: [&str; 6] = [
    "crates/serve/src",
    "crates/compress/src",
    "crates/obs/src",
    "crates/net/src",
    "crates/nn/src",
    "crates/quant/src",
];

/// Tooling crates whose panic sites never fire: the audit tool itself and
/// the bench harness are developer-facing, not on any serving path.
const TOOL_PATHS: [&str; 2] = ["crates/audit/src", "crates/bench/src"];

/// Rule 3 (ratcheted): interprocedural panic-reachability.  Every non-test
/// library function in an [`ENTRY_PATHS`] crate is an entry point; panic
/// sites (`unwrap`/`expect`/`panic!`-family, plus indexing under
/// `--strict-panics`) fire in any library function reachable from an entry
/// through the approximate call graph — including helpers in `tensor`,
/// `core`, `pipeline`, and `scidata` that the entry crates call into.
/// Sites may be waived with `// audit:allow(panic-reach) reason`.
fn rule_panic_reach(cg: &CallGraph, strict_panics: bool, out: &mut Vec<Finding>) {
    let g = fn_digraph(cg);
    let seeds: Vec<u32> = (0..cg.fns.len())
        .filter(|&i| {
            let file = cg.file_of(i);
            !cg.fns[i].is_test
                && file.class == FileClass::Lib
                && ENTRY_PATHS.iter().any(|p| file.rel.starts_with(p))
        })
        .map(|i| i as u32)
        .collect();
    let parents = g.bfs_parents(&seeds);
    for (i, f) in cg.fns.iter().enumerate() {
        if parents[i].is_none() || f.is_test {
            continue;
        }
        let file = cg.file_of(i);
        if file.class != FileClass::Lib || TOOL_PATHS.iter().any(|p| file.rel.starts_with(p)) {
            continue;
        }
        for site in &f.panics {
            if site.indexing && !strict_panics {
                continue;
            }
            let chain: Vec<Hop> = Digraph::path_to(&parents, i as u32)
                .into_iter()
                .map(|v| Hop {
                    file: cg.file_of(v as usize).rel.clone(),
                    line: cg.fns[v as usize].line,
                    func: cg.fns[v as usize].name.clone(),
                })
                .collect();
            let via = if chain.len() > 1 {
                format!(" (reachable from entry `{}`)", chain[0].func)
            } else {
                String::new()
            };
            out.push(Finding {
                rule: RULE_PANIC_REACH,
                file: file.rel.clone(),
                line: site.line,
                message: format!(
                    "`{}` reachable from a library entry point{via} — return a typed error or annotate with audit:allow(panic-reach)",
                    site.what
                ),
                waived: cg.waived(i, RULE_PANIC_REACH, site.line),
                chain,
            });
        }
    }
}

const HEADER_READ_TRIGGERS: [&str; 6] = [
    "from_le_bytes",
    "from_be_bytes",
    "read_u64",
    "read_u32",
    "read_u16",
    "read_varint",
];

/// Rule 4: inside codec decode/parse functions in `compress/src`, a raw
/// `as usize` cast in the same statement as a header-field read is flagged —
/// untrusted counts must flow through the checked helpers in `traits.rs`
/// before they are used for indexing or allocation. `reference.rs` (the
/// frozen seed-parity oracle) is out of scope by configuration.
fn rule_header_cast(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !ctx.rel.starts_with("crates/compress/src")
        || ctx.class != FileClass::Lib
        || ctx.rel.ends_with("/reference.rs")
    {
        return;
    }
    let lx = ctx.lx;
    for f in &ctx.fns {
        let lower = f.name.to_lowercase();
        if !(lower.contains("decode") || lower.contains("decompress") || lower.contains("parse")) {
            continue;
        }
        for i in f.body.0..=f.body.1 {
            if !(lx.is_ident(i, "as") && lx.is_ident(i + 1, "usize")) || ctx.in_test(i) {
                continue;
            }
            // Scan back to the start of the statement and look for a read.
            let mut j = i;
            let mut tainted = false;
            while j > f.body.0 {
                j -= 1;
                match lx.tokens[j].kind {
                    TokKind::Punct(b';') | TokKind::Punct(b'{') | TokKind::Punct(b'}') => break,
                    TokKind::Ident => {
                        if HEADER_READ_TRIGGERS.contains(&lx.text(j)) {
                            tainted = true;
                        }
                    }
                    _ => {}
                }
            }
            if tainted {
                push(
                    ctx,
                    out,
                    RULE_HEADER_CAST,
                    lx.tokens[i].line,
                    format!(
                        "raw `as usize` on a header read in `{}` — use the checked helpers in compress::traits",
                        f.name
                    ),
                );
            }
        }
    }
}

/// Rule 5: no `std::thread::spawn` / `thread::Builder` outside
/// `tensor/src/pool.rs`. Scoped `thread::scope` spawns are allowed — they
/// are joined before the caller returns.
fn rule_thread_discipline(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.rel.ends_with("tensor/src/pool.rs")
        || !matches!(ctx.class, FileClass::Lib | FileClass::Bin | FileClass::Aux)
    {
        return;
    }
    let lx = ctx.lx;
    for i in 3..lx.tokens.len() {
        let text = match lx.tokens[i].kind {
            TokKind::Ident => lx.text(i),
            _ => continue,
        };
        if !(text == "spawn" || text == "Builder") || ctx.in_test(i) {
            continue;
        }
        let path_call =
            lx.is_punct(i - 1, b':') && lx.is_punct(i - 2, b':') && lx.is_ident(i - 3, "thread");
        if path_call {
            push(
                ctx,
                out,
                RULE_THREADS,
                lx.tokens[i].line,
                format!("`thread::{text}` outside tensor/src/pool.rs — route work through the shared pool"),
            );
        }
    }
}
