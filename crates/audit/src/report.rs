//! Workspace walking, report rendering (human + JSON), and the per-rule
//! ratchet baselines for the soft (graph) rules.

use crate::rules::{self, Finding};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Directories never descended into. The audit fixtures are deliberately-bad
/// snippets and must not be linted as workspace source.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "node_modules", "fixtures"];

/// Collects every auditable `.rs` file under `root`, sorted for stable
/// reports, as (workspace-relative path, contents).
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let rel = rel_path(root, &path);
        if rules::classify(&rel) == rules::FileClass::Other {
            continue;
        }
        out.push((rel, fs::read_to_string(&path)?));
    }
    Ok(out)
}

fn rel_path(root: &Path, path: &PathBuf) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Audits every source file under `root` as one workspace (the call-graph
/// rules see cross-file edges).
pub fn audit_tree(root: &Path) -> std::io::Result<Vec<Finding>> {
    audit_tree_opts(root, false)
}

/// [`audit_tree`] with the `--strict-panics` toggle.
pub fn audit_tree_opts(root: &Path, strict_panics: bool) -> std::io::Result<Vec<Finding>> {
    let files = collect_sources(root)?;
    Ok(rules::audit_files_opts(&files, strict_panics))
}

/// Per-rule counts of unwaived and waived findings.
pub fn counts(findings: &[Finding]) -> BTreeMap<&'static str, (usize, usize)> {
    let mut map: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
    for rule in rules::ALL_RULES {
        map.insert(rule, (0, 0));
    }
    for f in findings {
        let e = map.entry(f.rule).or_insert((0, 0));
        if f.waived {
            e.1 += 1;
        } else {
            e.0 += 1;
        }
    }
    map
}

pub fn render_human(findings: &[Finding], ratchet: &Ratchet, explain: bool) -> String {
    let mut out = String::new();
    let counts = counts(findings);
    out.push_str("errflow-audit report\n");
    for (rule, (open, waived)) in &counts {
        let baseline = if rules::SOFT_RULES.contains(rule) {
            format!(" (ratchet baseline {})", ratchet.baseline(rule))
        } else {
            String::new()
        };
        out.push_str(&format!(
            "  {rule:<22} {open} findings, {waived} waived{baseline}\n"
        ));
    }
    for f in findings {
        let tag = if f.waived { " [waived]" } else { "" };
        out.push_str(&format!(
            "{}:{} [{}]{} {}\n",
            f.file, f.line, f.rule, tag, f.message
        ));
        if explain && !f.chain.is_empty() {
            out.push_str("    chain:");
            for (i, hop) in f.chain.iter().enumerate() {
                let arrow = if i == 0 { " " } else { " -> " };
                out.push_str(&format!("{arrow}{} ({}:{})", hop.func, hop.file, hop.line));
            }
            out.push('\n');
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON report, schema version 2.  Key order is fixed (`version`,
/// `findings`, `counts`, `ratchet`; per-finding `rule`, `file`, `line`,
/// `waived`, `message`, `chain`) so downstream tooling can golden-test it.
pub fn render_json(findings: &[Finding], ratchet: &Ratchet) -> String {
    let mut out = String::from("{\n  \"version\": 2,\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let comma = if i + 1 < findings.len() { "," } else { "" };
        let chain: Vec<String> = f
            .chain
            .iter()
            .map(|h| {
                format!(
                    "{{\"file\": \"{}\", \"line\": {}, \"func\": \"{}\"}}",
                    json_escape(&h.file),
                    h.line,
                    json_escape(&h.func)
                )
            })
            .collect();
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"waived\": {}, \"message\": \"{}\", \"chain\": [{}]}}{}\n",
            f.rule,
            json_escape(&f.file),
            f.line,
            f.waived,
            json_escape(&f.message),
            chain.join(", "),
            comma
        ));
    }
    out.push_str("  ],\n  \"counts\": {\n");
    let counts = counts(findings);
    let n = counts.len();
    for (i, (rule, (open, waived))) in counts.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        out.push_str(&format!(
            "    \"{rule}\": {{\"open\": {open}, \"waived\": {waived}}}{comma}\n"
        ));
    }
    out.push_str("  },\n  \"ratchet\": {\n");
    let mut soft = rules::SOFT_RULES;
    soft.sort_unstable();
    for (i, rule) in soft.iter().enumerate() {
        let comma = if i + 1 < soft.len() { "," } else { "" };
        out.push_str(&format!(
            "    \"{rule}\": {}{comma}\n",
            ratchet.baseline(rule)
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// The checked-in ratchet baseline: per-rule maximum unwaived finding counts.
/// `--check` fails when a ratcheted rule exceeds its baseline; shrink the
/// baseline (via `--update-ratchet`) whenever debt is paid down so the count
/// can only decrease.
#[derive(Debug, Default)]
pub struct Ratchet {
    baselines: BTreeMap<String, usize>,
}

impl Ratchet {
    pub fn baseline(&self, rule: &str) -> usize {
        self.baselines.get(rule).copied().unwrap_or(0)
    }

    pub fn set(&mut self, rule: &str, value: usize) {
        self.baselines.insert(rule.to_string(), value);
    }

    /// Parses the minimal `{"rule": count, ...}` JSON object this tool writes.
    pub fn parse(text: &str) -> Option<Ratchet> {
        let mut baselines = BTreeMap::new();
        let mut rest = text;
        while let Some(q) = rest.find('"') {
            rest = &rest[q + 1..];
            let end = rest.find('"')?;
            let key = &rest[..end];
            rest = &rest[end + 1..];
            let colon = rest.find(':')?;
            rest = &rest[colon + 1..];
            let digits: String = rest
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect();
            if digits.is_empty() {
                return None;
            }
            baselines.insert(key.to_string(), digits.parse().ok()?);
        }
        Some(Ratchet { baselines })
    }

    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        let n = self.baselines.len();
        for (i, (rule, count)) in self.baselines.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            out.push_str(&format!("  \"{rule}\": {count}{comma}\n"));
        }
        out.push('}');
        out.push('\n');
        out
    }
}

/// Outcome of `--check`: violations that should fail CI, and improvement
/// notices (count strictly below baseline → the baseline should be ratcheted
/// down, but that is advice, not failure).
pub struct CheckOutcome {
    pub violations: Vec<String>,
    pub notices: Vec<String>,
}

pub fn check(findings: &[Finding], ratchet: &Ratchet) -> CheckOutcome {
    let mut violations = Vec::new();
    let mut notices = Vec::new();
    for (rule, (open, waived)) in counts(findings) {
        if rules::is_hard_rule(rule) {
            if open + waived > 0 {
                violations.push(format!(
                    "rule {rule}: {} finding(s) — this rule accepts no waivers",
                    open + waived
                ));
            }
        } else {
            let baseline = ratchet.baseline(rule);
            if open > baseline {
                violations.push(format!(
                    "rule {rule}: {open} unwaived finding(s) exceed the ratchet baseline of {baseline}"
                ));
            } else if open < baseline {
                notices.push(format!(
                    "rule {rule}: {open} finding(s), below baseline {baseline} — run --update-ratchet to lock in the improvement"
                ));
            }
        }
    }
    CheckOutcome {
        violations,
        notices,
    }
}
