//! Phase 1 of the audit engine: workspace symbol table and approximate call
//! graph, extracted straight from the lexer token stream (no syn, no deps).
//!
//! Per file we record every function definition (including the enclosing
//! `impl` type), and per function: the calls it makes, its panic-capable
//! sites, its lexical lock-acquisition sequence with the set of locks held
//! at each point, and its blocking operations.  Closures passed to
//! `parallel_for` are carved out as synthetic "job" functions so the
//! pool-blocking rule can treat them as analysis roots.
//!
//! The graph is *approximate* by design — see DESIGN.md §14 for the
//! over/under-approximations.  The two load-bearing choices:
//!
//! * **Name-based resolution.**  A call resolves to every workspace function
//!   with a matching name (filtered by the `Type::` qualifier when present,
//!   with `Self::` rewritten to the caller's impl type).  Method calls whose
//!   names collide with ubiquitous std-collection methods (`push`, `get`,
//!   `len`, …) are dropped instead of linking half the workspace together.
//! * **Lexical guard scopes.**  A `let`-bound lock guard is held from its
//!   acquisition to the end of the enclosing block, ended early by
//!   `drop(guard)` or by a condvar wait that consumes it; a temporary guard
//!   is held to the end of its statement.

use crate::graph::Digraph;
use crate::lexer::{lex, Lexed, TokKind};
use crate::rules::{classify, FileClass};
use std::collections::HashMap;

/// Method names too generic to resolve by name: linking every `.push(` to
/// every workspace `fn push` would collapse the graph into one blob.  Calls
/// through these names are silently unresolved (a documented
/// under-approximation); `Type::name` qualified calls still resolve.
const COMMON_METHODS: [&str; 40] = [
    "new",
    "len",
    "is_empty",
    "push",
    "pop",
    "get",
    "get_mut",
    "insert",
    "remove",
    "clear",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "clone",
    "drain",
    "extend",
    "append",
    "take",
    "swap",
    "truncate",
    "resize",
    "contains",
    "split",
    "first",
    "last",
    "min",
    "max",
    "map",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "ok_or",
    "ok_or_else",
    "as_ref",
    "as_mut",
    "to_vec",
    "to_string",
    "cmp",
    "eq",
];

/// Rust keywords that look like free calls when followed by `(`.
const KEYWORDS: [&str; 30] = [
    "if", "while", "for", "match", "return", "loop", "in", "as", "fn", "let", "mut", "ref", "move",
    "impl", "pub", "use", "mod", "where", "unsafe", "async", "await", "dyn", "break", "continue",
    "else", "enum", "struct", "trait", "type", "const",
];

/// Condvar wait family: consumes the guard passed to it (the lock is
/// released while parked), and parks the calling thread.
const WAIT_FNS: [&str; 5] = [
    "wait",
    "wait_timeout",
    "wait_recover",
    "wait_while",
    "wait_timeout_while",
];

/// Blocking operations recognised lexically.  `lock_only` entries only count
/// when a lock is held (e.g. `send` blocks only on a rendezvous/bounded
/// channel, so it is not flagged on pool paths where it is usually the
/// completion hand-off).
const BLOCKING_METHODS: [(&str, bool); 8] = [
    ("recv", false),
    ("recv_timeout", false),
    ("join", false),
    ("accept", false),
    ("connect", false),
    ("read_to_string", false),
    ("read_to_end", false),
    ("send", true),
];
const BLOCKING_FREE: [(&str, bool); 3] = [("sleep", false), ("poll", false), ("open", false)];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `.name(` — receiver type unknown.
    Method,
    /// `name(` with no path or receiver.
    Free,
    /// `Qual::name(`.
    Path,
}

#[derive(Debug, Clone)]
pub struct CallRef {
    pub name: String,
    pub qual: Option<String>,
    pub kind: CallKind,
    pub line: u32,
    /// Lock identities held lexically at the call site.
    pub held: Vec<String>,
}

#[derive(Debug, Clone)]
pub struct PanicSite {
    /// The token that can panic (`unwrap`, `panic`, `[]`, …).
    pub what: String,
    pub line: u32,
    /// True for indexing/slicing sites — only reported under
    /// `--strict-panics` (they panic in debug paths on out-of-bounds).
    pub indexing: bool,
}

#[derive(Debug, Clone)]
pub struct Acquire {
    /// Lock identity: `<crate>:<last receiver field>`.
    pub lock: String,
    pub line: u32,
    /// Locks already held when this one is acquired (lock-order edges).
    pub held: Vec<String>,
}

#[derive(Debug, Clone)]
pub struct BlockOp {
    pub what: String,
    pub line: u32,
    pub held: Vec<String>,
    /// Only a hazard while a lock is held (see [`BLOCKING_METHODS`]).
    pub lock_only: bool,
}

#[derive(Debug)]
pub struct FnInfo {
    pub name: String,
    /// Enclosing `impl` type, when any.
    pub qual: Option<String>,
    pub file: usize,
    pub line: u32,
    pub is_test: bool,
    /// Synthetic function for a closure passed to `parallel_for`.
    pub job_root: bool,
    pub calls: Vec<CallRef>,
    pub panics: Vec<PanicSite>,
    pub acquires: Vec<Acquire>,
    pub blocks: Vec<BlockOp>,
}

#[derive(Debug)]
pub struct FileFacts {
    pub rel: String,
    pub class: FileClass,
    /// Line → rules waived on that line and the next (audit:allow).
    pub allows: HashMap<u32, Vec<String>>,
}

/// The resolved workspace call graph: phase-2 analyses run over this.
pub struct CallGraph {
    pub fns: Vec<FnInfo>,
    pub files: Vec<FileFacts>,
    /// Resolved call edges per function, with the call line in the caller.
    pub callees: Vec<Vec<(u32, u32)>>,
}

impl CallGraph {
    pub fn file_of(&self, f: usize) -> &FileFacts {
        &self.files[self.fns[f].file]
    }

    /// True when `rule` is waived at `line` of the file containing fn `f`.
    pub fn waived(&self, f: usize, rule: &str, line: u32) -> bool {
        let allows = &self.file_of(f).allows;
        [line, line.saturating_sub(1)]
            .iter()
            .any(|l| allows.get(l).is_some_and(|rs| rs.iter().any(|r| r == rule)))
    }
}

/// The function-level digraph (edges caller → callee) for BFS analyses.
pub fn fn_digraph(cg: &CallGraph) -> Digraph {
    let mut g = Digraph::new(cg.fns.len());
    for (i, edges) in cg.callees.iter().enumerate() {
        for &(t, _) in edges {
            g.add_edge(i as u32, t);
        }
    }
    g
}

/// Builds the workspace call graph from `(relative path, source)` pairs.
pub fn build(files: &[(String, String)]) -> CallGraph {
    let mut fns = Vec::new();
    let mut facts = Vec::new();
    for (idx, (rel, src)) in files.iter().enumerate() {
        let lx = lex(src);
        let class = classify(rel);
        let crate_name = crate_of(rel);
        extract_file(idx, rel, &lx, class, crate_name, &mut fns, &mut facts);
    }
    let callees = resolve(&fns);
    CallGraph {
        fns,
        files: facts,
        callees,
    }
}

/// `crates/<name>/… → name`, everything else → `root`.
fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("root")
}

// ---------------------------------------------------------------------------
// Extraction
// ---------------------------------------------------------------------------

struct Span {
    name: String,
    qual: Option<String>,
    line: u32,
    /// Token range `[open_brace, close_brace]` of the body.
    body: (usize, usize),
    job_root: bool,
}

fn match_brace(lx: &Lexed, open: usize) -> usize {
    let mut depth = 0usize;
    for i in open..lx.tokens.len() {
        match lx.tokens[i].kind {
            TokKind::Punct(b'{') => depth += 1,
            TokKind::Punct(b'}') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    lx.tokens.len().saturating_sub(1)
}

/// `#[cfg(test)] mod … { }` token ranges (same walk as the per-file rules).
fn test_spans(lx: &Lexed) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let n = lx.tokens.len();
    let mut i = 0usize;
    while i < n {
        if lx.is_punct(i, b'#') && lx.is_punct(i + 1, b'[') {
            let mut depth = 0usize;
            let mut close = i + 1;
            let mut saw_cfg = false;
            let mut saw_test = false;
            for j in i + 1..n {
                match lx.tokens[j].kind {
                    TokKind::Punct(b'[') => depth += 1,
                    TokKind::Punct(b']') => {
                        depth -= 1;
                        if depth == 0 {
                            close = j;
                            break;
                        }
                    }
                    TokKind::Ident => {
                        let t = lx.text(j);
                        saw_cfg |= t == "cfg";
                        saw_test |= t == "test";
                    }
                    _ => {}
                }
            }
            if saw_cfg && saw_test {
                let mut k = close + 1;
                while lx.is_punct(k, b'#') && lx.is_punct(k + 1, b'[') {
                    let mut d = 0usize;
                    while k < n {
                        match lx.tokens[k].kind {
                            TokKind::Punct(b'[') => d += 1,
                            TokKind::Punct(b']') => {
                                d -= 1;
                                if d == 0 {
                                    k += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
                if lx.is_ident(k, "mod") {
                    let mut open = k + 1;
                    while open < n && !lx.is_punct(open, b'{') {
                        if lx.is_punct(open, b';') {
                            break;
                        }
                        open += 1;
                    }
                    if lx.is_punct(open, b'{') {
                        spans.push((i, match_brace(lx, open)));
                    }
                }
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    spans
}

/// `impl` block ranges with the implemented type's last path segment
/// (`impl Compressor for Huffman { … }` → `Huffman`).
fn impl_spans(lx: &Lexed) -> Vec<(usize, usize, String)> {
    let n = lx.tokens.len();
    let mut out = Vec::new();
    for i in 0..n {
        if !lx.is_ident(i, "impl") {
            continue;
        }
        let mut j = i + 1;
        // Skip the generic parameter list, tracking angle depth.
        if lx.is_punct(j, b'<') {
            let mut depth = 0i32;
            while j < n {
                match lx.tokens[j].kind {
                    TokKind::Punct(b'<') => depth += 1,
                    TokKind::Punct(b'>') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // Walk to the body `{`, remembering the last path segment seen and
        // whether a top-level `for` switched us to the implemented type.
        let mut ty: Option<String> = None;
        let mut angle = 0i32;
        while j < n {
            match lx.tokens[j].kind {
                TokKind::Punct(b'<') => angle += 1,
                TokKind::Punct(b'>') => angle -= 1,
                TokKind::Punct(b'{') if angle <= 0 => break,
                TokKind::Punct(b';') => break, // `impl Trait for Type;`-like degenerate
                TokKind::Ident if angle <= 0 => {
                    let t = lx.text(j);
                    if t == "for" {
                        ty = None; // the type after `for` wins
                    } else if t == "where" {
                        break;
                    } else if !matches!(t, "dyn" | "const" | "unsafe" | "mut") && ty.is_none() {
                        // First segment of the (trait or type) path; extend
                        // through `::`.
                        let mut k = j;
                        while lx.is_punct(k + 1, b':')
                            && lx.is_punct(k + 2, b':')
                            && matches!(lx.tokens.get(k + 3), Some(t) if t.kind == TokKind::Ident)
                        {
                            k += 3;
                        }
                        ty = Some(lx.text(k).to_string());
                    }
                }
                _ => {}
            }
            j += 1;
        }
        // `j` is at `{` (or past a degenerate impl): find the body.
        while j < n && !lx.is_punct(j, b'{') {
            j += 1;
        }
        if j < n {
            if let Some(t) = ty {
                out.push((j, match_brace(lx, j), t));
            }
        }
    }
    out
}

/// Named function spans (`fn name … { body }`).
fn fn_spans(lx: &Lexed, impls: &[(usize, usize, String)]) -> Vec<Span> {
    let n = lx.tokens.len();
    let mut out = Vec::new();
    for i in 0..n {
        if !(lx.is_ident(i, "fn")
            && matches!(lx.tokens.get(i + 1), Some(t) if t.kind == TokKind::Ident))
        {
            continue;
        }
        let name = lx.text(i + 1).to_string();
        let mut depth = 0i32;
        let mut j = i + 2;
        while j < n {
            match lx.tokens[j].kind {
                TokKind::Punct(b'(') => depth += 1,
                TokKind::Punct(b')') => depth -= 1,
                TokKind::Punct(b';') if depth == 0 => break,
                TokKind::Punct(b'{') if depth == 0 => {
                    let body = (j, match_brace(lx, j));
                    let qual = impls
                        .iter()
                        .filter(|&&(a, b, _)| j >= a && j <= b)
                        .min_by_key(|&&(a, b, _)| b - a)
                        .map(|(_, _, t)| t.clone());
                    out.push(Span {
                        name,
                        qual,
                        line: lx.tokens[i].line,
                        body,
                        job_root: false,
                    });
                    break;
                }
                _ => {}
            }
            j += 1;
        }
    }
    out
}

/// Closure bodies passed to `parallel_for` — synthetic job-root spans.  The
/// closure may be a literal last argument (`parallel_for(n, t, |i| { … })`,
/// with optional `move`/`&`) or a reference to a `let`-bound closure in the
/// enclosing function (`parallel_for(n, t, &decode_one)`).
fn job_spans(lx: &Lexed, fns: &[Span]) -> Vec<Span> {
    let n = lx.tokens.len();
    let mut out = Vec::new();
    for i in 0..n {
        if !lx.is_ident(i, "parallel_for") || !lx.is_punct(i + 1, b'(') {
            continue;
        }
        let line = lx.tokens[i].line;
        let close = {
            let mut depth = 0i32;
            let mut j = i + 1;
            loop {
                if j >= n {
                    break n - 1;
                }
                match lx.tokens[j].kind {
                    TokKind::Punct(b'(') => depth += 1,
                    TokKind::Punct(b')') => {
                        depth -= 1;
                        if depth == 0 {
                            break j;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        };
        // Find the start of the last top-level argument.
        let mut depth = 0i32;
        let mut arg_start = i + 2;
        for j in i + 1..close {
            match lx.tokens[j].kind {
                TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'{') => depth += 1,
                TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'}') => depth -= 1,
                TokKind::Punct(b',') if depth == 1 => arg_start = j + 1,
                _ => {}
            }
        }
        let body = closure_body(lx, arg_start, close, fns);
        if let Some(body) = body {
            out.push(Span {
                name: format!("[pool job @{line}]"),
                qual: None,
                line,
                body,
                job_root: true,
            });
        }
    }
    out
}

/// Resolves the token range of a closure body given the start of a
/// `parallel_for` job argument.
fn closure_body(
    lx: &Lexed,
    mut start: usize,
    call_close: usize,
    fns: &[Span],
) -> Option<(usize, usize)> {
    // Skip `&` and `move`.
    while lx.is_punct(start, b'&') || lx.is_ident(start, "move") {
        start += 1;
    }
    if lx.is_punct(start, b'|') {
        // Literal closure: skip the parameter list `|…|`, then expect `{`.
        let mut j = start + 1;
        while j < call_close && !lx.is_punct(j, b'|') {
            j += 1;
        }
        j += 1;
        if lx.is_punct(j, b'{') {
            return Some((j, match_brace(lx, j)));
        }
        // Expression closure `|i| expr`: span to the call's `)`.
        return Some((j, call_close.saturating_sub(1)));
    }
    if matches!(lx.tokens.get(start), Some(t) if t.kind == TokKind::Ident) {
        // `&name`: find `let name = … |…| { … }` in some function span.
        let want = lx.text(start);
        for f in fns {
            for k in f.body.0..f.body.1 {
                if lx.is_ident(k, "let") && lx.is_ident(k + 1, want) && lx.is_punct(k + 2, b'=') {
                    let mut j = k + 3;
                    while lx.is_punct(j, b'&') || lx.is_ident(j, "move") {
                        j += 1;
                    }
                    if lx.is_punct(j, b'|') {
                        let mut m = j + 1;
                        while m < f.body.1 && !lx.is_punct(m, b'|') {
                            m += 1;
                        }
                        m += 1;
                        if lx.is_punct(m, b'{') {
                            return Some((m, match_brace(lx, m)));
                        }
                    }
                }
            }
        }
    }
    None
}

/// `audit:allow(rule-a, rule-b)` waiver lines (attached to the end of the
/// contiguous comment block, covering the line below).
fn allow_lines(lx: &Lexed) -> HashMap<u32, Vec<String>> {
    let mut allows: HashMap<u32, Vec<String>> = HashMap::new();
    for (ci, c) in lx.comments.iter().enumerate() {
        let text = lx.comment_text(c);
        if let Some(at) = text.find("audit:allow(") {
            if let Some(close) = text[at..].find(')') {
                let inner = &text[at + "audit:allow(".len()..at + close];
                let rules: Vec<String> = inner
                    .split(',')
                    .map(|r| r.trim().to_string())
                    .filter(|r| !r.is_empty())
                    .collect();
                let mut end = c.end_line;
                for next in &lx.comments[ci + 1..] {
                    if next.line == end + 1 {
                        end = next.end_line;
                    } else {
                        break;
                    }
                }
                allows.entry(end).or_default().extend(rules);
            }
        }
    }
    allows
}

/// A lexically-held lock guard.
struct Guard {
    lock: String,
    binding: Option<String>,
    /// Last token index at which the guard is considered held.
    end_tok: usize,
}

fn extract_file(
    file_idx: usize,
    rel: &str,
    lx: &Lexed,
    class: FileClass,
    crate_name: &str,
    fns_out: &mut Vec<FnInfo>,
    facts_out: &mut Vec<FileFacts>,
) {
    let tests = test_spans(lx);
    let impls = impl_spans(lx);
    let mut spans = fn_spans(lx, &impls);
    let jobs = job_spans(lx, &spans);
    spans.extend(jobs);
    // Deterministic order: by body start.
    spans.sort_by_key(|s| s.body.0);

    let in_test =
        |tok: usize| class == FileClass::Test || tests.iter().any(|&(a, b)| tok >= a && tok <= b);

    for si in 0..spans.len() {
        let span = &spans[si];
        // Child spans strictly inside this one are walked separately.
        let children: Vec<(usize, usize)> = spans
            .iter()
            .enumerate()
            .filter(|&(sj, s)| sj != si && s.body.0 > span.body.0 && s.body.1 <= span.body.1)
            .map(|(_, s)| s.body)
            .collect();
        let mut info = FnInfo {
            name: span.name.clone(),
            qual: span.qual.clone(),
            file: file_idx,
            line: span.line,
            is_test: in_test(span.body.0),
            job_root: span.job_root,
            calls: Vec::new(),
            panics: Vec::new(),
            acquires: Vec::new(),
            blocks: Vec::new(),
        };
        walk_body(lx, span, &children, crate_name, &mut info);
        // A named fn that owns a job closure still "calls" it (the serve
        // decode path invokes the same closure inline on the 1-thread
        // branch), so reachability flows into job bodies.
        if !span.job_root {
            for s in spans.iter().filter(|s| s.job_root) {
                if s.body.0 > span.body.0 && s.body.1 <= span.body.1 {
                    info.calls.push(CallRef {
                        name: s.name.clone(),
                        qual: None,
                        kind: CallKind::Free,
                        line: lx.tokens[s.body.0].line,
                        held: Vec::new(),
                    });
                }
            }
        }
        fns_out.push(info);
    }

    facts_out.push(FileFacts {
        rel: rel.to_string(),
        class,
        allows: allow_lines(lx),
    });
}

/// Single forward walk over one function body: statement tracking, guard
/// scopes, and per-site extraction.
fn walk_body(
    lx: &Lexed,
    span: &Span,
    children: &[(usize, usize)],
    crate_name: &str,
    out: &mut FnInfo,
) {
    let (open, close) = span.body;
    let mut guards: Vec<Guard> = Vec::new();
    let mut stmt_start = open + 1;
    let mut i = open + 1;
    while i < close {
        // Skip nested fn/job bodies entirely.
        if let Some(&(_, c_end)) = children.iter().find(|&&(c_start, _)| c_start == i) {
            i = c_end + 1;
            stmt_start = i;
            continue;
        }
        // Expire guards whose lexical span ended before this token.
        guards.retain(|g| g.end_tok >= i);

        let tok = &lx.tokens[i];
        match tok.kind {
            TokKind::Punct(b';') | TokKind::Punct(b'{') | TokKind::Punct(b'}') => {
                stmt_start = i + 1;
                i += 1;
                continue;
            }
            TokKind::Ident => {}
            _ => {
                // Indexing site: `ident[`, `)[`, `][` (never `#[`, `![`, `=[`).
                if let TokKind::Punct(b'[') = tok.kind {
                    if i > open
                        && (matches!(lx.tokens[i - 1].kind, TokKind::Ident)
                            || matches!(lx.tokens[i - 1].kind, TokKind::Punct(b')'))
                            || matches!(lx.tokens[i - 1].kind, TokKind::Punct(b']')))
                    {
                        out.panics.push(PanicSite {
                            what: "[]".into(),
                            line: tok.line,
                            indexing: true,
                        });
                    }
                }
                i += 1;
                continue;
            }
        }

        let text = lx.text(i);
        let line = tok.line;
        let held: Vec<String> = guards.iter().map(|g| g.lock.clone()).collect();

        // --- panic-capable sites -----------------------------------------
        let panic_hit = match text {
            "unwrap" | "expect" => i > 0 && lx.is_punct(i - 1, b'.') && lx.is_punct(i + 1, b'('),
            "panic" | "unreachable" | "todo" | "unimplemented" => lx.is_punct(i + 1, b'!'),
            _ => false,
        };
        if panic_hit {
            out.panics.push(PanicSite {
                what: text.to_string(),
                line,
                indexing: false,
            });
        }

        // --- drop(guard) --------------------------------------------------
        if text == "drop" && lx.is_punct(i + 1, b'(') {
            if let Some(TokKind::Ident) = lx.tokens.get(i + 2).map(|t| t.kind) {
                let name = lx.text(i + 2);
                guards.retain(|g| g.binding.as_deref() != Some(name));
            }
        }

        // --- condvar waits: consume the guard passed in -------------------
        if WAIT_FNS.contains(&text) && lx.is_punct(i + 1, b'(') {
            let args_end = matching_paren(lx, i + 1, close);
            let mut consumed = Vec::new();
            for g in &guards {
                if let Some(b) = &g.binding {
                    if (i + 2..args_end).any(|j| lx.is_ident(j, b)) {
                        consumed.push(b.clone());
                    }
                }
            }
            guards.retain(|g| {
                g.binding
                    .as_ref()
                    .map(|b| !consumed.contains(b))
                    .unwrap_or(true)
            });
            let held_after: Vec<String> = guards.iter().map(|g| g.lock.clone()).collect();
            out.blocks.push(BlockOp {
                what: text.to_string(),
                line,
                held: held_after,
                lock_only: false,
            });
            i += 1;
            continue;
        }

        // --- lock acquisitions -------------------------------------------
        let acquired = if text == "lock_recover" && lx.is_punct(i + 1, b'(') {
            lock_id_from_args(lx, i + 1, close, crate_name)
        } else if (text == "lock" || text == "try_lock")
            && i > 0
            && lx.is_punct(i - 1, b'.')
            && lx.is_punct(i + 1, b'(')
        {
            lock_id_from_receiver(lx, i - 1, crate_name)
        } else {
            None
        };
        if let Some(lock) = acquired {
            out.acquires.push(Acquire {
                lock: lock.clone(),
                line,
                held: held.clone(),
            });
            let (binding, end_tok) = guard_scope(lx, stmt_start, i, open, close);
            guards.push(Guard {
                lock,
                binding,
                end_tok,
            });
            i += 1;
            continue;
        }

        // --- blocking operations -----------------------------------------
        let block = BLOCKING_METHODS
            .iter()
            .find(|(n, _)| *n == text)
            .filter(|_| i > 0 && lx.is_punct(i - 1, b'.') && lx.is_punct(i + 1, b'('))
            .or_else(|| {
                BLOCKING_FREE
                    .iter()
                    .find(|(n, _)| *n == text)
                    .filter(|_| lx.is_punct(i + 1, b'(') && !lx.is_punct(i.wrapping_sub(1), b'.'))
            });
        if let Some(&(name, lock_only)) = block {
            // `join` must be a no-arg call (JoinHandle::join), not str::join.
            let ok = name != "join" || lx.is_punct(i + 2, b')');
            if ok {
                out.blocks.push(BlockOp {
                    what: name.to_string(),
                    line,
                    held: held.clone(),
                    lock_only,
                });
            }
        }

        // --- calls --------------------------------------------------------
        if lx.is_punct(i + 1, b'(')
            && !KEYWORDS.contains(&text)
            && !(i > 0 && lx.is_ident(i - 1, "fn"))
        {
            let (kind, qual) = if i > 0 && lx.is_punct(i - 1, b'.') {
                (CallKind::Method, None)
            } else if i > 1 && lx.is_punct(i - 1, b':') && lx.is_punct(i - 2, b':') {
                let q = if i > 2 && matches!(lx.tokens[i - 3].kind, TokKind::Ident) {
                    Some(lx.text(i - 3).to_string())
                } else {
                    None
                };
                (CallKind::Path, q)
            } else {
                (CallKind::Free, None)
            };
            out.calls.push(CallRef {
                name: text.to_string(),
                qual,
                kind,
                line,
                held,
            });
        }
        i += 1;
    }
}

fn matching_paren(lx: &Lexed, open: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    for j in open..limit {
        match lx.tokens[j].kind {
            TokKind::Punct(b'(') => depth += 1,
            TokKind::Punct(b')') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    limit
}

/// Lock identity from `lock_recover(&self.shards[i].inbox)`-style arguments:
/// the last depth-0 identifier in the argument list, crate-prefixed.
fn lock_id_from_args(lx: &Lexed, open: usize, limit: usize, crate_name: &str) -> Option<String> {
    let end = matching_paren(lx, open, limit);
    let mut bracket = 0i32;
    let mut last: Option<&str> = None;
    for j in open + 1..end {
        match lx.tokens[j].kind {
            TokKind::Punct(b'[') | TokKind::Punct(b'(') => bracket += 1,
            TokKind::Punct(b']') | TokKind::Punct(b')') => bracket -= 1,
            TokKind::Ident if bracket == 0 => {
                let t = lx.text(j);
                if t != "self" && t != "mut" {
                    last = Some(t);
                }
            }
            _ => {}
        }
    }
    last.map(|f| format!("{crate_name}:{f}"))
}

/// Lock identity from the receiver of `.lock()`: the nearest identifier
/// scanning back through the field path (skipping index expressions).
fn lock_id_from_receiver(lx: &Lexed, dot: usize, crate_name: &str) -> Option<String> {
    let mut j = dot;
    while j > 0 {
        j -= 1;
        match lx.tokens[j].kind {
            TokKind::Ident => {
                let t = lx.text(j);
                if t == "self" {
                    continue;
                }
                return Some(format!("{crate_name}:{t}"));
            }
            TokKind::Punct(b']') => {
                // Skip the index expression.
                let mut depth = 0i32;
                loop {
                    match lx.tokens[j].kind {
                        TokKind::Punct(b']') => depth += 1,
                        TokKind::Punct(b'[') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if j == 0 {
                        break;
                    }
                    j -= 1;
                }
            }
            TokKind::Punct(b'.') | TokKind::Literal => {}
            _ => return None,
        }
    }
    None
}

/// Guard scope: `let g = <acquisition>;` binds to `g` and lives to the end
/// of the enclosing block; anything else is a temporary living to the end of
/// the statement (the next `;` at depth 0, or the `{` opening a control-flow
/// body).
fn guard_scope(
    lx: &Lexed,
    stmt_start: usize,
    acq: usize,
    body_open: usize,
    body_close: usize,
) -> (Option<String>, usize) {
    // Is this a plain `let name = …acquisition…;` statement whose value IS
    // the guard (the matching `)` is immediately followed by `;`)?
    let is_let = lx.is_ident(stmt_start, "let");
    if is_let {
        let mut b = stmt_start + 1;
        if lx.is_ident(b, "mut") {
            b += 1;
        }
        if matches!(lx.tokens.get(b).map(|t| t.kind), Some(TokKind::Ident)) {
            // Look through guard-preserving suffixes — `.unwrap()`,
            // `.expect("…")`, `?` — so `let g = m.lock().unwrap();` still
            // binds the guard to `g`.
            let mut j = matching_paren(lx, acq + 1, body_close) + 1;
            loop {
                if lx.is_punct(j, b'?') {
                    j += 1;
                } else if lx.is_punct(j, b'.')
                    && (lx.is_ident(j + 1, "unwrap") || lx.is_ident(j + 1, "expect"))
                    && lx.is_punct(j + 2, b'(')
                {
                    j = matching_paren(lx, j + 2, body_close) + 1;
                } else {
                    break;
                }
            }
            if lx.is_punct(j, b';') {
                // Held to the end of the innermost enclosing block.
                let end = enclosing_block_end(lx, acq, body_open, body_close);
                return (Some(lx.text(b).to_string()), end);
            }
        }
    }
    // Temporary: end of statement.
    let mut depth = 0i32;
    for j in acq..body_close {
        match lx.tokens[j].kind {
            TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') => depth -= 1,
            TokKind::Punct(b';') | TokKind::Punct(b'{') if depth <= 0 => {
                return (None, j);
            }
            _ => {}
        }
    }
    (None, body_close)
}

/// Token index of the `}` closing the innermost block containing `tok`.
fn enclosing_block_end(lx: &Lexed, tok: usize, body_open: usize, body_close: usize) -> usize {
    let mut innermost = (body_open, body_close);
    let mut stack: Vec<usize> = Vec::new();
    for j in body_open..=body_close {
        match lx.tokens[j].kind {
            TokKind::Punct(b'{') => stack.push(j),
            TokKind::Punct(b'}') => {
                if let Some(open) = stack.pop() {
                    if open <= tok && j >= tok && (open, j) != (body_open, body_close) {
                        let (co, cc) = innermost;
                        if open >= co && j <= cc {
                            innermost = (open, j);
                        }
                    }
                }
            }
            _ => {}
        }
    }
    innermost.1
}

// ---------------------------------------------------------------------------
// Resolution
// ---------------------------------------------------------------------------

/// Resolves calls to candidate workspace functions by name (phase-1's
/// central approximation).  Test functions are never call targets.
fn resolve(fns: &[FnInfo]) -> Vec<Vec<(u32, u32)>> {
    let mut by_name: HashMap<&str, Vec<u32>> = HashMap::new();
    for (i, f) in fns.iter().enumerate() {
        if !f.is_test {
            by_name.entry(f.name.as_str()).or_default().push(i as u32);
        }
    }
    let mut edges: Vec<Vec<(u32, u32)>> = vec![Vec::new(); fns.len()];
    for (i, f) in fns.iter().enumerate() {
        for call in &f.calls {
            let Some(cands) = by_name.get(call.name.as_str()) else {
                continue;
            };
            let targets: Vec<u32> = match call.kind {
                CallKind::Method => {
                    if COMMON_METHODS.contains(&call.name.as_str()) {
                        continue;
                    }
                    cands.clone()
                }
                CallKind::Free => cands
                    .iter()
                    .copied()
                    .filter(|&c| fns[c as usize].qual.is_none())
                    .collect(),
                CallKind::Path => {
                    let qual = match call.qual.as_deref() {
                        Some("Self") => f.qual.as_deref(),
                        q => q,
                    };
                    let typed: Vec<u32> = cands
                        .iter()
                        .copied()
                        .filter(|&c| fns[c as usize].qual.as_deref() == qual && qual.is_some())
                        .collect();
                    if !typed.is_empty() {
                        typed
                    } else {
                        // Module-path call (`sync::lock_recover`): fall back
                        // to free functions of that name.
                        cands
                            .iter()
                            .copied()
                            .filter(|&c| fns[c as usize].qual.is_none())
                            .collect()
                    }
                }
            };
            for t in targets {
                if t as usize == i {
                    continue; // self-recursion adds nothing to reachability
                }
                if !edges[i].iter().any(|&(e, _)| e == t) {
                    edges[i].push((t, call.line));
                }
            }
        }
    }
    edges
}
