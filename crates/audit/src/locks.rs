//! Phase 2 lock analyses over the workspace call graph:
//!
//! * **lock-order** — a directed graph over lock identities where `A → B`
//!   means "B is acquired while A is held", either directly in one function
//!   or through a call made with A held into a function that (transitively)
//!   acquires B.  Cycles in this graph are potential deadlocks.  The same
//!   rule also flags blocking operations (channel recv, `join()`, `poll`,
//!   condvar waits, …) performed while a lock is held — with a capacity-1
//!   overlap channel or a work-stealing shard lock, that is a lock-shaped
//!   stall even when no cycle exists.
//! * **pool-blocking** — functions reachable from `parallel_for` job bodies
//!   must not block: pool workers are a fixed-size resource, and a parked
//!   worker is indistinguishable from a lost one.  The pool's own machinery
//!   (`tensor/src/pool.rs`) is exempt — its completion hand-off is the one
//!   place allowed to park.
//!
//! Both rules are soft (ratcheted + waivable); findings carry call-chain
//! provenance for `--explain`.

use crate::callgraph::{fn_digraph, CallGraph};
use crate::graph::Digraph;
use crate::rules::{FileClass, Finding, Hop, RULE_LOCK_ORDER, RULE_POOL_BLOCK};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Runs both lock analyses and appends findings.
pub fn analyze(cg: &CallGraph, out: &mut Vec<Finding>) {
    lock_order(cg, out);
    pool_blocking(cg, out);
}

fn hop(cg: &CallGraph, f: u32, line: u32) -> Hop {
    Hop {
        file: cg.file_of(f as usize).rel.clone(),
        line,
        func: cg.fns[f as usize].name.clone(),
    }
}

fn fn_chain(cg: &CallGraph, parents: &[Option<u32>], f: u32) -> Vec<Hop> {
    Digraph::path_to(parents, f)
        .into_iter()
        .map(|v| hop(cg, v, cg.fns[v as usize].line))
        .collect()
}

/// True for functions the lock analyses consider: non-test library code.
fn analyzed(cg: &CallGraph, f: usize) -> bool {
    !cg.fns[f].is_test && cg.file_of(f).class == FileClass::Lib
}

// ---------------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------------

/// Where a lock-order edge was observed, for provenance chains.
struct EdgeProv {
    func: u32,
    line: u32,
    note: String,
}

fn lock_order(cg: &CallGraph, out: &mut Vec<Finding>) {
    // 1. Intern lock identities.
    let mut lock_ids: BTreeMap<&str, u32> = BTreeMap::new();
    for f in &cg.fns {
        for a in &f.acquires {
            let next = lock_ids.len() as u32;
            lock_ids.entry(a.lock.as_str()).or_insert(next);
        }
    }
    let names: Vec<&str> = {
        let mut v = vec![""; lock_ids.len()];
        for (name, &id) in &lock_ids {
            v[id as usize] = name;
        }
        v
    };

    // 2. Transitive acquired-set per function (worklist fixpoint over the
    //    call graph: a function "acquires" everything its callees do).
    let n = cg.fns.len();
    let mut acq: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n];
    for (i, f) in cg.fns.iter().enumerate() {
        for a in &f.acquires {
            acq[i].insert(lock_ids[a.lock.as_str()]);
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            for &(t, _) in &cg.callees[i] {
                let add: Vec<u32> = acq[t as usize].difference(&acq[i]).copied().collect();
                if !add.is_empty() {
                    acq[i].extend(add);
                    changed = true;
                }
            }
        }
    }

    // 3. Build the lock-order graph with edge provenance (first sighting, in
    //    deterministic file order, wins).
    let mut g = Digraph::new(names.len());
    let mut prov: HashMap<(u32, u32), EdgeProv> = HashMap::new();
    for (i, f) in cg.fns.iter().enumerate() {
        if !analyzed(cg, i) {
            continue;
        }
        for a in &f.acquires {
            let to = lock_ids[a.lock.as_str()];
            for h in &a.held {
                let from = lock_ids[h.as_str()];
                if from == to {
                    continue; // re-acquisition is a different bug class
                }
                g.add_edge(from, to);
                prov.entry((from, to)).or_insert_with(|| EdgeProv {
                    func: i as u32,
                    line: a.line,
                    note: format!("{} acquires {} while holding {}", f.name, a.lock, h),
                });
            }
        }
        for call in &f.calls {
            if call.held.is_empty() {
                continue;
            }
            for &(t, line) in cg.callees[i].iter().filter(|&&(_, l)| l == call.line) {
                for &to in &acq[t as usize] {
                    for h in &call.held {
                        let from = lock_ids[h.as_str()];
                        if from == to {
                            continue;
                        }
                        g.add_edge(from, to);
                        prov.entry((from, to)).or_insert_with(|| EdgeProv {
                            func: i as u32,
                            line,
                            note: format!(
                                "{} calls {} (which acquires {}) while holding {}",
                                f.name, cg.fns[t as usize].name, names[to as usize], h
                            ),
                        });
                    }
                }
            }
        }
    }

    // 4. One finding per cycle, anchored at the first edge's provenance.
    for cycle in g.cycles() {
        let in_cycle = |v: u32| cycle.contains(&v);
        let mut edges: Vec<(&EdgeProv, (u32, u32))> = prov
            .iter()
            .filter(|&(&(a, b), _)| in_cycle(a) && in_cycle(b) && g.has_edge(a, b))
            .map(|(&e, p)| (p, e))
            .collect();
        edges.sort_by_key(|(p, _)| {
            (
                cg.file_of(p.func as usize).rel.clone(),
                p.line,
                p.note.clone(),
            )
        });
        let Some(&(anchor, _)) = edges.first() else {
            continue;
        };
        let locks: Vec<&str> = cycle.iter().map(|&v| names[v as usize]).collect();
        let chain: Vec<Hop> = edges
            .iter()
            .map(|(p, _)| {
                let mut h = hop(cg, p.func, p.line);
                h.func = p.note.clone();
                h
            })
            .collect();
        let file = cg.file_of(anchor.func as usize).rel.clone();
        out.push(Finding {
            rule: RULE_LOCK_ORDER,
            waived: cg.waived(anchor.func as usize, RULE_LOCK_ORDER, anchor.line),
            file,
            line: anchor.line,
            message: format!(
                "lock-order cycle between {{{}}} — inconsistent acquisition order can deadlock",
                locks.join(", ")
            ),
            chain,
        });
    }

    // 5. Blocking operations while a lock is held (intra-function), plus
    //    calls made with a lock held into functions that transitively block.
    let mut blocks_transitively = vec![false; n];
    for (i, f) in cg.fns.iter().enumerate() {
        blocks_transitively[i] = f.blocks.iter().any(|b| !b.lock_only);
    }
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            if blocks_transitively[i] {
                continue;
            }
            if cg.callees[i]
                .iter()
                .any(|&(t, _)| blocks_transitively[t as usize])
            {
                blocks_transitively[i] = true;
                changed = true;
            }
        }
    }
    for (i, f) in cg.fns.iter().enumerate() {
        if !analyzed(cg, i) {
            continue;
        }
        for b in &f.blocks {
            if b.held.is_empty() {
                continue;
            }
            out.push(Finding {
                rule: RULE_LOCK_ORDER,
                file: cg.file_of(i).rel.clone(),
                line: b.line,
                message: format!(
                    "`{}` while holding {{{}}} — blocking with a lock held stalls every contender",
                    b.what,
                    b.held.join(", ")
                ),
                waived: cg.waived(i, RULE_LOCK_ORDER, b.line),
                chain: vec![hop(cg, i as u32, b.line)],
            });
        }
        for call in &f.calls {
            if call.held.is_empty() {
                continue;
            }
            for &(t, line) in cg.callees[i].iter().filter(|&&(_, l)| l == call.line) {
                if !blocks_transitively[t as usize] {
                    continue;
                }
                out.push(Finding {
                    rule: RULE_LOCK_ORDER,
                    file: cg.file_of(i).rel.clone(),
                    line,
                    message: format!(
                        "call to `{}` (which can block) while holding {{{}}}",
                        cg.fns[t as usize].name,
                        call.held.join(", ")
                    ),
                    waived: cg.waived(i, RULE_LOCK_ORDER, line),
                    chain: vec![hop(cg, i as u32, line), hop(cg, t, cg.fns[t as usize].line)],
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// pool-blocking
// ---------------------------------------------------------------------------

fn pool_blocking(cg: &CallGraph, out: &mut Vec<Finding>) {
    let roots: Vec<u32> = (0..cg.fns.len())
        .filter(|&i| cg.fns[i].job_root)
        .map(|i| i as u32)
        .collect();
    if roots.is_empty() {
        return;
    }
    // Reachability that refuses to traverse into the pool's own machinery:
    // `parallel_for`'s completion hand-off is the sanctioned parking spot.
    let mut g = fn_digraph(cg);
    let exempt = |f: u32| cg.file_of(f as usize).rel.ends_with("tensor/src/pool.rs");
    let mut filtered = Digraph::new(g.len());
    for v in 0..g.len() as u32 {
        if exempt(v) {
            continue;
        }
        for &w in g.successors(v) {
            if !exempt(w) {
                filtered.add_edge(v, w);
            }
        }
    }
    g = filtered;
    let parents = g.bfs_parents(&roots);
    for (i, f) in cg.fns.iter().enumerate() {
        if parents[i].is_none() || !analyzed(cg, i) {
            continue;
        }
        for b in &f.blocks {
            if b.lock_only {
                continue; // `send` only matters with a lock held (lock-order)
            }
            out.push(Finding {
                rule: RULE_POOL_BLOCK,
                file: cg.file_of(i).rel.clone(),
                line: b.line,
                message: format!(
                    "`{}` on a pool worker path — job bodies reachable from parallel_for must not block",
                    b.what
                ),
                waived: cg.waived(i, RULE_POOL_BLOCK, b.line),
                chain: fn_chain(cg, &parents, i as u32),
            });
        }
    }
}
