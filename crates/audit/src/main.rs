//! CLI for errflow-audit.
//!
//! ```text
//! errflow-audit [--root PATH] [--ratchet PATH] [--json] [--check]
//!               [--update-ratchet] [--explain] [--strict-panics]
//! ```
//!
//! Default mode prints the human report and exits 0. `--check` exits 1 on
//! any hard-rule finding or ratchet regression (the CI gate). `--explain`
//! appends the entry-point→site call chain under each graph-rule finding.
//! `--strict-panics` also counts indexing/slicing as panic-capable (not part
//! of the CI gate). `--update-ratchet` rewrites the baseline file to the
//! current unwaived counts of every ratcheted rule.

use errflow_audit::{audit_tree_opts, check, render_human, render_json, rules, Ratchet};
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    root: PathBuf,
    ratchet_path: PathBuf,
    json: bool,
    check: bool,
    update_ratchet: bool,
    explain: bool,
    strict_panics: bool,
}

fn parse_opts() -> Result<Opts, String> {
    let mut root: Option<PathBuf> = None;
    let mut ratchet_path: Option<PathBuf> = None;
    let mut json = false;
    let mut check = false;
    let mut update_ratchet = false;
    let mut explain = false;
    let mut strict_panics = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = Some(args.next().ok_or("--root needs a path")?.into()),
            "--ratchet" => ratchet_path = Some(args.next().ok_or("--ratchet needs a path")?.into()),
            "--json" => json = true,
            "--check" => check = true,
            "--update-ratchet" => update_ratchet = true,
            "--explain" => explain = true,
            "--strict-panics" => strict_panics = true,
            "--help" | "-h" => {
                return Err("usage: errflow-audit [--root PATH] [--ratchet PATH] [--json] [--check] [--update-ratchet] [--explain] [--strict-panics]".into())
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    // Default root: the workspace containing this crate, so both
    // `cargo run -p errflow-audit` and a copied binary work.
    let root = root.unwrap_or_else(|| {
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or(manifest)
    });
    let ratchet_path = ratchet_path.unwrap_or_else(|| root.join("AUDIT_RATCHET.json"));
    Ok(Opts {
        root,
        ratchet_path,
        json,
        check,
        update_ratchet,
        explain,
        strict_panics,
    })
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let findings = match audit_tree_opts(&opts.root, opts.strict_panics) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("errflow-audit: failed to read {}: {e}", opts.root.display());
            return ExitCode::FAILURE;
        }
    };

    let mut ratchet = match std::fs::read_to_string(&opts.ratchet_path) {
        Ok(text) => match Ratchet::parse(&text) {
            Some(r) => r,
            None => {
                eprintln!(
                    "errflow-audit: malformed ratchet file {}",
                    opts.ratchet_path.display()
                );
                return ExitCode::FAILURE;
            }
        },
        Err(_) => Ratchet::default(),
    };

    if opts.update_ratchet {
        let counts = errflow_audit::counts(&findings);
        for rule in rules::SOFT_RULES {
            let open = counts.get(rule).map(|&(open, _)| open).unwrap_or(0);
            ratchet.set(rule, open);
            eprintln!("ratchet updated: {rule} = {open}");
        }
        if let Err(e) = std::fs::write(&opts.ratchet_path, ratchet.render()) {
            eprintln!(
                "errflow-audit: failed to write {}: {e}",
                opts.ratchet_path.display()
            );
            return ExitCode::FAILURE;
        }
    }

    if opts.json {
        print!("{}", render_json(&findings, &ratchet));
    } else {
        print!("{}", render_human(&findings, &ratchet, opts.explain));
    }

    if opts.check {
        let outcome = check(&findings, &ratchet);
        for notice in &outcome.notices {
            eprintln!("notice: {notice}");
        }
        if !outcome.violations.is_empty() {
            for v in &outcome.violations {
                eprintln!("VIOLATION: {v}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!("errflow-audit: check passed");
    }
    ExitCode::SUCCESS
}
