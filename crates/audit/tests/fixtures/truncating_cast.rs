// Fixture: a decoder that casts a freshly read header field straight to
// usize instead of going through the checked helpers.
// Expected: exactly one unchecked-header-cast finding.

pub fn decode_header(stream: &[u8]) -> usize {
    let mut w = [0u8; 8];
    w.copy_from_slice(&stream[..8]);
    u64::from_le_bytes(w) as usize
}
