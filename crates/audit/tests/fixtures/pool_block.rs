//! Deliberately-bad fixture: the `parallel_for` job body calls a helper
//! that parks on `Receiver::recv`, tying up a pool worker indefinitely.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::mpsc::Receiver;

pub struct Pool;

impl Pool {
    pub fn parallel_for(&self, n: usize, _threads: usize, f: impl Fn(usize)) {
        for i in 0..n {
            f(i);
        }
    }
}

pub fn drain_all(rx: &Receiver<u32>) -> u32 {
    let mut total = 0;
    while let Ok(v) = rx.recv() {
        total += v;
    }
    total
}

pub fn fan_out(pool: &Pool, rx: &Receiver<u32>, n: usize) -> u32 {
    let total = AtomicU32::new(0);
    pool.parallel_for(n, 4, |_i| {
        let got = drain_all(rx);
        total.fetch_add(got, Ordering::Relaxed);
    });
    total.into_inner()
}
