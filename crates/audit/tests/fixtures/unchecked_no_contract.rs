// Fixture: a `*_unchecked` call with neither a debug_assert! contract in
// the enclosing function nor an adjacent SAFETY note.  The definition line
// itself must NOT be flagged — the contract belongs at the call site.
// Expected: exactly one unchecked-contract finding (at the call).

fn load_unchecked(buf: &[u8], i: usize) -> u8 {
    buf[i]
}

pub fn head(buf: &[u8]) -> u8 {
    load_unchecked(buf, 0)
}
