// Fixture: one satisfied or out-of-scope instance of everything the rules
// look for.  Expected: zero findings under any scoped path.

pub fn read_first(buf: &[u8]) -> u8 {
    debug_assert!(!buf.is_empty(), "caller guarantees a nonempty buffer");
    // SAFETY: the debug_assert above states the caller contract; in release
    // the same invariant is upheld by every call site.
    unsafe { *buf.as_ptr().add(0) }
}

fn first_unchecked(buf: &[u8]) -> u8 {
    buf[0]
}

pub fn head(buf: &[u8]) -> u8 {
    debug_assert!(!buf.is_empty());
    first_unchecked(buf)
}

pub fn parse_count(stream: &[u8]) -> Option<usize> {
    // The cast is fine here: no raw header read feeds it in-statement.
    let small: u8 = *stream.first()?;
    Some(small as usize)
}

pub fn describe() -> String {
    // Keywords inside strings and comments must not trip any rule:
    // unsafe { panic!() } thread::spawn(|| {}) x.unwrap()
    String::from("unsafe panic! unwrap() expect( thread::spawn")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_and_spawn() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        std::thread::spawn(|| {}).join().expect("joined");
    }
}
