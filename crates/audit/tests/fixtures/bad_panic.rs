// Fixture: an unwrap on a library request path.
// Expected: exactly one panic-reach finding.

pub fn must(v: Option<u32>) -> u32 {
    v.unwrap()
}
