// Fixture: a raw thread spawn outside tensor/src/pool.rs.
// Expected: exactly one thread-discipline finding.

pub fn start() -> std::thread::JoinHandle<()> {
    std::thread::spawn(|| {})
}
