//! Clean counterpart to lock_cycle.rs: both paths acquire alpha before
//! beta, so the lock-order graph is acyclic.

use std::sync::Mutex;

pub struct Pair {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
        *a + *b
    }

    pub fn backward(&self) -> u32 {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
        *b - *a
    }
}
