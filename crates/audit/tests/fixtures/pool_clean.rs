//! Clean counterpart to pool_block.rs: the job body is pure compute.

use std::sync::atomic::{AtomicU32, Ordering};

pub struct Pool;

impl Pool {
    pub fn parallel_for(&self, n: usize, _threads: usize, f: impl Fn(usize)) {
        for i in 0..n {
            f(i);
        }
    }
}

pub fn scale(x: u32) -> u32 {
    x.wrapping_mul(3).wrapping_add(1)
}

pub fn fan_out(pool: &Pool, n: usize) -> u32 {
    let total = AtomicU32::new(0);
    pool.parallel_for(n, 4, |i| {
        total.fetch_add(scale(i as u32), Ordering::Relaxed);
    });
    total.into_inner()
}
