//! Deliberately-bad fixture: `forward` takes alpha → beta while `backward`
//! takes beta and then calls into a helper that takes alpha — a cycle in the
//! lock-order graph that can deadlock under contention.

use std::sync::Mutex;

pub struct Pair {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
        *a + *b
    }

    pub fn backward(&self) -> u32 {
        let b = self.beta.lock().unwrap();
        *b + self.alpha_total()
    }

    fn alpha_total(&self) -> u32 {
        let a = self.alpha.lock().unwrap();
        *a
    }
}
