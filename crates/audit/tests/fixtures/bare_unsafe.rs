// Fixture: an unsafe block with no SAFETY justification anywhere near it.
// Expected: exactly one safety-comment finding.

pub fn write_through(p: *mut u8) {
    unsafe {
        *p = 1;
    }
}
