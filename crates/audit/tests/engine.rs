//! Audit engine tests: each bad fixture fires its rule exactly once, the
//! clean fixture fires nothing, the ratchet logic regresses correctly, and
//! the workspace itself stays clean (the self-audit regression gate).

use errflow_audit::rules::{
    RULE_HEADER_CAST, RULE_PANIC_REACH, RULE_SAFETY, RULE_THREADS, RULE_UNCHECKED,
};
use errflow_audit::{audit_source, audit_tree, check, counts, Finding, Ratchet};
use std::path::Path;

/// A path that puts a fixture in scope for every rule at once.
const COMPRESS_PATH: &str = "crates/compress/src/fixture.rs";
const SERVE_PATH: &str = "crates/serve/src/fixture.rs";

fn only_rule(findings: &[Finding], rule: &str) {
    assert_eq!(
        findings.len(),
        1,
        "expected exactly one finding, got: {findings:?}"
    );
    assert_eq!(findings[0].rule, rule);
    assert!(!findings[0].waived);
}

#[test]
fn bare_unsafe_fires_safety_rule_once() {
    let src = include_str!("fixtures/bare_unsafe.rs");
    only_rule(&audit_source(COMPRESS_PATH, src), RULE_SAFETY);
}

#[test]
fn unchecked_without_contract_fires_once_at_the_call() {
    let src = include_str!("fixtures/unchecked_no_contract.rs");
    let findings = audit_source(COMPRESS_PATH, src);
    only_rule(&findings, RULE_UNCHECKED);
    // Flagged at the call inside `head`, not at the definition.
    let call_line = src
        .lines()
        .position(|l| l.contains("load_unchecked(buf, 0)"))
        .expect("fixture contains the call") as u32
        + 1;
    assert_eq!(findings[0].line, call_line);
}

#[test]
fn spawn_outside_pool_fires_thread_rule_once() {
    let src = include_str!("fixtures/spawn_outside_pool.rs");
    only_rule(&audit_source(SERVE_PATH, src), RULE_THREADS);
    // The same source inside pool.rs is allowed.
    assert!(audit_source("crates/tensor/src/pool.rs", src).is_empty());
}

#[test]
fn truncating_cast_fires_header_rule_once() {
    let src = include_str!("fixtures/truncating_cast.rs");
    only_rule(&audit_source(COMPRESS_PATH, src), RULE_HEADER_CAST);
    // Out of the configured decoder scope, the same source is clean.
    assert!(audit_source("crates/tensor/src/fixture.rs", src).is_empty());
}

#[test]
fn library_unwrap_fires_panic_reach_rule_once() {
    let src = include_str!("fixtures/bad_panic.rs");
    only_rule(&audit_source(SERVE_PATH, src), RULE_PANIC_REACH);
    // The same code in a test file or a bin target is out of scope.
    assert!(audit_source("crates/serve/tests/fixture.rs", src).is_empty());
    assert!(audit_source("crates/serve/src/bin/tool.rs", src).is_empty());
}

#[test]
fn net_crate_is_in_panic_reach_scope() {
    // The wire-protocol frontend parses untrusted bytes; its library code
    // is held to the same no-panic standard as serve/compress/obs.
    let src = include_str!("fixtures/bad_panic.rs");
    only_rule(
        &audit_source("crates/net/src/fixture.rs", src),
        RULE_PANIC_REACH,
    );
    assert!(audit_source("crates/net/tests/fixture.rs", src).is_empty());
}

#[test]
fn clean_fixture_has_zero_findings() {
    let src = include_str!("fixtures/clean.rs");
    for path in [COMPRESS_PATH, SERVE_PATH, "crates/tensor/src/fixture.rs"] {
        let findings = audit_source(path, src);
        assert!(
            findings.is_empty(),
            "{path}: unexpected findings {findings:?}"
        );
    }
}

#[test]
fn waived_finding_is_reported_but_not_counted_open() {
    let src = "pub fn f(v: Option<u32>) -> u32 {\n    \
               // audit:allow(panic-reach) validated upstream\n    v.unwrap()\n}\n";
    let findings = audit_source(SERVE_PATH, src);
    assert_eq!(findings.len(), 1);
    assert!(findings[0].waived);
    let c = counts(&findings);
    assert_eq!(c[RULE_PANIC_REACH], (0, 1));
}

#[test]
fn ratchet_checks_regress_pass_and_improve() {
    let finding = |waived| Finding {
        rule: RULE_PANIC_REACH,
        file: "crates/serve/src/x.rs".into(),
        line: 1,
        message: "m".into(),
        waived,
        chain: Vec::new(),
    };
    let mut ratchet = Ratchet::default();
    ratchet.set(RULE_PANIC_REACH, 1);

    // At baseline: passes, no notices.
    let at = vec![finding(false)];
    let outcome = check(&at, &ratchet);
    assert!(outcome.violations.is_empty() && outcome.notices.is_empty());

    // Over baseline: violation.
    let over = vec![finding(false), finding(false)];
    assert_eq!(check(&over, &ratchet).violations.len(), 1);

    // Under baseline (waived findings do not count): passes with a
    // ratchet-down notice.
    let under = vec![finding(true)];
    let outcome = check(&under, &ratchet);
    assert!(outcome.violations.is_empty());
    assert_eq!(outcome.notices.len(), 1);
}

#[test]
fn hard_rules_reject_waivers() {
    let src = "pub fn f(p: *mut u8) {\n    \
               // audit:allow(safety-comment) trust me\n    unsafe { *p = 1 }\n}\n";
    let findings = audit_source(COMPRESS_PATH, src);
    assert_eq!(findings.len(), 1);
    assert!(findings[0].waived, "annotation is honoured for reporting");
    // ...but --check still fails: hard rules accept no waivers.
    let outcome = check(&findings, &Ratchet::default());
    assert_eq!(outcome.violations.len(), 1);
}

#[test]
fn ratchet_file_roundtrips() {
    let mut r = Ratchet::default();
    r.set(RULE_PANIC_REACH, 14);
    let text = r.render();
    let parsed = Ratchet::parse(&text).expect("parses own output");
    assert_eq!(parsed.baseline(RULE_PANIC_REACH), 14);
    assert!(Ratchet::parse("{\"no-panic\": }").is_none());
}

/// The self-audit gate: the workspace this crate ships in must itself pass
/// `--check` against the committed ratchet.  This is the same invariant CI
/// enforces; keeping it in the test suite means `cargo test` catches a
/// regression before a PR ever reaches CI.
#[test]
fn workspace_passes_its_own_audit() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let findings = audit_tree(root).expect("walk workspace");
    let ratchet_text =
        std::fs::read_to_string(root.join("AUDIT_RATCHET.json")).expect("ratchet file present");
    let ratchet = Ratchet::parse(&ratchet_text).expect("ratchet file parses");
    let outcome = check(&findings, &ratchet);
    assert!(
        outcome.violations.is_empty(),
        "workspace audit violations: {:?}",
        outcome.violations
    );
}
