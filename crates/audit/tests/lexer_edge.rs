//! Lexer edge-case regressions: constructs that historically desynchronize
//! token positions in hand-rolled lexers — nested block comments, raw
//! strings with `#` guards, string line-continuations — and the
//! doc-comment-adjacency behaviour the SAFETY rule depends on.

use errflow_audit::audit_source;
use errflow_audit::lexer::{lex, TokKind};

/// Line number of the first occurrence of identifier `name`.
fn ident_line(src: &str, name: &str) -> u32 {
    let lx = lex(src);
    (0..lx.tokens.len())
        .find(|&i| lx.tokens[i].kind == TokKind::Ident && lx.text(i) == name)
        .map(|i| lx.tokens[i].line)
        .unwrap_or_else(|| panic!("ident {name} not found"))
}

#[test]
fn nested_block_comment_keeps_line_sync() {
    let src = "/* outer\n /* inner\n  nested */\n still outer */\nfn after() {}\n";
    assert_eq!(ident_line(src, "after"), 5);
    let lx = lex(src);
    assert_eq!(lx.comments.len(), 1);
    assert_eq!(lx.comments[0].end_line, 4);
}

#[test]
fn raw_string_hash_guards_keep_line_sync() {
    // The `"#` inside the r##-guarded string must not terminate it early —
    // otherwise every token after it is misattributed.
    let src = "let s = r##\"line one\n has \"# inside\n\"##;\nfn after() {}\n";
    assert_eq!(ident_line(src, "after"), 4);
    // And none of the string's contents leak out as tokens.
    let lx = lex(src);
    assert!((0..lx.tokens.len()).all(|i| lx.text(i) != "inside"));
}

#[test]
fn multiline_raw_string_token_positions_stay_valid() {
    let src = "const A: &str = r#\"a\nb\nc\"#;\nconst B: u32 = 7;\n";
    let lx = lex(src);
    // Every token's span must be a valid slice of the source.
    for i in 0..lx.tokens.len() {
        let _ = lx.text(i);
    }
    assert_eq!(ident_line(src, "B"), 4);
}

#[test]
fn backslash_newline_continuation_counts_the_line() {
    let src = "let s = \"one \\\ntwo\";\nfn after() {}\n";
    assert_eq!(ident_line(src, "after"), 3);
}

#[test]
fn unterminated_string_with_trailing_escape_does_not_panic() {
    // A pathological EOF: the escape skip must not push a token span past
    // the end of the buffer.
    let src = "let s = \"abc\\";
    let lx = lex(src);
    for i in 0..lx.tokens.len() {
        let _ = lx.text(i);
    }
}

#[test]
fn safety_note_after_inner_doc_comments_is_honoured() {
    // `//!` inner docs above an item must not break the adjacency window
    // between a SAFETY note and its unsafe block.
    let src = "//! Module docs.\n//! More docs.\n\n\
               pub fn f(p: *mut u8) {\n    \
               // SAFETY: p is valid for writes by the caller's contract.\n    \
               unsafe { *p = 1 }\n}\n";
    let findings = audit_source("crates/compress/src/fixture.rs", src);
    assert!(findings.is_empty(), "unexpected findings: {findings:?}");
}

#[test]
fn safety_note_stays_adjacent_across_a_raw_string() {
    // A multi-line raw string between the top of the file and the unsafe
    // site: if the lexer miscounts its newlines, the SAFETY note's comment
    // span drifts and the rule misfires.
    let src = "const HELP: &str = r#\"usage:\n  tool [--flag]\n  lines here\n\"#;\n\n\
               pub fn f(p: *mut u8) {\n    \
               // SAFETY: p is valid for writes by the caller's contract.\n    \
               unsafe { *p = 1 }\n}\n";
    let findings = audit_source("crates/compress/src/fixture.rs", src);
    assert!(findings.is_empty(), "unexpected findings: {findings:?}");
}
