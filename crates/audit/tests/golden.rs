//! Golden-file test for the `--json` output schema (version 2): downstream
//! tooling parses this format, so key order, chain encoding, per-rule count
//! blocks, and the ratchet section are all pinned byte-for-byte.  If you
//! change the schema intentionally, bump `version` and regenerate the golden
//! (see the `regenerate` note below).

use errflow_audit::rules::{RULE_PANIC_REACH, RULE_POOL_BLOCK};
use errflow_audit::{audit_files, render_json, Ratchet};

/// The fixed input behind the golden file: one open interprocedural finding
/// (with a two-hop chain), one waived finding, stable paths.
fn golden_input() -> Vec<(String, String)> {
    let serve = "pub fn handle(v: Option<u32>) -> u32 {\n    helper_scale(v)\n}\n";
    let tensor = "pub fn helper_scale(v: Option<u32>) -> u32 {\n    v.unwrap() * 3\n}\n\
                  pub fn noisy(v: Option<u32>) -> u32 {\n    \
                  // audit:allow(panic-reach) fixture waiver\n    v.expect(\"set\")\n}\n";
    let serve2 = "pub fn also(v: Option<u32>) -> u32 {\n    noisy(v)\n}\n";
    vec![
        ("crates/serve/src/entry.rs".to_string(), serve.to_string()),
        ("crates/serve/src/entry2.rs".to_string(), serve2.to_string()),
        (
            "crates/tensor/src/helper.rs".to_string(),
            tensor.to_string(),
        ),
    ]
}

#[test]
fn json_report_matches_golden_schema() {
    let findings = audit_files(&golden_input());
    let mut ratchet = Ratchet::default();
    ratchet.set(RULE_PANIC_REACH, 1);
    ratchet.set("lock-order", 0);
    ratchet.set(RULE_POOL_BLOCK, 0);
    let rendered = render_json(&findings, &ratchet);
    let golden = include_str!("golden/audit_schema.json");
    assert_eq!(
        rendered, golden,
        "JSON schema drifted from tests/golden/audit_schema.json — \
         if intentional, bump the version field and regenerate the golden \
         by printing `render_json` for `golden_input()`"
    );
}

#[test]
fn json_report_is_structurally_sound() {
    // Cheap structural checks that hold for ANY input, not just the golden:
    // version tag first, every finding carries a chain array, counts cover
    // all seven rules, ratchet covers exactly the soft rules.
    let rendered = render_json(&audit_files(&golden_input()), &Ratchet::default());
    assert!(rendered.starts_with("{\n  \"version\": 2,\n"));
    assert_eq!(rendered.matches("\"chain\": [").count(), 2);
    for rule in errflow_audit::rules::ALL_RULES {
        assert!(
            rendered.contains(&format!("\"{rule}\": {{\"open\": ")),
            "counts block missing {rule}"
        );
    }
    let ratchet_at = rendered.find("\"ratchet\"").expect("ratchet section");
    for rule in errflow_audit::rules::SOFT_RULES {
        assert!(
            rendered[ratchet_at..].contains(&format!("\"{rule}\": 0")),
            "ratchet section missing {rule}"
        );
    }
}
