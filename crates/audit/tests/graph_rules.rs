//! Phase-2 (call-graph) rule tests: each bad fixture fires its rule exactly
//! once with a usable call-chain trace, each clean fixture fires nothing,
//! and panic-reachability crosses file boundaries.

use errflow_audit::rules::{RULE_LOCK_ORDER, RULE_PANIC_REACH, RULE_POOL_BLOCK};
use errflow_audit::{audit_files, audit_source, render_human, Finding, Ratchet};

/// Lock/pool fixtures live at a library path *outside* the panic-reach entry
/// crates, so their `.unwrap()` scaffolding never contributes findings.
const TENSOR_PATH: &str = "crates/tensor/src/fixture_graph.rs";

fn only_rule(findings: &[Finding], rule: &str) {
    assert_eq!(
        findings.len(),
        1,
        "expected exactly one finding, got: {findings:?}"
    );
    assert_eq!(findings[0].rule, rule);
    assert!(!findings[0].waived);
}

#[test]
fn lock_cycle_fires_once_with_cycle_trace() {
    let src = include_str!("fixtures/lock_cycle.rs");
    let findings = audit_source(TENSOR_PATH, src);
    only_rule(&findings, RULE_LOCK_ORDER);
    let f = &findings[0];
    assert!(
        f.message.contains("lock-order cycle"),
        "message: {}",
        f.message
    );
    assert!(
        f.message.contains("tensor:alpha") && f.message.contains("tensor:beta"),
        "cycle names both locks: {}",
        f.message
    );
    // The chain carries one hop per lock-order edge in the cycle: the
    // alpha→beta acquisition in `forward` and the held call in `backward`.
    assert_eq!(f.chain.len(), 2, "chain: {:?}", f.chain);
    let provs: Vec<&str> = f.chain.iter().map(|h| h.func.as_str()).collect();
    assert!(provs.iter().any(|p| p.contains("forward")), "{provs:?}");
    assert!(
        provs
            .iter()
            .any(|p| p.contains("backward") && p.contains("alpha_total")),
        "{provs:?}"
    );
}

#[test]
fn lock_cycle_chain_appears_in_explain_output() {
    let src = include_str!("fixtures/lock_cycle.rs");
    let findings = audit_source(TENSOR_PATH, src);
    let explained = render_human(&findings, &Ratchet::default(), true);
    assert!(explained.contains("chain:"), "{explained}");
    assert!(explained.contains(" -> "), "{explained}");
    // Without --explain the chain stays out of the human report.
    let plain = render_human(&findings, &Ratchet::default(), false);
    assert!(!plain.contains("chain:"), "{plain}");
}

#[test]
fn consistent_lock_order_is_clean() {
    let src = include_str!("fixtures/lock_clean.rs");
    let findings = audit_source(TENSOR_PATH, src);
    assert!(findings.is_empty(), "unexpected findings: {findings:?}");
}

#[test]
fn pool_job_blocking_on_recv_fires_once() {
    let src = include_str!("fixtures/pool_block.rs");
    let findings = audit_source(TENSOR_PATH, src);
    only_rule(&findings, RULE_POOL_BLOCK);
    let f = &findings[0];
    assert!(f.message.contains("recv"), "message: {}", f.message);
    let line = src
        .lines()
        .position(|l| l.contains("rx.recv()"))
        .expect("fixture parks on recv") as u32
        + 1;
    assert_eq!(f.line, line, "flagged at the recv site");
    // Chain runs job-root → helper.
    assert_eq!(f.chain.len(), 2, "chain: {:?}", f.chain);
    assert!(f.chain[0].func.contains("pool job"), "{:?}", f.chain);
    assert_eq!(f.chain[1].func, "drain_all");
}

#[test]
fn pure_compute_pool_job_is_clean() {
    let src = include_str!("fixtures/pool_clean.rs");
    let findings = audit_source(TENSOR_PATH, src);
    assert!(findings.is_empty(), "unexpected findings: {findings:?}");
}

#[test]
fn pool_machinery_itself_is_exempt_from_pool_blocking() {
    // The same blocking fixture hosted at the pool's own path is the
    // sanctioned parking spot and must not fire.
    let src = include_str!("fixtures/pool_block.rs");
    let findings = audit_source("crates/tensor/src/pool.rs", src);
    assert!(findings.is_empty(), "unexpected findings: {findings:?}");
}

#[test]
fn blocking_while_lock_held_fires_lock_order() {
    let src = "use std::sync::Mutex;\n\
               use std::sync::mpsc::Receiver;\n\
               pub struct S { state: Mutex<u32>, rx: Receiver<u32> }\n\
               impl S {\n\
                   pub fn pump(&mut self) {\n\
                       let mut g = self.state.lock().unwrap();\n\
                       if let Ok(v) = self.rx.recv() {\n\
                           *g += v;\n\
                       }\n\
                   }\n\
               }\n";
    let findings = audit_source(TENSOR_PATH, src);
    only_rule(&findings, RULE_LOCK_ORDER);
    assert!(
        findings[0].message.contains("recv") && findings[0].message.contains("tensor:state"),
        "message: {}",
        findings[0].message
    );
}

#[test]
fn panic_reach_crosses_file_boundaries() {
    // The panic lives in a tensor helper — out of the lexical v1 rule's
    // scope — but is reachable from a serve entry point, so v2 flags it
    // at the helper with the entry→site chain.
    let serve = "pub fn handle(v: Option<u32>) -> u32 {\n    helper_scale(v)\n}\n";
    let tensor = "pub fn helper_scale(v: Option<u32>) -> u32 {\n    v.unwrap() * 3\n}\n";
    let files = vec![
        ("crates/serve/src/entry.rs".to_string(), serve.to_string()),
        (
            "crates/tensor/src/helper.rs".to_string(),
            tensor.to_string(),
        ),
    ];
    let findings = audit_files(&files);
    only_rule(&findings, RULE_PANIC_REACH);
    let f = &findings[0];
    assert_eq!(f.file, "crates/tensor/src/helper.rs");
    assert_eq!(f.line, 2);
    let chain: Vec<(&str, &str)> = f
        .chain
        .iter()
        .map(|h| (h.func.as_str(), h.file.as_str()))
        .collect();
    assert_eq!(
        chain,
        vec![
            ("handle", "crates/serve/src/entry.rs"),
            ("helper_scale", "crates/tensor/src/helper.rs"),
        ]
    );
    assert!(f.message.contains("entry `handle`"), "{}", f.message);
}

#[test]
fn unreachable_helper_panic_does_not_fire() {
    // Same helper, but nothing on an entry path calls it: silent.
    let tensor = "pub fn helper_scale(v: Option<u32>) -> u32 {\n    v.unwrap() * 3\n}\n";
    let files = vec![(
        "crates/tensor/src/helper.rs".to_string(),
        tensor.to_string(),
    )];
    let findings = audit_files(&files);
    assert!(findings.is_empty(), "unexpected findings: {findings:?}");
}

#[test]
fn waivers_attach_to_the_panic_site_not_the_entry() {
    let serve = "pub fn handle(v: Option<u32>) -> u32 {\n    helper_scale(v)\n}\n";
    let tensor = "pub fn helper_scale(v: Option<u32>) -> u32 {\n    \
                  // audit:allow(panic-reach) validated upstream\n    v.unwrap() * 3\n}\n";
    let files = vec![
        ("crates/serve/src/entry.rs".to_string(), serve.to_string()),
        (
            "crates/tensor/src/helper.rs".to_string(),
            tensor.to_string(),
        ),
    ];
    let findings = audit_files(&files);
    assert_eq!(findings.len(), 1);
    assert!(findings[0].waived);
}
