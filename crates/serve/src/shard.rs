//! Sharded admission queues with work stealing — the ingress hot path.
//!
//! The original admission path funneled every producer and every worker
//! through one `Mutex` + `Condvar` ([`crate::queue::BoundedQueue`]); under
//! many concurrent clients that single lock serializes admission.  This
//! module shards the queue **per worker**: a producer touches exactly one
//! shard lock (chosen round-robin, so load spreads even when every request
//! shares a plan key), and a worker drains its own shard first, then
//! *steals* from its neighbours when it runs dry — no global lock anywhere
//! on the hot path.
//!
//! Admission semantics are unchanged from [`BoundedQueue`]:
//!
//! * the queue is **bounded across all shards** (one atomic occupancy
//!   counter — not a lock — enforces the global capacity);
//! * [`ShardedQueue::try_push`] rejects with [`QueueFull`] at capacity;
//! * [`ShardedQueue::push`] blocks until space frees (producers park on a
//!   capacity condvar that is only ever touched when the queue is full or
//!   was full moments ago — the uncontended path never takes it);
//! * [`ShardedQueue::pop_batch`] drains same-key runs for batching, now
//!   per shard, and returns `None` once closed and empty.
//!
//! [`BoundedQueue`]: crate::queue::BoundedQueue

use crate::queue::QueueFull;
use errflow_tensor::sync::lock_recover;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// A worker parking on its empty shard re-checks the whole queue at this
/// interval even without a wakeup, bounding how long a job pushed to a
/// *different* shard can sit unstolen while its home worker is busy.
const STEAL_RECHECK: Duration = Duration::from_millis(1);

struct Shard<T> {
    items: Mutex<VecDeque<T>>,
    /// Signalled when an item lands in this shard (wakes its parked worker).
    ready: Condvar,
}

/// A bounded MPMC queue sharded per consumer, with work stealing.
pub struct ShardedQueue<T> {
    shards: Vec<Shard<T>>,
    capacity: usize,
    /// Total queued items across all shards (the admission gate).
    len: AtomicUsize,
    closed: AtomicBool,
    /// Round-robin producer cursor.
    next_shard: AtomicUsize,
    /// Producers blocked in [`ShardedQueue::push`] park here.  Only the
    /// *full-queue* path touches this lock; `try_push` never does.
    space: Mutex<()>,
    space_ready: Condvar,
    /// Producers currently parked (skip the notify syscall when zero).
    waiting_producers: AtomicUsize,
}

impl<T> ShardedQueue<T> {
    /// Creates a queue with `shards` consumer shards and a **global**
    /// capacity of `capacity` items.
    pub fn new(shards: usize, capacity: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(capacity > 0, "queue capacity must be nonzero");
        ShardedQueue {
            shards: (0..shards)
                .map(|_| Shard {
                    items: Mutex::new(VecDeque::new()),
                    ready: Condvar::new(),
                })
                .collect(),
            capacity,
            len: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            next_shard: AtomicUsize::new(0),
            space: Mutex::new(()),
            space_ready: Condvar::new(),
            waiting_producers: AtomicUsize::new(0),
        }
    }

    /// Number of consumer shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Global capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total queued items across all shards.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// `true` when no items are queued anywhere.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserves one occupancy slot, or fails if the queue is at capacity.
    /// Lock-free: a compare-exchange loop on the occupancy counter.
    fn reserve_slot(&self) -> bool {
        let mut cur = self.len.load(Ordering::Relaxed);
        loop {
            if cur >= self.capacity {
                return false;
            }
            match self
                .len
                .compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Releases `n` occupancy slots and wakes parked producers if any.
    fn release_slots(&self, n: usize) {
        self.len.fetch_sub(n, Ordering::AcqRel);
        if self.waiting_producers.load(Ordering::Acquire) > 0 {
            let _g = lock_recover(&self.space);
            self.space_ready.notify_all();
        }
    }

    /// Delivers a reserved item into shard `idx` and wakes its worker.
    fn deliver(&self, idx: usize, item: T) {
        let shard = &self.shards[idx % self.shards.len()];
        lock_recover(&shard.items).push_back(item);
        shard.ready.notify_one();
    }

    /// Enqueues without blocking; rejects with [`QueueFull`] when the queue
    /// is at global capacity or closed.  The hot path touches one atomic
    /// (occupancy), one atomic (shard cursor), and one shard lock.
    pub fn try_push(&self, item: T) -> Result<(), QueueFull<T>> {
        if self.closed.load(Ordering::Acquire) || !self.reserve_slot() {
            return Err(QueueFull(item));
        }
        // Closed-after-reserve race: give the slot back so shutdown never
        // strands occupancy.  The item still lands if a worker is draining;
        // rejecting is the conservative (and admission-correct) choice.
        if self.closed.load(Ordering::Acquire) {
            self.release_slots(1);
            return Err(QueueFull(item));
        }
        let idx = self.next_shard.fetch_add(1, Ordering::Relaxed);
        self.deliver(idx, item);
        Ok(())
    }

    /// Enqueues, blocking while the queue is at capacity.  Returns the item
    /// back if the queue closes before space frees up.
    pub fn push(&self, item: T) -> Result<(), QueueFull<T>> {
        let mut item = item;
        loop {
            match self.try_push(item) {
                Ok(()) => return Ok(()),
                Err(QueueFull(back)) => {
                    if self.closed.load(Ordering::Acquire) {
                        return Err(QueueFull(back));
                    }
                    item = back;
                    // Park until a consumer frees space.  Capacity is
                    // re-checked under the space lock, and the wait is timed
                    // as a backstop against a release that raced between the
                    // failed try and the park (a consumer that observed
                    // `waiting_producers == 0` skips the notify).
                    let guard = lock_recover(&self.space);
                    self.waiting_producers.fetch_add(1, Ordering::AcqRel);
                    if self.len.load(Ordering::Acquire) >= self.capacity
                        && !self.closed.load(Ordering::Acquire)
                    {
                        drop(match self.space_ready.wait_timeout(guard, STEAL_RECHECK) {
                            Ok((g, _)) => g,
                            Err(p) => p.into_inner().0,
                        });
                    } else {
                        drop(guard);
                    }
                    self.waiting_producers.fetch_sub(1, Ordering::AcqRel);
                }
            }
        }
    }

    /// Pops one item for consumer `worker`: its own shard first, then a
    /// steal sweep over the others.  Blocks while everything is empty;
    /// `None` once closed and fully drained.
    pub fn pop(&self, worker: usize) -> Option<T> {
        self.pop_batch(worker, 1, |_| 0u8).map(|mut b| {
            debug_assert_eq!(b.len(), 1);
            b.swap_remove(0)
        })
    }

    /// Dequeues a head item plus up to `max - 1` more queued items with the
    /// same `key` for consumer `worker` (same-plan batch coalescing, as
    /// [`crate::queue::BoundedQueue::pop_batch`]).  The worker's own shard
    /// is drained first; when it is empty the worker sweeps the other
    /// shards and steals a batch from the first non-empty one.  Blocks
    /// while all shards are empty; `None` once closed and drained.
    pub fn pop_batch<K: PartialEq>(
        &self,
        worker: usize,
        max: usize,
        key: impl Fn(&T) -> K,
    ) -> Option<Vec<T>> {
        assert!(max > 0, "batch size must be nonzero");
        let n = self.shards.len();
        let home = worker % n;
        loop {
            // Sweep: home shard first, then steal candidates in ring order.
            for offset in 0..n {
                let shard = &self.shards[(home + offset) % n];
                let mut items = lock_recover(&shard.items);
                if let Some(head) = items.pop_front() {
                    let k = key(&head);
                    let mut batch = vec![head];
                    let mut i = 0;
                    while batch.len() < max && i < items.len() {
                        if key(&items[i]) == k {
                            match items.remove(i) {
                                Some(item) => batch.push(item),
                                None => break,
                            }
                        } else {
                            i += 1;
                        }
                    }
                    drop(items);
                    self.release_slots(batch.len());
                    return Some(batch);
                }
            }
            if self.closed.load(Ordering::Acquire) && self.len() == 0 {
                return None;
            }
            // Park on the home shard.  The timeout bounds steal latency for
            // items pushed to other shards while we slept (their own worker
            // normally handles them; the timeout is the lost-wakeup net).
            let shard = &self.shards[home];
            let items = lock_recover(&shard.items);
            if items.is_empty() && !self.closed.load(Ordering::Acquire) {
                let (_g, _timeout) = match shard.ready.wait_timeout(items, STEAL_RECHECK) {
                    Ok(r) => r,
                    Err(p) => {
                        let (g, t) = p.into_inner();
                        (g, t)
                    }
                };
            }
        }
    }

    /// Closes the queue: producers are rejected from now on, consumers
    /// drain the backlog and then observe `None`.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        for shard in &self.shards {
            // Take each shard lock so parked workers re-check the flag.
            let _g = lock_recover(&shard.items);
            shard.ready.notify_all();
        }
        let _g = lock_recover(&self.space);
        self.space_ready.notify_all();
    }

    /// Removes and returns every queued item across all shards (shutdown:
    /// fail outstanding requests instead of leaving waiters hanging).
    pub fn drain(&self) -> Vec<T> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(lock_recover(&shard.items).drain(..));
        }
        if !out.is_empty() {
            self.release_slots(out.len());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn delivers_everything_once_across_shards() {
        let q = Arc::new(ShardedQueue::new(4, 1024));
        let producers = 4;
        let per = 250usize;
        let done = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for p in 0..producers {
                let q = Arc::clone(&q);
                let done = Arc::clone(&done);
                s.spawn(move || {
                    for i in 0..per {
                        q.push(p * per + i).unwrap();
                    }
                    done.fetch_add(1, Ordering::Release);
                });
            }
            let consumers: Vec<_> = (0..4)
                .map(|w| {
                    let q = Arc::clone(&q);
                    s.spawn(move || {
                        let mut got = Vec::new();
                        while let Some(v) = q.pop(w) {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            // Close only after every producer finished and the backlog is
            // drained, so consumers see the full item set.
            while done.load(Ordering::Acquire) < producers || q.len() > 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
            q.close();
            let mut all: Vec<usize> = consumers
                .into_iter()
                .flat_map(|c| c.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..producers * per).collect::<Vec<_>>());
        });
    }

    #[test]
    fn try_push_rejects_at_global_capacity() {
        let q = ShardedQueue::new(3, 4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        let QueueFull(r) = q.try_push(99).unwrap_err();
        assert_eq!(r, 99);
        assert_eq!(q.len(), 4);
        // Freeing one slot re-admits — from any consumer.
        assert!(q.pop(0).is_some());
        q.try_push(99).unwrap();
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn capacity_is_global_not_per_shard() {
        // 8 shards but capacity 2: the 3rd push must be rejected even
        // though 6 shards are empty.
        let q = ShardedQueue::new(8, 2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert!(q.try_push(3).is_err());
    }

    #[test]
    fn worker_steals_from_other_shards() {
        let q = ShardedQueue::new(4, 16);
        for i in 0..8 {
            q.try_push(i).unwrap();
        }
        // A single consumer (worker 2) must drain every shard via steals.
        let mut got = Vec::new();
        for _ in 0..8 {
            got.extend(q.pop_batch(2, 1, |_| 0u8).unwrap());
        }
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        assert!(q.is_empty());
    }

    #[test]
    fn pop_batch_coalesces_same_key_within_a_shard() {
        // One shard so all items land together, mirroring the BoundedQueue
        // coalescing contract.
        let q = ShardedQueue::new(1, 16);
        for item in [("a", 0), ("b", 1), ("a", 2), ("c", 3), ("a", 4)] {
            q.try_push(item).unwrap();
        }
        let batch = q.pop_batch(0, 8, |t| t.0).unwrap();
        assert_eq!(batch, vec![("a", 0), ("a", 2), ("a", 4)]);
        assert_eq!(q.pop_batch(0, 8, |t| t.0).unwrap(), vec![("b", 1)]);
        assert_eq!(q.pop_batch(0, 8, |t| t.0).unwrap(), vec![("c", 3)]);
    }

    #[test]
    fn pop_batch_respects_max() {
        let q = ShardedQueue::new(1, 16);
        for i in 0..5 {
            q.try_push(("k", i)).unwrap();
        }
        assert_eq!(q.pop_batch(0, 3, |t| t.0).unwrap().len(), 3);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn blocking_push_waits_for_capacity() {
        let q = Arc::new(ShardedQueue::new(2, 1));
        q.try_push(1).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(2).is_ok());
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.len(), 1, "producer must be blocked, not enqueued");
        assert!(q.pop(0).is_some());
        assert!(producer.join().unwrap());
        assert!(q.pop(1).is_some());
    }

    #[test]
    fn close_wakes_consumers_and_rejects_producers() {
        let q = Arc::new(ShardedQueue::<u32>::new(2, 4));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop(0));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(popper.join().unwrap(), None);
        assert!(q.try_push(1).is_err());
        assert!(q.push(1).is_err());
    }

    #[test]
    fn close_lets_consumers_drain_backlog() {
        let q = ShardedQueue::new(2, 4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.pop(0), Some(7));
        assert_eq!(q.pop(0), None);
    }

    #[test]
    fn drain_empties_every_shard() {
        let q = ShardedQueue::new(3, 8);
        for i in 0..6 {
            q.try_push(i).unwrap();
        }
        let mut drained = q.drain();
        drained.sort_unstable();
        assert_eq!(drained, (0..6).collect::<Vec<_>>());
        assert!(q.is_empty());
        // Drained slots are free again.
        for i in 0..8 {
            q.try_push(i).unwrap();
        }
        assert!(q.try_push(9).is_err());
    }

    /// The admission contention scenario from the acceptance criteria:
    /// N producers × M shards, with consumers popping concurrently, must
    /// deliver exactly once with QueueFull-only rejections, and a
    /// same-capacity run must reject pushes past capacity exactly like the
    /// single-lock queue did.
    #[test]
    fn contention_n_producers_m_shards() {
        for shards in [1usize, 2, 4] {
            let q = Arc::new(ShardedQueue::new(shards, 32));
            let produced = Arc::new(AtomicUsize::new(0));
            let rejected = Arc::new(AtomicUsize::new(0));
            std::thread::scope(|s| {
                for p in 0..6 {
                    let q = Arc::clone(&q);
                    let produced = Arc::clone(&produced);
                    let rejected = Arc::clone(&rejected);
                    s.spawn(move || {
                        for i in 0..200usize {
                            match q.try_push(p * 1000 + i) {
                                Ok(()) => {
                                    produced.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(QueueFull(_)) => {
                                    rejected.fetch_add(1, Ordering::Relaxed);
                                    std::thread::sleep(Duration::from_micros(50));
                                }
                            }
                        }
                    });
                }
                let consumers: Vec<_> = (0..shards)
                    .map(|w| {
                        let q = Arc::clone(&q);
                        s.spawn(move || {
                            let mut n = 0usize;
                            while let Some(batch) = q.pop_batch(w, 4, |v| *v / 1000) {
                                n += batch.len();
                            }
                            n
                        })
                    })
                    .collect();
                // Wait for producers (scope joins spawned producer threads
                // when the closure ends, but we need close() after they
                // finish), so poll until all producer attempts happened.
                while produced.load(Ordering::Relaxed) + rejected.load(Ordering::Relaxed) < 6 * 200
                {
                    std::thread::sleep(Duration::from_millis(1));
                }
                // Let consumers drain, then close.
                while q.len() > 0 {
                    std::thread::sleep(Duration::from_millis(1));
                }
                q.close();
                let consumed: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
                assert_eq!(
                    consumed,
                    produced.load(Ordering::Relaxed),
                    "shards={shards}: every admitted item is consumed exactly once"
                );
            });
        }
    }
}
