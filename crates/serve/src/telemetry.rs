//! The serve-side telemetry pump: the thread that keeps the live
//! observability plane of [`errflow_obs`] ticking.
//!
//! `errflow-obs` sits at the bottom of the workspace dependency graph and
//! spawns no threads; its tiered time-series sampler
//! ([`errflow_obs::timeseries`]) and SLO engine ([`errflow_obs::slo`])
//! are caller-driven.  This module provides that caller: a dedicated,
//! pool-accounted thread (via [`errflow_tensor::pool`], the workspace's
//! only thread-spawn site) that once per interval
//!
//! 1. reads a [`StatsSnapshot`] from the server and publishes the few
//!    signals that are *not* already mirrored registry metrics — queue
//!    depth and payload-decode throughput — as gauges,
//! 2. advances the global sampler ([`errflow_obs::timeseries::tick_global`]),
//!    diffing every registry counter/gauge/histogram into tiered
//!    rate/quantile points, and
//! 3. evaluates the installed SLO objectives against the fresh points.
//!
//! Because the registry is process-wide and cumulative, retained history
//! survives across loadgen runs and server rebuilds — the sampler sees
//! monotone counters regardless of which server instance produced them.
//!
//! Lock discipline: step 2 takes the registry lock and the sampler lock
//! *sequentially* (never nested); step 3 is the only site that holds two
//! obs locks at once, always in the order SLO engine → sampler.  No obs
//! lock is ever taken while holding a serve lock.

use crate::stats::StatsSnapshot;
use errflow_obs::slo::{Objective, SloKind};
use errflow_tensor::sync::lock_recover;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How the telemetry pump runs.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Sampling interval; 1 s matches the base retention tier of
    /// [`errflow_obs::timeseries::DEFAULT_TIERS`].
    pub interval: Duration,
    /// Objectives installed into the global SLO engine at startup.  An
    /// empty vector leaves whatever is already installed untouched.
    pub objectives: Vec<Objective>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            interval: Duration::from_secs(1),
            objectives: default_objectives(),
        }
    }
}

/// The default serve SLO set.  Every objective is *vacuously healthy* on
/// an idle server: latency ceilings and the decode floor only see data
/// once traffic produces it, and ratio objectives pass with an empty
/// denominator.
pub fn default_objectives() -> Vec<Objective> {
    vec![
        // The batched forward pass is the stage a regressing kernel shows
        // up in first; p99 of the per-batch distribution must stay under
        // 50 ms.
        Objective::new(
            "forward_p99",
            SloKind::P99Ceiling {
                series: "serve.stage.forward_ns.p99".to_string(),
                ceiling: 50e6,
                window: 30,
            },
        ),
        // Payload decompression p99 under 20 ms per job.
        Objective::new(
            "decompress_p99",
            SloKind::P99Ceiling {
                series: "serve.stage.decompress_ns.p99".to_string(),
                ceiling: 20e6,
                window: 30,
            },
        ),
        // The paper's contract: certified bounds hold.  A single
        // bound_fail in a thousand responses is a breach.
        Objective::new(
            "bound_certification",
            SloKind::RatioFloor {
                num: "serve.bound_pass".to_string(),
                den: "serve.bound_fail".to_string(),
                floor: 0.999,
            },
        ),
        // Admission control may shed at most 5% of offered load.
        Objective::new(
            "rejection_budget",
            SloKind::RatioBudget {
                num: "serve.rejected".to_string(),
                den: "serve.submitted".to_string(),
                budget: 0.05,
            },
        ),
        // Decode throughput floor: 50 MB/s of decompressed output, on the
        // `serve.decomp_mbps` gauge the pump publishes once payloads flow.
        Objective::new(
            "decode_mbps",
            SloKind::RateFloor {
                series: "serve.decomp_mbps".to_string(),
                floor: 50.0,
                window: 30,
            },
        ),
    ]
}

/// Shared stop signal: a mutex-guarded flag with a condvar so the pump
/// thread sleeps interruptibly and shutdown never waits a full interval.
#[derive(Debug, Default)]
struct StopCell {
    stopped: Mutex<bool>,
    cv: Condvar,
}

/// Handle to a running telemetry pump.  Dropping it stops the thread and
/// joins it; the retained time series and SLO states live in process-wide
/// structures and survive the pump itself.
#[derive(Debug)]
pub struct Telemetry {
    stop: Arc<StopCell>,
    handle: Option<JoinHandle<()>>,
}

impl Telemetry {
    /// Signals the pump to stop and joins it.  Idempotent.
    pub fn stop(&mut self) {
        *lock_recover(&self.stop.stopped) = true;
        self.stop.cv.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Telemetry {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Starts the telemetry pump on a dedicated pool thread.  `stats` is
/// called once per interval to read the live snapshot — pass
/// [`crate::Server::stats_source`] for a real server, or any closure in
/// tests.
pub fn start_telemetry<F>(stats: F, cfg: TelemetryConfig) -> Telemetry
where
    F: Fn() -> StatsSnapshot + Send + 'static,
{
    if !cfg.objectives.is_empty() {
        let engine = errflow_obs::slo::global();
        lock_recover(engine).install(cfg.objectives.clone());
    }
    let stop = Arc::new(StopCell::default());
    let thread_stop = Arc::clone(&stop);
    let interval = cfg.interval;
    let handle = errflow_tensor::pool::global().spawn_dedicated("errflow-telemetry", move || {
        loop {
            telemetry_tick(&stats());
            // Interruptible sleep: wake immediately on stop().
            let mut stopped = lock_recover(&thread_stop.stopped);
            while !*stopped {
                let (g, timed_out) = match thread_stop.cv.wait_timeout(stopped, interval) {
                    Ok((g, t)) => (g, t.timed_out()),
                    Err(poisoned) => {
                        let (g, t) = poisoned.into_inner();
                        (g, t.timed_out())
                    }
                };
                stopped = g;
                if timed_out {
                    break;
                }
            }
            if *stopped {
                return;
            }
        }
    });
    Telemetry {
        stop,
        handle: Some(handle),
    }
}

/// One pump iteration: publish snapshot-only gauges, advance the sampler,
/// evaluate SLOs.  Public within the crate so tests and the CLI can drive
/// a deterministic tick without a thread.
pub fn telemetry_tick(snap: &StatsSnapshot) {
    publish_gauges(snap);
    errflow_obs::timeseries::tick_global();
    // The only double-lock site in the obs plane: SLO engine first, then
    // the sampler it reads.  (`build_metrics_response` in errflow-net
    // takes these one at a time.)
    let engine_mutex = errflow_obs::slo::global();
    let sampler_mutex = errflow_obs::timeseries::global();
    let mut engine = lock_recover(engine_mutex);
    let sampler = lock_recover(sampler_mutex);
    engine.evaluate(&sampler);
}

/// Publishes the snapshot signals that have no mirrored registry metric.
fn publish_gauges(snap: &StatsSnapshot) {
    errflow_obs::gauge("serve.queue_depth").set(snap.queue_depth as i64);
    // Decode throughput in MB/s of decompressed output (integer gauge —
    // GB/s would truncate to 0 for realistic rates).  Published only once
    // payloads have flowed so an idle server's decode-floor SLO stays
    // vacuously healthy instead of breaching on 0.
    if snap.decomp_ns > 0 {
        let mbps = snap.decomp_gbps() * 1e3;
        errflow_obs::gauge("serve.decomp_mbps").set(mbps as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use errflow_obs::slo::SloState;
    use errflow_obs::timeseries::TierSpec;
    use errflow_obs::Sampler;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn snap_with(queue_depth: usize, decomp_ns: u64, bytes_out: u64) -> StatsSnapshot {
        StatsSnapshot {
            queue_depth,
            decomp_ns,
            decomp_bytes_out: bytes_out,
            ..StatsSnapshot::default()
        }
    }

    #[test]
    fn gauges_publish_from_snapshot() {
        publish_gauges(&snap_with(7, 1_000_000, 200_000_000));
        assert_eq!(errflow_obs::gauge("serve.queue_depth").get(), 7);
        // 200 MB in 1 ms = 200 GB/s = 200_000 MB/s.
        assert_eq!(errflow_obs::gauge("serve.decomp_mbps").get(), 200_000);
    }

    #[test]
    fn idle_server_publishes_no_decode_rate() {
        // Distinct gauge universe: set a sentinel, then publish an idle
        // snapshot and check the decode gauge was left alone.
        errflow_obs::gauge("serve.decomp_mbps").set(-1);
        publish_gauges(&snap_with(0, 0, 0));
        assert_eq!(errflow_obs::gauge("serve.decomp_mbps").get(), -1);
    }

    #[test]
    fn default_objectives_are_vacuously_ok_when_idle() {
        let sampler = Sampler::new(&[TierSpec {
            step_ms: 1000,
            len: 16,
        }]);
        let mut engine = errflow_obs::SloEngine::new(default_objectives());
        engine.evaluate(&sampler);
        for s in engine.statuses() {
            // Ratio objectives read real process-wide counters, which
            // other tests in this process may have bumped — only the
            // series-backed objectives are guaranteed data-free here.
            if s.name == "forward_p99" || s.name == "decompress_p99" || s.name == "decode_mbps" {
                assert_eq!(s.state, SloState::Ok, "{s:?}");
            }
        }
    }

    #[test]
    fn pump_thread_ticks_and_stops() {
        let calls = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&calls);
        let mut t = start_telemetry(
            move || {
                c.fetch_add(1, Ordering::Relaxed);
                snap_with(1, 0, 0)
            },
            TelemetryConfig {
                interval: Duration::from_millis(5),
                // Don't clobber the global engine from a unit test.
                objectives: Vec::new(),
            },
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while calls.load(Ordering::Relaxed) < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(calls.load(Ordering::Relaxed) >= 2, "pump never ticked");
        t.stop();
        let after = calls.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(calls.load(Ordering::Relaxed), after, "pump kept running");
        t.stop(); // idempotent
    }
}
