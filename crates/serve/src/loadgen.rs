//! Closed-loop synthetic load generation for `serve-bench`.
//!
//! Each of `clients` threads submits `requests_per_client` requests
//! back-to-back (closed loop: submit → wait → next), generating
//! spatially-correlated payloads the compressors treat like real fields.
//! Admission rejections ([`ServeError::QueueFull`]) are counted and
//! retried after a short backoff, so every request eventually completes
//! and rejection counts measure backpressure, not lost work.
//!
//! The run verifies the serving contract as it goes: **every** response's
//! certified `rel_bound` must be ≤ the tolerance its request asked for.

use crate::server::{Request, ServeError, Server};
use crate::stats::{LatencySummary, StageBreakdown};
use errflow_nn::Model;
use errflow_pipeline::planner::PayloadLayout;
use errflow_tensor::norms::Norm;
use errflow_tensor::rng::StdRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client submits (closed loop).
    pub requests_per_client: usize,
    /// Samples per request payload.
    pub samples_per_request: usize,
    /// Tolerances cycled across a client's requests.  A single entry is
    /// the steady-state "one SLO" workload (plan cache should approach a
    /// 100% hit rate); several entries exercise cache churn.
    pub tolerances: Vec<f64>,
    /// Norm every request expresses its tolerance in.
    pub norm: Norm,
    /// Payload layout for every request.
    pub layout: PayloadLayout,
    /// Base RNG seed (client `i` derives its own stream from it).
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            clients: 4,
            requests_per_client: 200,
            samples_per_request: 64,
            tolerances: vec![1e-2],
            norm: Norm::L2,
            layout: PayloadLayout::FeatureMajor,
            seed: 7,
        }
    }
}

/// Aggregate results of one load-generation run.
#[derive(Debug, Clone)]
pub struct BenchSummary {
    /// Client threads.
    pub clients: usize,
    /// Total requests completed (clients × requests_per_client).
    pub requests: u64,
    /// `QueueFull` rejections observed (each was retried).
    pub rejections: u64,
    /// Wall-clock duration of the run in seconds.
    pub wall_secs: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Server-side end-to-end latency distribution.
    pub latency: LatencySummary,
    /// Plan-cache hits over the run.
    pub cache_hits: u64,
    /// Plan-cache misses over the run.
    pub cache_misses: u64,
    /// `cache_hits / (cache_hits + cache_misses)`.
    pub cache_hit_rate: f64,
    /// Batched forward passes executed.
    pub batches: u64,
    /// Mean jobs per batch (coalescing factor).
    pub mean_batch_size: f64,
    /// Largest certified relative bound any response carried.
    pub max_rel_bound: f64,
    /// `true` iff every response's bound was ≤ its requested tolerance.
    pub all_bounds_certified: bool,
    /// Compressed bytes fed into payload decompression over the run.
    pub decomp_bytes_in: u64,
    /// Decompressed bytes produced over the run.
    pub decomp_bytes_out: u64,
    /// Payload decompression throughput (GB/s of decompressed output).
    pub decomp_gbps: f64,
    /// Codec scratch-pool hit rate over the server's lifetime (per-server
    /// delta; see [`crate::stats::StatsSnapshot::scratch_hits`]).
    pub scratch_hit_rate: f64,
    /// Codec decode sub-streams consumed over the run (per-server delta;
    /// see [`crate::stats::StatsSnapshot::decode_streams`]) — nonzero iff
    /// the traffic hit the v2 multi-stream decode paths.
    pub decode_streams: u64,
    /// Per-stage latency breakdown (ingress / batch wait / plan /
    /// decompress / forward / respond / egress — the net-frontend stages
    /// are empty for in-process runs).
    pub stages: StageBreakdown,
    /// Responses whose certified bound passed the plan-tolerance check.
    pub bound_pass: u64,
    /// Responses whose certified bound failed the check (must be 0).
    pub bound_fail: u64,
    /// Distribution of `rel_bound / plan_tol` per request — how much of
    /// the requested tolerance the certificates actually consumed.
    pub bound_margin: crate::stats::BoundMarginSummary,
}

impl BenchSummary {
    /// Builds a summary from a server stats snapshot plus the run-level
    /// aggregates only the driving loop knows (wall time, rejections, the
    /// max observed bound).  Shared by the in-process loadgen here and the
    /// socket-path loadgen in `errflow-net`.
    pub fn from_stats(
        snap: &crate::stats::StatsSnapshot,
        clients: usize,
        requests: u64,
        rejections: u64,
        wall_secs: f64,
        max_rel_bound: f64,
    ) -> Self {
        BenchSummary {
            clients,
            requests,
            rejections,
            wall_secs,
            throughput_rps: requests as f64 / wall_secs.max(1e-9),
            latency: snap.latency,
            cache_hits: snap.cache_hits,
            cache_misses: snap.cache_misses,
            cache_hit_rate: snap.cache_hit_rate(),
            batches: snap.batches,
            mean_batch_size: snap.mean_batch_size(),
            max_rel_bound,
            all_bounds_certified: true, // callers assert per response
            decomp_bytes_in: snap.decomp_bytes_in,
            decomp_bytes_out: snap.decomp_bytes_out,
            decomp_gbps: snap.decomp_gbps(),
            scratch_hit_rate: snap.scratch_hit_rate(),
            decode_streams: snap.decode_streams,
            stages: snap.stages,
            bound_pass: snap.bound_pass,
            bound_fail: snap.bound_fail,
            bound_margin: snap.bound_margin,
        }
    }

    /// Serializes the summary as a single JSON object (hand-rolled; the
    /// workspace carries no serialization dependency).
    pub fn to_json(&self) -> String {
        let num = |v: f64| {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            }
        };
        let stage = |s: &LatencySummary| {
            format!(
                "{{\"count\":{},\"mean_us\":{},\"p50_us\":{},\"p99_us\":{}}}",
                s.count,
                num(s.mean_us),
                num(s.p50_us),
                num(s.p99_us),
            )
        };
        // Stages that recorded nothing (ingress/egress for in-process
        // runs) are omitted entirely — an all-zero summary reads like a
        // measured 0 µs stage, which it is not.
        let named: [(&str, &LatencySummary); 7] = [
            ("ingress", &self.stages.ingress),
            ("batch_wait", &self.stages.batch_wait),
            ("plan", &self.stages.plan),
            ("decompress", &self.stages.decompress),
            ("forward", &self.stages.forward),
            ("respond", &self.stages.respond),
            ("egress", &self.stages.egress),
        ];
        let stages_json: Vec<String> = named
            .iter()
            .filter(|(_, s)| s.count > 0)
            .map(|(n, s)| format!("\"{n}\":{}", stage(s)))
            .collect();
        format!(
            concat!(
                "{{\"clients\":{},\"requests\":{},\"rejections\":{},",
                "\"wall_secs\":{},\"throughput_rps\":{},",
                "\"latency_us\":{{\"min\":{},\"mean\":{},\"p50\":{},\"p99\":{},\"max\":{}}},",
                "\"stages\":{{{}}},",
                "\"bounds\":{{\"pass\":{},\"fail\":{},",
                "\"margin_p50\":{},\"margin_p99\":{},\"margin_max\":{}}},",
                "\"cache\":{{\"hits\":{},\"misses\":{},\"hit_rate\":{}}},",
                "\"batches\":{},\"mean_batch_size\":{},",
                "\"max_rel_bound\":{},\"all_bounds_certified\":{},",
                "\"decomp\":{{\"bytes_in\":{},\"bytes_out\":{},\"gbps\":{},",
                "\"scratch_hit_rate\":{},\"decode_streams\":{}}}}}"
            ),
            self.clients,
            self.requests,
            self.rejections,
            num(self.wall_secs),
            num(self.throughput_rps),
            num(self.latency.min_us),
            num(self.latency.mean_us),
            num(self.latency.p50_us),
            num(self.latency.p99_us),
            num(self.latency.max_us),
            stages_json.join(","),
            self.bound_pass,
            self.bound_fail,
            num(self.bound_margin.p50),
            num(self.bound_margin.p99),
            num(self.bound_margin.max),
            self.cache_hits,
            self.cache_misses,
            num(self.cache_hit_rate),
            self.batches,
            num(self.mean_batch_size),
            num(self.max_rel_bound),
            self.all_bounds_certified,
            self.decomp_bytes_in,
            self.decomp_bytes_out,
            num(self.decomp_gbps),
            num(self.scratch_hit_rate),
            self.decode_streams,
        )
    }
}

/// Generates the next spatially-correlated payload: a smooth random walk
/// through `[-1, 1]^d` feature space, so flattened payloads compress like
/// the scientific fields the pipeline targets.  Public so the socket-path
/// loadgen in `errflow-net` drives the exact same workload.
pub fn next_payload(rng: &mut StdRng, state: &mut Vec<f32>, n: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|_| {
            for v in state.iter_mut() {
                *v = (*v + rng.gen_range(-0.02f32..0.02)).clamp(-1.0, 1.0);
            }
            state.clone()
        })
        .collect()
}

/// Drives the server with closed-loop load and returns the summary.
///
/// # Panics
/// If any response violates its request's tolerance — a broken certificate
/// is a correctness bug, not a statistic.
pub fn run_loadgen<M: Model + Clone + Send + Sync + 'static>(
    server: &Server<M>,
    cfg: &LoadgenConfig,
) -> BenchSummary {
    assert!(cfg.clients > 0 && cfg.requests_per_client > 0, "empty load");
    assert!(!cfg.tolerances.is_empty(), "need at least one tolerance");
    let d = server.input_dim();
    let rejections = AtomicU64::new(0);
    let max_bound_bits = AtomicU64::new(0f64.to_bits());

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..cfg.clients {
            let rejections = &rejections;
            let max_bound_bits = &max_bound_bits;
            let cfg = &*cfg;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(c as u64 * 7919));
                let mut state: Vec<f32> = (0..d).map(|_| rng.gen_range(-0.5f32..0.5)).collect();
                for r in 0..cfg.requests_per_client {
                    let tol = cfg.tolerances[r % cfg.tolerances.len()];
                    // Snapshot the generator state instead of cloning the
                    // payload: submission moves the samples into the
                    // request, and the rare `QueueFull` retry regenerates
                    // the identical payload from the snapshot.  The common
                    // accepted-first-try path stays zero-copy.
                    let rng_snap = rng.clone();
                    let state_snap = state.clone();
                    let mut samples =
                        Some(next_payload(&mut rng, &mut state, cfg.samples_per_request));
                    let ticket = loop {
                        let payload = samples.take().unwrap_or_else(|| {
                            let mut r = rng_snap.clone();
                            let mut s = state_snap.clone();
                            let p = next_payload(&mut r, &mut s, cfg.samples_per_request);
                            rng = r;
                            state = s;
                            p
                        });
                        let req = Request {
                            samples: payload,
                            rel_tolerance: tol,
                            norm: cfg.norm,
                            layout: cfg.layout,
                        };
                        match server.try_submit(req) {
                            Ok(t) => break t,
                            Err(ServeError::QueueFull) => {
                                rejections.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(std::time::Duration::from_micros(200));
                            }
                            // audit:allow(panic-reach) the load generator is a
                            // test harness: a failed submit is a correctness
                            // bug it must surface loudly (see module docs).
                            Err(e) => panic!("submit failed: {e}"),
                        }
                    };
                    // audit:allow(panic-reach) same harness rule: a dropped
                    // certificate is a bug, not an operational condition.
                    let resp = ticket.wait().expect("request must complete");
                    assert!(
                        resp.rel_bound <= tol,
                        "certificate violated: bound {} > tolerance {tol}",
                        resp.rel_bound
                    );
                    assert_eq!(resp.outputs.len(), cfg.samples_per_request);
                    // Atomic f64 max via compare-exchange on the bits
                    // (non-negative floats order like their bit patterns).
                    let mut cur = max_bound_bits.load(Ordering::Relaxed);
                    while f64::from_bits(cur) < resp.rel_bound {
                        match max_bound_bits.compare_exchange_weak(
                            cur,
                            resp.rel_bound.to_bits(),
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => break,
                            Err(seen) => cur = seen,
                        }
                    }
                }
            });
        }
    });
    let wall_secs = t0.elapsed().as_secs_f64();

    let snap = server.stats();
    let requests = (cfg.clients * cfg.requests_per_client) as u64;
    // all_bounds_certified is enforced inline by the per-response asserts.
    BenchSummary::from_stats(
        &snap,
        cfg.clients,
        requests,
        rejections.load(Ordering::Relaxed),
        wall_secs,
        f64::from_bits(max_bound_bits.load(Ordering::Relaxed)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_json_is_well_formed() {
        let s = BenchSummary {
            clients: 4,
            requests: 800,
            rejections: 3,
            wall_secs: 1.25,
            throughput_rps: 640.0,
            latency: LatencySummary {
                count: 800,
                min_us: 90.0,
                max_us: 4000.0,
                mean_us: 250.0,
                p50_us: 181.0,
                p99_us: 2896.0,
            },
            cache_hits: 799,
            cache_misses: 1,
            cache_hit_rate: 0.99875,
            batches: 500,
            mean_batch_size: 1.6,
            max_rel_bound: 0.0056,
            all_bounds_certified: true,
            decomp_bytes_in: 100_000,
            decomp_bytes_out: 800_000,
            decomp_gbps: 2.5,
            scratch_hit_rate: 0.97,
            decode_streams: 3200,
            stages: StageBreakdown {
                decompress: LatencySummary {
                    count: 800,
                    min_us: 10.0,
                    max_us: 90.0,
                    mean_us: 40.0,
                    p50_us: 35.0,
                    p99_us: 88.0,
                },
                ..StageBreakdown::default()
            },
            bound_pass: 800,
            bound_fail: 0,
            bound_margin: crate::stats::BoundMarginSummary {
                count: 800,
                p50: 0.4,
                p99: 0.92,
                max: 0.97,
            },
        };
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"requests\":800"), "{j}");
        assert!(j.contains("\"hit_rate\":0.99875"), "{j}");
        assert!(j.contains("\"all_bounds_certified\":true"), "{j}");
        assert!(j.contains("\"p99\":2896"), "{j}");
        assert!(j.contains("\"gbps\":2.5"), "{j}");
        assert!(j.contains("\"scratch_hit_rate\":0.97"), "{j}");
        assert!(
            j.contains("\"decompress\":{\"count\":800,\"mean_us\":40,"),
            "{j}"
        );
        // Stages with zero observations (everything except decompress in
        // this fixture) are omitted, not emitted as all-zero objects.
        assert!(!j.contains("\"ingress\""), "{j}");
        assert!(!j.contains("\"egress\""), "{j}");
        assert!(!j.contains("\"forward\""), "{j}");
        assert!(
            j.contains("\"bounds\":{\"pass\":800,\"fail\":0,\"margin_p50\":0.4,"),
            "{j}"
        );
        // Balanced braces (nested latency/stages/cache objects).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn empty_stages_block_is_an_empty_object() {
        let s = BenchSummary {
            stages: StageBreakdown::default(),
            ..zero_summary()
        };
        let j = s.to_json();
        assert!(j.contains("\"stages\":{},"), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    fn zero_summary() -> BenchSummary {
        BenchSummary {
            clients: 1,
            requests: 0,
            rejections: 0,
            wall_secs: 0.0,
            throughput_rps: 0.0,
            latency: LatencySummary::default(),
            cache_hits: 0,
            cache_misses: 0,
            cache_hit_rate: 0.0,
            batches: 0,
            mean_batch_size: 0.0,
            max_rel_bound: 0.0,
            all_bounds_certified: true,
            decomp_bytes_in: 0,
            decomp_bytes_out: 0,
            decomp_gbps: 0.0,
            scratch_hit_rate: 0.0,
            decode_streams: 0,
            stages: StageBreakdown::default(),
            bound_pass: 0,
            bound_fail: 0,
            bound_margin: crate::stats::BoundMarginSummary::default(),
        }
    }

    #[test]
    fn nonfinite_values_serialize_as_null() {
        let s = BenchSummary {
            throughput_rps: f64::INFINITY,
            cache_hit_rate: f64::NAN,
            decomp_gbps: f64::NAN,
            ..zero_summary()
        };
        let j = s.to_json();
        assert!(j.contains("\"throughput_rps\":null"), "{j}");
        assert!(j.contains("\"hit_rate\":null"), "{j}");
        assert!(j.contains("\"gbps\":null"), "{j}");
    }
}
