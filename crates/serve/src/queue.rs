//! Bounded MPMC job queue with explicit backpressure.
//!
//! Built on `Mutex` + `Condvar` only (the workspace carries no external
//! dependencies).  Producers either **block** until capacity frees up
//! ([`BoundedQueue::push`]) or get an immediate [`QueueFull`] rejection
//! carrying the item back ([`BoundedQueue::try_push`]) — that rejection is
//! the server's admission-control signal.  Consumers block on
//! [`BoundedQueue::pop`] / [`BoundedQueue::pop_batch`]; the batch variant
//! additionally drains queued items that share the head item's key, which
//! is how same-plan requests coalesce into one batched forward pass.

use errflow_tensor::sync::{lock_recover, wait_recover};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Rejection returned by [`BoundedQueue::try_push`] when the queue is at
/// capacity (or closed); carries the item back to the caller.
#[derive(Debug)]
pub struct QueueFull<T>(pub T);

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer FIFO.
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    /// Signalled when an item arrives or the queue closes (wakes poppers).
    not_empty: Condvar,
    /// Signalled when capacity frees up or the queue closes (wakes pushers).
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be nonzero");
        BoundedQueue {
            capacity,
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        lock_recover(&self.state).items.len()
    }

    /// `true` when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues without blocking; rejects with [`QueueFull`] when the queue
    /// is at capacity or closed.
    pub fn try_push(&self, item: T) -> Result<(), QueueFull<T>> {
        let mut s = lock_recover(&self.state);
        if s.closed || s.items.len() >= self.capacity {
            return Err(QueueFull(item));
        }
        s.items.push_back(item);
        drop(s);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues, blocking while the queue is at capacity.  Returns the item
    /// back if the queue closes before space frees up.
    pub fn push(&self, item: T) -> Result<(), QueueFull<T>> {
        let mut s = lock_recover(&self.state);
        while !s.closed && s.items.len() >= self.capacity {
            s = wait_recover(&self.not_full, s);
        }
        if s.closed {
            return Err(QueueFull(item));
        }
        s.items.push_back(item);
        drop(s);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues one item, blocking while the queue is empty.  Returns
    /// `None` once the queue is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut s = lock_recover(&self.state);
        loop {
            if let Some(item) = s.items.pop_front() {
                drop(s);
                self.not_full.notify_one();
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = wait_recover(&self.not_empty, s);
        }
    }

    /// Dequeues the head item plus up to `max - 1` further queued items
    /// whose `key` equals the head's, preserving FIFO order among the rest.
    /// Blocks while empty; returns `None` once closed and drained.
    ///
    /// This is the batcher's coalescing primitive: jobs that will execute
    /// under the same cached plan ride the same batched forward pass.
    pub fn pop_batch<K: PartialEq>(&self, max: usize, key: impl Fn(&T) -> K) -> Option<Vec<T>> {
        assert!(max > 0, "batch size must be nonzero");
        let mut s = lock_recover(&self.state);
        loop {
            if let Some(head) = s.items.pop_front() {
                let k = key(&head);
                let mut batch = vec![head];
                let mut i = 0;
                while batch.len() < max && i < s.items.len() {
                    if key(&s.items[i]) == k {
                        // `i < len` holds, so remove always yields an item.
                        match s.items.remove(i) {
                            Some(item) => batch.push(item),
                            None => break,
                        }
                    } else {
                        i += 1;
                    }
                }
                drop(s);
                // Freed one or more slots: wake every blocked producer.
                self.not_full.notify_all();
                return Some(batch);
            }
            if s.closed {
                return None;
            }
            s = wait_recover(&self.not_empty, s);
        }
    }

    /// Closes the queue: producers are rejected from now on, consumers
    /// drain the remaining items and then observe `None`.
    pub fn close(&self) {
        lock_recover(&self.state).closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Removes and returns every queued item (used at shutdown to fail
    /// outstanding requests instead of leaving waiters hanging).
    pub fn drain(&self) -> Vec<T> {
        let mut s = lock_recover(&self.state);
        let out = s.items.drain(..).collect();
        drop(s);
        self.not_full.notify_all();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn try_push_rejects_at_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let QueueFull(rejected) = q.try_push(3).unwrap_err();
        assert_eq!(rejected, 3);
        // Draining one slot re-admits.
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn blocking_push_waits_for_capacity() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(1).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(2).is_ok());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.len(), 1, "producer must be blocked, not enqueued");
        assert_eq!(q.pop(), Some(1));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn pop_batch_coalesces_matching_keys() {
        let q = BoundedQueue::new(8);
        for item in [("a", 0), ("b", 1), ("a", 2), ("c", 3), ("a", 4)] {
            q.try_push(item).unwrap();
        }
        let batch = q.pop_batch(8, |t| t.0).unwrap();
        assert_eq!(batch, vec![("a", 0), ("a", 2), ("a", 4)]);
        // Non-matching items keep their order.
        assert_eq!(q.pop_batch(8, |t| t.0).unwrap(), vec![("b", 1)]);
        assert_eq!(q.pop_batch(8, |t| t.0).unwrap(), vec![("c", 3)]);
    }

    #[test]
    fn pop_batch_respects_max() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(("k", i)).unwrap();
        }
        let batch = q.pop_batch(3, |t| t.0).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_wakes_poppers_and_rejects_pushers() {
        let q = Arc::new(BoundedQueue::<u32>::new(2));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(popper.join().unwrap(), None);
        assert!(q.try_push(1).is_err());
        assert!(q.push(1).is_err());
    }

    #[test]
    fn close_lets_consumers_drain_backlog() {
        let q = BoundedQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn drain_empties_queue() {
        let q = BoundedQueue::new(4);
        for i in 0..3 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.drain(), vec![0, 1, 2]);
        assert!(q.is_empty());
    }

    #[test]
    fn mpmc_stress_delivers_everything_once() {
        let q = Arc::new(BoundedQueue::new(8));
        let producers = 4;
        let per = 100usize;
        let mut handles = Vec::new();
        for p in 0..producers {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    q.push(p * per + i).unwrap();
                }
            }));
        }
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        q.close();
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..producers * per).collect::<Vec<_>>());
    }
}
