//! Plan cache: memoizes the planner's (expensive) decisions across
//! requests.
//!
//! A plan depends on the model, the tolerance, the norm the tolerance is
//! expressed in, and the payload layout.  Tolerances are continuous, so
//! they are **bucketed downward in log space**: a request for tolerance
//! `τ` maps to the largest bucket floor `τ_b ≤ τ`, and the cached plan is
//! computed *at the floor*.  Its certified bound is therefore ≤ `τ_b ≤ τ`
//! — every request served from the bucket keeps a sound (merely slightly
//! conservative) guarantee.  With [`BUCKETS_PER_DECADE`] = 4, the floor is
//! at worst `10^(1/4) ≈ 1.78×` tighter than requested.
//!
//! Eviction is LRU over a fixed capacity; hit/miss counters feed the
//! server's stats surface.

use errflow_obs::ScopedCounter;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Log-space tolerance buckets per decade.
pub const BUCKETS_PER_DECADE: f64 = 4.0;

/// Maps a relative tolerance to its bucket index and the bucket's floor
/// tolerance (`floor ≤ tol`, the value plans are computed at).
pub fn bucket_tolerance(tol: f64) -> (i32, f64) {
    assert!(tol > 0.0 && tol.is_finite(), "tolerance must be positive");
    let mut idx = (tol.log10() * BUCKETS_PER_DECADE).floor() as i32;
    let mut floor = 10f64.powf(idx as f64 / BUCKETS_PER_DECADE);
    // Guard the exact-boundary case where rounding puts the floor a ulp
    // above the request; soundness requires floor ≤ tol.
    if floor > tol {
        idx -= 1;
        floor = 10f64.powf(idx as f64 / BUCKETS_PER_DECADE);
    }
    (idx, floor)
}

/// Cache key: everything a pipeline plan depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Fingerprint of the served model (one server serves one model today,
    /// but the key keeps cache entries valid if that ever changes).
    pub model_id: u64,
    /// Log-space tolerance bucket from [`bucket_tolerance`].
    pub tol_bucket: i32,
    /// Norm discriminant (0 = L2, 1 = L∞).
    pub norm: u8,
    /// Payload-layout discriminant (0 = feature-major, 1 = sample-major).
    pub layout: u8,
}

struct Entry<V> {
    value: Arc<V>,
    /// Monotonic last-use stamp; smallest = least recently used.
    stamp: u64,
}

/// A thread-safe LRU cache from [`PlanKey`] to prepared plans.
pub struct PlanCache<V> {
    capacity: usize,
    map: Mutex<(HashMap<PlanKey, Entry<V>>, u64)>,
    /// Per-instance hit/miss counters, mirrored into the process-wide
    /// `serve.plan_cache.{hits,misses}` registry metrics.
    hits: ScopedCounter,
    misses: ScopedCounter,
}

impl<V> PlanCache<V> {
    /// Creates a cache holding at most `capacity` plans.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be nonzero");
        PlanCache {
            capacity,
            map: Mutex::new((HashMap::new(), 0)),
            hits: ScopedCounter::new("serve.plan_cache.hits"),
            misses: ScopedCounter::new("serve.plan_cache.misses"),
        }
    }

    /// Returns the cached plan for `key`, building and inserting it with
    /// `build` on a miss.  The boolean is `true` on a hit.
    ///
    /// `build` runs under the cache lock, which intentionally serialises
    /// concurrent misses on the same key: one worker plans, the rest hit.
    pub fn get_or_insert_with(&self, key: PlanKey, build: impl FnOnce() -> V) -> (Arc<V>, bool) {
        let mut guard = errflow_tensor::sync::lock_recover(&self.map);
        let (map, stamp) = &mut *guard;
        *stamp += 1;
        if let Some(e) = map.get_mut(&key) {
            e.stamp = *stamp;
            self.hits.inc();
            return (Arc::clone(&e.value), true);
        }
        self.misses.inc();
        if map.len() >= self.capacity {
            // `capacity > 0` and the map is at capacity, so an LRU entry
            // exists; a (theoretically) empty map just skips eviction.
            if let Some(lru) = map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| *k) {
                map.remove(&lru);
            }
        }
        let value = Arc::new(build());
        map.insert(
            key,
            Entry {
                value: Arc::clone(&value),
                stamp: *stamp,
            },
        );
        (value, false)
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        errflow_tensor::sync::lock_recover(&self.map).0.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache (this instance only).
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lookups that had to plan from scratch (this instance only).
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// `hits / (hits + misses)`, or 0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(b: i32) -> PlanKey {
        PlanKey {
            model_id: 1,
            tol_bucket: b,
            norm: 0,
            layout: 0,
        }
    }

    #[test]
    fn bucket_floor_never_exceeds_tolerance() {
        let mut rng = errflow_tensor::rng::StdRng::seed_from_u64(0x5EED);
        for _ in 0..1000 {
            let tol = 10f64.powf(rng.gen_range(-8.0f64..1.0));
            let (_, floor) = bucket_tolerance(tol);
            assert!(floor <= tol, "floor {floor} > tol {tol}");
            // Never more than one bucket width below.
            assert!(
                floor > tol / 10f64.powf(1.0 / BUCKETS_PER_DECADE) * 0.999,
                "floor {floor} too far below tol {tol}"
            );
        }
    }

    #[test]
    fn bucketing_is_monotone_and_stable() {
        let (i1, f1) = bucket_tolerance(1e-3);
        let (i2, f2) = bucket_tolerance(1.2e-3);
        let (i3, _) = bucket_tolerance(9e-3);
        assert_eq!(i1, i2, "nearby tolerances share a bucket");
        assert_eq!(f1, f2);
        assert!(i3 > i1, "larger tolerance gets a larger bucket");
        // Exact power of ten is its own floor.
        let (_, f) = bucket_tolerance(1e-2);
        assert!((f - 1e-2).abs() < 1e-15);
    }

    #[test]
    fn hit_after_identical_miss() {
        let cache = PlanCache::new(4);
        let (v1, hit1) = cache.get_or_insert_with(key(0), || 42);
        let (v2, hit2) = cache.get_or_insert_with(key(0), || 99);
        assert!(!hit1);
        assert!(hit2);
        assert_eq!((*v1, *v2), (42, 42), "hit returns the memoized value");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.hit_rate(), 0.5);
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = PlanCache::new(2);
        cache.get_or_insert_with(key(0), || 0);
        cache.get_or_insert_with(key(1), || 1);
        // Touch key 0 so key 1 is the LRU.
        cache.get_or_insert_with(key(0), || 0);
        cache.get_or_insert_with(key(2), || 2);
        assert_eq!(cache.len(), 2);
        let (_, hit0) = cache.get_or_insert_with(key(0), || 0);
        assert!(hit0, "recently-used entry survived");
        let (_, hit1) = cache.get_or_insert_with(key(1), || 1);
        assert!(!hit1, "LRU entry was evicted");
    }

    #[test]
    fn distinct_key_fields_are_distinct_entries() {
        let cache = PlanCache::new(8);
        let base = key(0);
        cache.get_or_insert_with(base, || 0);
        for k in [
            PlanKey { norm: 1, ..base },
            PlanKey { layout: 1, ..base },
            PlanKey {
                model_id: 2,
                ..base
            },
            PlanKey {
                tol_bucket: 5,
                ..base
            },
        ] {
            let (_, hit) = cache.get_or_insert_with(k, || 1);
            assert!(!hit);
        }
        assert_eq!(cache.len(), 5);
    }
}
