//! Batch glue for the fused decode → forward path: payload layout
//! transposition into the batch input matrix and per-job output-row
//! extraction.
//!
//! The queue's `pop_batch` guarantees every job in a batch shares a plan
//! (same quantized model, same certified bound), so their samples ride one
//! batched GEMM pass over a single input [`Matrix`].  Sample-major
//! payloads decode *directly* into their row slab of that matrix (see
//! `server::prepare_batch`); feature-major payloads decode into a scratch
//! slab and are transposed into place by [`transpose_into`].  After the
//! forward pass, [`extract_rows`] splits the output matrix back into
//! per-job sample vectors.

use errflow_tensor::Matrix;

/// Transposes a feature-major flat payload (`flat[f * n + s]` = sample
/// `s`, feature `f`) into a sample-major row slab (`out[s * d + f]`).
///
/// Returns `false` (leaving `out` untouched) when either slice does not
/// hold exactly `n * d` values — the caller treats that as a corrupt
/// payload rather than panicking on a hot serving path.
pub fn transpose_into(flat: &[f32], n: usize, d: usize, out: &mut [f32]) -> bool {
    let Some(total) = n.checked_mul(d) else {
        return false;
    };
    if flat.len() != total || out.len() != total {
        return false;
    }
    for (s, row) in out.chunks_exact_mut(d.max(1)).enumerate() {
        for (f, slot) in row.iter_mut().enumerate() {
            *slot = flat[f * n + s];
        }
    }
    true
}

/// Copies `n` output rows starting at `r0` back out as per-sample vectors
/// (the response format).  Rows outside the matrix are skipped, so a
/// miscounted batch yields short output instead of a panic; the server
/// asserts row accounting separately via its batch bookkeeping.
pub fn extract_rows(out: &Matrix, r0: usize, n: usize) -> Vec<Vec<f32>> {
    (r0..r0.saturating_add(n))
        .filter(|&r| r < out.rows())
        .map(|r| out.row(r).to_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_feature_major_into_rows() {
        // 3 samples × 2 features, feature-major: [f0s0 f0s1 f0s2 f1s0 f1s1 f1s2]
        let flat = [1.0, 2.0, 3.0, 10.0, 20.0, 30.0];
        let mut out = [0.0f32; 6];
        assert!(transpose_into(&flat, 3, 2, &mut out));
        assert_eq!(out, [1.0, 10.0, 2.0, 20.0, 3.0, 30.0]);
    }

    #[test]
    fn transpose_rejects_bad_lengths() {
        let flat = [0.0f32; 5];
        let mut out = [0.0f32; 6];
        assert!(!transpose_into(&flat, 3, 2, &mut out));
        let flat = [0.0f32; 6];
        let mut short = [0.0f32; 5];
        assert!(!transpose_into(&flat, 3, 2, &mut short));
    }

    #[test]
    fn extract_rows_splits_output_matrix() {
        let m = Matrix::from_fn(5, 2, |r, c| (r * 10 + c) as f32);
        let rows = extract_rows(&m, 1, 3);
        assert_eq!(
            rows,
            vec![vec![10.0, 11.0], vec![20.0, 21.0], vec![30.0, 31.0]]
        );
        assert_eq!(extract_rows(&m, 4, 1), vec![vec![40.0, 41.0]]);
        // Out-of-range rows are dropped, never panicked on.
        assert_eq!(extract_rows(&m, 4, 3).len(), 1);
        assert!(extract_rows(&m, 9, 2).is_empty());
    }
}
