//! Batch assembly: stacking the samples of coalesced same-plan jobs into
//! one input matrix for a single `forward_batch` call, and splitting the
//! output rows back out per job.
//!
//! The queue's `pop_batch` guarantees every job in a batch shares a plan
//! (same quantized model, same certified bound), so their samples can ride
//! one batched GEMM pass; these two helpers are the glue on either side.

/// Concatenates each job's samples into one flat batch, remembering the
/// per-job sample counts for [`split_outputs`].
pub fn assemble_inputs(per_job: Vec<Vec<Vec<f32>>>) -> (Vec<Vec<f32>>, Vec<usize>) {
    let counts: Vec<usize> = per_job.iter().map(Vec::len).collect();
    let mut flat = Vec::with_capacity(counts.iter().sum());
    for samples in per_job {
        flat.extend(samples);
    }
    (flat, counts)
}

/// Splits batched outputs back into per-job groups (inverse of
/// [`assemble_inputs`] on the output side).
///
/// # Panics
/// If `outputs.len()` differs from the total of `counts` — that would mean
/// the model dropped or invented rows, which must never go unnoticed.
pub fn split_outputs(mut outputs: Vec<Vec<f32>>, counts: &[usize]) -> Vec<Vec<Vec<f32>>> {
    assert_eq!(
        outputs.len(),
        counts.iter().sum::<usize>(),
        "batched forward must return one output row per input sample"
    );
    let mut per_job = Vec::with_capacity(counts.len());
    for &n in counts.iter().rev() {
        let tail = outputs.split_off(outputs.len() - n);
        per_job.push(tail);
    }
    per_job.reverse();
    per_job
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(v: f32) -> Vec<f32> {
        vec![v, v + 0.5]
    }

    #[test]
    fn assemble_then_split_roundtrips() {
        let jobs = vec![
            vec![sample(0.0), sample(1.0)],
            vec![sample(2.0)],
            vec![sample(3.0), sample(4.0), sample(5.0)],
        ];
        let (flat, counts) = assemble_inputs(jobs.clone());
        assert_eq!(flat.len(), 6);
        assert_eq!(counts, vec![2, 1, 3]);
        assert_eq!(split_outputs(flat, &counts), jobs);
    }

    #[test]
    fn empty_job_list() {
        let (flat, counts) = assemble_inputs(Vec::new());
        assert!(flat.is_empty());
        assert!(counts.is_empty());
        assert!(split_outputs(flat, &counts).is_empty());
    }

    #[test]
    fn single_job_passthrough() {
        let jobs = vec![vec![sample(7.0)]];
        let (flat, counts) = assemble_inputs(jobs.clone());
        assert_eq!(split_outputs(flat, &counts), jobs);
    }

    #[test]
    #[should_panic(expected = "one output row per input sample")]
    fn row_count_mismatch_panics() {
        split_outputs(vec![sample(0.0)], &[2]);
    }
}
