//! Lock-free server statistics: request counters and a fixed-size
//! log-scale latency histogram.
//!
//! Latencies are recorded in nanoseconds into 64 power-of-two buckets
//! (bucket *i* covers `[2^i, 2^(i+1))` ns), so the histogram needs no
//! allocation, no lock, and covers sub-microsecond to multi-century in
//! constant space.  Quantiles are read by walking the cumulative counts;
//! a bucket's reported value is its geometric midpoint, so quantile error
//! is bounded by the √2 bucket ratio — plenty for p50/p99 dashboards.

use std::sync::atomic::{AtomicU64, Ordering};

const BUCKETS: usize = 64;

/// A fixed-size concurrent histogram of latencies in nanoseconds.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one latency observation.
    pub fn record(&self, latency: std::time::Duration) {
        let ns = (latency.as_nanos() as u64).max(1);
        let bucket = (63 - ns.leading_zeros()) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time summary of the recorded distribution.
    pub fn summary(&self) -> LatencySummary {
        let count = self.count();
        if count == 0 {
            return LatencySummary::default();
        }
        LatencySummary {
            count,
            min_us: self.min_ns.load(Ordering::Relaxed) as f64 / 1e3,
            max_us: self.max_ns.load(Ordering::Relaxed) as f64 / 1e3,
            mean_us: self.sum_ns.load(Ordering::Relaxed) as f64 / count as f64 / 1e3,
            p50_us: self.quantile(0.50) / 1e3,
            p99_us: self.quantile(0.99) / 1e3,
        }
    }

    /// Approximate `q`-quantile in nanoseconds (geometric bucket midpoint).
    fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = (q * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                // Geometric midpoint of [2^i, 2^(i+1)).
                return 2f64.powi(i as i32) * std::f64::consts::SQRT_2;
            }
        }
        2f64.powi(BUCKETS as i32 - 1)
    }
}

/// Snapshot of the latency distribution, in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Number of observations.
    pub count: u64,
    /// Smallest observed latency.
    pub min_us: f64,
    /// Largest observed latency.
    pub max_us: f64,
    /// Arithmetic mean.
    pub mean_us: f64,
    /// Median (histogram-approximate).
    pub p50_us: f64,
    /// 99th percentile (histogram-approximate).
    pub p99_us: f64,
}

/// Live server counters (all relaxed atomics; written on hot paths).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Requests admitted into the queue.
    pub submitted: AtomicU64,
    /// Requests rejected with `QueueFull` by admission control.
    pub rejected: AtomicU64,
    /// Requests completed successfully.
    pub completed: AtomicU64,
    /// Requests that failed during processing.
    pub failed: AtomicU64,
    /// Batched forward passes executed.
    pub batches: AtomicU64,
    /// Jobs carried by those batches (`batched_jobs / batches` = mean
    /// coalescing factor).
    pub batched_jobs: AtomicU64,
    /// Wall time spent decompressing request payloads, in nanoseconds.
    pub decomp_ns: AtomicU64,
    /// Compressed bytes fed into payload decompression.
    pub decomp_bytes_in: AtomicU64,
    /// Decompressed bytes produced (values × 4).
    pub decomp_bytes_out: AtomicU64,
    /// End-to-end request latency (enqueue → response).
    pub latency: LatencyHistogram,
}

impl ServerStats {
    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_batch(&self, jobs: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_jobs.fetch_add(jobs as u64, Ordering::Relaxed);
    }

    pub(crate) fn note_decomp(&self, ns: u64, bytes_in: u64, bytes_out: u64) {
        self.decomp_ns.fetch_add(ns, Ordering::Relaxed);
        self.decomp_bytes_in.fetch_add(bytes_in, Ordering::Relaxed);
        self.decomp_bytes_out
            .fetch_add(bytes_out, Ordering::Relaxed);
    }
}

/// Point-in-time view of [`ServerStats`] plus queue/cache gauges, as
/// returned by `Server::stats`.
#[derive(Debug, Clone, Copy)]
pub struct StatsSnapshot {
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests failed during processing.
    pub failed: u64,
    /// Batched forward passes executed.
    pub batches: u64,
    /// Total jobs carried by batches.
    pub batched_jobs: u64,
    /// Jobs currently waiting in the queue.
    pub queue_depth: usize,
    /// Plan-cache lookups served from cache.
    pub cache_hits: u64,
    /// Plan-cache lookups that planned from scratch.
    pub cache_misses: u64,
    /// Wall time spent decompressing request payloads, in nanoseconds.
    pub decomp_ns: u64,
    /// Compressed bytes fed into payload decompression.
    pub decomp_bytes_in: u64,
    /// Decompressed bytes produced (values × 4).
    pub decomp_bytes_out: u64,
    /// Codec scratch-pool hits since process start (process-wide — the
    /// pool is shared by every compressor in the process).
    pub scratch_hits: u64,
    /// Codec scratch-pool misses since process start.
    pub scratch_misses: u64,
    /// Latency distribution snapshot.
    pub latency: LatencySummary,
}

impl StatsSnapshot {
    /// `cache_hits / (cache_hits + cache_misses)`, or 0 before any lookup.
    pub fn cache_hit_rate(&self) -> f64 {
        let t = self.cache_hits + self.cache_misses;
        if t == 0 {
            0.0
        } else {
            self.cache_hits as f64 / t as f64
        }
    }

    /// Mean jobs per batched forward pass.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_jobs as f64 / self.batches as f64
        }
    }

    /// Payload decompression throughput in GB/s of decompressed output
    /// (bytes per nanosecond), or 0 before any payload was decoded.
    pub fn decomp_gbps(&self) -> f64 {
        if self.decomp_ns == 0 {
            0.0
        } else {
            self.decomp_bytes_out as f64 / self.decomp_ns as f64
        }
    }

    /// `scratch_hits / (scratch_hits + scratch_misses)`, or 0 before any
    /// acquisition.  Near 1.0 once the codec scratch pool is warm.
    pub fn scratch_hit_rate(&self) -> f64 {
        let t = self.scratch_hits + self.scratch_misses;
        if t == 0 {
            0.0
        } else {
            self.scratch_hits as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn empty_histogram_summarises_to_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.summary(), LatencySummary::default());
    }

    #[test]
    fn summary_orders_quantiles() {
        let h = LatencyHistogram::new();
        for us in [5u64, 10, 20, 40, 80, 160, 320, 640, 1280, 100_000] {
            h.record(Duration::from_micros(us));
        }
        let s = h.summary();
        assert_eq!(s.count, 10);
        assert!(s.min_us <= s.p50_us, "{s:?}");
        assert!(s.p50_us <= s.p99_us, "{s:?}");
        assert!(s.p99_us <= s.max_us * std::f64::consts::SQRT_2, "{s:?}");
        assert!((s.min_us - 5.0).abs() < 1e-9);
        assert!((s.max_us - 100_000.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_land_in_the_right_bucket() {
        let h = LatencyHistogram::new();
        // 99 fast observations, 1 slow: p50 fast, p99+ reaches the tail.
        for _ in 0..99 {
            h.record(Duration::from_micros(10));
        }
        h.record(Duration::from_millis(50));
        let s = h.summary();
        assert!(s.p50_us < 20.0, "{s:?}");
        assert!(s.p99_us < 20.0, "p99 of 99/100 fast is still fast: {s:?}");
        assert!(s.max_us >= 50_000.0);
        // Mean is pulled up by the tail.
        assert!(s.mean_us > 100.0, "{s:?}");
    }

    #[test]
    fn histogram_is_thread_safe() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        h.record(Duration::from_micros(100));
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
    }

    #[test]
    fn snapshot_derived_metrics() {
        let snap = StatsSnapshot {
            submitted: 10,
            rejected: 2,
            completed: 10,
            failed: 0,
            batches: 4,
            batched_jobs: 10,
            queue_depth: 0,
            cache_hits: 9,
            cache_misses: 1,
            decomp_ns: 1_000_000,
            decomp_bytes_in: 400_000,
            decomp_bytes_out: 4_000_000,
            scratch_hits: 30,
            scratch_misses: 10,
            latency: LatencySummary::default(),
        };
        assert!((snap.cache_hit_rate() - 0.9).abs() < 1e-12);
        assert!((snap.mean_batch_size() - 2.5).abs() < 1e-12);
        // 4 MB decoded in 1 ms = 4 GB/s (bytes per nanosecond).
        assert!((snap.decomp_gbps() - 4.0).abs() < 1e-12);
        assert!((snap.scratch_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zeroed_snapshot_rates_are_zero() {
        let snap = StatsSnapshot {
            submitted: 0,
            rejected: 0,
            completed: 0,
            failed: 0,
            batches: 0,
            batched_jobs: 0,
            queue_depth: 0,
            cache_hits: 0,
            cache_misses: 0,
            decomp_ns: 0,
            decomp_bytes_in: 0,
            decomp_bytes_out: 0,
            scratch_hits: 0,
            scratch_misses: 0,
            latency: LatencySummary::default(),
        };
        assert_eq!(snap.decomp_gbps(), 0.0);
        assert_eq!(snap.scratch_hit_rate(), 0.0);
        assert_eq!(snap.cache_hit_rate(), 0.0);
    }
}
