//! Server statistics: per-instance counters mirrored into the process-wide
//! [`errflow_obs`] metrics registry, plus end-to-end and per-stage latency
//! histograms.
//!
//! The histogram machinery (log₂ buckets, quantiles, merging) lives in
//! [`errflow_obs::hist`]; this module re-exports [`LatencyHistogram`] and
//! [`LatencySummary`] so existing `errflow_serve::stats` users keep
//! compiling.  Counters are [`ScopedCounter`]s: `.get()` reads the
//! *instance* value (tests construct several servers in one process and
//! assert exact per-server counts), while every bump also lands in the
//! named registry metric for Prometheus/JSON exposition.

use errflow_obs::ScopedCounter;
pub use errflow_obs::{LatencyHistogram, LatencySummary};
use std::sync::Arc;
use std::time::Duration;

/// An instance-local latency histogram that mirrors every observation into
/// a named process-wide registry histogram.  [`summary`](Self::summary)
/// reads the instance view; exposition sees the process total.
#[derive(Debug)]
pub struct MirroredHistogram {
    local: LatencyHistogram,
    global: Arc<errflow_obs::Log2Histogram>,
}

impl MirroredHistogram {
    /// Creates a fresh instance histogram mirroring into `global_name`.
    pub fn new(global_name: &str) -> Self {
        MirroredHistogram {
            local: LatencyHistogram::new(),
            global: errflow_obs::histogram(global_name),
        }
    }

    /// Records one latency observation.
    pub fn record(&self, latency: Duration) {
        self.record_ns(latency.as_nanos() as u64);
    }

    /// Records one latency observation given in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.local.record_ns(ns);
        self.global.record(ns);
    }

    /// Number of observations recorded through this instance.
    pub fn count(&self) -> u64 {
        self.local.count()
    }

    /// Point-in-time summary of the instance distribution.
    pub fn summary(&self) -> LatencySummary {
        self.local.summary()
    }

    /// The unit-agnostic instance histogram, for callers that record
    /// something other than nanoseconds (e.g. scaled ratios) and need raw
    /// quantiles without the microsecond conversion of [`summary`].
    ///
    /// [`summary`]: Self::summary
    pub fn raw(&self) -> &errflow_obs::Log2Histogram {
        self.local.as_log2()
    }
}

/// Where a completed request spent its time, in nanoseconds.  Shipped on
/// every [`crate::Response`].
///
/// The intervals are disjoint slices of the request's life, so their sum
/// is ≤ the end-to-end latency (the remainder is bookkeeping between
/// stages).  Batch-level stages (`plan_ns`, `forward_ns`) are shared by
/// every request in the batch and attributed in full to each.
///
/// For in-process submissions `ingress_ns`/`egress_ns` are 0 and the sum
/// is ≤ [`crate::Response::latency`].  For requests arriving over the
/// wire (`errflow-net`) the frontend stamps both, and the sum is ≤ the
/// *client-observed* round trip (the server-side latency window opens
/// after ingress and closes before egress).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestStages {
    /// Network frontend: reading + decoding the request frame (0 for
    /// in-process submissions — the wire path is the only producer).
    pub ingress_ns: u64,
    /// Admission → a worker dequeued the job.
    pub batch_wait_ns: u64,
    /// Plan-cache lookup (miss: plan + quantize) for the job's batch.
    pub plan_ns: u64,
    /// Decompressing this job's own payload.
    pub decompress_ns: u64,
    /// The batched forward pass the job shared.
    pub forward_ns: u64,
    /// Forward-pass end → this job's response was fulfilled.
    pub respond_ns: u64,
    /// Network frontend: encoding the response frame (0 for in-process;
    /// stamped by the wire path *before* the frame leaves, so the value a
    /// client sees covers serialization, not the final socket write).
    pub egress_ns: u64,
}

impl RequestStages {
    /// Total attributed time; ≤ the response's end-to-end latency.
    pub fn sum_ns(&self) -> u64 {
        self.ingress_ns
            + self.batch_wait_ns
            + self.plan_ns
            + self.decompress_ns
            + self.forward_ns
            + self.respond_ns
            + self.egress_ns
    }
}

/// Per-stage latency histograms plus bound-certification counters.
///
/// Per-job stages (`batch_wait`, `decompress`, `respond`) record one
/// observation per job; batch-level stages (`plan`, `forward`) record one
/// per batch, so their counts equal the batch count, not the job count.
#[derive(Debug)]
pub struct StageStats {
    /// Wire-frame read + decode, per job (net frontend only — empty for
    /// in-process traffic).
    pub ingress: MirroredHistogram,
    /// Admission → dequeue, per job.
    pub batch_wait: MirroredHistogram,
    /// Plan-cache lookup, per batch.
    pub plan: MirroredHistogram,
    /// Payload decompression, per job.
    pub decompress: MirroredHistogram,
    /// Batched forward pass, per batch.
    pub forward: MirroredHistogram,
    /// Forward end → response fulfilled, per job.
    pub respond: MirroredHistogram,
    /// Response encode + write, per job (net frontend only — empty for
    /// in-process traffic).
    pub egress: MirroredHistogram,
    /// Responses whose certified bound was ≤ the plan tolerance.
    pub bound_pass: ScopedCounter,
    /// Responses whose certified bound exceeded the plan tolerance (a
    /// broken certificate — must stay 0).
    pub bound_fail: ScopedCounter,
    /// Per-request bound margin `round((rel_bound / plan_tol) · 1e6)` in a
    /// log₂ histogram: how much of the requested tolerance the certified
    /// bound actually consumed.  1e6 ≙ the certificate exactly met the
    /// tolerance; small values mean the planner over-delivered.  Summarised
    /// by [`StageStats::bound_margin_summary`] as a 0‥1 ratio.
    pub bound_margin: MirroredHistogram,
}

impl Default for StageStats {
    fn default() -> Self {
        StageStats {
            ingress: MirroredHistogram::new("serve.stage.ingress_ns"),
            batch_wait: MirroredHistogram::new("serve.stage.batch_wait_ns"),
            plan: MirroredHistogram::new("serve.stage.plan_ns"),
            decompress: MirroredHistogram::new("serve.stage.decompress_ns"),
            forward: MirroredHistogram::new("serve.stage.forward_ns"),
            respond: MirroredHistogram::new("serve.stage.respond_ns"),
            egress: MirroredHistogram::new("serve.stage.egress_ns"),
            bound_pass: ScopedCounter::new("serve.bound_pass"),
            bound_fail: ScopedCounter::new("serve.bound_fail"),
            bound_margin: MirroredHistogram::new("serve.bound_margin"),
        }
    }
}

impl StageStats {
    /// Point-in-time per-stage summaries.
    pub fn breakdown(&self) -> StageBreakdown {
        StageBreakdown {
            ingress: self.ingress.summary(),
            batch_wait: self.batch_wait.summary(),
            plan: self.plan.summary(),
            decompress: self.decompress.summary(),
            forward: self.forward.summary(),
            respond: self.respond.summary(),
            egress: self.egress.summary(),
        }
    }

    /// Records one request's bound margin: the certified `rel_bound` as a
    /// fraction of the plan tolerance, scaled by 1e6 onto the log₂ grid.
    pub(crate) fn record_bound_margin(&self, rel_bound: f64, plan_tol: f64) {
        if plan_tol > 0.0 && rel_bound.is_finite() {
            let scaled = (rel_bound / plan_tol * 1e6).round();
            if scaled.is_finite() && scaled >= 0.0 {
                self.bound_margin.record_ns(scaled as u64);
            }
        }
    }

    /// Summary of the bound-margin distribution as 0‥1 ratios (a margin of
    /// 1.0 means the certificate exactly met the requested tolerance).
    pub fn bound_margin_summary(&self) -> BoundMarginSummary {
        let h = self.bound_margin.raw();
        let count = h.count();
        if count == 0 {
            return BoundMarginSummary::default();
        }
        // Within-bucket interpolation can overshoot the true maximum in
        // the top bucket; clamp so a healthy run never reports p99 > max
        // (a margin above 1.0 reads as a broken certificate).
        let max = h.max() as f64 / 1e6;
        BoundMarginSummary {
            count,
            p50: (h.quantile(0.50) / 1e6).min(max),
            p99: (h.quantile(0.99) / 1e6).min(max),
            max,
        }
    }
}

/// Snapshot of the per-request bound-margin distribution
/// (`rel_bound / plan_tol`, dimensionless, ≤ 1.0 while certificates hold).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BoundMarginSummary {
    /// Requests that recorded a margin.
    pub count: u64,
    /// Median margin (histogram-approximate).
    pub p50: f64,
    /// 99th-percentile margin (histogram-approximate).
    pub p99: f64,
    /// Largest recorded margin; > 1.0 would mean a broken certificate.
    pub max: f64,
}

/// Snapshot of the per-stage latency distributions (microseconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageBreakdown {
    /// Wire-frame read + decode, per job (net frontend only).
    pub ingress: LatencySummary,
    /// Admission → dequeue, per job.
    pub batch_wait: LatencySummary,
    /// Plan-cache lookup, per batch.
    pub plan: LatencySummary,
    /// Payload decompression, per job.
    pub decompress: LatencySummary,
    /// Batched forward pass, per batch.
    pub forward: LatencySummary,
    /// Forward end → response fulfilled, per job.
    pub respond: LatencySummary,
    /// Response encode + write, per job (net frontend only).
    pub egress: LatencySummary,
}

/// Live server counters.  Every counter is per-instance and mirrored into
/// the `serve.*` registry metrics (process totals) for exposition.
#[derive(Debug)]
pub struct ServerStats {
    /// Requests admitted into the queue.
    pub submitted: ScopedCounter,
    /// Requests rejected with `QueueFull` by admission control.
    pub rejected: ScopedCounter,
    /// Requests completed successfully.
    pub completed: ScopedCounter,
    /// Requests that failed during processing.
    pub failed: ScopedCounter,
    /// Batched forward passes executed.
    pub batches: ScopedCounter,
    /// Jobs carried by those batches (`batched_jobs / batches` = mean
    /// coalescing factor).
    pub batched_jobs: ScopedCounter,
    /// Wall time spent decompressing request payloads, in nanoseconds.
    pub decomp_ns: ScopedCounter,
    /// Compressed bytes fed into payload decompression.
    pub decomp_bytes_in: ScopedCounter,
    /// Decompressed bytes produced (values × 4).
    pub decomp_bytes_out: ScopedCounter,
    /// End-to-end request latency (enqueue → response).
    pub latency: MirroredHistogram,
    /// Per-stage latency breakdown and bound-certification counters.
    pub stages: StageStats,
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats {
            submitted: ScopedCounter::new("serve.submitted"),
            rejected: ScopedCounter::new("serve.rejected"),
            completed: ScopedCounter::new("serve.completed"),
            failed: ScopedCounter::new("serve.failed"),
            batches: ScopedCounter::new("serve.batches"),
            batched_jobs: ScopedCounter::new("serve.batched_jobs"),
            decomp_ns: ScopedCounter::new("serve.decomp_ns"),
            decomp_bytes_in: ScopedCounter::new("serve.decomp_bytes_in"),
            decomp_bytes_out: ScopedCounter::new("serve.decomp_bytes_out"),
            latency: MirroredHistogram::new("serve.latency_ns"),
            stages: StageStats::default(),
        }
    }
}

impl ServerStats {
    pub(crate) fn note_batch(&self, jobs: usize) {
        self.batches.inc();
        self.batched_jobs.add(jobs as u64);
    }

    pub(crate) fn note_decomp(&self, ns: u64, bytes_in: u64, bytes_out: u64) {
        self.decomp_ns.add(ns);
        self.decomp_bytes_in.add(bytes_in);
        self.decomp_bytes_out.add(bytes_out);
    }
}

/// Point-in-time view of [`ServerStats`] plus queue/cache gauges, as
/// returned by `Server::stats`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StatsSnapshot {
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests failed during processing.
    pub failed: u64,
    /// Batched forward passes executed.
    pub batches: u64,
    /// Total jobs carried by batches.
    pub batched_jobs: u64,
    /// Jobs currently waiting in the queue.
    pub queue_depth: usize,
    /// Plan-cache lookups served from cache.
    pub cache_hits: u64,
    /// Plan-cache lookups that planned from scratch.
    pub cache_misses: u64,
    /// Wall time spent decompressing request payloads, in nanoseconds.
    pub decomp_ns: u64,
    /// Compressed bytes fed into payload decompression.
    pub decomp_bytes_in: u64,
    /// Decompressed bytes produced (values × 4).
    pub decomp_bytes_out: u64,
    /// Codec scratch-pool hits **since this server was built** (the pool
    /// itself is process-wide and shared by every compressor; the snapshot
    /// reports the delta over this server's lifetime so concurrent servers
    /// don't read each other's traffic as their own).
    pub scratch_hits: u64,
    /// Codec scratch-pool misses since this server was built (delta, as
    /// with `scratch_hits`).
    pub scratch_misses: u64,
    /// Codec decode sub-streams consumed since this server was built
    /// (delta, like `scratch_hits`): the sum of the per-backend
    /// `codec.decode.streams.*` counters.  v2 payloads count their
    /// interleaving factor (4 per decode) and v1 payloads count 0, so
    /// `decode_streams / completed` reads as the SIMD-decode adoption rate
    /// of this server's traffic.
    pub decode_streams: u64,
    /// Responses whose certified bound was ≤ the plan tolerance.
    pub bound_pass: u64,
    /// Responses whose certified bound exceeded the plan tolerance (must
    /// stay 0; a nonzero value is a broken certificate).
    pub bound_fail: u64,
    /// Distribution of `rel_bound / plan_tol` per request: how tight the
    /// certified bounds ran against the requested tolerance.
    pub bound_margin: BoundMarginSummary,
    /// Latency distribution snapshot.
    pub latency: LatencySummary,
    /// Per-stage latency breakdown.
    pub stages: StageBreakdown,
}

impl StatsSnapshot {
    /// `cache_hits / (cache_hits + cache_misses)`, or 0 before any lookup.
    pub fn cache_hit_rate(&self) -> f64 {
        let t = self.cache_hits + self.cache_misses;
        if t == 0 {
            0.0
        } else {
            self.cache_hits as f64 / t as f64
        }
    }

    /// Mean jobs per batched forward pass.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_jobs as f64 / self.batches as f64
        }
    }

    /// Payload decompression throughput in GB/s of decompressed output
    /// (bytes per nanosecond), or 0 before any payload was decoded.
    pub fn decomp_gbps(&self) -> f64 {
        if self.decomp_ns == 0 {
            0.0
        } else {
            self.decomp_bytes_out as f64 / self.decomp_ns as f64
        }
    }

    /// `scratch_hits / (scratch_hits + scratch_misses)` over this server's
    /// lifetime, or 0 before any acquisition.  Near 1.0 once the codec
    /// scratch pool is warm.
    pub fn scratch_hit_rate(&self) -> f64 {
        let t = self.scratch_hits + self.scratch_misses;
        if t == 0 {
            0.0
        } else {
            self.scratch_hits as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn zero_snapshot() -> StatsSnapshot {
        StatsSnapshot {
            submitted: 0,
            rejected: 0,
            completed: 0,
            failed: 0,
            batches: 0,
            batched_jobs: 0,
            queue_depth: 0,
            cache_hits: 0,
            cache_misses: 0,
            decomp_ns: 0,
            decomp_bytes_in: 0,
            decomp_bytes_out: 0,
            scratch_hits: 0,
            scratch_misses: 0,
            decode_streams: 0,
            bound_pass: 0,
            bound_fail: 0,
            bound_margin: BoundMarginSummary::default(),
            latency: LatencySummary::default(),
            stages: StageBreakdown::default(),
        }
    }

    #[test]
    fn empty_histogram_summarises_to_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.summary(), LatencySummary::default());
    }

    #[test]
    fn summary_orders_quantiles() {
        let h = LatencyHistogram::new();
        for us in [5u64, 10, 20, 40, 80, 160, 320, 640, 1280, 100_000] {
            h.record(Duration::from_micros(us));
        }
        let s = h.summary();
        assert_eq!(s.count, 10);
        assert!(s.min_us <= s.p50_us, "{s:?}");
        assert!(s.p50_us <= s.p99_us, "{s:?}");
        assert!(s.p99_us <= s.max_us * std::f64::consts::SQRT_2, "{s:?}");
        assert!((s.min_us - 5.0).abs() < 1e-9);
        assert!((s.max_us - 100_000.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_land_in_the_right_bucket() {
        let h = LatencyHistogram::new();
        // 99 fast observations, 1 slow: p50 fast, p99+ reaches the tail.
        for _ in 0..99 {
            h.record(Duration::from_micros(10));
        }
        h.record(Duration::from_millis(50));
        let s = h.summary();
        assert!(s.p50_us < 20.0, "{s:?}");
        assert!(s.p99_us < 20.0, "p99 of 99/100 fast is still fast: {s:?}");
        assert!(s.max_us >= 50_000.0);
        // Mean is pulled up by the tail.
        assert!(s.mean_us > 100.0, "{s:?}");
    }

    #[test]
    fn histogram_is_thread_safe() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        h.record(Duration::from_micros(100));
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
    }

    #[test]
    fn mirrored_histogram_is_instance_scoped() {
        let a = MirroredHistogram::new("test.serve.stats.mirrored");
        let b = MirroredHistogram::new("test.serve.stats.mirrored");
        a.record_ns(1000);
        a.record_ns(2000);
        b.record_ns(500);
        assert_eq!(a.count(), 2, "instance A sees only its own records");
        assert_eq!(b.count(), 1);
        // The registry histogram accumulated all three.
        assert!(errflow_obs::histogram("test.serve.stats.mirrored").count() >= 3);
    }

    #[test]
    fn server_stats_counters_are_per_instance() {
        let a = ServerStats::default();
        let b = ServerStats::default();
        a.submitted.inc();
        a.note_batch(3);
        b.submitted.add(5);
        assert_eq!(a.submitted.get(), 1);
        assert_eq!(b.submitted.get(), 5);
        assert_eq!(a.batches.get(), 1);
        assert_eq!(a.batched_jobs.get(), 3);
        assert_eq!(b.batches.get(), 0);
    }

    #[test]
    fn request_stages_sum() {
        let s = RequestStages {
            ingress_ns: 5,
            batch_wait_ns: 10,
            plan_ns: 20,
            decompress_ns: 30,
            forward_ns: 40,
            respond_ns: 50,
            egress_ns: 7,
        };
        assert_eq!(s.sum_ns(), 162);
        assert_eq!(RequestStages::default().sum_ns(), 0);
    }

    #[test]
    fn snapshot_derived_metrics() {
        let snap = StatsSnapshot {
            submitted: 10,
            rejected: 2,
            completed: 10,
            batches: 4,
            batched_jobs: 10,
            cache_hits: 9,
            cache_misses: 1,
            decomp_ns: 1_000_000,
            decomp_bytes_in: 400_000,
            decomp_bytes_out: 4_000_000,
            scratch_hits: 30,
            scratch_misses: 10,
            bound_pass: 10,
            ..zero_snapshot()
        };
        assert!((snap.cache_hit_rate() - 0.9).abs() < 1e-12);
        assert!((snap.mean_batch_size() - 2.5).abs() < 1e-12);
        // 4 MB decoded in 1 ms = 4 GB/s (bytes per nanosecond).
        assert!((snap.decomp_gbps() - 4.0).abs() < 1e-12);
        assert!((snap.scratch_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn bound_margin_summary_reports_ratio_quantiles() {
        let s = StageStats::default();
        assert_eq!(s.bound_margin_summary(), BoundMarginSummary::default());
        // Margins spread over [0.1, 0.9] of tolerance, one near-exact.
        for k in 1..=9u64 {
            s.record_bound_margin(k as f64 * 1e-4, 1e-3);
        }
        s.record_bound_margin(9.9e-4, 1e-3);
        let m = s.bound_margin_summary();
        assert_eq!(m.count, 10);
        assert!(m.p50 > 0.2 && m.p50 < 0.8, "{m:?}");
        assert!(m.p99 > m.p50, "{m:?}");
        assert!(m.max > 0.95 && m.max <= 1.0, "{m:?}");
        // Degenerate inputs are dropped, not recorded as garbage.
        s.record_bound_margin(f64::NAN, 1e-3);
        s.record_bound_margin(1e-4, 0.0);
        assert_eq!(s.bound_margin_summary().count, 10);
    }

    #[test]
    fn zeroed_snapshot_rates_are_zero() {
        let snap = zero_snapshot();
        assert_eq!(snap.decomp_gbps(), 0.0);
        assert_eq!(snap.scratch_hit_rate(), 0.0);
        assert_eq!(snap.cache_hit_rate(), 0.0);
    }
}
