//! The inference server: admission control → plan cache → batched
//! execution → certified responses.
//!
//! A [`Server`] owns one model, its (expensive, computed-once) spectral
//! [`NetworkAnalysis`], and a set of worker threads behind a bounded
//! per-worker [`ShardedQueue`] (work-stealing; see [`crate::shard`]).
//! Workers are *dedicated* threads registered with the
//! shared workspace pool ([`errflow_tensor::pool`]): they block on the
//! queue (so they sit outside the pool's compute-worker set) while their
//! chunk-decode and GEMM fan-out runs on the pool's compute workers.
//! Each request carries a payload of samples, a
//! relative QoI tolerance, and the norm/layout it is expressed in; the
//! worker pool answers with predictions **plus the certified relative
//! error bound** of the plan that produced them — always ≤ the requested
//! tolerance, because plans are cached at the tolerance bucket's *floor*
//! (see [`crate::cache`]).
//!
//! Request lifecycle:
//!
//! 1. [`Server::try_submit`] validates the payload and applies admission
//!    control: at capacity it returns [`ServeError::QueueFull`]
//!    immediately (callers shed or retry).  [`Server::submit`] blocks
//!    instead.
//! 2. A worker pops a batch of same-plan-key jobs, resolves the plan
//!    through the LRU [`crate::cache::PlanCache`] (miss = rebuild a
//!    [`Planner`] from the precomputed analysis, plan at the bucket
//!    floor, quantize the weights), runs every payload through the
//!    error-bounded compression roundtrip, and executes **one** batched
//!    forward pass over all decompressed samples.
//! 3. The caller collects its [`Response`] through the returned
//!    [`Ticket`].

use crate::batch::{assemble_inputs, split_outputs};
use crate::cache::{bucket_tolerance, PlanCache, PlanKey};
use crate::queue::QueueFull;
use crate::shard::ShardedQueue;
use crate::stats::{RequestStages, ServerStats, StatsSnapshot};
use errflow_compress::chunked::ChunkedCompressor;
use errflow_compress::{Compressor, ErrorBound, MgardCompressor, SzCompressor, ZfpCompressor};
use errflow_core::{quantize_model, NetworkAnalysis};
use errflow_nn::Model;
use errflow_pipeline::planner::{flatten, unflatten, PayloadLayout};
use errflow_pipeline::{PipelinePlan, Planner, PlannerConfig};
use errflow_quant::QuantFormat;
use errflow_tensor::norms::Norm;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Which error-bounded compression backend ingests request payloads.
/// Every backend is wrapped in a [`ChunkedCompressor`] so decompression
/// fans out across chunk-decode threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// SZ-class predictive coder.
    Sz,
    /// ZFP-class transform coder.
    Zfp,
    /// MGARD-class multigrid coder.
    Mgard,
}

impl BackendKind {
    /// Parses a backend name as used by the CLI (`sz|zfp|mgard`).
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "sz" => Ok(BackendKind::Sz),
            "zfp" => Ok(BackendKind::Zfp),
            "mgard" => Ok(BackendKind::Mgard),
            other => Err(format!("unknown backend: {other}")),
        }
    }

    /// The backend's short name.
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Sz => "sz",
            BackendKind::Zfp => "zfp",
            BackendKind::Mgard => "mgard",
        }
    }

    fn build(&self, decode_threads: usize) -> Box<dyn Compressor> {
        let threads = decode_threads.max(1);
        match self {
            BackendKind::Sz => {
                Box::new(ChunkedCompressor::new(SzCompressor::default()).with_threads(threads))
            }
            BackendKind::Zfp => {
                Box::new(ChunkedCompressor::new(ZfpCompressor::default()).with_threads(threads))
            }
            BackendKind::Mgard => {
                Box::new(ChunkedCompressor::new(MgardCompressor::default()).with_threads(threads))
            }
        }
    }
}

/// Server construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads.  `0` builds an admission-only server that enqueues
    /// but never executes — useful for backpressure tests.
    pub workers: usize,
    /// Bounded queue capacity (the admission-control limit).
    pub queue_capacity: usize,
    /// Maximum jobs coalesced into one batched forward pass.
    pub max_batch: usize,
    /// Plan-cache capacity (LRU-evicted).
    pub cache_capacity: usize,
    /// Fraction of each tolerance allocated to quantization (planner
    /// policy; see [`PlannerConfig::quant_share`]).
    pub quant_share: f64,
    /// Compression backend for payload ingest.
    pub backend: BackendKind,
    /// Chunk-decode threads per worker's [`ChunkedCompressor`].
    pub decode_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
            max_batch: 16,
            cache_capacity: 32,
            quant_share: 0.5,
            backend: BackendKind::Sz,
            decode_threads: 2,
        }
    }
}

/// One inference request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Input samples (each of the model's input dimension).
    pub samples: Vec<Vec<f32>>,
    /// Relative QoI tolerance the response bound must not exceed.
    pub rel_tolerance: f64,
    /// Norm the tolerance (and bound) are expressed in.
    pub norm: Norm,
    /// How the samples flatten into the compression payload.
    pub layout: PayloadLayout,
}

impl Request {
    /// A request with the default norm (L∞) and feature-major layout.
    pub fn new(samples: Vec<Vec<f32>>, rel_tolerance: f64) -> Self {
        Request {
            samples,
            rel_tolerance,
            norm: Norm::LInf,
            layout: PayloadLayout::FeatureMajor,
        }
    }
}

/// A fulfilled request: predictions plus the certificate they ship with.
#[derive(Debug, Clone)]
pub struct Response {
    /// One prediction per request sample, in order.
    pub outputs: Vec<Vec<f32>>,
    /// Certified relative QoI error bound (≤ the requested tolerance).
    pub rel_bound: f64,
    /// Weight format the plan selected.
    pub format: QuantFormat,
    /// Tolerance the plan was computed at (the request's bucket floor).
    pub plan_tolerance: f64,
    /// `true` when the plan came from the cache.
    pub cache_hit: bool,
    /// Jobs that shared this batched forward pass.
    pub batch_size: usize,
    /// End-to-end latency (admission → response).
    pub latency: Duration,
    /// Where the request's time went (disjoint stage intervals; their sum
    /// is ≤ `latency`).
    pub stages: RequestStages,
}

/// Why a request was rejected or failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control: the queue is at capacity.  Retry later or shed.
    QueueFull,
    /// The request payload failed validation.
    Invalid(String),
    /// The compression roundtrip failed.
    Compression(String),
    /// The server shut down before the request completed.
    Shutdown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull => write!(f, "queue full (admission control)"),
            ServeError::Invalid(m) => write!(f, "invalid request: {m}"),
            ServeError::Compression(m) => write!(f, "compression failed: {m}"),
            ServeError::Shutdown => write!(f, "server shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One-shot response slot a worker fulfills and a client waits on.
#[derive(Debug)]
struct Slot {
    result: Mutex<Option<Result<Response, ServeError>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Self {
        Slot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn fulfill(&self, r: Result<Response, ServeError>) {
        *errflow_tensor::sync::lock_recover(&self.result) = Some(r);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<Response, ServeError> {
        // Poison-recovering waits: if a batch worker panics while holding a
        // slot lock, the waiting client gets a ServeError (or the already
        // delivered response), never a cascading panic.
        let mut guard = errflow_tensor::sync::lock_recover(&self.result);
        loop {
            if let Some(r) = guard.take() {
                return r;
            }
            guard = errflow_tensor::sync::wait_recover(&self.ready, guard);
        }
    }
}

/// Handle to a pending request; [`Ticket::wait`] blocks for the response.
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<Slot>,
}

impl Ticket {
    /// Blocks until the request completes (or the server shuts down).
    pub fn wait(self) -> Result<Response, ServeError> {
        self.slot.wait()
    }
}

/// How a completed job hands its result back: a [`Slot`] a [`Ticket`]
/// holder blocks on (in-process path), or a completion hook invoked on the
/// worker thread (the `errflow-net` path — the hook must not block; it
/// forwards the result to the connection's io thread).
enum Responder {
    Slot(Arc<Slot>),
    Hook(Box<dyn FnOnce(Result<Response, ServeError>) + Send>),
}

impl Responder {
    fn fulfill(self, r: Result<Response, ServeError>) {
        match self {
            Responder::Slot(slot) => slot.fulfill(r),
            Responder::Hook(hook) => hook(r),
        }
    }
}

/// A queued unit of work.
struct Job {
    samples: Vec<Vec<f32>>,
    key: PlanKey,
    /// Bucket-floor tolerance the plan is computed at.
    plan_tol: f64,
    norm: Norm,
    layout: PayloadLayout,
    responder: Responder,
    /// Frontend frame read + decode time (0 for in-process submissions).
    ingress_ns: u64,
    t0: Instant,
    /// Admission time on the trace clock, so the queue-wait interval can
    /// be recorded as a cross-thread span at dequeue.
    t0_trace_ns: u64,
}

/// Everything a plan-cache entry needs to serve a hit without touching
/// the planner: the plan, the pre-quantized weights, and the certified
/// relative bound.
struct CachedPlan<M> {
    plan: PipelinePlan,
    quantized: M,
    rel_bound: f64,
}

struct Inner<M> {
    model: M,
    analysis: NetworkAnalysis,
    calibration: Vec<Vec<f32>>,
    cache: PlanCache<CachedPlan<M>>,
    stats: ServerStats,
    cfg: ServeConfig,
    model_id: u64,
    input_dim: usize,
    /// Process-wide scratch-pool `(hits, misses)` at construction time;
    /// `Server::stats` reports deltas against it so the snapshot describes
    /// *this* server's traffic, not every compressor in the process.
    scratch_base: (u64, u64),
    /// Process-wide `codec.decode.streams.*` total at construction time
    /// (same delta convention as `scratch_base`).
    decode_streams_base: u64,
}

/// Sum of the per-backend decode sub-stream counters the codecs bump on
/// every v2 (multi-stream) decode.
fn decode_streams_total() -> u64 {
    errflow_obs::counter("codec.decode.streams.sz").get()
        + errflow_obs::counter("codec.decode.streams.zfp").get()
}

/// The concurrent batched inference server.  See the module docs for the
/// request lifecycle.
pub struct Server<M: Model + Clone + Send + Sync + 'static> {
    inner: Arc<Inner<M>>,
    queue: Arc<ShardedQueue<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// Norm discriminant for [`PlanKey`].
fn norm_code(norm: Norm) -> u8 {
    match norm {
        Norm::L2 => 0,
        Norm::LInf => 1,
    }
}

/// Layout discriminant for [`PlanKey`].
fn layout_code(layout: PayloadLayout) -> u8 {
    match layout {
        PayloadLayout::FeatureMajor => 0,
        PayloadLayout::SampleMajor => 1,
    }
}

/// Converts a plan's admissible input L2 budget into the compressor's
/// native bound mode (same rule as `Planner::compressor_bound`, restated
/// here so cache hits never need a planner instance).
fn compressor_bound(
    plan: &PipelinePlan,
    compressor: &dyn Compressor,
    payload_len: usize,
) -> ErrorBound {
    let l2 = ErrorBound::abs_l2(plan.input_budget_l2);
    if compressor.supports(&l2) {
        l2
    } else {
        ErrorBound::abs_linf(plan.input_budget_l2 / (payload_len.max(1) as f64).sqrt())
    }
}

impl<M: Model + Clone + Send + Sync + 'static> Server<M> {
    /// Builds the server: runs the spectral analysis once, then spawns the
    /// worker pool.  `calibration` fixes the reference QoI magnitudes that
    /// relative tolerances are measured against (as in [`Planner::new`]).
    pub fn new(model: M, calibration: Vec<Vec<f32>>, cfg: ServeConfig) -> Self {
        assert!(!calibration.is_empty(), "need calibration inputs");
        assert!(
            (0.0..=1.0).contains(&cfg.quant_share),
            "quant_share must be in [0, 1]"
        );
        let input_dim = model.input_dim();
        for x in &calibration {
            assert_eq!(x.len(), input_dim, "calibration sample dim mismatch");
        }
        let analysis = NetworkAnalysis::of(&model);
        let mut h = std::collections::hash_map::DefaultHasher::new();
        (input_dim, model.output_dim(), model.num_params()).hash(&mut h);
        model.flops().to_bits().hash(&mut h);
        let inner = Arc::new(Inner {
            model,
            analysis,
            calibration,
            cache: PlanCache::new(cfg.cache_capacity),
            stats: ServerStats::default(),
            cfg,
            model_id: h.finish(),
            input_dim,
            scratch_base: errflow_compress::scratch::pool_stats(),
            decode_streams_base: decode_streams_total(),
        });
        // One shard per worker so every worker has a home deque to drain
        // before stealing; an admission-only server (workers = 0) still
        // needs one shard to enqueue into.
        let queue = Arc::new(ShardedQueue::new(cfg.workers.max(1), cfg.queue_capacity));
        // Workers are pool-accounted *dedicated* threads: they block on the
        // queue, so they live outside the compute-worker set, while their
        // chunk-decode fan-out rides the shared pool's compute workers.
        let workers = (0..cfg.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                let queue = Arc::clone(&queue);
                errflow_tensor::pool::global()
                    .spawn_dedicated(format!("errflow-serve-{i}"), move || {
                        worker_loop(&inner, &queue, i)
                    })
            })
            .collect();
        Server {
            inner,
            queue,
            workers,
        }
    }

    /// The served model's input dimension.
    pub fn input_dim(&self) -> usize {
        self.inner.input_dim
    }

    /// Stable identifier of the served model (a structural hash).  The
    /// wire protocol carries it so a client can assert it is talking to
    /// the model it expects; `0` in a request frame means "any model".
    pub fn model_id(&self) -> u64 {
        self.inner.model_id
    }

    /// Validates a request and resolves its plan key + bucket-floor
    /// tolerance (shared by every submission path).
    fn validate(&self, req: &Request) -> Result<(PlanKey, f64), ServeError> {
        if req.samples.is_empty() {
            return Err(ServeError::Invalid("empty payload".into()));
        }
        if req.samples.iter().any(|s| s.len() != self.inner.input_dim) {
            return Err(ServeError::Invalid(format!(
                "sample dim != model input dim {}",
                self.inner.input_dim
            )));
        }
        if !(req.rel_tolerance.is_finite() && req.rel_tolerance > 0.0) {
            return Err(ServeError::Invalid("tolerance must be positive".into()));
        }
        let (bucket, plan_tol) = bucket_tolerance(req.rel_tolerance);
        let key = PlanKey {
            model_id: self.inner.model_id,
            tol_bucket: bucket,
            norm: norm_code(req.norm),
            layout: layout_code(req.layout),
        };
        Ok((key, plan_tol))
    }

    fn build_job(
        &self,
        req: Request,
        ingress_ns: u64,
        responder: Responder,
    ) -> Result<Job, ServeError> {
        let (key, plan_tol) = self.validate(&req)?;
        Ok(Job {
            samples: req.samples,
            key,
            plan_tol,
            norm: req.norm,
            layout: req.layout,
            responder,
            ingress_ns,
            t0: Instant::now(),
            t0_trace_ns: errflow_obs::trace::now_ns(),
        })
    }

    fn make_job(&self, req: Request) -> Result<(Job, Ticket), ServeError> {
        let slot = Arc::new(Slot::new());
        let ticket = Ticket {
            slot: Arc::clone(&slot),
        };
        let job = self.build_job(req, 0, Responder::Slot(slot))?;
        Ok((job, ticket))
    }

    /// Submits without blocking.  Returns [`ServeError::QueueFull`] when
    /// admission control rejects the request (the payload is dropped; the
    /// caller owns retry policy).
    pub fn try_submit(&self, req: Request) -> Result<Ticket, ServeError> {
        let _span = errflow_obs::trace::span("serve.enqueue");
        let (job, ticket) = self.make_job(req)?;
        match self.queue.try_push(job) {
            Ok(()) => {
                self.inner.stats.submitted.inc();
                Ok(ticket)
            }
            Err(QueueFull(_)) => {
                self.inner.stats.rejected.inc();
                Err(ServeError::QueueFull)
            }
        }
    }

    /// Submits, blocking while the queue is at capacity (backpressure is
    /// exerted on the caller instead of surfacing [`ServeError::QueueFull`]).
    pub fn submit(&self, req: Request) -> Result<Ticket, ServeError> {
        let _span = errflow_obs::trace::span("serve.enqueue");
        let (job, ticket) = self.make_job(req)?;
        match self.queue.push(job) {
            Ok(()) => {
                self.inner.stats.submitted.inc();
                Ok(ticket)
            }
            Err(QueueFull(_)) => Err(ServeError::Shutdown),
        }
    }

    /// Convenience: submit (blocking) and wait for the response.
    pub fn process(&self, req: Request) -> Result<Response, ServeError> {
        self.submit(req)?.wait()
    }

    /// Non-blocking submission with a completion hook instead of a
    /// [`Ticket`] — the `errflow-net` ingress path.  The hook runs on the
    /// worker thread that completes the job, so it must not block (the net
    /// frontend forwards the result to the connection's io thread and
    /// returns).  `ingress_ns` is the frontend's frame read + decode time;
    /// it is attributed to the request's [`RequestStages`].
    ///
    /// On [`ServeError::QueueFull`] or validation failure the hook is never
    /// invoked and the error returns synchronously, so the caller can map
    /// it to a retryable wire error without waiting.
    pub fn try_submit_with(
        &self,
        req: Request,
        ingress_ns: u64,
        hook: impl FnOnce(Result<Response, ServeError>) + Send + 'static,
    ) -> Result<(), ServeError> {
        let _span = errflow_obs::trace::span("serve.enqueue");
        let job = self.build_job(req, ingress_ns, Responder::Hook(Box::new(hook)))?;
        match self.queue.try_push(job) {
            Ok(()) => {
                self.inner.stats.submitted.inc();
                Ok(())
            }
            Err(QueueFull(_)) => {
                self.inner.stats.rejected.inc();
                Err(ServeError::QueueFull)
            }
        }
    }

    /// Records a frontend egress interval (response encode + socket write)
    /// into this server's stage statistics.  Called by the net frontend;
    /// in-process traffic never records egress.
    pub fn note_egress_ns(&self, ns: u64) {
        self.inner.stats.stages.egress.record_ns(ns);
    }

    /// Point-in-time statistics: counters, queue depth, cache hit/miss,
    /// latency distribution.
    pub fn stats(&self) -> StatsSnapshot {
        let s = &self.inner.stats;
        // The scratch pool is process-wide; report the delta since this
        // server was built (saturating: concurrent pool traffic makes the
        // counters race ahead of the baseline, never behind it).
        let (hits, misses) = errflow_compress::scratch::pool_stats();
        let (base_hits, base_misses) = self.inner.scratch_base;
        StatsSnapshot {
            submitted: s.submitted.get(),
            rejected: s.rejected.get(),
            completed: s.completed.get(),
            failed: s.failed.get(),
            batches: s.batches.get(),
            batched_jobs: s.batched_jobs.get(),
            queue_depth: self.queue.len(),
            cache_hits: self.inner.cache.hits(),
            cache_misses: self.inner.cache.misses(),
            decomp_ns: s.decomp_ns.get(),
            decomp_bytes_in: s.decomp_bytes_in.get(),
            decomp_bytes_out: s.decomp_bytes_out.get(),
            scratch_hits: hits.saturating_sub(base_hits),
            scratch_misses: misses.saturating_sub(base_misses),
            decode_streams: decode_streams_total()
                .saturating_sub(self.inner.decode_streams_base),
            bound_pass: s.stages.bound_pass.get(),
            bound_fail: s.stages.bound_fail.get(),
            latency: s.latency.summary(),
            stages: s.stages.breakdown(),
        }
    }

    /// Graceful shutdown: stop admitting, let workers drain the backlog,
    /// fail anything left (only possible with zero workers) with
    /// [`ServeError::Shutdown`].  Also runs on drop.
    pub fn shutdown(&mut self) {
        self.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        for job in self.queue.drain() {
            job.responder.fulfill(Err(ServeError::Shutdown));
        }
    }
}

impl<M: Model + Clone + Send + Sync + 'static> Drop for Server<M> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop<M: Model + Clone + Send + Sync>(
    inner: &Inner<M>,
    queue: &ShardedQueue<Job>,
    worker: usize,
) {
    let compressor = inner.cfg.backend.build(inner.cfg.decode_threads);
    while let Some(batch) = queue.pop_batch(worker, inner.cfg.max_batch.max(1), |j: &Job| j.key) {
        // Stage attribution invariant: every interval recorded below is a
        // disjoint slice of wall time inside [job.t0, fulfill), so each
        // request's stage sum is ≤ its end-to-end latency.  Batch-level
        // intervals (plan, forward) are attributed in full to every job in
        // the batch; that keeps the invariant because they are still
        // disjoint from the job's own batch-wait/decompress/respond slices.
        let dequeued = Instant::now();
        let dequeued_trace_ns = errflow_obs::trace::now_ns();
        inner.stats.note_batch(batch.len());
        let mut batch_wait_ns = Vec::with_capacity(batch.len());
        for job in &batch {
            let wait = dequeued.duration_since(job.t0).as_nanos() as u64;
            inner.stats.stages.batch_wait.record_ns(wait);
            if job.ingress_ns > 0 {
                inner.stats.stages.ingress.record_ns(job.ingress_ns);
            }
            // Queue wait crosses threads, so it is recorded as an explicit
            // interval rather than a scoped guard.
            errflow_obs::trace::record_span("serve.batch_wait", job.t0_trace_ns, dequeued_trace_ns);
            batch_wait_ns.push(wait);
        }

        let plan_tol = batch[0].plan_tol;
        let norm = batch[0].norm;
        let t_plan = Instant::now();
        let (cached, hit) = {
            let _span = errflow_obs::trace::span("serve.plan");
            inner.cache.get_or_insert_with(batch[0].key, || {
                // Miss: rebuild a planner around the precomputed analysis
                // (cheap — only re-derives QoI references), plan at the bucket
                // floor, and quantize the weights once for all future hits.
                let planner = Planner::with_analysis(
                    &inner.model,
                    &inner.calibration,
                    inner.analysis.clone(),
                );
                let plan = planner.plan(&PlannerConfig {
                    rel_tolerance: plan_tol,
                    norm,
                    quant_share: inner.cfg.quant_share,
                });
                // The planner guarantees predicted_total_bound ≤ plan_tol ·
                // qoi_ref; the min() strips the division's last-ulp rounding
                // so the certificate never lands above the tolerance it was
                // planned for.
                let rel_bound =
                    (plan.predicted_total_bound / planner.qoi_reference(norm)).min(plan_tol);
                CachedPlan {
                    plan,
                    rel_bound,
                    quantized: quantize_model(&inner.model, plan.format),
                }
            })
        };
        let plan_ns = t_plan.elapsed().as_nanos() as u64;
        inner.stats.stages.plan.record_ns(plan_ns);

        // Error-bounded ingest: compress + decompress each payload under
        // the plan's input budget (chunk decode fans out across threads).
        let mut ok_jobs = Vec::with_capacity(batch.len());
        let mut ok_waits = Vec::with_capacity(batch.len());
        let mut decompress_ns = Vec::with_capacity(batch.len());
        let mut recon_per_job = Vec::with_capacity(batch.len());
        for (job, wait) in batch.into_iter().zip(batch_wait_ns) {
            let n = job.samples.len();
            let d = job.samples[0].len();
            let payload = flatten(&job.samples, job.layout);
            let bound = compressor_bound(&cached.plan, compressor.as_ref(), payload.len());
            // Compress and decode separately so decompression throughput
            // (the paper's ingest-side bottleneck) can be tracked on its own.
            let mut dec_ns = 0u64;
            let roundtrip = compressor.compress(&payload, &bound).and_then(|stream| {
                let _span = errflow_obs::trace::span("serve.decompress");
                let t_dec = Instant::now();
                let flat = compressor.decompress(&stream)?;
                dec_ns = t_dec.elapsed().as_nanos() as u64;
                inner
                    .stats
                    .note_decomp(dec_ns, stream.len() as u64, (flat.len() * 4) as u64);
                Ok(flat)
            });
            match roundtrip {
                Ok(flat) => {
                    inner.stats.stages.decompress.record_ns(dec_ns);
                    recon_per_job.push(unflatten(&flat, n, d, job.layout));
                    ok_jobs.push(job);
                    ok_waits.push(wait);
                    decompress_ns.push(dec_ns);
                }
                Err(e) => {
                    inner.stats.failed.inc();
                    job.responder
                        .fulfill(Err(ServeError::Compression(e.to_string())));
                }
            }
        }
        if ok_jobs.is_empty() {
            continue;
        }

        // One batched forward pass over every coalesced sample.
        let batch_size = ok_jobs.len();
        let (flat_inputs, counts) = {
            let _span = errflow_obs::trace::span("serve.batch_assemble");
            assemble_inputs(recon_per_job)
        };
        let t_fwd = Instant::now();
        let outputs = {
            let _span = errflow_obs::trace::span("serve.forward");
            cached.quantized.forward_batch(&flat_inputs)
        };
        let forward_ns = t_fwd.elapsed().as_nanos() as u64;
        inner.stats.stages.forward.record_ns(forward_ns);

        let t_respond = Instant::now();
        let _respond_span = errflow_obs::trace::span("serve.respond");
        for ((job, outputs), (wait, dec_ns)) in ok_jobs
            .into_iter()
            .zip(split_outputs(outputs, &counts))
            .zip(ok_waits.into_iter().zip(decompress_ns))
        {
            // Certification check: the cached plan's bound must not exceed
            // the bucket-floor tolerance the request mapped to.
            if cached.rel_bound <= job.plan_tol {
                inner.stats.stages.bound_pass.inc();
            } else {
                inner.stats.stages.bound_fail.inc();
            }
            // respond_ns is measured *before* the end-to-end latency so the
            // stage sum stays ≤ latency for this request.
            let respond_ns = t_respond.elapsed().as_nanos() as u64;
            inner.stats.stages.respond.record_ns(respond_ns);
            let latency = job.t0.elapsed();
            inner.stats.latency.record(latency);
            inner.stats.completed.inc();
            // egress_ns stays 0 here: the net frontend stamps it into the
            // wire frame during encode (after this fulfill) and records it
            // via `Server::note_egress_ns`.
            job.responder.fulfill(Ok(Response {
                outputs,
                rel_bound: cached.rel_bound,
                format: cached.plan.format,
                plan_tolerance: plan_tol,
                cache_hit: hit,
                batch_size,
                latency,
                stages: RequestStages {
                    ingress_ns: job.ingress_ns,
                    batch_wait_ns: wait,
                    plan_ns,
                    decompress_ns: dec_ns,
                    forward_ns,
                    respond_ns,
                    egress_ns: 0,
                },
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use errflow_nn::{Activation, Mlp};

    fn tiny_model() -> Mlp {
        Mlp::new(&[4, 8, 2], Activation::Tanh, Activation::Identity, 3, None)
    }

    fn calibration(n: usize) -> Vec<Vec<f32>> {
        let mut rng = errflow_tensor::rng::StdRng::seed_from_u64(17);
        (0..n)
            .map(|_| (0..4).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect()
    }

    #[test]
    fn backend_parsing() {
        assert_eq!(BackendKind::parse("sz"), Ok(BackendKind::Sz));
        assert_eq!(BackendKind::parse("zfp"), Ok(BackendKind::Zfp));
        assert_eq!(BackendKind::parse("mgard"), Ok(BackendKind::Mgard));
        assert!(BackendKind::parse("gzip").is_err());
        assert_eq!(BackendKind::Mgard.name(), "mgard");
    }

    #[test]
    fn invalid_requests_rejected_synchronously() {
        let server = Server::new(
            tiny_model(),
            calibration(8),
            ServeConfig {
                workers: 0,
                ..ServeConfig::default()
            },
        );
        let empty = Request::new(Vec::new(), 1e-2);
        assert!(matches!(
            server.try_submit(empty),
            Err(ServeError::Invalid(_))
        ));
        let wrong_dim = Request::new(vec![vec![0.0; 3]], 1e-2);
        assert!(matches!(
            server.try_submit(wrong_dim),
            Err(ServeError::Invalid(_))
        ));
        let bad_tol = Request::new(vec![vec![0.0; 4]], -1.0);
        assert!(matches!(
            server.try_submit(bad_tol),
            Err(ServeError::Invalid(_))
        ));
        assert_eq!(server.stats().submitted, 0);
    }

    #[test]
    fn single_request_roundtrip() {
        let server = Server::new(
            tiny_model(),
            calibration(8),
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
        );
        let resp = server
            .process(Request::new(vec![vec![0.1, -0.2, 0.3, 0.0]], 1e-2))
            .unwrap();
        assert_eq!(resp.outputs.len(), 1);
        assert_eq!(resp.outputs[0].len(), 2);
        assert!(resp.rel_bound <= 1e-2, "bound {} > tol", resp.rel_bound);
        assert!(resp.rel_bound > 0.0);
        assert!(resp.plan_tolerance <= 1e-2);
        assert!(!resp.cache_hit, "first request must be a cache miss");
        let snap = server.stats();
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.cache_misses, 1);
    }

    #[test]
    fn shutdown_fails_unserved_requests() {
        let mut server = Server::new(
            tiny_model(),
            calibration(8),
            ServeConfig {
                workers: 0,
                queue_capacity: 4,
                ..ServeConfig::default()
            },
        );
        let ticket = server
            .try_submit(Request::new(vec![vec![0.0; 4]], 1e-2))
            .unwrap();
        server.shutdown();
        assert_eq!(ticket.wait().unwrap_err(), ServeError::Shutdown);
    }
}
