//! The inference server: admission control → plan cache → batched
//! execution → certified responses.
//!
//! A [`Server`] owns one model, its (expensive, computed-once) spectral
//! [`NetworkAnalysis`], and a set of worker threads behind a bounded
//! per-worker [`ShardedQueue`] (work-stealing; see [`crate::shard`]).
//! Workers are *dedicated* threads registered with the
//! shared workspace pool ([`errflow_tensor::pool`]): they block on the
//! queue (so they sit outside the pool's compute-worker set) while their
//! chunk-decode and GEMM fan-out runs on the pool's compute workers.
//! Each request carries a payload of samples, a
//! relative QoI tolerance, and the norm/layout it is expressed in; the
//! worker pool answers with predictions **plus the certified relative
//! error bound** of the plan that produced them — always ≤ the requested
//! tolerance, because plans are cached at the tolerance bucket's *floor*
//! (see [`crate::cache`]).
//!
//! Request lifecycle:
//!
//! 1. [`Server::try_submit`] validates the payload and applies admission
//!    control: at capacity it returns [`ServeError::QueueFull`]
//!    immediately (callers shed or retry).  [`Server::submit`] blocks
//!    instead.
//! 2. A worker pops a batch of same-plan-key jobs, resolves the plan
//!    through the LRU [`crate::cache::PlanCache`] (miss = rebuild a
//!    [`Planner`] from the precomputed analysis, plan at the bucket
//!    floor, quantize the weights **and pack their GEMM panels**), runs
//!    every payload through the error-bounded compression roundtrip with
//!    chunk decode fused straight into the batch input matrix's row
//!    slabs, and hands the prepared batch to a per-worker forward
//!    consumer that executes **one** batched (packed-weight) forward
//!    pass — so batch *N+1*'s decode overlaps batch *N*'s forward.
//! 3. The caller collects its [`Response`] through the returned
//!    [`Ticket`].

use crate::batch::{extract_rows, transpose_into};
use crate::cache::{bucket_tolerance, PlanCache, PlanKey};
use crate::queue::QueueFull;
use crate::shard::ShardedQueue;
use crate::stats::{RequestStages, ServerStats, StatsSnapshot};
use errflow_compress::chunked::ChunkedCompressor;
use errflow_compress::{
    CompressError, Compressor, ErrorBound, MgardCompressor, SzCompressor, ZfpCompressor,
};
use errflow_core::{quantize_model, NetworkAnalysis};
use errflow_nn::{Model, PackedWeights};
use errflow_pipeline::planner::{flatten, PayloadLayout};
use errflow_pipeline::{PipelinePlan, Planner, PlannerConfig};
use errflow_quant::QuantFormat;
use errflow_tensor::norms::Norm;
use errflow_tensor::sync::lock_recover;
use errflow_tensor::Matrix;
use std::hash::{Hash, Hasher};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Which error-bounded compression backend ingests request payloads.
/// Every backend is wrapped in a [`ChunkedCompressor`] so decompression
/// fans out across chunk-decode threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// SZ-class predictive coder.
    Sz,
    /// ZFP-class transform coder.
    Zfp,
    /// MGARD-class multigrid coder.
    Mgard,
}

impl BackendKind {
    /// Parses a backend name as used by the CLI (`sz|zfp|mgard`).
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "sz" => Ok(BackendKind::Sz),
            "zfp" => Ok(BackendKind::Zfp),
            "mgard" => Ok(BackendKind::Mgard),
            other => Err(format!("unknown backend: {other}")),
        }
    }

    /// The backend's short name.
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Sz => "sz",
            BackendKind::Zfp => "zfp",
            BackendKind::Mgard => "mgard",
        }
    }

    fn build(&self, decode_threads: usize) -> Box<dyn Compressor> {
        // Clamp to the physical core count: the shared pool floors its
        // size at 4 to keep concurrency paths exercised, but fanning the
        // codec out wider than the hardware only adds dispatch overhead
        // (see `pool::hardware_threads`).
        let threads = decode_threads
            .max(1)
            .min(errflow_tensor::pool::hardware_threads());
        match self {
            BackendKind::Sz => {
                Box::new(ChunkedCompressor::new(SzCompressor::default()).with_threads(threads))
            }
            BackendKind::Zfp => {
                Box::new(ChunkedCompressor::new(ZfpCompressor::default()).with_threads(threads))
            }
            BackendKind::Mgard => {
                Box::new(ChunkedCompressor::new(MgardCompressor::default()).with_threads(threads))
            }
        }
    }
}

/// Server construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads.  `0` builds an admission-only server that enqueues
    /// but never executes — useful for backpressure tests.
    pub workers: usize,
    /// Bounded queue capacity (the admission-control limit).
    pub queue_capacity: usize,
    /// Maximum jobs coalesced into one batched forward pass.
    pub max_batch: usize,
    /// Plan-cache capacity (LRU-evicted).
    pub cache_capacity: usize,
    /// Fraction of each tolerance allocated to quantization (planner
    /// policy; see [`PlannerConfig::quant_share`]).
    pub quant_share: f64,
    /// Compression backend for payload ingest.
    pub backend: BackendKind,
    /// Chunk-decode threads per worker's [`ChunkedCompressor`].
    pub decode_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
            max_batch: 16,
            cache_capacity: 32,
            quant_share: 0.5,
            backend: BackendKind::Sz,
            decode_threads: 2,
        }
    }
}

/// One inference request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Input samples (each of the model's input dimension).
    pub samples: Vec<Vec<f32>>,
    /// Relative QoI tolerance the response bound must not exceed.
    pub rel_tolerance: f64,
    /// Norm the tolerance (and bound) are expressed in.
    pub norm: Norm,
    /// How the samples flatten into the compression payload.
    pub layout: PayloadLayout,
}

impl Request {
    /// A request with the default norm (L∞) and feature-major layout.
    pub fn new(samples: Vec<Vec<f32>>, rel_tolerance: f64) -> Self {
        Request {
            samples,
            rel_tolerance,
            norm: Norm::LInf,
            layout: PayloadLayout::FeatureMajor,
        }
    }
}

/// A fulfilled request: predictions plus the certificate they ship with.
#[derive(Debug, Clone)]
pub struct Response {
    /// One prediction per request sample, in order.
    pub outputs: Vec<Vec<f32>>,
    /// Certified relative QoI error bound (≤ the requested tolerance).
    pub rel_bound: f64,
    /// Weight format the plan selected.
    pub format: QuantFormat,
    /// Tolerance the plan was computed at (the request's bucket floor).
    pub plan_tolerance: f64,
    /// `true` when the plan came from the cache.
    pub cache_hit: bool,
    /// Jobs that shared this batched forward pass.
    pub batch_size: usize,
    /// End-to-end latency (admission → response).
    pub latency: Duration,
    /// Where the request's time went (disjoint stage intervals; their sum
    /// is ≤ `latency`).
    pub stages: RequestStages,
}

/// Why a request was rejected or failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control: the queue is at capacity.  Retry later or shed.
    QueueFull,
    /// The request payload failed validation.
    Invalid(String),
    /// The compression roundtrip failed.
    Compression(String),
    /// The server shut down before the request completed.
    Shutdown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull => write!(f, "queue full (admission control)"),
            ServeError::Invalid(m) => write!(f, "invalid request: {m}"),
            ServeError::Compression(m) => write!(f, "compression failed: {m}"),
            ServeError::Shutdown => write!(f, "server shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One-shot response slot a worker fulfills and a client waits on.
#[derive(Debug)]
struct Slot {
    result: Mutex<Option<Result<Response, ServeError>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Self {
        Slot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn fulfill(&self, r: Result<Response, ServeError>) {
        *errflow_tensor::sync::lock_recover(&self.result) = Some(r);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<Response, ServeError> {
        // Poison-recovering waits: if a batch worker panics while holding a
        // slot lock, the waiting client gets a ServeError (or the already
        // delivered response), never a cascading panic.
        let mut guard = errflow_tensor::sync::lock_recover(&self.result);
        loop {
            if let Some(r) = guard.take() {
                return r;
            }
            guard = errflow_tensor::sync::wait_recover(&self.ready, guard);
        }
    }
}

/// Handle to a pending request; [`Ticket::wait`] blocks for the response.
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<Slot>,
}

impl Ticket {
    /// Blocks until the request completes (or the server shuts down).
    pub fn wait(self) -> Result<Response, ServeError> {
        self.slot.wait()
    }
}

/// How a completed job hands its result back: a [`Slot`] a [`Ticket`]
/// holder blocks on (in-process path), or a completion hook invoked on the
/// worker thread (the `errflow-net` path — the hook must not block; it
/// forwards the result to the connection's io thread).
enum Responder {
    Slot(Arc<Slot>),
    Hook(Box<dyn FnOnce(Result<Response, ServeError>) + Send>),
}

impl Responder {
    fn fulfill(self, r: Result<Response, ServeError>) {
        match self {
            Responder::Slot(slot) => slot.fulfill(r),
            Responder::Hook(hook) => hook(r),
        }
    }
}

/// A queued unit of work.
struct Job {
    samples: Vec<Vec<f32>>,
    key: PlanKey,
    /// Bucket-floor tolerance the plan is computed at.
    plan_tol: f64,
    norm: Norm,
    layout: PayloadLayout,
    responder: Responder,
    /// Frontend frame read + decode time (0 for in-process submissions).
    ingress_ns: u64,
    t0: Instant,
    /// Admission time on the trace clock, so the queue-wait interval can
    /// be recorded as a cross-thread span at dequeue.
    t0_trace_ns: u64,
}

/// Everything a plan-cache entry needs to serve a hit without touching
/// the planner: the plan, the pre-quantized weights (plus their GEMM
/// panels, packed once at insert so cache hits never re-pack), and the
/// certified relative bound.
struct CachedPlan<M> {
    plan: PipelinePlan,
    quantized: M,
    /// Packed weight panels for `forward_batch_matrix`; `None` for models
    /// whose forward path is not GEMM-lowered.
    packed: Option<PackedWeights>,
    rel_bound: f64,
}

struct Inner<M> {
    model: M,
    analysis: NetworkAnalysis,
    calibration: Vec<Vec<f32>>,
    cache: PlanCache<CachedPlan<M>>,
    stats: ServerStats,
    cfg: ServeConfig,
    model_id: u64,
    input_dim: usize,
    /// Process-wide scratch-pool `(hits, misses)` at construction time;
    /// `Server::stats` reports deltas against it so the snapshot describes
    /// *this* server's traffic, not every compressor in the process.
    scratch_base: (u64, u64),
    /// Process-wide `codec.decode.streams.*` total at construction time
    /// (same delta convention as `scratch_base`).
    decode_streams_base: u64,
}

/// Sum of the per-backend decode sub-stream counters the codecs bump on
/// every v2 (multi-stream) decode.
fn decode_streams_total() -> u64 {
    errflow_obs::counter("codec.decode.streams.sz").get()
        + errflow_obs::counter("codec.decode.streams.zfp").get()
}

/// The concurrent batched inference server.  See the module docs for the
/// request lifecycle.
pub struct Server<M: Model + Clone + Send + Sync + 'static> {
    inner: Arc<Inner<M>>,
    queue: Arc<ShardedQueue<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// Norm discriminant for [`PlanKey`].
fn norm_code(norm: Norm) -> u8 {
    match norm {
        Norm::L2 => 0,
        Norm::LInf => 1,
    }
}

/// Layout discriminant for [`PlanKey`].
fn layout_code(layout: PayloadLayout) -> u8 {
    match layout {
        PayloadLayout::FeatureMajor => 0,
        PayloadLayout::SampleMajor => 1,
    }
}

/// Converts a plan's admissible input L2 budget into the compressor's
/// native bound mode (same rule as `Planner::compressor_bound`, restated
/// here so cache hits never need a planner instance).
fn compressor_bound(
    plan: &PipelinePlan,
    compressor: &dyn Compressor,
    payload_len: usize,
) -> ErrorBound {
    let l2 = ErrorBound::abs_l2(plan.input_budget_l2);
    if compressor.supports(&l2) {
        l2
    } else {
        ErrorBound::abs_linf(plan.input_budget_l2 / (payload_len.max(1) as f64).sqrt())
    }
}

impl<M: Model + Clone + Send + Sync + 'static> Server<M> {
    /// Builds the server: runs the spectral analysis once, then spawns the
    /// worker pool.  `calibration` fixes the reference QoI magnitudes that
    /// relative tolerances are measured against (as in [`Planner::new`]).
    pub fn new(model: M, calibration: Vec<Vec<f32>>, cfg: ServeConfig) -> Self {
        assert!(!calibration.is_empty(), "need calibration inputs");
        assert!(
            (0.0..=1.0).contains(&cfg.quant_share),
            "quant_share must be in [0, 1]"
        );
        let input_dim = model.input_dim();
        for x in &calibration {
            assert_eq!(x.len(), input_dim, "calibration sample dim mismatch");
        }
        let analysis = NetworkAnalysis::of(&model);
        let mut h = std::collections::hash_map::DefaultHasher::new();
        (input_dim, model.output_dim(), model.num_params()).hash(&mut h);
        model.flops().to_bits().hash(&mut h);
        let inner = Arc::new(Inner {
            model,
            analysis,
            calibration,
            cache: PlanCache::new(cfg.cache_capacity),
            stats: ServerStats::default(),
            cfg,
            model_id: h.finish(),
            input_dim,
            scratch_base: errflow_compress::scratch::pool_stats(),
            decode_streams_base: decode_streams_total(),
        });
        // One shard per worker so every worker has a home deque to drain
        // before stealing; an admission-only server (workers = 0) still
        // needs one shard to enqueue into.
        let queue = Arc::new(ShardedQueue::new(cfg.workers.max(1), cfg.queue_capacity));
        // Workers are pool-accounted *dedicated* threads: they block on the
        // queue, so they live outside the compute-worker set, while their
        // chunk-decode fan-out rides the shared pool's compute workers.
        let workers = (0..cfg.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                let queue = Arc::clone(&queue);
                errflow_tensor::pool::global()
                    .spawn_dedicated(format!("errflow-serve-{i}"), move || {
                        worker_loop(inner, queue, i)
                    })
            })
            .collect();
        Server {
            inner,
            queue,
            workers,
        }
    }

    /// The served model's input dimension.
    pub fn input_dim(&self) -> usize {
        self.inner.input_dim
    }

    /// Stable identifier of the served model (a structural hash).  The
    /// wire protocol carries it so a client can assert it is talking to
    /// the model it expects; `0` in a request frame means "any model".
    pub fn model_id(&self) -> u64 {
        self.inner.model_id
    }

    /// Validates a request and resolves its plan key + bucket-floor
    /// tolerance (shared by every submission path).
    fn validate(&self, req: &Request) -> Result<(PlanKey, f64), ServeError> {
        if req.samples.is_empty() {
            return Err(ServeError::Invalid("empty payload".into()));
        }
        if req.samples.iter().any(|s| s.len() != self.inner.input_dim) {
            return Err(ServeError::Invalid(format!(
                "sample dim != model input dim {}",
                self.inner.input_dim
            )));
        }
        if !(req.rel_tolerance.is_finite() && req.rel_tolerance > 0.0) {
            return Err(ServeError::Invalid("tolerance must be positive".into()));
        }
        let (bucket, plan_tol) = bucket_tolerance(req.rel_tolerance);
        let key = PlanKey {
            model_id: self.inner.model_id,
            tol_bucket: bucket,
            norm: norm_code(req.norm),
            layout: layout_code(req.layout),
        };
        Ok((key, plan_tol))
    }

    fn build_job(
        &self,
        req: Request,
        ingress_ns: u64,
        responder: Responder,
    ) -> Result<Job, ServeError> {
        let (key, plan_tol) = self.validate(&req)?;
        Ok(Job {
            samples: req.samples,
            key,
            plan_tol,
            norm: req.norm,
            layout: req.layout,
            responder,
            ingress_ns,
            t0: Instant::now(),
            t0_trace_ns: errflow_obs::trace::now_ns(),
        })
    }

    fn make_job(&self, req: Request) -> Result<(Job, Ticket), ServeError> {
        let slot = Arc::new(Slot::new());
        let ticket = Ticket {
            slot: Arc::clone(&slot),
        };
        let job = self.build_job(req, 0, Responder::Slot(slot))?;
        Ok((job, ticket))
    }

    /// Submits without blocking.  Returns [`ServeError::QueueFull`] when
    /// admission control rejects the request (the payload is dropped; the
    /// caller owns retry policy).
    pub fn try_submit(&self, req: Request) -> Result<Ticket, ServeError> {
        let _span = errflow_obs::trace::span("serve.enqueue");
        let (job, ticket) = self.make_job(req)?;
        match self.queue.try_push(job) {
            Ok(()) => {
                self.inner.stats.submitted.inc();
                Ok(ticket)
            }
            Err(QueueFull(_)) => {
                self.inner.stats.rejected.inc();
                Err(ServeError::QueueFull)
            }
        }
    }

    /// Submits, blocking while the queue is at capacity (backpressure is
    /// exerted on the caller instead of surfacing [`ServeError::QueueFull`]).
    pub fn submit(&self, req: Request) -> Result<Ticket, ServeError> {
        let _span = errflow_obs::trace::span("serve.enqueue");
        let (job, ticket) = self.make_job(req)?;
        match self.queue.push(job) {
            Ok(()) => {
                self.inner.stats.submitted.inc();
                Ok(ticket)
            }
            Err(QueueFull(_)) => Err(ServeError::Shutdown),
        }
    }

    /// Convenience: submit (blocking) and wait for the response.
    pub fn process(&self, req: Request) -> Result<Response, ServeError> {
        self.submit(req)?.wait()
    }

    /// Non-blocking submission with a completion hook instead of a
    /// [`Ticket`] — the `errflow-net` ingress path.  The hook runs on the
    /// worker thread that completes the job, so it must not block (the net
    /// frontend forwards the result to the connection's io thread and
    /// returns).  `ingress_ns` is the frontend's frame read + decode time;
    /// it is attributed to the request's [`RequestStages`].
    ///
    /// On [`ServeError::QueueFull`] or validation failure the hook is never
    /// invoked and the error returns synchronously, so the caller can map
    /// it to a retryable wire error without waiting.
    pub fn try_submit_with(
        &self,
        req: Request,
        ingress_ns: u64,
        hook: impl FnOnce(Result<Response, ServeError>) + Send + 'static,
    ) -> Result<(), ServeError> {
        let _span = errflow_obs::trace::span("serve.enqueue");
        let job = self.build_job(req, ingress_ns, Responder::Hook(Box::new(hook)))?;
        match self.queue.try_push(job) {
            Ok(()) => {
                self.inner.stats.submitted.inc();
                Ok(())
            }
            Err(QueueFull(_)) => {
                self.inner.stats.rejected.inc();
                Err(ServeError::QueueFull)
            }
        }
    }

    /// Records a frontend egress interval (response encode + socket write)
    /// into this server's stage statistics.  Called by the net frontend;
    /// in-process traffic never records egress.
    pub fn note_egress_ns(&self, ns: u64) {
        self.inner.stats.stages.egress.record_ns(ns);
    }

    /// Point-in-time statistics: counters, queue depth, cache hit/miss,
    /// latency distribution.
    pub fn stats(&self) -> StatsSnapshot {
        Self::snapshot_of(&self.inner, &self.queue)
    }

    /// A `'static` snapshot closure over this server's stats — the hook
    /// [`crate::telemetry::start_telemetry`] polls once per interval.  It
    /// holds only `Arc`s, so it outlives the `Server` handle (after
    /// shutdown it keeps reporting the drained server's final counters).
    pub fn stats_source(&self) -> impl Fn() -> StatsSnapshot + Send + Sync + 'static {
        let inner = Arc::clone(&self.inner);
        let queue = Arc::clone(&self.queue);
        move || Self::snapshot_of(&inner, &queue)
    }

    fn snapshot_of(inner: &Inner<M>, queue: &ShardedQueue<Job>) -> StatsSnapshot {
        let s = &inner.stats;
        // The scratch pool is process-wide; report the delta since this
        // server was built (saturating: concurrent pool traffic makes the
        // counters race ahead of the baseline, never behind it).
        let (hits, misses) = errflow_compress::scratch::pool_stats();
        let (base_hits, base_misses) = inner.scratch_base;
        StatsSnapshot {
            submitted: s.submitted.get(),
            rejected: s.rejected.get(),
            completed: s.completed.get(),
            failed: s.failed.get(),
            batches: s.batches.get(),
            batched_jobs: s.batched_jobs.get(),
            queue_depth: queue.len(),
            cache_hits: inner.cache.hits(),
            cache_misses: inner.cache.misses(),
            decomp_ns: s.decomp_ns.get(),
            decomp_bytes_in: s.decomp_bytes_in.get(),
            decomp_bytes_out: s.decomp_bytes_out.get(),
            scratch_hits: hits.saturating_sub(base_hits),
            scratch_misses: misses.saturating_sub(base_misses),
            decode_streams: decode_streams_total().saturating_sub(inner.decode_streams_base),
            bound_pass: s.stages.bound_pass.get(),
            bound_fail: s.stages.bound_fail.get(),
            bound_margin: s.stages.bound_margin_summary(),
            latency: s.latency.summary(),
            stages: s.stages.breakdown(),
        }
    }

    /// Graceful shutdown: stop admitting, let workers drain the backlog,
    /// fail anything left (only possible with zero workers) with
    /// [`ServeError::Shutdown`].  Also runs on drop.
    pub fn shutdown(&mut self) {
        self.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        for job in self.queue.drain() {
            job.responder.fulfill(Err(ServeError::Shutdown));
        }
    }
}

impl<M: Model + Clone + Send + Sync + 'static> Drop for Server<M> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A batch whose payloads have been compressed and decoded into the batch
/// input matrix — everything the forward consumer needs to run the batched
/// pass and respond.  The producer → consumer handoff unit of the
/// per-worker double buffer.
struct PreparedBatch<M> {
    /// Jobs that survived the compression roundtrip, in batch order.
    jobs: Vec<Job>,
    /// Per-job queue-wait nanoseconds (same order as `jobs`).
    waits: Vec<u64>,
    /// Per-job `(first_row, n_samples)` into `inputs` / the output matrix.
    rows: Vec<(usize, usize)>,
    /// The assembled batch input matrix (total samples × input dim).
    inputs: Matrix,
    cached: Arc<CachedPlan<M>>,
    hit: bool,
    plan_ns: u64,
    plan_tol: f64,
    /// The fused batch-level decode interval, attributed to every job.
    dec_ns: u64,
}

fn worker_loop<M: Model + Clone + Send + Sync + 'static>(
    inner: Arc<Inner<M>>,
    queue: Arc<ShardedQueue<Job>>,
    worker: usize,
) {
    let compressor = inner.cfg.backend.build(inner.cfg.decode_threads);
    // Double buffer: this thread (the producer) compresses + decodes batch
    // N+1 while the consumer runs batch N's forward pass and responds.
    // The rendezvous channel holds at most one prepared batch, bounding
    // the pipeline at two batches in flight per worker.
    let (tx, rx) = mpsc::sync_channel::<PreparedBatch<M>>(1);
    let consumer = {
        let inner = Arc::clone(&inner);
        errflow_tensor::pool::global().spawn_dedicated(
            format!("errflow-serve-{worker}-fwd"),
            move || {
                while let Ok(prepared) = rx.recv() {
                    finish_batch(&inner, prepared);
                }
            },
        )
    };
    while let Some(batch) = queue.pop_batch(worker, inner.cfg.max_batch.max(1), |j: &Job| j.key) {
        // Stage attribution invariant: every interval recorded below is a
        // disjoint slice of wall time inside [job.t0, fulfill), so each
        // request's stage sum is ≤ its end-to-end latency.  Batch-level
        // intervals (plan, decompress, forward) are attributed in full to
        // every job in the batch; that keeps the invariant because they
        // are still disjoint from the job's own batch-wait/respond slices
        // (the producer→consumer channel wait is deliberately left
        // unattributed, so the invariant survives the overlap).
        let dequeued = Instant::now();
        let dequeued_trace_ns = errflow_obs::trace::now_ns();
        inner.stats.note_batch(batch.len());
        let mut batch_wait_ns = Vec::with_capacity(batch.len());
        for job in &batch {
            let wait = dequeued.duration_since(job.t0).as_nanos() as u64;
            inner.stats.stages.batch_wait.record_ns(wait);
            if job.ingress_ns > 0 {
                inner.stats.stages.ingress.record_ns(job.ingress_ns);
            }
            // Queue wait crosses threads, so it is recorded as an explicit
            // interval rather than a scoped guard.
            errflow_obs::trace::record_span("serve.batch_wait", job.t0_trace_ns, dequeued_trace_ns);
            batch_wait_ns.push(wait);
        }

        let plan_tol = batch[0].plan_tol;
        let norm = batch[0].norm;
        let t_plan = Instant::now();
        let (cached, hit) = {
            let _span = errflow_obs::trace::span("serve.plan");
            inner.cache.get_or_insert_with(batch[0].key, || {
                // Miss: rebuild a planner around the precomputed analysis
                // (cheap — only re-derives QoI references), plan at the bucket
                // floor, quantize the weights once for all future hits, and
                // pack the quantized weights' GEMM panels so cache hits run
                // the prepacked forward path without ever re-packing.
                let planner = Planner::with_analysis(
                    &inner.model,
                    &inner.calibration,
                    inner.analysis.clone(),
                );
                let plan = planner.plan(&PlannerConfig {
                    rel_tolerance: plan_tol,
                    norm,
                    quant_share: inner.cfg.quant_share,
                });
                // The planner guarantees predicted_total_bound ≤ plan_tol ·
                // qoi_ref; the min() strips the division's last-ulp rounding
                // so the certificate never lands above the tolerance it was
                // planned for.
                let rel_bound =
                    (plan.predicted_total_bound / planner.qoi_reference(norm)).min(plan_tol);
                let quantized = quantize_model(&inner.model, plan.format);
                let packed = quantized.pack_weights();
                CachedPlan {
                    plan,
                    rel_bound,
                    packed,
                    quantized,
                }
            })
        };
        let plan_ns = t_plan.elapsed().as_nanos() as u64;
        inner.stats.stages.plan.record_ns(plan_ns);

        if let Some(prepared) = prepare_batch(
            &inner,
            compressor.as_ref(),
            batch,
            batch_wait_ns,
            cached,
            hit,
            plan_ns,
            plan_tol,
        ) {
            // A send error means the consumer died (only possible on a
            // panic in finish_batch); stop producing rather than drop
            // batches silently.
            if tx.send(prepared).is_err() {
                break;
            }
        }
    }
    drop(tx);
    let _ = consumer.join();
}

/// One payload that survived compression, waiting on the fused decode.
struct Pending {
    job: Job,
    wait: u64,
    stream: Vec<u8>,
    n: usize,
}

/// The producer half of a batch: compress every payload under the plan's
/// input budget, then decode **all** payloads' chunk units in one joint
/// fan-out straight into the batch input matrix.  Sample-major payloads
/// decode zero-copy into their row slab; feature-major payloads decode
/// into a scratch slab and are transposed into place.  Payloads that fail
/// either half get their error response here and drop out of the batch.
#[allow(clippy::too_many_arguments)]
fn prepare_batch<M: Model + Clone + Send + Sync>(
    inner: &Inner<M>,
    compressor: &dyn Compressor,
    batch: Vec<Job>,
    waits: Vec<u64>,
    cached: Arc<CachedPlan<M>>,
    hit: bool,
    plan_ns: u64,
    plan_tol: f64,
) -> Option<PreparedBatch<M>> {
    let d = inner.input_dim;
    let mut pending: Vec<Pending> = Vec::with_capacity(batch.len());
    for (job, wait) in batch.into_iter().zip(waits) {
        let n = job.samples.len();
        let payload = flatten(&job.samples, job.layout);
        let bound = compressor_bound(&cached.plan, compressor, payload.len());
        match compressor.compress(&payload, &bound) {
            Ok(stream) => pending.push(Pending {
                job,
                wait,
                stream,
                n,
            }),
            Err(e) => {
                inner.stats.failed.inc();
                job.responder
                    .fulfill(Err(ServeError::Compression(e.to_string())));
            }
        }
    }
    if pending.is_empty() {
        return None;
    }

    let total: usize = pending.iter().map(|p| p.n).sum();
    let mut inputs = Matrix::zeros(total, d);
    // Feature-major payloads cannot decode straight into row slabs (their
    // flat layout is the transpose), so they share one scratch slab,
    // addressed by (offset, len) per payload.
    let fm_total: usize = pending
        .iter()
        .filter(|p| matches!(p.job.layout, PayloadLayout::FeatureMajor))
        .map(|p| p.n * d)
        .sum();
    let mut fm_buf = vec![0.0f32; fm_total];
    let errors: Vec<Mutex<Option<CompressError>>> =
        (0..pending.len()).map(|_| Mutex::new(None)).collect();

    let t_dec = Instant::now();
    let mut bytes_in = 0u64;
    // (payload index, scratch offset, row slab) for the post-decode
    // transpose of each feature-major payload.
    let mut fm_transposes: Vec<(usize, usize, &mut [f32])> = Vec::new();
    {
        let _span = errflow_obs::trace::span("serve.decompress");
        // Carve the batch matrix (and the feature-major scratch) into
        // disjoint per-payload slabs.
        let mut rest = inputs.as_mut_slice();
        let mut fm_rest = fm_buf.as_mut_slice();
        let mut fm_off = 0usize;
        // Joint fan-out: every payload's decode units flatten into one
        // task list; each cell hands its (unit, destination) pair to
        // exactly one pool task.
        type Cell<'a> = Mutex<Option<(errflow_compress::DecodeUnit<'a>, &'a mut [f32])>>;
        let mut cells: Vec<Cell> = Vec::new();
        let mut unit_payload: Vec<usize> = Vec::new();
        for (i, p) in pending.iter().enumerate() {
            bytes_in += p.stream.len() as u64;
            let want = (p.n * d).min(rest.len());
            let (slab, tail) = rest.split_at_mut(want);
            rest = tail;
            let mut dst: &mut [f32] = match p.job.layout {
                PayloadLayout::SampleMajor => slab,
                PayloadLayout::FeatureMajor => {
                    let (scratch_dst, fm_tail) = fm_rest.split_at_mut(want.min(fm_rest.len()));
                    fm_rest = fm_tail;
                    fm_transposes.push((i, fm_off, slab));
                    fm_off += want;
                    scratch_dst
                }
            };
            match compressor.decode_units(&p.stream, p.n * d) {
                Ok(units) if units.iter().map(|u| u.len).sum::<usize>() == dst.len() => {
                    for u in units {
                        let (head, tail) = dst.split_at_mut(u.len);
                        cells.push(Mutex::new(Some((u, head))));
                        unit_payload.push(i);
                        dst = tail;
                    }
                }
                Ok(_) => {
                    *lock_recover(&errors[i]) = Some(CompressError::CorruptStream(
                        "decode units do not tile the payload".into(),
                    ));
                }
                Err(e) => *lock_recover(&errors[i]) = Some(e),
            }
        }
        let decode_one = |idx: usize| {
            let taken = lock_recover(&cells[idx]).take();
            if let Some((unit, out)) = taken {
                let mut scratch = errflow_compress::scratch::acquire();
                if let Err(e) = compressor.decode_unit_into(&unit, out, &mut scratch) {
                    let Some(&pi) = unit_payload.get(idx) else {
                        return;
                    };
                    let mut slot = lock_recover(&errors[pi]);
                    if slot.is_none() {
                        *slot = Some(e);
                    }
                }
            }
        };
        let threads = inner
            .cfg
            .decode_threads
            .max(1)
            .min(errflow_tensor::pool::hardware_threads());
        if threads <= 1 || cells.len() <= 1 {
            for idx in 0..cells.len() {
                decode_one(idx);
            }
        } else {
            errflow_tensor::pool::global().parallel_for(cells.len(), threads, &decode_one);
        }
    }
    // Transpose feature-major scratch decodes into their row slabs.
    for (i, off, slab) in fm_transposes {
        if lock_recover(&errors[i]).is_some() {
            continue;
        }
        let n = pending.get(i).map(|p| p.n).unwrap_or(0);
        let src = fm_buf.get(off..off + n * d);
        if !src.is_some_and(|src| transpose_into(src, n, d, slab)) {
            *lock_recover(&errors[i]) = Some(CompressError::CorruptStream(
                "payload does not fill its batch rows".into(),
            ));
        }
    }
    let dec_ns = t_dec.elapsed().as_nanos() as u64;

    let mut jobs = Vec::with_capacity(pending.len());
    let mut ok_waits = Vec::with_capacity(pending.len());
    let mut rows = Vec::with_capacity(pending.len());
    let mut row0 = 0usize;
    let mut bytes_out = 0u64;
    for (i, p) in pending.into_iter().enumerate() {
        let err = errors.get(i).and_then(|m| lock_recover(m).take());
        match err {
            Some(e) => {
                inner.stats.failed.inc();
                p.job
                    .responder
                    .fulfill(Err(ServeError::Compression(e.to_string())));
            }
            None => {
                inner.stats.stages.decompress.record_ns(dec_ns);
                bytes_out += (p.n * d * 4) as u64;
                jobs.push(p.job);
                ok_waits.push(p.wait);
                rows.push((row0, p.n));
            }
        }
        // Row offsets were fixed when the matrix was carved, so failed
        // payloads still advance the cursor (their rows stay zeroed).
        row0 += p.n;
    }
    inner.stats.note_decomp(dec_ns, bytes_in, bytes_out);
    if jobs.is_empty() {
        return None;
    }
    Some(PreparedBatch {
        jobs,
        waits: ok_waits,
        rows,
        inputs,
        cached,
        hit,
        plan_ns,
        plan_tol,
        dec_ns,
    })
}

/// The consumer half of a batch: one batched forward pass over the
/// prepared input matrix (prepacked weight panels when the model provides
/// them), then per-job response fan-out.
fn finish_batch<M: Model + Clone + Send + Sync>(inner: &Inner<M>, p: PreparedBatch<M>) {
    let batch_size = p.jobs.len();
    let t_fwd = Instant::now();
    let out = {
        let _span = errflow_obs::trace::span("serve.forward");
        p.cached
            .quantized
            .forward_batch_matrix(&p.inputs, p.cached.packed.as_ref())
    };
    let forward_ns = t_fwd.elapsed().as_nanos() as u64;
    inner.stats.stages.forward.record_ns(forward_ns);

    let t_respond = Instant::now();
    let _respond_span = errflow_obs::trace::span("serve.respond");
    for ((job, (row0, n)), wait) in p.jobs.into_iter().zip(p.rows).zip(p.waits) {
        let outputs = extract_rows(&out, row0, n);
        // Certification check: the cached plan's bound must not exceed
        // the bucket-floor tolerance the request mapped to.
        if p.cached.rel_bound <= job.plan_tol {
            inner.stats.stages.bound_pass.inc();
        } else {
            inner.stats.stages.bound_fail.inc();
        }
        inner
            .stats
            .stages
            .record_bound_margin(p.cached.rel_bound, job.plan_tol);
        // respond_ns is measured *before* the end-to-end latency so the
        // stage sum stays ≤ latency for this request.
        let respond_ns = t_respond.elapsed().as_nanos() as u64;
        inner.stats.stages.respond.record_ns(respond_ns);
        let latency = job.t0.elapsed();
        inner.stats.latency.record(latency);
        inner.stats.completed.inc();
        // egress_ns stays 0 here: the net frontend stamps it into the
        // wire frame during encode (after this fulfill) and records it
        // via `Server::note_egress_ns`.
        job.responder.fulfill(Ok(Response {
            outputs,
            rel_bound: p.cached.rel_bound,
            format: p.cached.plan.format,
            plan_tolerance: p.plan_tol,
            cache_hit: p.hit,
            batch_size,
            latency,
            stages: RequestStages {
                ingress_ns: job.ingress_ns,
                batch_wait_ns: wait,
                plan_ns: p.plan_ns,
                decompress_ns: p.dec_ns,
                forward_ns,
                respond_ns,
                egress_ns: 0,
            },
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use errflow_nn::{Activation, Mlp};

    fn tiny_model() -> Mlp {
        Mlp::new(&[4, 8, 2], Activation::Tanh, Activation::Identity, 3, None)
    }

    fn calibration(n: usize) -> Vec<Vec<f32>> {
        let mut rng = errflow_tensor::rng::StdRng::seed_from_u64(17);
        (0..n)
            .map(|_| (0..4).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect()
    }

    #[test]
    fn backend_parsing() {
        assert_eq!(BackendKind::parse("sz"), Ok(BackendKind::Sz));
        assert_eq!(BackendKind::parse("zfp"), Ok(BackendKind::Zfp));
        assert_eq!(BackendKind::parse("mgard"), Ok(BackendKind::Mgard));
        assert!(BackendKind::parse("gzip").is_err());
        assert_eq!(BackendKind::Mgard.name(), "mgard");
    }

    #[test]
    fn invalid_requests_rejected_synchronously() {
        let server = Server::new(
            tiny_model(),
            calibration(8),
            ServeConfig {
                workers: 0,
                ..ServeConfig::default()
            },
        );
        let empty = Request::new(Vec::new(), 1e-2);
        assert!(matches!(
            server.try_submit(empty),
            Err(ServeError::Invalid(_))
        ));
        let wrong_dim = Request::new(vec![vec![0.0; 3]], 1e-2);
        assert!(matches!(
            server.try_submit(wrong_dim),
            Err(ServeError::Invalid(_))
        ));
        let bad_tol = Request::new(vec![vec![0.0; 4]], -1.0);
        assert!(matches!(
            server.try_submit(bad_tol),
            Err(ServeError::Invalid(_))
        ));
        assert_eq!(server.stats().submitted, 0);
    }

    #[test]
    fn single_request_roundtrip() {
        let server = Server::new(
            tiny_model(),
            calibration(8),
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
        );
        let resp = server
            .process(Request::new(vec![vec![0.1, -0.2, 0.3, 0.0]], 1e-2))
            .unwrap();
        assert_eq!(resp.outputs.len(), 1);
        assert_eq!(resp.outputs[0].len(), 2);
        assert!(resp.rel_bound <= 1e-2, "bound {} > tol", resp.rel_bound);
        assert!(resp.rel_bound > 0.0);
        assert!(resp.plan_tolerance <= 1e-2);
        assert!(!resp.cache_hit, "first request must be a cache miss");
        let snap = server.stats();
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.cache_misses, 1);
    }

    #[test]
    fn fused_decode_into_matrix_rows_matches_decompress() {
        // The serve hot path decodes payload chunks straight into the
        // batch matrix's row slabs; byte-for-byte it must equal the plain
        // decompress it replaced.
        let mut rng = errflow_tensor::rng::StdRng::seed_from_u64(23);
        let n_samples = 5_000;
        let d = 4;
        let payload: Vec<f32> = (0..n_samples * d)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        let compressor = BackendKind::Sz.build(2);
        let bound = ErrorBound::abs_linf(1e-3);
        let stream = compressor.compress(&payload, &bound).unwrap();
        let expected = compressor.decompress(&stream).unwrap();

        let mut m = Matrix::zeros(n_samples + 10, d); // payload lands mid-matrix
        let slab = m.rows_mut(5, n_samples).unwrap();
        let units = compressor.decode_units(&stream, n_samples * d).unwrap();
        let mut scratch = errflow_compress::scratch::acquire();
        for u in &units {
            compressor
                .decode_unit_into(u, &mut slab[u.offset..u.offset + u.len], &mut scratch)
                .unwrap();
        }
        assert_eq!(m.rows_mut(5, n_samples).unwrap(), &expected[..]);
        // Rows outside the slab stay untouched.
        assert!(m.row(0).iter().all(|&v| v == 0.0));
        assert!(m.row(n_samples + 9).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn batched_requests_both_layouts() {
        let server = Server::new(
            tiny_model(),
            calibration(8),
            ServeConfig {
                workers: 1,
                max_batch: 4,
                ..ServeConfig::default()
            },
        );
        let mut rng = errflow_tensor::rng::StdRng::seed_from_u64(7);
        let samples = |n: usize, rng: &mut errflow_tensor::rng::StdRng| -> Vec<Vec<f32>> {
            (0..n)
                .map(|_| (0..4).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
                .collect()
        };
        let mut tickets = Vec::new();
        for layout in [PayloadLayout::SampleMajor, PayloadLayout::FeatureMajor] {
            for n in [1usize, 3, 7] {
                let req = Request {
                    samples: samples(n, &mut rng),
                    rel_tolerance: 1e-2,
                    norm: Norm::L2,
                    layout,
                };
                tickets.push((n, server.submit(req).unwrap()));
            }
        }
        for (n, t) in tickets {
            let resp = t.wait().unwrap();
            assert_eq!(resp.outputs.len(), n);
            assert!(resp.outputs.iter().all(|o| o.len() == 2));
            assert!(resp.outputs.iter().flatten().all(|v| v.is_finite()));
            assert!(resp.rel_bound <= 1e-2);
            let s = &resp.stages;
            let sum = s.ingress_ns
                + s.batch_wait_ns
                + s.plan_ns
                + s.decompress_ns
                + s.forward_ns
                + s.respond_ns;
            assert!(
                sum <= resp.latency.as_nanos() as u64,
                "stage sum {sum} exceeds latency {}",
                resp.latency.as_nanos()
            );
        }
        let snap = server.stats();
        assert_eq!(snap.completed, 6);
        assert_eq!(snap.failed, 0);
        assert_eq!(snap.bound_fail, 0);
    }

    #[test]
    fn shutdown_fails_unserved_requests() {
        let mut server = Server::new(
            tiny_model(),
            calibration(8),
            ServeConfig {
                workers: 0,
                queue_capacity: 4,
                ..ServeConfig::default()
            },
        );
        let ticket = server
            .try_submit(Request::new(vec![vec![0.0; 4]], 1e-2))
            .unwrap();
        server.shutdown();
        assert_eq!(ticket.wait().unwrap_err(), ServeError::Shutdown);
    }
}
