//! # errflow-serve
//!
//! Concurrent batched inference serving with certified error bounds —
//! the deployment layer over the paper's error-flow pipeline.
//!
//! The offline pipeline (`errflow-pipeline`) answers *"which quantization
//! format and compression budget satisfy this tolerance?"* once, for one
//! dataset.  This crate turns that into a **server**: many clients submit
//! payloads with per-request QoI tolerances, and the server returns
//! predictions that each carry the certified relative error bound of the
//! plan that produced them — never exceeding the tolerance asked for.
//!
//! Architecture (one `Server`):
//!
//! ```text
//!  clients ──▶ admission control ──▶ bounded MPMC queue ──▶ workers
//!              (QueueFull / block)    (Mutex + Condvar)        │
//!                     (dedicated threads on the shared         │
//!                      errflow_tensor::pool thread pool)       │
//!                                                              ▼
//!                     plan cache (LRU over tolerance buckets)  │
//!                     miss: Planner::with_analysis + quantize  │
//!                                                              ▼
//!                     per-job chunked compression roundtrip    │
//!                                                              ▼
//!                     same-plan batch → ONE forward_batch GEMM pass
//!                                                              ▼
//!                     responses: predictions + certified bound
//! ```
//!
//! - [`queue`]: the bounded queue with explicit backpressure and
//!   same-key batch draining.
//! - [`cache`]: log-space tolerance bucketing (floors preserve
//!   soundness) and the LRU plan cache with hit/miss counters.
//! - [`batch`]: stacking coalesced jobs into one batched forward pass.
//! - [`server`]: the worker pool and request lifecycle.
//! - [`stats`]: per-instance counters (mirrored into the process-wide
//!   [`errflow_obs`] registry), the end-to-end latency histogram, and the
//!   per-stage breakdown behind `Server::stats`.
//! - [`loadgen`]: the closed-loop synthetic driver behind
//!   `errflow-cli serve-bench`.
//! - [`telemetry`]: the pump thread that feeds the live observability
//!   plane — publishes snapshot gauges, advances the tiered time-series
//!   sampler of [`errflow_obs::timeseries`], and evaluates SLOs.

pub mod batch;
pub mod cache;
pub mod loadgen;
pub mod queue;
pub mod server;
pub mod shard;
pub mod stats;
pub mod telemetry;

pub use cache::{bucket_tolerance, PlanCache, PlanKey};
pub use loadgen::{run_loadgen, BenchSummary, LoadgenConfig};
pub use queue::{BoundedQueue, QueueFull};
pub use server::{BackendKind, Request, Response, ServeConfig, ServeError, Server, Ticket};
pub use shard::ShardedQueue;
pub use stats::{
    BoundMarginSummary, LatencyHistogram, LatencySummary, RequestStages, StageBreakdown,
    StatsSnapshot,
};
pub use telemetry::{default_objectives, start_telemetry, Telemetry, TelemetryConfig};
