//! End-to-end serving tests: concurrent submission against the bounded
//! queue, plan-cache behaviour, and admission-control backpressure.

use errflow_nn::{Activation, Mlp, Model};
use errflow_pipeline::planner::PayloadLayout;
use errflow_scidata::task::TrainingMode;
use errflow_scidata::{SyntheticTask, TaskKind};
use errflow_serve::{BackendKind, Request, ServeConfig, ServeError, Server};
use errflow_tensor::norms::Norm;
use errflow_tensor::rng::StdRng;

fn model() -> Mlp {
    Mlp::new(
        &[6, 24, 24, 4],
        Activation::Tanh,
        Activation::Identity,
        11,
        None,
    )
}

/// Smooth random-walk samples (compressible, like the planner tests use).
fn samples(rng: &mut StdRng, n: usize, d: usize) -> Vec<Vec<f32>> {
    let mut cur: Vec<f32> = (0..d).map(|_| rng.gen_range(-0.5f32..0.5)).collect();
    (0..n)
        .map(|_| {
            for v in &mut cur {
                *v = (*v + rng.gen_range(-0.02f32..0.02)).clamp(-1.0, 1.0);
            }
            cur.clone()
        })
        .collect()
}

fn calibration(seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    samples(&mut rng, 32, 6)
}

/// Many submitters race a small queue; every request must come back with
/// the right shape and a certified bound within its tolerance.
#[test]
fn concurrency_smoke_all_results_returned_and_certified() {
    let server = Server::new(
        model(),
        calibration(1),
        ServeConfig {
            workers: 3,
            queue_capacity: 8,
            max_batch: 4,
            ..ServeConfig::default()
        },
    );
    let submitters = 6;
    let per = 20;
    let tol = 1e-2;
    std::thread::scope(|scope| {
        for s in 0..submitters {
            let server = &server;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + s);
                for _ in 0..per {
                    let payload = samples(&mut rng, 16, 6);
                    let mut req = Request::new(payload, tol);
                    req.norm = Norm::L2;
                    // Blocking submit: backpressure stalls the caller
                    // instead of dropping work.
                    let resp = server.submit(req).unwrap().wait().unwrap();
                    assert_eq!(resp.outputs.len(), 16);
                    assert!(resp.outputs.iter().all(|y| y.len() == 4));
                    assert!(
                        resp.rel_bound <= tol,
                        "bound {} > tolerance {tol}",
                        resp.rel_bound
                    );
                    assert!(resp.batch_size >= 1);
                }
            });
        }
    });
    let snap = server.stats();
    assert_eq!(snap.completed, (submitters * per) as u64);
    assert_eq!(snap.failed, 0);
    assert_eq!(snap.queue_depth, 0);
    // Same tolerance everywhere → exactly one planning miss.
    assert_eq!(snap.cache_misses, 1);
    assert!(snap.latency.count == snap.completed);
}

/// The second identical request must be a plan-cache hit and carry the
/// identical plan (same format, same certified bound).
#[test]
fn second_identical_request_hits_the_plan_cache() {
    let server = Server::new(
        model(),
        calibration(2),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(5);
    let payload = samples(&mut rng, 8, 6);
    let first = server.process(Request::new(payload.clone(), 3e-3)).unwrap();
    let second = server.process(Request::new(payload, 3e-3)).unwrap();
    assert!(!first.cache_hit);
    assert!(second.cache_hit);
    assert_eq!(first.format, second.format);
    assert_eq!(first.rel_bound, second.rel_bound);
    assert_eq!(first.plan_tolerance, second.plan_tolerance);
    let snap = server.stats();
    assert_eq!((snap.cache_hits, snap.cache_misses), (1, 1));

    // A different tolerance bucket, norm, or layout is a different plan.
    let mut rng = StdRng::seed_from_u64(6);
    let other = server
        .process(Request::new(samples(&mut rng, 8, 6), 3e-1))
        .unwrap();
    assert!(!other.cache_hit);
    assert_eq!(server.stats().cache_misses, 2);
}

/// With workers stalled (none running), the queue fills to capacity and
/// `try_submit` reports `QueueFull` — the admission-control contract.
#[test]
fn backpressure_rejects_at_capacity_with_workers_stalled() {
    let capacity = 3;
    let mut server = Server::new(
        model(),
        calibration(3),
        ServeConfig {
            workers: 0, // permanently stalled pool
            queue_capacity: capacity,
            ..ServeConfig::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(7);
    let mut tickets = Vec::new();
    for _ in 0..capacity {
        tickets.push(
            server
                .try_submit(Request::new(samples(&mut rng, 4, 6), 1e-2))
                .unwrap(),
        );
    }
    for _ in 0..2 {
        let err = server
            .try_submit(Request::new(samples(&mut rng, 4, 6), 1e-2))
            .unwrap_err();
        assert_eq!(err, ServeError::QueueFull);
    }
    let snap = server.stats();
    assert_eq!(snap.submitted, capacity as u64);
    assert_eq!(snap.rejected, 2);
    assert_eq!(snap.queue_depth, capacity);

    // Shutdown fails the stalled requests instead of hanging their waiters.
    server.shutdown();
    for t in tickets {
        assert_eq!(t.wait().unwrap_err(), ServeError::Shutdown);
    }
}

/// Batched and per-sample inference agree through the full serving path.
#[test]
fn served_predictions_match_direct_inference_shape_and_bound_scaling() {
    let server = Server::new(
        model(),
        calibration(4),
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(9);
    let payload = samples(&mut rng, 12, 6);
    // A looser tolerance can only loosen (or keep) the certified bound.
    let tight = server.process(Request::new(payload.clone(), 1e-3)).unwrap();
    let loose = server.process(Request::new(payload, 1e-1)).unwrap();
    assert!(tight.rel_bound <= 1e-3);
    assert!(loose.rel_bound <= 1e-1);
    assert!(tight.rel_bound <= loose.rel_bound);
}

/// The server is generic over `Model`: a scidata `TaskModel` (enum over
/// MLP/ConvNet) serves through the same path, exercising the
/// `forward_batch` delegation.
#[test]
fn serves_task_models_and_every_backend() {
    let task = SyntheticTask::of_kind_small(TaskKind::H2Combustion, 3);
    let m = task.build_model(TrainingMode::Psn);
    let cal: Vec<Vec<f32>> = task.ordered_inputs().iter().take(24).cloned().collect();
    for backend in [BackendKind::Sz, BackendKind::Zfp, BackendKind::Mgard] {
        let server = Server::new(
            m.clone(),
            cal.clone(),
            ServeConfig {
                workers: 2,
                backend,
                ..ServeConfig::default()
            },
        );
        let payload: Vec<Vec<f32>> = task.ordered_inputs().iter().take(16).cloned().collect();
        let mut req = Request::new(payload, 1e-2);
        req.norm = Norm::L2;
        req.layout = PayloadLayout::FeatureMajor;
        let resp = server.process(req).unwrap();
        assert_eq!(resp.outputs.len(), 16);
        assert!(resp.outputs.iter().all(|y| y.len() == m.output_dim()));
        assert!(
            resp.rel_bound <= 1e-2,
            "{}: {}",
            backend.name(),
            resp.rel_bound
        );
    }
}
