//! Overhead guard: span tracing must cost < 3% of serve throughput.
//!
//! Tracing is toggled at runtime (`errflow_obs::trace::set_enabled`) and
//! the same binary drives identical loadgen runs with it on and off,
//! interleaved.  Comparing the *minimum* wall time of each arm filters
//! scheduler noise (noise is additive, so the minimum is the cleanest
//! estimate of true cost).  With `--features obs-off` the recording paths
//! compile to no-ops and the guard holds trivially.

use errflow_nn::{Activation, Mlp};
use errflow_serve::{run_loadgen, LoadgenConfig, ServeConfig, Server};

// Small but not toy: the guard compares span cost against the real work
// a request carries.  With the fused-decode/prepacked serve path a 4-dim
// toy model leaves so little work per request that the fixed ~µs of span
// recording alone sits at the 3% budget; 64-dim inputs keep the workload
// fast while staying representative of how spans amortize in production.
fn tiny_model() -> Mlp {
    Mlp::new(
        &[64, 32, 8],
        Activation::Tanh,
        Activation::Identity,
        3,
        None,
    )
}

fn calibration(n: usize) -> Vec<Vec<f32>> {
    let mut rng = errflow_tensor::rng::StdRng::seed_from_u64(17);
    (0..n)
        .map(|_| (0..64).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect()
}

#[test]
fn tracing_overhead_is_under_three_percent() {
    let server = Server::new(
        tiny_model(),
        calibration(8),
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    );
    // Enough work per arm that each timed run lands well above timer /
    // scheduler noise (~tens of ms): with the fused decode and prepacked
    // GEMM path the original 60×16-sample runs finished in ~2ms, where a
    // single descheduling event dwarfs the 3% budget being measured.
    let cfg = LoadgenConfig {
        clients: 2,
        requests_per_client: 60,
        samples_per_request: 512,
        tolerances: vec![1e-2],
        seed: 42,
        ..LoadgenConfig::default()
    };
    // Warm up: plan cache, scratch pool, thread pool, allocator.
    run_loadgen(&server, &cfg);

    // min-of-9: on a single shared core a burst of steal time can cover
    // all of a shorter window's runs of one arm, and the budget being
    // enforced (3%) is smaller than one descheduling event per arm.
    let rounds = 9;
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    for _ in 0..rounds {
        errflow_obs::trace::set_enabled(false);
        best_off = best_off.min(run_loadgen(&server, &cfg).wall_secs);
        errflow_obs::trace::set_enabled(true);
        best_on = best_on.min(run_loadgen(&server, &cfg).wall_secs);
        // Keep the ring buffers from growing run over run.
        errflow_obs::trace::clear();
    }
    errflow_obs::trace::set_enabled(true);

    let ratio = best_on / best_off;
    assert!(
        ratio < 1.03,
        "tracing overhead too high: enabled {best_on:.6}s vs disabled {best_off:.6}s \
         (ratio {ratio:.4}, limit 1.03)"
    );
}
