//! The synthetic load driver end-to-end: a miniature `serve-bench` run
//! must certify every response and keep the plan cache hot under a
//! single-tolerance workload.

use errflow_nn::{Activation, Mlp};
use errflow_serve::{run_loadgen, LoadgenConfig, ServeConfig, Server};
use errflow_tensor::norms::Norm;
use errflow_tensor::rng::StdRng;

#[test]
fn single_tolerance_load_is_cache_hot_and_certified() {
    let model = Mlp::new(&[5, 16, 3], Activation::Tanh, Activation::Identity, 2, None);
    let mut rng = StdRng::seed_from_u64(3);
    let calibration: Vec<Vec<f32>> = (0..24)
        .map(|_| (0..5).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let server = Server::new(
        model,
        calibration,
        ServeConfig {
            workers: 2,
            queue_capacity: 16,
            ..ServeConfig::default()
        },
    );
    let cfg = LoadgenConfig {
        clients: 3,
        requests_per_client: 25,
        samples_per_request: 8,
        tolerances: vec![1e-2],
        norm: Norm::L2,
        seed: 11,
        ..LoadgenConfig::default()
    };
    let summary = run_loadgen(&server, &cfg);
    assert_eq!(summary.requests, 75);
    assert!(summary.all_bounds_certified);
    assert!(summary.max_rel_bound <= 1e-2);
    // One tolerance → one planning miss; everything else hits.
    assert_eq!(summary.cache_misses, 1);
    assert!(
        summary.cache_hit_rate > 0.9,
        "hit rate {} too low",
        summary.cache_hit_rate
    );
    assert!(summary.throughput_rps > 0.0);
    assert!(summary.latency.count >= 75);
    assert!(summary.latency.p50_us > 0.0);
    // Every request's payload went through the compression roundtrip, so
    // decompression throughput must have been recorded.
    assert!(summary.decomp_bytes_in > 0);
    assert!(summary.decomp_bytes_out > 0);
    assert!(summary.decomp_gbps > 0.0);
    // The JSON surface reflects the run.
    let j = summary.to_json();
    assert!(j.contains("\"requests\":75"), "{j}");
    assert!(j.contains("\"all_bounds_certified\":true"), "{j}");
    assert!(j.contains("\"decomp\":{"), "{j}");
}

#[test]
fn mixed_tolerances_churn_the_cache_but_stay_sound() {
    let model = Mlp::new(&[5, 16, 3], Activation::Tanh, Activation::Identity, 2, None);
    let mut rng = StdRng::seed_from_u64(4);
    let calibration: Vec<Vec<f32>> = (0..24)
        .map(|_| (0..5).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let server = Server::new(
        model,
        calibration,
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    );
    let cfg = LoadgenConfig {
        clients: 2,
        requests_per_client: 12,
        samples_per_request: 8,
        // Three distinct buckets → exactly three planning misses.
        tolerances: vec![1e-1, 1e-2, 1e-3],
        norm: Norm::L2,
        seed: 12,
        ..LoadgenConfig::default()
    };
    let summary = run_loadgen(&server, &cfg);
    assert!(summary.all_bounds_certified);
    assert_eq!(summary.cache_misses, 3);
    assert!(summary.cache_hits >= 1);
}
