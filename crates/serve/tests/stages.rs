//! Per-stage telemetry integration tests: stage attribution must be
//! conservative (each request's stage sum ≤ its end-to-end latency), the
//! breakdown must actually populate, and bound certification must count
//! every completed response.
//!
//! The scratch-pool counters are process-wide, so tests that assert on
//! their deltas serialise on a file-local mutex.

use errflow_nn::{Activation, Mlp};
use errflow_serve::{Request, ServeConfig, Server};
use std::sync::{Mutex, MutexGuard};

fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    match GATE.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn tiny_model() -> Mlp {
    Mlp::new(&[4, 8, 2], Activation::Tanh, Activation::Identity, 3, None)
}

fn calibration(n: usize) -> Vec<Vec<f32>> {
    let mut rng = errflow_tensor::rng::StdRng::seed_from_u64(17);
    (0..n)
        .map(|_| (0..4).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect()
}

fn payload(seed: u64, n: usize) -> Vec<Vec<f32>> {
    let mut rng = errflow_tensor::rng::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..4).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect()
}

#[test]
fn stage_sum_is_bounded_by_end_to_end_latency() {
    let _g = serial();
    let server = Server::new(
        tiny_model(),
        calibration(8),
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    );
    for i in 0..20u64 {
        let resp = server
            .process(Request::new(payload(100 + i, 8), 1e-2))
            .expect("request must complete");
        let stages = resp.stages;
        let e2e_ns = resp.latency.as_nanos() as u64;
        assert!(
            stages.sum_ns() <= e2e_ns,
            "stage sum {} ns exceeds end-to-end {} ns ({stages:?})",
            stages.sum_ns(),
            e2e_ns,
        );
        // The payload roundtrip and the forward pass always take
        // measurable time on this model.
        assert!(stages.decompress_ns > 0, "{stages:?}");
        assert!(stages.forward_ns > 0, "{stages:?}");
    }
}

#[test]
fn breakdown_populates_and_bounds_are_certified() {
    let _g = serial();
    let server = Server::new(
        tiny_model(),
        calibration(8),
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    );
    let n_requests = 12u64;
    for i in 0..n_requests {
        server
            .process(Request::new(payload(200 + i, 8), 1e-2))
            .expect("request must complete");
    }
    let snap = server.stats();
    assert_eq!(snap.completed, n_requests);
    // Per-job stages record one observation per completed request.
    assert_eq!(snap.stages.batch_wait.count, n_requests, "{snap:?}");
    assert_eq!(snap.stages.decompress.count, n_requests, "{snap:?}");
    assert_eq!(snap.stages.respond.count, n_requests, "{snap:?}");
    // Batch-level stages record one observation per batch.
    assert_eq!(snap.stages.plan.count, snap.batches, "{snap:?}");
    assert_eq!(snap.stages.forward.count, snap.batches, "{snap:?}");
    assert!(snap.stages.decompress.mean_us > 0.0, "{snap:?}");
    assert!(snap.stages.forward.mean_us > 0.0, "{snap:?}");
    // Every completed response passed its bound-certification check.
    assert_eq!(snap.bound_pass, n_requests, "{snap:?}");
    assert_eq!(snap.bound_fail, 0, "{snap:?}");
}

#[test]
fn scratch_pool_counters_are_per_server_deltas() {
    let _g = serial();
    let a = Server::new(
        tiny_model(),
        calibration(8),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    for i in 0..6u64 {
        a.process(Request::new(payload(300 + i, 8), 1e-2))
            .expect("request must complete");
    }
    let snap_a = a.stats();
    assert!(
        snap_a.scratch_hits + snap_a.scratch_misses > 0,
        "server A's decodes must show up in its own delta: {snap_a:?}"
    );
    // A server built *after* A's traffic must not inherit it.
    let b = Server::new(
        tiny_model(),
        calibration(8),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let snap_b = b.stats();
    assert_eq!(
        (snap_b.scratch_hits, snap_b.scratch_misses),
        (0, 0),
        "fresh server must start from a zero scratch delta: {snap_b:?}"
    );
}
