//! Model architectures and the *block view* the error-flow core consumes.
//!
//! The paper's Eq. (1) describes an `L`-layer residual building block
//! `y = F(x, {W}) + W_s x`, with MLPs as the `W_s = 0` special case.  Both
//! model types here ([`Mlp`] and the compact ResNet [`ConvNet`]) expose
//! their structure as a sequence of [`BlockView`]s matching that equation,
//! which is the only interface `errflow-core` needs to evaluate the bounds.

use crate::activation::Activation;
use crate::layer::{Layer, LayerCache, LayerGrads};
use errflow_tensor::conv::{global_avg_pool, ConvSpec, MapShape};
use errflow_tensor::rng::StdRng;
use errflow_tensor::{init, Matrix};

/// Read-only view of one linear/conv layer inside a block.
#[derive(Debug, Clone, Copy)]
pub struct LayerView<'a> {
    /// Effective weight matrix (PSN-normalised when PSN is on).  For conv
    /// layers this is the im2col-lowered matrix `(out_ch, in_ch·kh·kw)`.
    pub weights: &'a Matrix,
    /// Activation applied after the linear map.
    pub activation: Activation,
    /// √(patch multiplicity) of the im2col lowering (1 for dense layers).
    pub replication: f64,
    /// Number of scalar inputs to the layer.
    pub in_elems: usize,
    /// Number of scalar outputs of the layer.
    pub out_elems: usize,
}

/// Read-only view of a block's shortcut path (`W_s` in Eq. 1).
#[derive(Debug, Clone, Copy)]
pub enum ShortcutView<'a> {
    /// No shortcut (`W_s = 0`) — plain feed-forward; σ_s = 0.
    None,
    /// Identity shortcut — σ_s = 1.
    Identity,
    /// Linear projection shortcut with the given matrix.
    Projection(&'a Matrix),
}

/// Read-only view of one residual building block (Eq. 1).
#[derive(Debug, Clone)]
pub struct BlockView<'a> {
    /// The layers of the residual branch `F`, in order.
    pub layers: Vec<LayerView<'a>>,
    /// The shortcut path.
    pub shortcut: ShortcutView<'a>,
    /// Operator norm of any fixed (weight-free, never-quantized) linear map
    /// applied after the block — e.g. global average pooling contributes
    /// `1/√(h·w)`.  `1.0` when there is none.
    pub output_scale: f64,
}

/// A model's weight matrices packed once into the GEMM kernel's panel
/// layout (see [`errflow_tensor::gemm::PackedB`]).
///
/// Produced by [`Model::pack_weights`] and consumed by
/// [`Model::forward_batch_matrix`]: the serving layer packs each plan-cache
/// entry's quantized weights at insert time, so cache hits never re-pack.
pub struct PackedWeights {
    layers: Vec<errflow_tensor::gemm::PackedB>,
}

impl PackedWeights {
    /// Packed panels for layer `i`, in [`Mlp::layers`] order.
    pub fn layer(&self, i: usize) -> Option<&errflow_tensor::gemm::PackedB> {
        self.layers.get(i)
    }

    /// Extra bytes held by the panel buffers (for cache accounting).
    pub fn packed_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(errflow_tensor::gemm::PackedB::packed_bytes)
            .sum()
    }
}

/// Common interface over the paper's model families.
pub trait Model {
    /// Runs inference on a single input.
    fn forward(&self, x: &[f32]) -> Vec<f32>;

    /// Runs inference on a batch of inputs.
    ///
    /// The default loops [`Model::forward`]; architectures whose layers
    /// lower to GEMM (e.g. [`Mlp`]) override it with a single batched
    /// matrix-matrix pass per layer, which is what the serving layer's
    /// request batcher relies on for throughput.
    fn forward_batch(&self, xs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        xs.iter().map(|x| self.forward(x)).collect()
    }

    /// Packs the weight matrices for [`Model::forward_batch_matrix`].
    ///
    /// Returns `None` (the default) when the architecture has no batched
    /// GEMM path to feed — callers then run unpacked.
    fn pack_weights(&self) -> Option<PackedWeights> {
        None
    }

    /// Batched forward over a row-stacked input matrix (one sample per
    /// row), optionally reusing weights packed by [`Model::pack_weights`].
    ///
    /// This is the zero-copy serving entry point: the batcher decodes
    /// payloads straight into the input matrix's row slabs and hands the
    /// whole slab here without the per-sample `Vec` round trip.  The
    /// default routes through [`Model::forward_batch`]; GEMM-lowered
    /// architectures override it to stay in matrix form end to end.
    fn forward_batch_matrix(&self, x: &Matrix, _packed: Option<&PackedWeights>) -> Matrix {
        let rows: Vec<Vec<f32>> = (0..x.rows()).map(|r| x.row(r).to_vec()).collect();
        let outs = self.forward_batch(&rows);
        // audit:allow(panic-reach) per-sample outputs all have the model's output_dim
        Matrix::from_rows(&outs).expect("batch outputs share the output dim")
    }

    /// Number of scalar inputs (`n_0` in the paper).
    fn input_dim(&self) -> usize;

    /// Number of scalar outputs (the QoI dimension).
    fn output_dim(&self) -> usize;

    /// Structural decomposition into residual building blocks.
    fn blocks(&self) -> Vec<BlockView<'_>>;

    /// Forward-pass FLOPs per sample.
    fn flops(&self) -> f64;

    /// Total trainable parameter count.
    fn num_params(&self) -> usize;

    /// Returns a copy of the model with every weight matrix transformed by
    /// `f` (weights only — biases are kept in full precision, matching the
    /// paper's weight-only quantization).  The copy is frozen: PSN state is
    /// dropped because the transformed weights are a deployment artifact.
    fn map_weights(&self, f: &mut dyn FnMut(&Matrix) -> Matrix) -> Self
    where
        Self: Sized;

    /// L2 norms of the *inputs* to each layer during a forward pass on `x`,
    /// flattened in the same order as [`Model::blocks`] flattens layers.
    ///
    /// Used by the calibrated-magnitude bound extension: the worst-case
    /// activation bound `√n₀·Πσ̃` can be replaced by measured magnitudes
    /// (times a safety factor), tightening the quantization injections.
    fn layer_input_magnitudes(&self, x: &[f32]) -> Vec<f64>;
}

// ---------------------------------------------------------------------------
// MLP
// ---------------------------------------------------------------------------

/// A multi-layer perceptron — the architecture of the H2-combustion network
/// (2 hidden layers × 50 neurons, Tanh) and the Borghesi-flame network
/// (8 hidden layers, ReLU-family).
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Layer>,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `[9, 50, 50, 9]`.
    ///
    /// Hidden layers use `hidden_act`; the final layer uses `output_act`
    /// (usually [`Activation::Identity`] for regression QoIs).  When
    /// `psn_seed` is `Some`, every layer is wrapped in parameterized
    /// spectral normalization.
    pub fn new(
        dims: &[usize],
        hidden_act: Activation,
        output_act: Activation,
        seed: u64,
        psn_seed: Option<u64>,
    ) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output dims"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for i in 0..dims.len() - 1 {
            let (fan_out, fan_in) = (dims[i + 1], dims[i]);
            let act = if i + 2 == dims.len() {
                output_act
            } else {
                hidden_act
            };
            let w = match act {
                Activation::Tanh => init::xavier_uniform(fan_out, fan_in, &mut rng),
                _ => init::he_uniform(fan_out, fan_in, &mut rng),
            };
            let mut layer = Layer::dense(w, vec![0.0; fan_out], act);
            if let Some(ps) = psn_seed {
                layer = layer.with_psn(ps.wrapping_add(i as u64));
            }
            layers.push(layer);
        }
        Mlp { layers }
    }

    /// Wraps pre-built layers (all must be dense).
    pub fn from_layers(layers: Vec<Layer>) -> Self {
        assert!(!layers.is_empty());
        Mlp { layers }
    }

    /// The layers, in order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// `true` when every layer lowers to a dense GEMM.
    fn all_dense(&self) -> bool {
        self.layers
            .iter()
            .all(|l| matches!(l.kind(), crate::layer::LayerKind::Dense))
    }

    /// Mutable layer access (for the optimiser).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Forward pass caching per-layer state for [`Mlp::backward`].
    pub fn forward_cached(&self, x: &[f32]) -> (Vec<f32>, Vec<LayerCache>) {
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut h = x.to_vec();
        for layer in &self.layers {
            let (next, cache) = layer.forward_cached(&h);
            caches.push(cache);
            h = next;
        }
        (h, caches)
    }

    /// Backward pass from `∂L/∂y`; returns per-layer gradients (same order
    /// as [`Mlp::layers`]).
    pub fn backward(&self, caches: &[LayerCache], d_out: &[f32]) -> Vec<LayerGrads> {
        let mut grads: Vec<Option<LayerGrads>> = (0..self.layers.len()).map(|_| None).collect();
        let mut d = d_out.to_vec();
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let (d_in, g) = layer.backward(&caches[i], &d);
            grads[i] = Some(g);
            d = d_in;
        }
        // audit:allow(panic-reach) layer grads accumulate over identical architectures
        grads.into_iter().map(|g| g.expect("filled")).collect()
    }
}

impl Model for Mlp {
    fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut h = x.to_vec();
        for layer in &self.layers {
            h = layer.forward(&h);
        }
        h
    }

    /// Batched forward as one GEMM per layer: `H ← act(H·Wᵀ + b)` with the
    /// batch stacked row-wise.  Falls back to the per-sample loop if any
    /// layer is not dense.
    ///
    /// Delegates to [`Model::forward_batch_matrix`] (unpacked), so both
    /// entry points share one GEMM pipeline.
    fn forward_batch(&self, xs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        if xs.is_empty() {
            return Vec::new();
        }
        if !self.all_dense() {
            return xs.iter().map(|x| self.forward(x)).collect();
        }
        // audit:allow(panic-reach) forward output length is the next layer's input contract
        let h = Matrix::from_rows(xs).expect("batch rows share the input dim");
        let out = self.forward_batch_matrix(&h, None);
        (0..out.rows()).map(|r| out.row(r).to_vec()).collect()
    }

    /// One [`PackedB`](errflow_tensor::gemm::PackedB) per dense layer,
    /// packed through the same transposed layout `matmul_transb` uses, so
    /// packed and unpacked products are bitwise identical.
    fn pack_weights(&self) -> Option<PackedWeights> {
        if !self.all_dense() {
            return None;
        }
        Some(PackedWeights {
            layers: self
                .layers
                .iter()
                .map(|l| {
                    let w = l.weights();
                    errflow_tensor::gemm::PackedB::pack_transb(w.as_slice(), w.cols(), w.rows())
                })
                .collect(),
        })
    }

    /// `H ← act(H·Wᵀ + b)` per layer, staying in matrix form end to end;
    /// layers whose panels are in `packed` skip the per-call `B` pack.
    fn forward_batch_matrix(&self, x: &Matrix, packed: Option<&PackedWeights>) -> Matrix {
        if !self.all_dense() {
            let rows: Vec<Vec<f32>> = (0..x.rows()).map(|r| x.row(r).to_vec()).collect();
            let outs: Vec<Vec<f32>> = rows.iter().map(|r| self.forward(r)).collect();
            // audit:allow(panic-reach) batch rows share the model input_dim, checked at entry
            return Matrix::from_rows(&outs).expect("batch outputs share the output dim");
        }
        let mut h: Option<Matrix> = None;
        for (li, layer) in self.layers.iter().enumerate() {
            let cur = h.as_ref().unwrap_or(x);
            let mut z = match packed.and_then(|p| p.layer(li)) {
                Some(pb) => cur
                    .matmul_transb_prepacked(pb)
                    // audit:allow(panic-reach) matmul dims follow from the layer chain's validated shapes
                    .expect("packed panels match the layer weights"),
                None => cur
                    .matmul_transb(layer.weights())
                    // audit:allow(panic-reach) bias length equals the layer's output rows by construction
                    .expect("batch/weight dims agree"),
            };
            let bias = layer.bias();
            let act = layer.activation();
            for r in 0..z.rows() {
                let row = z.row_mut(r);
                for (zi, &b) in row.iter_mut().zip(bias) {
                    *zi += b;
                }
                act.apply_slice(row);
            }
            h = Some(z);
        }
        h.unwrap_or_else(|| Matrix::zeros(x.rows(), self.output_dim()))
    }

    fn input_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    fn output_dim(&self) -> usize {
        // audit:allow(panic-reach) models are non-empty by construction (validated in new)
        self.layers.last().expect("nonempty").out_dim()
    }

    fn blocks(&self) -> Vec<BlockView<'_>> {
        // An MLP is one residual block with W_s = 0 (paper §III-A).
        vec![BlockView {
            layers: self.layers.iter().map(layer_view).collect(),
            shortcut: ShortcutView::None,
            output_scale: 1.0,
        }]
    }

    fn flops(&self) -> f64 {
        self.layers.iter().map(Layer::flops).sum()
    }

    fn num_params(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.weights().len() + l.bias().len())
            .sum()
    }

    fn map_weights(&self, f: &mut dyn FnMut(&Matrix) -> Matrix) -> Self {
        Mlp {
            layers: self
                .layers
                .iter()
                .map(|l| l.with_weights(f(l.weights())))
                .collect(),
        }
    }

    fn layer_input_magnitudes(&self, x: &[f32]) -> Vec<f64> {
        let mut mags = Vec::with_capacity(self.layers.len());
        let mut h = x.to_vec();
        for layer in &self.layers {
            mags.push(errflow_tensor::norms::l2(&h));
            h = layer.forward(&h);
        }
        mags
    }
}

fn layer_view(layer: &Layer) -> LayerView<'_> {
    LayerView {
        weights: layer.weights(),
        activation: layer.activation(),
        replication: layer.replication(),
        in_elems: layer.in_dim(),
        out_elems: layer.out_dim(),
    }
}

// ---------------------------------------------------------------------------
// ConvNet (compact ResNet)
// ---------------------------------------------------------------------------

/// One identity-shortcut residual block: `y = φ(conv₂(φ(conv₁(x))) + x)`.
#[derive(Debug, Clone)]
struct ResBlock {
    conv1: Layer,
    conv2: Layer,
    post_act: Activation,
}

/// Cache for one residual block's backward pass.
#[derive(Debug, Clone)]
pub struct ResBlockCache {
    c1: LayerCache,
    c2: LayerCache,
    pre_sum: Vec<f32>,
}

/// A compact ResNet for image classification: stem conv → residual blocks →
/// global average pooling → dense head.
///
/// This is the EuroSAT-workload stand-in (DESIGN.md §3, substitution 2): the
/// same structural elements as ResNet-18 (3×3 convs, identity shortcuts,
/// GAP, linear classifier head) at a CPU-trainable scale.
#[derive(Debug, Clone)]
pub struct ConvNet {
    input_shape: MapShape,
    stem: Layer,
    blocks: Vec<ResBlock>,
    head: Layer,
    feature_shape: MapShape,
}

/// Full forward cache of a [`ConvNet`].
#[derive(Debug, Clone)]
pub struct ConvNetCache {
    stem: LayerCache,
    blocks: Vec<ResBlockCache>,
    gap_input_len: usize,
    head: LayerCache,
}

impl ConvNet {
    /// Builds a compact ResNet.
    ///
    /// * `input_shape` — e.g. 13 spectral bands × 16×16 pixels.
    /// * `stem_channels` — width of the stem conv (kept through the blocks).
    /// * `num_blocks` — number of identity-shortcut residual blocks.
    /// * `num_classes` — output dimension of the dense head.
    pub fn new(
        input_shape: MapShape,
        stem_channels: usize,
        num_blocks: usize,
        num_classes: usize,
        act: Activation,
        seed: u64,
        psn_seed: Option<u64>,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = ConvSpec::square(3, 1, 1);
        let maybe_psn = |layer: Layer, idx: u64| -> Layer {
            match psn_seed {
                Some(ps) => layer.with_psn(ps.wrapping_add(idx)),
                None => layer,
            }
        };
        let stem_w = init::he_uniform(stem_channels, input_shape.channels * 9, &mut rng);
        let stem = maybe_psn(
            Layer::conv(stem_w, vec![0.0; stem_channels], act, spec, input_shape),
            0,
        );
        let feature_shape = MapShape::new(stem_channels, input_shape.height, input_shape.width);
        let mut blocks = Vec::with_capacity(num_blocks);
        for b in 0..num_blocks {
            let w1 = init::he_uniform(stem_channels, stem_channels * 9, &mut rng);
            let w2 = init::he_uniform(stem_channels, stem_channels * 9, &mut rng);
            let conv1 = maybe_psn(
                Layer::conv(w1, vec![0.0; stem_channels], act, spec, feature_shape),
                (2 * b + 1) as u64,
            );
            // conv2 is Identity-activated: the nonlinearity applies post-sum.
            let conv2 = maybe_psn(
                Layer::conv(
                    w2,
                    vec![0.0; stem_channels],
                    Activation::Identity,
                    spec,
                    feature_shape,
                ),
                (2 * b + 2) as u64,
            );
            blocks.push(ResBlock {
                conv1,
                conv2,
                post_act: act,
            });
        }
        let head_w = init::he_uniform(num_classes, stem_channels, &mut rng);
        let head = maybe_psn(
            Layer::dense(head_w, vec![0.0; num_classes], Activation::Identity),
            (2 * num_blocks + 1) as u64,
        );
        ConvNet {
            input_shape,
            stem,
            blocks,
            head,
            feature_shape,
        }
    }

    /// Input feature-map shape.
    pub fn input_shape(&self) -> MapShape {
        self.input_shape
    }

    /// Width (channel count) of the stem and residual blocks.
    pub fn feature_channels(&self) -> usize {
        self.feature_shape.channels
    }

    /// The post-block / hidden activation.
    pub fn activation(&self) -> Activation {
        self.blocks
            .first()
            .map(|b| b.post_act)
            .unwrap_or_else(|| self.stem.activation())
    }

    /// Number of residual blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Forward pass with full caching for [`ConvNet::backward`].
    pub fn forward_cached(&self, x: &[f32]) -> (Vec<f32>, ConvNetCache) {
        let (mut h, stem_cache) = self.stem.forward_cached(x);
        let mut block_caches = Vec::with_capacity(self.blocks.len());
        for block in &self.blocks {
            let (a, c1) = block.conv1.forward_cached(&h);
            let (f, c2) = block.conv2.forward_cached(&a);
            let pre_sum: Vec<f32> = f.iter().zip(&h).map(|(&fi, &xi)| fi + xi).collect();
            let mut y = pre_sum.clone();
            block.post_act.apply_slice(&mut y);
            block_caches.push(ResBlockCache { c1, c2, pre_sum });
            h = y;
        }
        let gap_input_len = h.len();
        let pooled = global_avg_pool(&h, self.feature_shape);
        let (out, head_cache) = self.head.forward_cached(&pooled);
        (
            out,
            ConvNetCache {
                stem: stem_cache,
                blocks: block_caches,
                gap_input_len,
                head: head_cache,
            },
        )
    }

    /// Backward pass; returns gradients in parameter order
    /// `[stem, block0.conv1, block0.conv2, ..., head]`.
    pub fn backward(&self, cache: &ConvNetCache, d_out: &[f32]) -> Vec<LayerGrads> {
        let (d_pooled, head_grads) = self.head.backward(&cache.head, d_out);
        // GAP backward: each spatial location gets d/hw.
        let hw = self.feature_shape.height * self.feature_shape.width;
        let mut d_h = vec![0.0f32; cache.gap_input_len];
        for c in 0..self.feature_shape.channels {
            let g = d_pooled[c] / hw as f32;
            for v in &mut d_h[c * hw..(c + 1) * hw] {
                *v = g;
            }
        }
        let mut rev_block_grads: Vec<(LayerGrads, LayerGrads)> = Vec::new();
        for (block, bc) in self.blocks.iter().zip(&cache.blocks).rev() {
            // d(pre_sum) = d_y ⊙ φ′(pre_sum)
            let d_s: Vec<f32> = d_h
                .iter()
                .zip(&bc.pre_sum)
                .map(|(&g, &z)| g * block.post_act.derivative(z))
                .collect();
            let (d_a, g2) = block.conv2.backward(&bc.c2, &d_s);
            let (d_x_path, g1) = block.conv1.backward(&bc.c1, &d_a);
            // Shortcut adds d_s directly to the input gradient.
            d_h = d_x_path.iter().zip(&d_s).map(|(&a, &b)| a + b).collect();
            rev_block_grads.push((g1, g2));
        }
        let (_, stem_grads) = self.stem.backward(&cache.stem, &d_h);
        let mut grads = Vec::with_capacity(2 + 2 * self.blocks.len());
        grads.push(stem_grads);
        for (g1, g2) in rev_block_grads.into_iter().rev() {
            grads.push(g1);
            grads.push(g2);
        }
        grads.push(head_grads);
        grads
    }

    /// All trainable layers in parameter order (matching
    /// [`ConvNet::backward`]'s gradient order).
    pub fn layers_mut(&mut self) -> Vec<&mut Layer> {
        let mut v: Vec<&mut Layer> = Vec::with_capacity(2 + 2 * self.blocks.len());
        v.push(&mut self.stem);
        for b in &mut self.blocks {
            v.push(&mut b.conv1);
            v.push(&mut b.conv2);
        }
        v.push(&mut self.head);
        v
    }

    /// All layers, immutable, in parameter order.
    pub fn layers(&self) -> Vec<&Layer> {
        let mut v: Vec<&Layer> = Vec::with_capacity(2 + 2 * self.blocks.len());
        v.push(&self.stem);
        for b in &self.blocks {
            v.push(&b.conv1);
            v.push(&b.conv2);
        }
        v.push(&self.head);
        v
    }
}

impl Model for ConvNet {
    fn forward(&self, x: &[f32]) -> Vec<f32> {
        self.forward_cached(x).0
    }

    fn input_dim(&self) -> usize {
        self.input_shape.len()
    }

    fn output_dim(&self) -> usize {
        self.head.out_dim()
    }

    fn blocks(&self) -> Vec<BlockView<'_>> {
        let mut views = Vec::with_capacity(2 + self.blocks.len());
        views.push(BlockView {
            layers: vec![layer_view(&self.stem)],
            shortcut: ShortcutView::None,
            output_scale: 1.0,
        });
        for (i, b) in self.blocks.iter().enumerate() {
            let last = i + 1 == self.blocks.len();
            // GAP follows the final block; its exact operator norm is
            // 1/√(h·w) per channel.
            let output_scale = if last {
                1.0 / ((self.feature_shape.height * self.feature_shape.width) as f64).sqrt()
            } else {
                1.0
            };
            views.push(BlockView {
                layers: vec![layer_view(&b.conv1), layer_view(&b.conv2)],
                shortcut: ShortcutView::Identity,
                output_scale,
            });
        }
        views.push(BlockView {
            layers: vec![layer_view(&self.head)],
            shortcut: ShortcutView::None,
            output_scale: 1.0,
        });
        views
    }

    fn flops(&self) -> f64 {
        self.layers().iter().map(|l| l.flops()).sum()
    }

    fn num_params(&self) -> usize {
        self.layers()
            .iter()
            .map(|l| l.weights().len() + l.bias().len())
            .sum()
    }

    fn layer_input_magnitudes(&self, x: &[f32]) -> Vec<f64> {
        use errflow_tensor::norms::l2;
        let mut mags = Vec::with_capacity(2 + 2 * self.blocks.len());
        mags.push(l2(x));
        let mut h = self.stem.forward(x);
        for block in &self.blocks {
            mags.push(l2(&h)); // conv1 input = block input
            let a = block.conv1.forward(&h);
            mags.push(l2(&a)); // conv2 input
            let f = block.conv2.forward(&a);
            let mut y: Vec<f32> = f.iter().zip(&h).map(|(&fi, &xi)| fi + xi).collect();
            block.post_act.apply_slice(&mut y);
            h = y;
        }
        let pooled = global_avg_pool(&h, self.feature_shape);
        mags.push(l2(&pooled)); // head input
        mags
    }

    fn map_weights(&self, f: &mut dyn FnMut(&Matrix) -> Matrix) -> Self {
        ConvNet {
            input_shape: self.input_shape,
            stem: self.stem.with_weights(f(self.stem.weights())),
            blocks: self
                .blocks
                .iter()
                .map(|b| ResBlock {
                    conv1: b.conv1.with_weights(f(b.conv1.weights())),
                    conv2: b.conv2.with_weights(f(b.conv2.weights())),
                    post_act: b.post_act,
                })
                .collect(),
            head: self.head.with_weights(f(self.head.weights())),
            feature_shape: self.feature_shape,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use errflow_tensor::norms::l2;

    fn small_mlp() -> Mlp {
        Mlp::new(
            &[4, 8, 8, 3],
            Activation::Tanh,
            Activation::Identity,
            1,
            None,
        )
    }

    #[test]
    fn mlp_shapes() {
        let m = small_mlp();
        assert_eq!(m.input_dim(), 4);
        assert_eq!(m.output_dim(), 3);
        assert_eq!(m.forward(&[0.1, 0.2, 0.3, 0.4]).len(), 3);
        assert_eq!(m.flops(), 2.0 * (8. * 4. + 8. * 8. + 3. * 8.));
        assert_eq!(m.num_params(), 8 * 4 + 8 + 8 * 8 + 8 + 3 * 8 + 3);
    }

    #[test]
    fn mlp_block_view_is_single_block_no_shortcut() {
        let m = small_mlp();
        let blocks = m.blocks();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].layers.len(), 3);
        assert!(matches!(blocks[0].shortcut, ShortcutView::None));
    }

    #[test]
    fn mlp_backward_matches_finite_differences() {
        let m = small_mlp();
        let x = vec![0.2f32, -0.4, 0.6, -0.8];
        let (y, caches) = m.forward_cached(&x);
        let grads = m.backward(&caches, &y); // L = ½Σy²
        let loss = |model: &Mlp, input: &[f32]| -> f32 {
            model.forward(input).iter().map(|&v| 0.5 * v * v).sum()
        };
        let h = 1e-3f32;
        // Check a weight in each layer.
        for li in 0..3 {
            let mut mp = m.clone();
            mp.layers_mut()[li].raw_mut()[0] += h;
            mp.layers_mut()[li].refresh();
            let mut mm = m.clone();
            mm.layers_mut()[li].raw_mut()[0] -= h;
            mm.layers_mut()[li].refresh();
            let fd = (loss(&mp, &x) - loss(&mm, &x)) / (2.0 * h);
            let an = grads[li].d_raw.as_slice()[0];
            assert!(
                (fd - an).abs() < 2e-2 * fd.abs().max(1.0),
                "layer {li}: fd={fd} an={an}"
            );
        }
    }

    #[test]
    fn mlp_map_weights_quantizes_all_layers() {
        let m = small_mlp();
        let zeroed = m.map_weights(&mut |_w| Matrix::zeros(_w.rows(), _w.cols()));
        let y = zeroed.forward(&[1.0, 1.0, 1.0, 1.0]);
        assert!(y.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn psn_mlp_layers_have_alpha() {
        let m = Mlp::new(
            &[4, 8, 3],
            Activation::Relu,
            Activation::Identity,
            2,
            Some(100),
        );
        assert!(m.layers().iter().all(|l| l.alpha().is_some()));
    }

    fn small_convnet() -> ConvNet {
        ConvNet::new(MapShape::new(2, 6, 6), 4, 2, 3, Activation::Relu, 7, None)
    }

    #[test]
    fn convnet_shapes() {
        let m = small_convnet();
        assert_eq!(m.input_dim(), 72);
        assert_eq!(m.output_dim(), 3);
        let mut rng = StdRng::seed_from_u64(1);
        let x: Vec<f32> = (0..72).map(|_| rng.gen_range(-1.0..1.0)).collect();
        assert_eq!(m.forward(&x).len(), 3);
    }

    #[test]
    fn convnet_block_views() {
        let m = small_convnet();
        let blocks = m.blocks();
        // stem + 2 residual + head
        assert_eq!(blocks.len(), 4);
        assert!(matches!(blocks[0].shortcut, ShortcutView::None));
        assert!(matches!(blocks[1].shortcut, ShortcutView::Identity));
        assert_eq!(blocks[1].layers.len(), 2);
        // GAP scale on the last residual block.
        assert!((blocks[2].output_scale - 1.0 / 6.0).abs() < 1e-12);
        assert!(matches!(blocks[3].shortcut, ShortcutView::None));
    }

    #[test]
    fn convnet_backward_matches_finite_differences() {
        let m = small_convnet();
        let mut rng = StdRng::seed_from_u64(2);
        let x: Vec<f32> = (0..72).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let (y, cache) = m.forward_cached(&x);
        let grads = m.backward(&cache, &y);
        assert_eq!(grads.len(), 6); // stem + 2*2 + head
        let loss = |model: &ConvNet, input: &[f32]| -> f32 {
            model.forward(input).iter().map(|&v| 0.5 * v * v).sum()
        };
        let h = 1e-2f32;
        // Head weight check (index 5 in grad order).
        let mut mp = m.clone();
        mp.layers_mut()[5].raw_mut()[0] += h;
        mp.layers_mut()[5].refresh();
        let mut mm = m.clone();
        mm.layers_mut()[5].raw_mut()[0] -= h;
        mm.layers_mut()[5].refresh();
        let fd = (loss(&mp, &x) - loss(&mm, &x)) / (2.0 * h);
        let an = grads[5].d_raw.as_slice()[0];
        assert!(
            (fd - an).abs() < 5e-2 * fd.abs().max(1.0),
            "head: fd={fd} an={an}"
        );
        // Stem weight check.
        let mut sp = m.clone();
        sp.layers_mut()[0].raw_mut()[0] += h;
        sp.layers_mut()[0].refresh();
        let mut sm = m.clone();
        sm.layers_mut()[0].raw_mut()[0] -= h;
        sm.layers_mut()[0].refresh();
        let fd = (loss(&sp, &x) - loss(&sm, &x)) / (2.0 * h);
        let an = grads[0].d_raw.as_slice()[0];
        assert!(
            (fd - an).abs() < 5e-2 * fd.abs().max(0.1),
            "stem: fd={fd} an={an}"
        );
    }

    #[test]
    fn convnet_residual_identity_path_works() {
        // Zero the residual-branch weights: blocks become (post-activated)
        // identity, so the network output depends only on stem + head.
        let m = small_convnet();
        let mut idx = 0usize;
        let zeroed = m.map_weights(&mut |w| {
            let is_block_layer = idx >= 1 && idx <= 4;
            idx += 1;
            if is_block_layer {
                Matrix::zeros(w.rows(), w.cols())
            } else {
                w.clone()
            }
        });
        let mut rng = StdRng::seed_from_u64(3);
        let x: Vec<f32> = (0..72).map(|_| rng.gen_range(0.0..1.0)).collect();
        let y = zeroed.forward(&x);
        assert_eq!(y.len(), 3);
        assert!(l2(&y) > 0.0, "identity path must carry signal");
    }

    #[test]
    fn convnet_flops_positive_and_dominated_by_convs() {
        let m = small_convnet();
        assert!(m.flops() > m.layers()[5].flops() * 10.0);
    }

    #[test]
    fn mlp_forward_batch_matches_per_sample() {
        let m = Mlp::new(
            &[7, 24, 24, 5],
            Activation::PRelu(0.25),
            Activation::Identity,
            13,
            None,
        );
        let mut rng = StdRng::seed_from_u64(4);
        let xs: Vec<Vec<f32>> = (0..9)
            .map(|_| (0..7).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect();
        let batched = m.forward_batch(&xs);
        assert_eq!(batched.len(), xs.len());
        for (x, yb) in xs.iter().zip(&batched) {
            let y = m.forward(x);
            assert_eq!(y.len(), yb.len());
            for (a, b) in y.iter().zip(yb) {
                assert!((a - b).abs() <= 1e-5 * a.abs().max(1.0), "{a} vs {b}");
            }
        }
        assert!(m.forward_batch(&[]).is_empty());
    }

    #[test]
    fn mlp_forward_batch_matrix_packed_bitwise_matches_unpacked() {
        let m = Mlp::new(
            &[6, 40, 40, 4],
            Activation::Tanh,
            Activation::Identity,
            31,
            None,
        );
        let mut rng = StdRng::seed_from_u64(6);
        for batch in [1usize, 9, 300] {
            let x = Matrix::from_fn(batch, 6, |_, _| rng.gen_range(-1.0f32..1.0));
            let unpacked = m.forward_batch_matrix(&x, None);
            let packed = m.pack_weights().expect("dense MLP packs");
            assert!(packed.packed_bytes() > 0);
            let got = m.forward_batch_matrix(&x, Some(&packed));
            assert_eq!(got, unpacked, "batch={batch}");
            // And both agree with the row-vector entry point.
            let rows: Vec<Vec<f32>> = (0..batch).map(|r| x.row(r).to_vec()).collect();
            let via_rows = m.forward_batch(&rows);
            for (r, want) in via_rows.iter().enumerate() {
                assert_eq!(got.row(r), want.as_slice(), "batch={batch} row={r}");
            }
        }
    }

    #[test]
    fn convnet_pack_weights_is_none_and_matrix_path_falls_back() {
        let m = small_convnet();
        assert!(m.pack_weights().is_none());
        let mut rng = StdRng::seed_from_u64(8);
        let x = Matrix::from_fn(3, 72, |_, _| rng.gen_range(0.0f32..1.0));
        let out = m.forward_batch_matrix(&x, None);
        assert_eq!(out.shape(), (3, 3));
        for r in 0..3 {
            assert_eq!(out.row(r), m.forward(x.row(r)).as_slice());
        }
    }

    #[test]
    fn convnet_forward_batch_falls_back_to_per_sample() {
        let m = small_convnet();
        let mut rng = StdRng::seed_from_u64(5);
        let xs: Vec<Vec<f32>> = (0..3)
            .map(|_| (0..72).map(|_| rng.gen_range(0.0f32..1.0)).collect())
            .collect();
        let batched = m.forward_batch(&xs);
        for (x, yb) in xs.iter().zip(&batched) {
            assert_eq!(&m.forward(x), yb);
        }
    }
}
