//! Dense and convolutional layers with cached forward / backward passes.
//!
//! A [`Layer`] owns a *raw* parameter matrix.  Without PSN the raw matrix is
//! the weight matrix; with PSN enabled the effective weights are the Eq. (6)
//! reparameterisation `W = α·V/σ_V`, rebuilt by [`Layer::refresh`] after
//! every optimiser step.  Convolutions are lowered to GEMM via im2col, so a
//! conv layer's weight matrix has shape `(out_ch, in_ch·kh·kw)` — the same
//! lowering under which its spectral norm enters the error bounds.

use crate::activation::Activation;
use crate::psn::PsnState;
use errflow_tensor::conv::{col2im, im2col, ConvSpec, MapShape};
use errflow_tensor::Matrix;

/// Structural kind of a layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LayerKind {
    /// Fully connected: `z = W h + b`.
    Dense,
    /// 2-D convolution lowered to GEMM over im2col patches.
    Conv {
        /// Kernel/stride/padding description.
        spec: ConvSpec,
        /// Input feature-map shape.
        in_shape: MapShape,
        /// Output feature-map shape (derived from `spec` and `in_shape`).
        out_shape: MapShape,
    },
}

/// One trainable layer: weights, bias, activation, and optional PSN state.
#[derive(Debug, Clone)]
pub struct Layer {
    raw: Matrix,
    bias: Vec<f32>,
    activation: Activation,
    kind: LayerKind,
    psn: Option<PsnState>,
    w_eff: Matrix,
}

/// Gradients of one layer's parameters, accumulated over a batch.
#[derive(Debug, Clone)]
pub struct LayerGrads {
    /// Gradient w.r.t. the raw parameter matrix.
    pub d_raw: Matrix,
    /// Gradient w.r.t. the bias vector.
    pub d_bias: Vec<f32>,
    /// Gradient w.r.t. the PSN scale α (0 when PSN is off).
    pub d_alpha: f32,
}

impl LayerGrads {
    /// Zero gradients matching `layer`'s parameter shapes.
    pub fn zeros_like(layer: &Layer) -> Self {
        LayerGrads {
            d_raw: Matrix::zeros(layer.raw.rows(), layer.raw.cols()),
            d_bias: vec![0.0; layer.bias.len()],
            d_alpha: 0.0,
        }
    }

    /// Accumulates another gradient contribution.
    pub fn accumulate(&mut self, other: &LayerGrads) {
        self.d_raw
            .axpy(1.0, &other.d_raw)
            // audit:allow(panic-reach) gradient tensors share the layer's shape by construction
            .expect("gradient shapes match");
        for (a, &b) in self.d_bias.iter_mut().zip(&other.d_bias) {
            *a += b;
        }
        self.d_alpha += other.d_alpha;
    }

    /// Scales all gradients (for batch averaging).
    pub fn scale(&mut self, s: f32) {
        self.d_raw.map_inplace(|v| v * s);
        for b in &mut self.d_bias {
            *b *= s;
        }
        self.d_alpha *= s;
    }
}

/// Forward-pass cache needed for the backward pass.
#[derive(Debug, Clone)]
pub struct LayerCache {
    input: Vec<f32>,
    preact: Vec<f32>,
    patches: Option<Matrix>,
}

impl Layer {
    /// Creates a dense layer from an already-initialised weight matrix.
    pub fn dense(weights: Matrix, bias: Vec<f32>, activation: Activation) -> Self {
        assert_eq!(weights.rows(), bias.len(), "bias length must match rows");
        let w_eff = weights.clone();
        Layer {
            raw: weights,
            bias,
            activation,
            kind: LayerKind::Dense,
            psn: None,
            w_eff,
        }
    }

    /// Creates a conv layer; `weights` must have shape
    /// `(out_ch, in_ch·kh·kw)` and `bias` one entry per output channel.
    pub fn conv(
        weights: Matrix,
        bias: Vec<f32>,
        activation: Activation,
        spec: ConvSpec,
        in_shape: MapShape,
    ) -> Self {
        let (oh, ow) = spec
            .output_hw(in_shape.height, in_shape.width)
            // audit:allow(panic-reach) the constructor validates kernel-fits-input; misuse is a programming error
            .expect("kernel must fit input");
        let out_shape = MapShape::new(weights.rows(), oh, ow);
        assert_eq!(
            weights.cols(),
            in_shape.channels * spec.kh * spec.kw,
            "conv weight cols must equal in_ch*kh*kw"
        );
        assert_eq!(weights.rows(), bias.len());
        let w_eff = weights.clone();
        Layer {
            raw: weights,
            bias,
            activation,
            kind: LayerKind::Conv {
                spec,
                in_shape,
                out_shape,
            },
            psn: None,
            w_eff,
        }
    }

    /// Enables parameterized spectral normalization on this layer.
    pub fn with_psn(mut self, seed: u64) -> Self {
        self.psn = Some(PsnState::new(&self.raw, seed));
        self.refresh();
        self
    }

    /// Rebuilds the cached effective weights (and, with PSN, refreshes the
    /// σ_V power-iteration estimate).  Call after every parameter update.
    pub fn refresh(&mut self) {
        if let Some(psn) = &mut self.psn {
            psn.update_sigma(&self.raw);
            self.w_eff = psn.effective_weights(&self.raw);
        } else {
            self.w_eff = self.raw.clone();
        }
    }

    /// The effective weight matrix used by inference (PSN-normalised when
    /// PSN is enabled).
    pub fn weights(&self) -> &Matrix {
        &self.w_eff
    }

    /// Replaces the effective weights directly (used to build quantized
    /// model copies).  Disables PSN on the copy: a quantized model is a
    /// frozen artifact, not a training configuration.
    pub fn with_weights(&self, w: Matrix) -> Layer {
        assert_eq!(w.shape(), self.w_eff.shape());
        Layer {
            raw: w.clone(),
            bias: self.bias.clone(),
            activation: self.activation,
            kind: self.kind,
            psn: None,
            w_eff: w,
        }
    }

    /// Bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Structural kind.
    pub fn kind(&self) -> LayerKind {
        self.kind
    }

    /// PSN scale α, when PSN is enabled.
    pub fn alpha(&self) -> Option<f32> {
        self.psn.as_ref().map(|p| p.alpha)
    }

    /// Number of scalar inputs.
    pub fn in_dim(&self) -> usize {
        match self.kind {
            LayerKind::Dense => self.raw.cols(),
            LayerKind::Conv { in_shape, .. } => in_shape.len(),
        }
    }

    /// Number of scalar outputs.
    pub fn out_dim(&self) -> usize {
        match self.kind {
            LayerKind::Dense => self.raw.rows(),
            LayerKind::Conv { out_shape, .. } => out_shape.len(),
        }
    }

    /// Multiply-accumulate FLOPs for one forward pass (2 per MAC).
    pub fn flops(&self) -> f64 {
        match self.kind {
            LayerKind::Dense => 2.0 * self.raw.rows() as f64 * self.raw.cols() as f64,
            LayerKind::Conv { out_shape, .. } => {
                2.0 * self.raw.rows() as f64
                    * self.raw.cols() as f64
                    * (out_shape.height * out_shape.width) as f64
            }
        }
    }

    /// √(patch multiplicity): the factor by which the im2col lowering can
    /// amplify an input perturbation's L2 norm.  `1` for dense layers; for a
    /// conv each input element appears in at most `⌈kh/s⌉·⌈kw/s⌉` patches.
    pub fn replication(&self) -> f64 {
        match self.kind {
            LayerKind::Dense => 1.0,
            LayerKind::Conv { spec, .. } => {
                let ky = spec.kh.div_ceil(spec.stride);
                let kx = spec.kw.div_ceil(spec.stride);
                ((ky * kx) as f64).sqrt()
            }
        }
    }

    /// Forward pass.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        self.forward_cached(x).0
    }

    /// Forward pass that also returns the cache for [`Layer::backward`].
    pub fn forward_cached(&self, x: &[f32]) -> (Vec<f32>, LayerCache) {
        match self.kind {
            LayerKind::Dense => {
                // audit:allow(panic-reach) input length is the layer's in_dim contract, checked by the model driver
                let mut z = self.w_eff.matvec(x).expect("dense input length");
                for (zi, &b) in z.iter_mut().zip(&self.bias) {
                    *zi += b;
                }
                let preact = z.clone();
                self.activation.apply_slice(&mut z);
                (
                    z,
                    LayerCache {
                        input: x.to_vec(),
                        preact,
                        patches: None,
                    },
                )
            }
            LayerKind::Conv {
                spec,
                in_shape,
                out_shape,
            } => {
                // audit:allow(panic-reach) conv input shape is fixed by the layer spec at construction
                let patches = im2col(x, in_shape, spec).expect("conv input shape");
                // audit:allow(panic-reach) im2col output dims match w_eff by construction
                let zmat = self.w_eff.matmul(&patches).expect("conv gemm");
                let hw = out_shape.height * out_shape.width;
                let mut z = zmat.into_vec();
                for c in 0..out_shape.channels {
                    let b = self.bias[c];
                    for v in &mut z[c * hw..(c + 1) * hw] {
                        *v += b;
                    }
                }
                let preact = z.clone();
                self.activation.apply_slice(&mut z);
                (
                    z,
                    LayerCache {
                        input: x.to_vec(),
                        preact,
                        patches: Some(patches),
                    },
                )
            }
        }
    }

    /// Backward pass: given `∂L/∂y`, returns `∂L/∂x` and parameter grads.
    pub fn backward(&self, cache: &LayerCache, d_out: &[f32]) -> (Vec<f32>, LayerGrads) {
        // δ = ∂L/∂z = ∂L/∂y ⊙ φ′(z).
        let delta: Vec<f32> = d_out
            .iter()
            .zip(&cache.preact)
            .map(|(&g, &z)| g * self.activation.derivative(z))
            .collect();
        match self.kind {
            LayerKind::Dense => {
                // dW = δ xᵀ, db = δ, dx = Wᵀ δ.
                let mut d_w = Matrix::zeros(self.raw.rows(), self.raw.cols());
                #[allow(clippy::needless_range_loop)] // indexes δ and dW rows together
                for r in 0..d_w.rows() {
                    let dr = delta[r];
                    if dr != 0.0 {
                        let row = d_w.row_mut(r);
                        for (c, g) in row.iter_mut().enumerate() {
                            *g = dr * cache.input[c];
                        }
                    }
                }
                // audit:allow(panic-reach) backward mirrors forward's validated shapes
                let d_x = self.w_eff.matvec_t(&delta).expect("dense backward");
                let (d_raw, d_alpha) = self.project_grads(d_w);
                (
                    d_x,
                    LayerGrads {
                        d_raw,
                        d_bias: delta,
                        d_alpha,
                    },
                )
            }
            LayerKind::Conv {
                spec,
                in_shape,
                out_shape,
            } => {
                let hw = out_shape.height * out_shape.width;
                // audit:allow(panic-reach) delta length is channels*hw from the forward pass
                let d_z = Matrix::from_vec(out_shape.channels, hw, delta).expect("dz shape");
                // audit:allow(panic-reach) forward_cached always populates patches for conv layers
                let patches = cache.patches.as_ref().expect("conv cache has patches");
                // dW = dZ · patchesᵀ  (computed without materialising ᵀ).
                // audit:allow(panic-reach) dZ and patches dims agree by construction
                let d_w = d_z.matmul(&patches.transpose()).expect("conv weight grad");
                let d_bias: Vec<f32> = (0..out_shape.channels)
                    .map(|c| d_z.row(c).iter().sum())
                    .collect();
                let d_patches = self
                    .w_eff
                    .transpose()
                    .matmul(&d_z)
                    // audit:allow(panic-reach) w_eff^T and dZ dims agree by construction
                    .expect("conv patch grad");
                // audit:allow(panic-reach) d_patches shape mirrors the validated im2col shape
                let d_x = col2im(&d_patches, in_shape, spec).expect("conv input grad");
                let (d_raw, d_alpha) = self.project_grads(d_w);
                (
                    d_x,
                    LayerGrads {
                        d_raw,
                        d_bias,
                        d_alpha,
                    },
                )
            }
        }
    }

    /// Routes a gradient w.r.t. effective weights through PSN when enabled.
    fn project_grads(&self, d_w: Matrix) -> (Matrix, f32) {
        match &self.psn {
            Some(psn) => psn.backward(&self.raw, &d_w),
            None => (d_w, 0.0),
        }
    }

    /// Mutable access to the raw parameter matrix (for the optimiser).
    pub fn raw_mut(&mut self) -> &mut [f32] {
        self.raw.as_mut_slice()
    }

    /// Mutable access to the bias (for the optimiser).
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }

    /// Mutable access to α when PSN is enabled (for the optimiser).
    pub fn alpha_mut(&mut self) -> Option<&mut f32> {
        self.psn.as_mut().map(|p| &mut p.alpha)
    }

    /// `true` when PSN is enabled.
    pub fn has_psn(&self) -> bool {
        self.psn.is_some()
    }

    /// Replaces this layer's parameters with externally-loaded values
    /// (e.g. from [`crate::io`]).  Shapes must match; PSN state is dropped
    /// because a loaded model is a frozen artifact.
    pub fn load_parameters(&mut self, weights: Matrix, bias: Vec<f32>) {
        assert_eq!(
            weights.shape(),
            self.raw.shape(),
            "loaded weight shape mismatch"
        );
        assert_eq!(bias.len(), self.bias.len(), "loaded bias length mismatch");
        self.raw = weights.clone();
        self.w_eff = weights;
        self.bias = bias;
        self.psn = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use errflow_tensor::init;
    use errflow_tensor::rng::StdRng;

    fn dense_layer(seed: u64) -> Layer {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = init::xavier_uniform(3, 4, &mut rng);
        Layer::dense(w, vec![0.1, -0.2, 0.3], Activation::Tanh)
    }

    #[test]
    fn dense_forward_shape() {
        let l = dense_layer(1);
        let y = l.forward(&[0.5, -0.5, 0.25, 1.0]);
        assert_eq!(y.len(), 3);
        assert_eq!(l.in_dim(), 4);
        assert_eq!(l.out_dim(), 3);
    }

    #[test]
    fn dense_forward_matches_manual() {
        let w = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let l = Layer::dense(w, vec![0.0, 0.0], Activation::Identity);
        let y = l.forward(&[1.0, 1.0]);
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn dense_backward_matches_finite_differences() {
        let l = dense_layer(2);
        let x = vec![0.3f32, -0.7, 0.2, 0.9];
        let (y, cache) = l.forward_cached(&x);
        // L = Σ y_i² / 2 → dL/dy = y.
        let (dx, grads) = l.backward(&cache, &y);

        let loss = |layer: &Layer, input: &[f32]| -> f32 {
            layer.forward(input).iter().map(|&v| v * v * 0.5).sum()
        };
        let h = 1e-3f32;
        // Input gradient.
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp[i] += h;
            let mut xm = x.clone();
            xm[i] -= h;
            let fd = (loss(&l, &xp) - loss(&l, &xm)) / (2.0 * h);
            assert!((fd - dx[i]).abs() < 1e-2, "dx[{i}]: fd={fd} an={}", dx[i]);
        }
        // Weight gradient (spot check).
        let mut lp = l.clone();
        lp.raw_mut()[0] += h;
        lp.refresh();
        let mut lm = l.clone();
        lm.raw_mut()[0] -= h;
        lm.refresh();
        let fd = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * h);
        assert!(
            (fd - grads.d_raw.as_slice()[0]).abs() < 1e-2,
            "dW[0]: fd={fd} an={}",
            grads.d_raw.as_slice()[0]
        );
        // Bias gradient (spot check).
        let mut lb = l.clone();
        lb.bias_mut()[1] += h;
        let mut lb2 = l.clone();
        lb2.bias_mut()[1] -= h;
        let fdb = (loss(&lb, &x) - loss(&lb2, &x)) / (2.0 * h);
        assert!((fdb - grads.d_bias[1]).abs() < 1e-2);
    }

    #[test]
    fn conv_forward_and_backward_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let in_shape = MapShape::new(2, 6, 6);
        let spec = ConvSpec::square(3, 1, 1);
        let w = init::he_uniform(4, 2 * 9, &mut rng);
        let l = Layer::conv(w, vec![0.0; 4], Activation::Relu, spec, in_shape);
        assert_eq!(l.in_dim(), 72);
        assert_eq!(l.out_dim(), 4 * 36);
        let x = init::uniform_vec(72, 1.0, &mut rng);
        let (y, cache) = l.forward_cached(&x);
        assert_eq!(y.len(), 144);
        let (dx, grads) = l.backward(&cache, &vec![1.0; 144]);
        assert_eq!(dx.len(), 72);
        assert_eq!(grads.d_raw.shape(), (4, 18));
        assert_eq!(grads.d_bias.len(), 4);
    }

    #[test]
    fn conv_backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(4);
        let in_shape = MapShape::new(1, 4, 4);
        let spec = ConvSpec::square(3, 1, 1);
        let w = init::he_uniform(2, 9, &mut rng);
        let l = Layer::conv(w, vec![0.05, -0.05], Activation::Tanh, spec, in_shape);
        let x = init::uniform_vec(16, 1.0, &mut rng);
        let (y, cache) = l.forward_cached(&x);
        let (dx, grads) = l.backward(&cache, &y);
        let loss = |layer: &Layer, input: &[f32]| -> f32 {
            layer.forward(input).iter().map(|&v| v * v * 0.5).sum()
        };
        let h = 1e-3f32;
        for i in (0..16).step_by(5) {
            let mut xp = x.clone();
            xp[i] += h;
            let mut xm = x.clone();
            xm[i] -= h;
            let fd = (loss(&l, &xp) - loss(&l, &xm)) / (2.0 * h);
            assert!((fd - dx[i]).abs() < 1e-2, "dx[{i}]: fd={fd} an={}", dx[i]);
        }
        let mut lp = l.clone();
        lp.raw_mut()[3] += h;
        lp.refresh();
        let mut lm = l.clone();
        lm.raw_mut()[3] -= h;
        lm.refresh();
        let fd = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * h);
        assert!((fd - grads.d_raw.as_slice()[3]).abs() < 1e-2);
    }

    #[test]
    fn psn_layer_alpha_controls_spectral_norm() {
        use errflow_tensor::spectral::svd_spectral_norm;
        let l = dense_layer(5).with_psn(9);
        let alpha = l.alpha().unwrap() as f64;
        let sigma = svd_spectral_norm(l.weights());
        assert!((sigma - alpha).abs() < 1e-2 * alpha.max(1.0));
    }

    #[test]
    fn with_weights_swaps_and_freezes() {
        let l = dense_layer(6).with_psn(10);
        let new_w = Matrix::filled(3, 4, 0.25);
        let frozen = l.with_weights(new_w.clone());
        assert_eq!(frozen.weights(), &new_w);
        assert!(!frozen.has_psn());
    }

    #[test]
    fn replication_factors() {
        let l = dense_layer(7);
        assert_eq!(l.replication(), 1.0);
        let mut rng = StdRng::seed_from_u64(8);
        let conv = Layer::conv(
            init::he_uniform(2, 9, &mut rng),
            vec![0.0; 2],
            Activation::Relu,
            ConvSpec::square(3, 1, 1),
            MapShape::new(1, 4, 4),
        );
        assert_eq!(conv.replication(), 3.0); // √9
        let strided = Layer::conv(
            init::he_uniform(2, 9, &mut rng),
            vec![0.0; 2],
            Activation::Relu,
            ConvSpec::square(3, 2, 1),
            MapShape::new(1, 8, 8),
        );
        assert_eq!(strided.replication(), 2.0); // √(⌈3/2⌉²) = 2
    }

    #[test]
    fn flops_counts() {
        let l = dense_layer(9);
        assert_eq!(l.flops(), 2.0 * 3.0 * 4.0);
    }

    #[test]
    fn grads_accumulate_and_scale() {
        let l = dense_layer(10);
        let x = vec![1.0f32, 0.0, 0.0, 0.0];
        let (y, cache) = l.forward_cached(&x);
        let (_, g1) = l.backward(&cache, &y);
        let mut acc = LayerGrads::zeros_like(&l);
        acc.accumulate(&g1);
        acc.accumulate(&g1);
        acc.scale(0.5);
        for (a, b) in acc.d_raw.as_slice().iter().zip(g1.d_raw.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
