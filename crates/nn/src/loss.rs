//! Loss functions with analytic gradients.
//!
//! Regression QoIs (reaction rates, dissipation rates) use [`Loss::Mse`];
//! the EuroSAT classifier uses [`Loss::SoftmaxCrossEntropy`] over one-hot
//! targets.

/// Supported training losses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loss {
    /// Mean squared error: `L = (1/n) Σ (y − t)²`.
    Mse,
    /// Softmax followed by cross-entropy against a one-hot target.
    SoftmaxCrossEntropy,
}

impl Loss {
    /// Loss value and gradient `∂L/∂y` for one sample.
    pub fn eval(&self, output: &[f32], target: &[f32]) -> (f32, Vec<f32>) {
        assert_eq!(output.len(), target.len(), "output/target length mismatch");
        match self {
            Loss::Mse => {
                let n = output.len() as f32;
                let mut grad = Vec::with_capacity(output.len());
                let mut loss = 0.0;
                for (&y, &t) in output.iter().zip(target) {
                    let d = y - t;
                    loss += d * d;
                    grad.push(2.0 * d / n);
                }
                (loss / n, grad)
            }
            Loss::SoftmaxCrossEntropy => {
                let p = softmax(output);
                let mut loss = 0.0;
                let mut grad = Vec::with_capacity(output.len());
                for (i, (&pi, &ti)) in p.iter().zip(target).enumerate() {
                    if ti > 0.0 {
                        loss -= ti * pi.max(1e-12).ln();
                    }
                    // d(CE∘softmax)/dz = p − t.
                    grad.push(p[i] - target[i]);
                }
                (loss, grad)
            }
        }
    }
}

/// Numerically stable softmax.
pub fn softmax(z: &[f32]) -> Vec<f32> {
    let m = z.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = z.iter().map(|&v| (v - m).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Index of the largest logit (classification decision).
pub fn argmax(v: &[f32]) -> usize {
    v.iter()
        .enumerate()
        // NaN logits compare as equal so a poisoned forward pass degrades to
        // an arbitrary class instead of panicking mid-inference.
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_at_target() {
        let (l, g) = Loss::Mse.eval(&[1.0, 2.0], &[1.0, 2.0]);
        assert_eq!(l, 0.0);
        assert!(g.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn mse_known_value() {
        let (l, g) = Loss::Mse.eval(&[3.0, 0.0], &[1.0, 0.0]);
        assert_eq!(l, 2.0); // (4 + 0)/2
        assert_eq!(g[0], 2.0); // 2·2/2
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let y = [0.3f32, -0.8, 1.2];
        let t = [0.0f32, 0.5, 1.0];
        let (_, g) = Loss::Mse.eval(&y, &t);
        let h = 1e-3f32;
        for i in 0..3 {
            let mut yp = y;
            yp[i] += h;
            let mut ym = y;
            ym[i] -= h;
            let fd = (Loss::Mse.eval(&yp, &t).0 - Loss::Mse.eval(&ym, &t).0) / (2.0 * h);
            assert!((fd - g[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let y = [0.5f32, -0.2, 0.9];
        let t = [0.0f32, 1.0, 0.0];
        let (_, g) = Loss::SoftmaxCrossEntropy.eval(&y, &t);
        let h = 1e-3f32;
        for i in 0..3 {
            let mut yp = y;
            yp[i] += h;
            let mut ym = y;
            ym[i] -= h;
            let fd = (Loss::SoftmaxCrossEntropy.eval(&yp, &t).0
                - Loss::SoftmaxCrossEntropy.eval(&ym, &t).0)
                / (2.0 * h);
            assert!((fd - g[i]).abs() < 1e-3, "i={i}: fd={fd} an={}", g[i]);
        }
    }

    #[test]
    fn cross_entropy_low_for_confident_correct() {
        let (l_good, _) = Loss::SoftmaxCrossEntropy.eval(&[10.0, 0.0], &[1.0, 0.0]);
        let (l_bad, _) = Loss::SoftmaxCrossEntropy.eval(&[0.0, 10.0], &[1.0, 0.0]);
        assert!(l_good < 0.01);
        assert!(l_bad > 5.0);
    }

    #[test]
    fn argmax_basic() {
        assert_eq!(argmax(&[0.1, 0.9, 0.3]), 1);
        assert_eq!(argmax(&[]), 0);
    }
}
