//! Parameterized spectral normalization (PSN) — Eq. (6) of the paper.
//!
//! Standard spectral normalization (Miyato et al., the paper's reference
//! \[19\]) divides a weight matrix by its spectral norm, pinning `σ_W = 1` and
//! limiting the network to Lipschitz-1 functions.  The paper's variant adds
//! a *learnable* scale `α` (and a shift `β` absorbed into the neuron bias):
//!
//! ```text
//! W_PSN = (W / σ_W) · α + β        with  σ(W_PSN) = α
//! ```
//!
//! so the layer's spectral norm is exactly the trainable parameter `α` —
//! known *before inference*, which is what makes the error bounds of Ineq.
//! (3) predictable — while the network keeps enough expressive power for
//! scientific targets with unknown Lipschitz constants.  The squared sum
//! `λ Σ_l α_l²` is added to the loss as a penalty.
//!
//! [`PsnState`] holds `α` and the warm-started power-iteration vectors
//! `(u, v)` used to track `σ_V` cheaply during training (one iteration per
//! step, exactly as in SN-GAN training).

use errflow_tensor::norms::l2;
use errflow_tensor::rng::StdRng;
use errflow_tensor::Matrix;

/// Per-layer PSN state: the learnable scale `α` and the power-iteration
/// vectors approximating the top singular pair of the *raw* matrix `V`.
#[derive(Debug, Clone)]
pub struct PsnState {
    /// Learnable spectral-norm target: after normalisation `σ(W) = α`.
    pub alpha: f32,
    /// Left singular-vector estimate (length = rows of `V`).
    u: Vec<f32>,
    /// Right singular-vector estimate (length = cols of `V`).
    v: Vec<f32>,
    /// Current σ_V estimate.
    sigma: f32,
}

impl PsnState {
    /// Initialises PSN for a matrix of the given shape, with `α` seeded to
    /// the matrix's current spectral norm so the reparameterisation starts
    /// as an identity transformation of the function being learned.
    pub fn new(raw: &Matrix, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
        let mut u: Vec<f32> = (0..raw.rows()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        normalize(&mut u);
        let mut v: Vec<f32> = (0..raw.cols()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        normalize(&mut v);
        let mut st = PsnState {
            alpha: 1.0,
            u,
            v,
            sigma: 1.0,
        };
        // Burn in the power iteration, then make α = σ_V (identity start).
        for _ in 0..30 {
            st.update_sigma(raw);
        }
        st.alpha = st.sigma;
        st
    }

    /// One warm-started power-iteration step on `V`, refreshing `σ_V`.
    ///
    /// Called once per optimiser step; because weights move slowly, a single
    /// iteration keeps `(u, v)` locked onto the top singular pair.
    pub fn update_sigma(&mut self, raw: &Matrix) {
        // v ← normalize(Vᵀ u); u ← normalize(V v); σ ← uᵀ V v.
        // audit:allow(panic-reach) u/v vectors are sized to `raw` at construction
        let mut vt = raw.matvec_t(&self.u).expect("psn shape");
        normalize(&mut vt);
        self.v = vt;
        // audit:allow(panic-reach) V v has the row dim u was sized for
        let mut ut = raw.matvec(&self.v).expect("psn shape");
        normalize(&mut ut);
        self.u = ut;
        // audit:allow(panic-reach) dot of same-length vectors sized at construction
        let wv = raw.matvec(&self.v).expect("psn shape");
        let sigma: f32 = self
            .u
            .iter()
            .zip(&wv)
            .map(|(&a, &b)| a * b)
            .sum::<f32>()
            .abs();
        self.sigma = sigma.max(1e-12);
    }

    /// Current σ_V estimate.
    pub fn sigma(&self) -> f32 {
        self.sigma
    }

    /// Materialises the effective weights `W = α · V / σ_V`.
    pub fn effective_weights(&self, raw: &Matrix) -> Matrix {
        raw.scale(self.alpha / self.sigma)
    }

    /// Backpropagates a gradient w.r.t. the *effective* weights into
    /// gradients w.r.t. the raw matrix `V` and the scale `α`.
    ///
    /// With `W = α V / σ` and `σ = uᵀ V v` (locally), the chain rule gives
    /// `∂L/∂V = (α/σ)(G − (⟨G, V/σ⟩)·u vᵀ)` and `∂L/∂α = ⟨G, V/σ⟩` — the
    /// SN-GAN gradient with the extra scale factored out.
    pub fn backward(&self, raw: &Matrix, grad_w: &Matrix) -> (Matrix, f32) {
        let scale = self.alpha / self.sigma;
        // ⟨G, V/σ⟩ = Σ G_ij V_ij / σ.
        let inner: f32 = grad_w
            .as_slice()
            .iter()
            .zip(raw.as_slice())
            .map(|(&g, &w)| g * w)
            .sum::<f32>()
            / self.sigma;
        let grad_alpha = inner;
        // G_V = scale · (G − inner · u vᵀ / α · α)... expanded: since
        // dW/dV = α/σ (I − (V/σ)(∂σ/∂V)) and ∂σ/∂V = u vᵀ,
        // dL/dV = α/σ · G − α/σ² · ⟨G, V⟩/σ ... — implemented directly:
        let mut grad_v = grad_w.scale(scale);
        let correction = scale * inner;
        for r in 0..grad_v.rows() {
            let ur = self.u[r];
            let row = grad_v.row_mut(r);
            for (c, g) in row.iter_mut().enumerate() {
                *g -= correction * ur * self.v[c];
            }
        }
        (grad_v, grad_alpha)
    }
}

fn normalize(v: &mut [f32]) {
    let n = l2(v);
    if n > 0.0 {
        let inv = (1.0 / n) as f32;
        for x in v.iter_mut() {
            *x *= inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use errflow_tensor::spectral::svd_spectral_norm;

    fn random_matrix(r: usize, c: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn sigma_converges_to_spectral_norm() {
        let raw = random_matrix(20, 15, 1);
        let st = PsnState::new(&raw, 7);
        let exact = svd_spectral_norm(&raw);
        assert!(
            ((st.sigma() as f64) - exact).abs() < 1e-3 * exact,
            "sigma={} exact={exact}",
            st.sigma()
        );
    }

    #[test]
    fn effective_weights_have_spectral_norm_alpha() {
        let raw = random_matrix(12, 12, 2);
        let mut st = PsnState::new(&raw, 3);
        st.alpha = 2.5;
        let w = st.effective_weights(&raw);
        let sigma_w = svd_spectral_norm(&w);
        assert!(
            (sigma_w - 2.5).abs() < 5e-3,
            "σ(W_PSN)={sigma_w}, want α=2.5"
        );
    }

    #[test]
    fn identity_start() {
        // α initialises to σ_V so W_PSN == V at the start of training.
        let raw = random_matrix(8, 8, 4);
        let st = PsnState::new(&raw, 5);
        let w = st.effective_weights(&raw);
        for (&a, &b) in raw.as_slice().iter().zip(w.as_slice()) {
            assert!((a - b).abs() < 1e-4, "a={a} b={b}");
        }
    }

    #[test]
    fn backward_matches_finite_differences() {
        // Check dL/dα and a few dL/dV entries against numeric gradients of
        // L = Σ (W_PSN)_ij · T_ij for a fixed random T.
        let raw = random_matrix(6, 5, 10);
        let t = random_matrix(6, 5, 11);
        let st = PsnState::new(&raw, 12);

        let loss = |m: &Matrix, alpha: f32, sigma_fn: &dyn Fn(&Matrix) -> f32| -> f32 {
            let sigma = sigma_fn(m);
            m.as_slice()
                .iter()
                .zip(t.as_slice())
                .map(|(&w, &tt)| (alpha * w / sigma) * tt)
                .sum()
        };
        let sigma_exact = |m: &Matrix| svd_spectral_norm(m) as f32;

        // grad wrt effective W is just T.
        let (gv, ga) = st.backward(&raw, &t);

        // Finite difference on alpha.
        let h = 1e-3f32;
        let l_plus = loss(&raw, st.alpha + h, &sigma_exact);
        let l_minus = loss(&raw, st.alpha - h, &sigma_exact);
        let fd_alpha = (l_plus - l_minus) / (2.0 * h);
        assert!(
            (fd_alpha - ga).abs() < 2e-2 * fd_alpha.abs().max(1.0),
            "fd={fd_alpha} analytic={ga}"
        );

        // Finite difference on a couple of V entries.
        for &(r, c) in &[(0usize, 0usize), (3, 2), (5, 4)] {
            let mut mp = raw.clone();
            mp.set(r, c, mp.get(r, c) + h);
            let mut mm = raw.clone();
            mm.set(r, c, mm.get(r, c) - h);
            let fd =
                (loss(&mp, st.alpha, &sigma_exact) - loss(&mm, st.alpha, &sigma_exact)) / (2.0 * h);
            let an = gv.get(r, c);
            assert!(
                (fd - an).abs() < 5e-2 * fd.abs().max(1.0),
                "({r},{c}): fd={fd} analytic={an}"
            );
        }
    }

    #[test]
    fn update_sigma_tracks_weight_changes() {
        let mut raw = random_matrix(10, 10, 20);
        let mut st = PsnState::new(&raw, 21);
        // Double the matrix: σ doubles; a few warm iterations must track it.
        raw = raw.scale(2.0);
        for _ in 0..5 {
            st.update_sigma(&raw);
        }
        let exact = svd_spectral_norm(&raw);
        assert!(((st.sigma() as f64) - exact).abs() < 1e-2 * exact);
    }
}
