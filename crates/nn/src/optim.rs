//! Optimisers: SGD with momentum / weight decay, and Adam.
//!
//! The paper trains the H2-combustion and EuroSAT models with standard SGD
//! and the Borghesi-flame model with Adam; both are provided.  An optimiser
//! is addressed per *parameter slot* (`param_id`): the training loop walks
//! each layer's raw weights, bias, and PSN α with stable ids so the
//! per-parameter state (momentum, moment estimates) persists across steps.

use std::collections::HashMap;

/// A stateful first-order optimiser over flat parameter slices.
pub trait Optimizer {
    /// Applies one update to the parameter slice `param` with gradient
    /// `grad`.  `param_id` keys the optimiser's internal state and must be
    /// stable across steps.
    fn step(&mut self, param_id: usize, param: &mut [f32], grad: &[f32]);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replaces the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum and decoupled weight
/// decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: HashMap<usize, Vec<f32>>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: HashMap::new(),
        }
    }

    /// Adds classical momentum.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Adds decoupled (AdamW-style) weight decay applied to the parameters
    /// directly — the "baseline w. weight decay" configuration of Figs. 3–4.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, param_id: usize, param: &mut [f32], grad: &[f32]) {
        assert_eq!(param.len(), grad.len(), "param/grad length mismatch");
        if self.momentum > 0.0 {
            let vel = self
                .velocity
                .entry(param_id)
                .or_insert_with(|| vec![0.0; param.len()]);
            assert_eq!(vel.len(), param.len());
            for ((p, &g), v) in param.iter_mut().zip(grad).zip(vel.iter_mut()) {
                *v = self.momentum * *v + g;
                *p -= self.lr * (*v + self.weight_decay * *p);
            }
        } else {
            for (p, &g) in param.iter_mut().zip(grad) {
                *p -= self.lr * (g + self.weight_decay * *p);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias-corrected moment estimates.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    state: HashMap<usize, AdamState>,
}

#[derive(Debug, Clone)]
struct AdamState {
    m: Vec<f32>,
    v: Vec<f32>,
    t: u32,
}

impl Adam {
    /// Adam with the standard hyperparameters (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            state: HashMap::new(),
        }
    }

    /// Adds decoupled weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, param_id: usize, param: &mut [f32], grad: &[f32]) {
        assert_eq!(param.len(), grad.len(), "param/grad length mismatch");
        let st = self.state.entry(param_id).or_insert_with(|| AdamState {
            m: vec![0.0; param.len()],
            v: vec![0.0; param.len()],
            t: 0,
        });
        st.t += 1;
        let bc1 = 1.0 - self.beta1.powi(st.t as i32);
        let bc2 = 1.0 - self.beta2.powi(st.t as i32);
        for i in 0..param.len() {
            st.m[i] = self.beta1 * st.m[i] + (1.0 - self.beta1) * grad[i];
            st.v[i] = self.beta2 * st.v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
            let m_hat = st.m[i] / bc1;
            let v_hat = st.v[i] / bc2;
            param[i] -=
                self.lr * (m_hat / (v_hat.sqrt() + self.eps) + self.weight_decay * param[i]);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(x) = (x-3)² with gradient 2(x-3).
    fn quadratic_grad(x: f32) -> f32 {
        2.0 * (x - 3.0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let mut x = [0.0f32];
        for _ in 0..200 {
            let g = [quadratic_grad(x[0])];
            opt.step(0, &mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-4, "x={}", x[0]);
    }

    #[test]
    fn sgd_momentum_converges_faster_than_plain() {
        let run = |mut opt: Sgd| -> usize {
            let mut x = [0.0f32];
            for i in 0..1000 {
                if (x[0] - 3.0).abs() < 1e-3 {
                    return i;
                }
                let g = [quadratic_grad(x[0])];
                opt.step(0, &mut x, &g);
            }
            1000
        };
        let plain = run(Sgd::new(0.01));
        let mom = run(Sgd::new(0.01).with_momentum(0.9));
        assert!(mom < plain, "momentum {mom} vs plain {plain}");
    }

    #[test]
    fn sgd_weight_decay_shrinks_stationary_point() {
        // With decay the fixed point shifts below 3.
        let mut opt = Sgd::new(0.1).with_weight_decay(0.5);
        let mut x = [0.0f32];
        for _ in 0..500 {
            let g = [quadratic_grad(x[0])];
            opt.step(0, &mut x, &g);
        }
        assert!(x[0] < 3.0 && x[0] > 1.0, "x={}", x[0]);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let mut x = [0.0f32];
        for _ in 0..500 {
            let g = [quadratic_grad(x[0])];
            opt.step(0, &mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-2, "x={}", x[0]);
    }

    #[test]
    fn adam_handles_multiple_params_independently() {
        let mut opt = Adam::new(0.05);
        let mut a = [0.0f32];
        let mut b = [10.0f32];
        for _ in 0..800 {
            let ga = [2.0 * (a[0] - 1.0)];
            opt.step(0, &mut a, &ga);
            let gb = [2.0 * (b[0] - 5.0)];
            opt.step(1, &mut b, &gb);
        }
        assert!((a[0] - 1.0).abs() < 0.05);
        assert!((b[0] - 5.0).abs() < 0.05);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut s = Sgd::new(0.3);
        assert_eq!(s.learning_rate(), 0.3);
        s.set_learning_rate(0.1);
        assert_eq!(s.learning_rate(), 0.1);
        let mut a = Adam::new(0.2);
        a.set_learning_rate(0.01);
        assert_eq!(a.learning_rate(), 0.01);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_grad_length_panics() {
        let mut opt = Sgd::new(0.1);
        let mut x = [0.0f32; 2];
        opt.step(0, &mut x, &[1.0]);
    }
}
