//! Training loop with the paper's three regularisation modes.
//!
//! Figs. 3–4 compare error bounds for networks trained three ways:
//! *parameterized spectral normalization* (the paper's method, with the
//! squared-sum spectral penalty `λ Σ α_l²` added to the loss), the plain
//! *baseline*, and *baseline w. weight decay*.  [`Regularizer`] selects the
//! mode; [`train_mlp`] / [`train_convnet`] run mini-batch training with
//! manual backprop and one of the [`crate::optim`] optimisers.

use crate::layer::{Layer, LayerGrads};
use crate::loss::Loss;
use crate::model::{ConvNet, Mlp};
use crate::optim::{Adam, Optimizer, Sgd};
use errflow_tensor::rng::SliceRandom;
use errflow_tensor::rng::StdRng;

/// An in-memory supervised dataset.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Input vectors (normalized to `[-1, 1]` per the paper's preprocessing).
    pub inputs: Vec<Vec<f32>>,
    /// Target vectors (one-hot for classification).
    pub targets: Vec<Vec<f32>>,
}

impl Dataset {
    /// Creates a dataset; inputs and targets must be the same length.
    pub fn new(inputs: Vec<Vec<f32>>, targets: Vec<Vec<f32>>) -> Self {
        assert_eq!(inputs.len(), targets.len(), "inputs/targets must pair up");
        Dataset { inputs, targets }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// `true` when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Splits off the last `fraction` of samples as a held-out set.
    pub fn split(mut self, fraction: f64) -> (Dataset, Dataset) {
        let keep = ((self.len() as f64) * (1.0 - fraction)).round() as usize;
        let test_in = self.inputs.split_off(keep);
        let test_t = self.targets.split_off(keep);
        (self, Dataset::new(test_in, test_t))
    }
}

/// Training-time regularisation mode (the paper's Figs. 3–4 comparison).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Regularizer {
    /// Plain training — the "baseline" curves.
    None,
    /// Decoupled weight decay with the given coefficient — the
    /// "baseline w. weight decay" curves.
    WeightDecay(f32),
    /// PSN spectral penalty `λ Σ_l α_l²` — requires a PSN-enabled model.
    SpectralPenalty(f32),
}

/// Which optimiser to construct.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// SGD with the given momentum (the paper's H2/EuroSAT setting).
    Sgd {
        /// Classical momentum coefficient (0 disables momentum).
        momentum: f32,
    },
    /// Adam (the paper's Borghesi-flame setting).
    Adam,
}

/// Hyper-parameters for a training run.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of passes over the dataset.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Optimiser selection.
    pub optimizer: OptimizerKind,
    /// Loss function.
    pub loss: Loss,
    /// Regularisation mode.
    pub regularizer: Regularizer,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            batch_size: 16,
            lr: 0.05,
            optimizer: OptimizerKind::Sgd { momentum: 0.9 },
            loss: Loss::Mse,
            regularizer: Regularizer::None,
            seed: 0,
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub loss_history: Vec<f64>,
}

impl TrainReport {
    /// Loss of the final epoch.
    pub fn final_loss(&self) -> f64 {
        *self.loss_history.last().unwrap_or(&f64::NAN)
    }
}

fn build_optimizer(cfg: &TrainConfig) -> Box<dyn Optimizer> {
    let wd = match cfg.regularizer {
        Regularizer::WeightDecay(wd) => wd,
        _ => 0.0,
    };
    match cfg.optimizer {
        OptimizerKind::Sgd { momentum } => Box::new(
            Sgd::new(cfg.lr)
                .with_momentum(momentum)
                .with_weight_decay(wd),
        ),
        OptimizerKind::Adam => Box::new(Adam::new(cfg.lr).with_weight_decay(wd)),
    }
}

/// Applies one optimiser step to a set of layers given accumulated grads,
/// injecting the spectral penalty's `2λα` term, then refreshes the layers'
/// effective weights.
fn apply_step(
    layers: &mut [&mut Layer],
    grads: &[LayerGrads],
    opt: &mut dyn Optimizer,
    spectral_lambda: f32,
) {
    assert_eq!(layers.len(), grads.len());
    for (i, (layer, grad)) in layers.iter_mut().zip(grads).enumerate() {
        opt.step(3 * i, layer.raw_mut(), grad.d_raw.as_slice());
        opt.step(3 * i + 1, layer.bias_mut(), &grad.d_bias);
        if let Some(alpha) = layer.alpha_mut() {
            let d_alpha = grad.d_alpha + 2.0 * spectral_lambda * *alpha;
            let mut slot = [*alpha];
            opt.step(3 * i + 2, &mut slot, &[d_alpha]);
            *alpha = slot[0];
        }
        layer.refresh();
    }
}

fn shuffled_indices(n: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    idx
}

/// Trains an [`Mlp`] in place; returns the per-epoch loss history.
pub fn train_mlp(model: &mut Mlp, data: &Dataset, cfg: &TrainConfig) -> TrainReport {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    let mut opt = build_optimizer(cfg);
    let lambda = match cfg.regularizer {
        Regularizer::SpectralPenalty(l) => l,
        _ => 0.0,
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut history = Vec::with_capacity(cfg.epochs);
    for _epoch in 0..cfg.epochs {
        let order = shuffled_indices(data.len(), &mut rng);
        let mut epoch_loss = 0.0f64;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let mut acc: Vec<LayerGrads> =
                model.layers().iter().map(LayerGrads::zeros_like).collect();
            for &s in chunk {
                let (y, caches) = model.forward_cached(&data.inputs[s]);
                let (loss, d_y) = cfg.loss.eval(&y, &data.targets[s]);
                epoch_loss += loss as f64;
                let grads = model.backward(&caches, &d_y);
                for (a, g) in acc.iter_mut().zip(&grads) {
                    a.accumulate(g);
                }
            }
            let scale = 1.0 / chunk.len() as f32;
            for a in &mut acc {
                a.scale(scale);
            }
            let mut layers: Vec<&mut Layer> = model.layers_mut().iter_mut().collect();
            apply_step(&mut layers, &acc, opt.as_mut(), lambda);
        }
        history.push(epoch_loss / data.len() as f64);
    }
    TrainReport {
        loss_history: history,
    }
}

/// Trains a [`ConvNet`] in place; returns the per-epoch loss history.
pub fn train_convnet(model: &mut ConvNet, data: &Dataset, cfg: &TrainConfig) -> TrainReport {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    let mut opt = build_optimizer(cfg);
    let lambda = match cfg.regularizer {
        Regularizer::SpectralPenalty(l) => l,
        _ => 0.0,
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut history = Vec::with_capacity(cfg.epochs);
    for _epoch in 0..cfg.epochs {
        let order = shuffled_indices(data.len(), &mut rng);
        let mut epoch_loss = 0.0f64;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let mut acc: Vec<LayerGrads> = model
                .layers()
                .iter()
                .map(|l| LayerGrads::zeros_like(l))
                .collect();
            for &s in chunk {
                let (y, cache) = model.forward_cached(&data.inputs[s]);
                let (loss, d_y) = cfg.loss.eval(&y, &data.targets[s]);
                epoch_loss += loss as f64;
                let grads = model.backward(&cache, &d_y);
                for (a, g) in acc.iter_mut().zip(&grads) {
                    a.accumulate(g);
                }
            }
            let scale = 1.0 / chunk.len() as f32;
            for a in &mut acc {
                a.scale(scale);
            }
            let mut layers = model.layers_mut();
            apply_step(&mut layers, &acc, opt.as_mut(), lambda);
        }
        history.push(epoch_loss / data.len() as f64);
    }
    TrainReport {
        loss_history: history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::model::Model;
    use errflow_tensor::conv::MapShape;

    /// Tiny regression problem: learn y = [x0 + x1, x0 − x1].
    fn linear_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut inputs = Vec::with_capacity(n);
        let mut targets = Vec::with_capacity(n);
        for _ in 0..n {
            let a: f32 = rng.gen_range(-1.0..1.0);
            let b: f32 = rng.gen_range(-1.0..1.0);
            inputs.push(vec![a, b]);
            targets.push(vec![a + b, a - b]);
        }
        Dataset::new(inputs, targets)
    }

    #[test]
    fn mlp_learns_linear_map() {
        let data = linear_dataset(256, 1);
        let mut model = Mlp::new(&[2, 16, 2], Activation::Tanh, Activation::Identity, 2, None);
        let cfg = TrainConfig {
            epochs: 60,
            lr: 0.05,
            ..Default::default()
        };
        let report = train_mlp(&mut model, &data, &cfg);
        assert!(
            report.final_loss() < 1e-3,
            "final loss = {}",
            report.final_loss()
        );
        assert!(report.final_loss() < report.loss_history[0]);
    }

    #[test]
    fn psn_mlp_learns_and_alpha_tracks_sigma() {
        use errflow_tensor::spectral::svd_spectral_norm;
        let data = linear_dataset(256, 3);
        let mut model = Mlp::new(
            &[2, 16, 2],
            Activation::Tanh,
            Activation::Identity,
            4,
            Some(500),
        );
        let cfg = TrainConfig {
            epochs: 60,
            lr: 0.05,
            regularizer: Regularizer::SpectralPenalty(1e-4),
            ..Default::default()
        };
        let report = train_mlp(&mut model, &data, &cfg);
        assert!(report.final_loss() < 5e-3, "loss={}", report.final_loss());
        // After training, each layer's spectral norm equals its α.
        for l in model.layers() {
            let alpha = l.alpha().unwrap() as f64;
            let sigma = svd_spectral_norm(l.weights());
            assert!(
                (sigma - alpha).abs() < 2e-2 * alpha.max(1.0),
                "σ={sigma} α={alpha}"
            );
        }
    }

    #[test]
    fn spectral_penalty_shrinks_alphas() {
        let data = linear_dataset(128, 5);
        let train_with = |lambda: f32| -> f64 {
            let mut model = Mlp::new(
                &[2, 16, 2],
                Activation::Tanh,
                Activation::Identity,
                6,
                Some(700),
            );
            let cfg = TrainConfig {
                epochs: 40,
                regularizer: Regularizer::SpectralPenalty(lambda),
                ..Default::default()
            };
            train_mlp(&mut model, &data, &cfg);
            model
                .layers()
                .iter()
                .map(|l| l.alpha().unwrap() as f64)
                .product()
        };
        let loose = train_with(0.0);
        let tight = train_with(1e-2);
        assert!(
            tight < loose,
            "penalty should shrink Πα: λ=0 → {loose}, λ=1e-2 → {tight}"
        );
    }

    #[test]
    fn adam_trains_mlp() {
        let data = linear_dataset(256, 7);
        let mut model = Mlp::new(&[2, 16, 2], Activation::Relu, Activation::Identity, 8, None);
        let cfg = TrainConfig {
            epochs: 40,
            lr: 0.01,
            optimizer: OptimizerKind::Adam,
            ..Default::default()
        };
        let report = train_mlp(&mut model, &data, &cfg);
        assert!(report.final_loss() < 1e-2, "loss={}", report.final_loss());
    }

    #[test]
    fn convnet_learns_simple_classification() {
        // Two classes: bright-top vs bright-bottom images.
        let mut rng = StdRng::seed_from_u64(9);
        let shape = MapShape::new(1, 6, 6);
        let mut inputs = Vec::new();
        let mut targets = Vec::new();
        for _ in 0..64 {
            let top: bool = rng.gen_bool(0.5);
            let mut img = vec![0.0f32; 36];
            for y in 0..6 {
                for x in 0..6 {
                    let base = if (y < 3) == top { 0.8 } else { -0.8 };
                    img[y * 6 + x] = base + rng.gen_range(-0.1f32..0.1);
                }
            }
            inputs.push(img);
            targets.push(if top { vec![1.0, 0.0] } else { vec![0.0, 1.0] });
        }
        let data = Dataset::new(inputs, targets);
        let mut model = ConvNet::new(shape, 4, 1, 2, Activation::Relu, 10, None);
        let cfg = TrainConfig {
            epochs: 20,
            batch_size: 8,
            lr: 0.05,
            loss: Loss::SoftmaxCrossEntropy,
            ..Default::default()
        };
        let report = train_convnet(&mut model, &data, &cfg);
        assert!(
            report.final_loss() < 0.2,
            "final CE loss = {}",
            report.final_loss()
        );
        // Check accuracy on the training set.
        let correct = data
            .inputs
            .iter()
            .zip(&data.targets)
            .filter(|(x, t)| {
                let y = model.forward(x);
                crate::loss::argmax(&y) == crate::loss::argmax(t)
            })
            .count();
        assert!(correct >= 60, "accuracy {correct}/64");
    }

    #[test]
    fn dataset_split() {
        let data = linear_dataset(100, 11);
        let (train, test) = data.split(0.2);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let mut model = Mlp::new(&[2, 4, 2], Activation::Tanh, Activation::Identity, 1, None);
        train_mlp(&mut model, &Dataset::default(), &TrainConfig::default());
    }
}
