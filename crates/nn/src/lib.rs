//! # errflow-nn
//!
//! Neural-network substrate: the models the paper evaluates, trained from
//! scratch with manual backpropagation.
//!
//! * [`activation`] — Tanh / ReLU / LeakyReLU / PReLU / GeLU with the
//!   Lipschitz constants `C = sup φ′` the error theory needs (§III-A).
//! * [`psn`] — **parameterized spectral normalization** (Eq. 6): the
//!   reparameterisation `W = α·V/σ_V` that pins each layer's spectral norm
//!   to the learnable `α`, plus the squared-sum spectral penalty.
//! * [`layer`] — dense and convolutional layers (conv lowered to GEMM via
//!   im2col) with cached forward / backward passes.
//! * [`model`] — [`Mlp`] and [`ConvNet`] (compact ResNet) implementing the
//!   [`Model`] trait, which exposes the *block view* the error-flow core
//!   consumes: per-layer weight matrices, activations, dimensions, and
//!   shortcut structure matching the paper's Eq. (1).
//! * [`optim`] — SGD (with momentum/weight decay) and Adam.
//! * [`loss`] — MSE and softmax cross-entropy with analytic gradients.
//! * [`train`] — the training loop with the three regularisation modes the
//!   paper compares: plain, weight decay, and PSN.

pub mod activation;
pub mod io;
pub mod layer;
pub mod loss;
pub mod model;
pub mod optim;
pub mod psn;
pub mod train;

pub use activation::Activation;
pub use layer::{Layer, LayerKind};
pub use model::{BlockView, ConvNet, LayerView, Mlp, Model, PackedWeights, ShortcutView};
pub use optim::{Adam, Optimizer, Sgd};
pub use train::{Dataset, Regularizer, TrainConfig, TrainReport};
