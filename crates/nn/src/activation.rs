//! Activation functions and their derivative bounds.
//!
//! The error theory (§III-A) requires every activation to have a globally
//! bounded first derivative `C = sup_z φ′(z)`; the bound then multiplies the
//! per-layer error amplification.  For Tanh, ReLU and LeakyReLU (slope ≤ 1)
//! the paper notes `C = 1` and drops the constant; GeLU's derivative peaks
//! slightly above 1, which [`Activation::lipschitz`] reports exactly so the
//! bound stays sound for GeLU networks too.

/// Supported nonlinearities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Activation {
    /// Identity (used for output layers of regression heads).
    Identity,
    /// Hyperbolic tangent — the H2-combustion MLP's activation.
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU with the given negative-side slope (must be in `[0, 1]`
    /// for `C = 1`; larger slopes are still handled, with `C = slope`).
    LeakyRelu(f32),
    /// Parametric ReLU: like LeakyReLU but the slope is a learnable
    /// parameter owned by the layer.  The value here is the current slope.
    PRelu(f32),
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
}

impl Activation {
    /// Applies the activation.
    #[inline]
    pub fn apply(&self, z: f32) -> f32 {
        match self {
            Activation::Identity => z,
            Activation::Tanh => z.tanh(),
            Activation::Relu => z.max(0.0),
            Activation::LeakyRelu(a) | Activation::PRelu(a) => {
                if z >= 0.0 {
                    z
                } else {
                    a * z
                }
            }
            Activation::Gelu => {
                // tanh approximation: 0.5 z (1 + tanh(√(2/π)(z + 0.044715 z³)))
                let c = 0.797_884_6_f32; // √(2/π)
                0.5 * z * (1.0 + (c * (z + 0.044715 * z * z * z)).tanh())
            }
        }
    }

    /// First derivative `φ′(z)` (sub-gradient at kinks).
    #[inline]
    pub fn derivative(&self, z: f32) -> f32 {
        match self {
            Activation::Identity => 1.0,
            Activation::Tanh => {
                let t = z.tanh();
                1.0 - t * t
            }
            Activation::Relu => {
                if z > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu(a) | Activation::PRelu(a) => {
                if z > 0.0 {
                    1.0
                } else {
                    *a
                }
            }
            Activation::Gelu => {
                let c = 0.797_884_6_f32;
                let inner = c * (z + 0.044715 * z * z * z);
                let t = inner.tanh();
                let sech2 = 1.0 - t * t;
                0.5 * (1.0 + t) + 0.5 * z * sech2 * c * (1.0 + 3.0 * 0.044715 * z * z)
            }
        }
    }

    /// Global derivative bound `C = sup_z φ′(z)` — the constant of §III-A.
    pub fn lipschitz(&self) -> f64 {
        match self {
            Activation::Identity | Activation::Tanh | Activation::Relu => 1.0,
            Activation::LeakyRelu(a) | Activation::PRelu(a) => (*a as f64).abs().max(1.0),
            // max of d/dz of the tanh-approximated GeLU (≈1.12899, attained
            // near z ≈ 1.0; slightly above the exact GeLU's 1.0830).
            Activation::Gelu => 1.1290,
        }
    }

    /// Applies the activation to a whole slice, in place.
    pub fn apply_slice(&self, z: &mut [f32]) {
        for v in z {
            *v = self.apply(*v);
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Activation::Identity => "identity",
            Activation::Tanh => "tanh",
            Activation::Relu => "relu",
            Activation::LeakyRelu(_) => "leaky_relu",
            Activation::PRelu(_) => "prelu",
            Activation::Gelu => "gelu",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tanh_values() {
        assert_eq!(Activation::Tanh.apply(0.0), 0.0);
        assert!((Activation::Tanh.apply(100.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn relu_values_and_derivative() {
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
        assert_eq!(Activation::Relu.derivative(3.0), 1.0);
        assert_eq!(Activation::Relu.derivative(-3.0), 0.0);
    }

    #[test]
    fn leaky_relu_slope() {
        let a = Activation::LeakyRelu(0.1);
        assert_eq!(a.apply(-10.0), -1.0);
        assert_eq!(a.derivative(-1.0), 0.1);
    }

    #[test]
    fn prelu_behaves_like_leaky() {
        let p = Activation::PRelu(0.25);
        assert_eq!(p.apply(-4.0), -1.0);
        assert_eq!(p.apply(4.0), 4.0);
    }

    #[test]
    fn gelu_known_points() {
        let g = Activation::Gelu;
        assert!((g.apply(0.0)).abs() < 1e-7);
        // GeLU(x) → x for large x, → 0 for very negative x.
        assert!((g.apply(10.0) - 10.0).abs() < 1e-3);
        assert!(g.apply(-10.0).abs() < 1e-3);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let acts = [
            Activation::Tanh,
            Activation::LeakyRelu(0.2),
            Activation::Gelu,
        ];
        let h = 1e-3f32;
        for act in acts {
            for &z in &[-2.0f32, -0.5, 0.3, 1.0, 2.5] {
                let fd = (act.apply(z + h) - act.apply(z - h)) / (2.0 * h);
                let an = act.derivative(z);
                assert!(
                    (fd - an).abs() < 1e-2,
                    "{}: z={z} fd={fd} analytic={an}",
                    act.label()
                );
            }
        }
    }

    #[test]
    fn lipschitz_bounds_observed_derivatives() {
        // C must dominate φ′ everywhere we sample — the soundness condition
        // the error theory rests on.
        for act in [
            Activation::Identity,
            Activation::Tanh,
            Activation::Relu,
            Activation::LeakyRelu(0.3),
            Activation::PRelu(0.5),
            Activation::Gelu,
        ] {
            let c = act.lipschitz();
            let mut z = -8.0f32;
            while z < 8.0 {
                assert!(
                    (act.derivative(z) as f64) <= c + 1e-6,
                    "{} violates C at z={z}",
                    act.label()
                );
                z += 0.01;
            }
        }
    }

    #[test]
    fn tanh_relu_leaky_have_unit_lipschitz() {
        // The paper: "For common activations including Tanh, ReLU and
        // LeakyReLU ... we have C = 1."
        assert_eq!(Activation::Tanh.lipschitz(), 1.0);
        assert_eq!(Activation::Relu.lipschitz(), 1.0);
        assert_eq!(Activation::LeakyRelu(0.1).lipschitz(), 1.0);
    }

    #[test]
    fn apply_slice_matches_scalar() {
        let mut v = vec![-1.0f32, 0.0, 2.0];
        Activation::Relu.apply_slice(&mut v);
        assert_eq!(v, vec![0.0, 0.0, 2.0]);
    }
}
