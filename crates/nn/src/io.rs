//! Model serialization: save trained weights to a compact binary format
//! and reload them later (train once, benchmark many times).
//!
//! Saved models are *frozen artifacts*: effective weights are stored (PSN
//! already folded in) and PSN training state is not preserved — exactly
//! like exporting a model for deployment.
//!
//! Format (little-endian): `b"EFNN"`, version `u8`, model tag `u8`
//! (0 = MLP, 1 = ConvNet), architecture header, then per-layer
//! `(rows, cols, weights…, bias…)`.

use crate::activation::Activation;
use crate::layer::Layer;
use crate::model::{ConvNet, Mlp, Model};
use errflow_tensor::conv::MapShape;
use errflow_tensor::Matrix;
use std::fmt;

const MAGIC: &[u8; 4] = b"EFNN";
const VERSION: u8 = 1;

/// Errors raised when loading a serialized model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelIoError {
    /// The buffer is not an errflow model file.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// The buffer ended before the declared content.
    Truncated,
    /// Structural inconsistency (shapes, tags).
    Malformed(String),
}

impl fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelIoError::BadMagic => write!(f, "not an errflow model file"),
            ModelIoError::BadVersion(v) => write!(f, "unsupported model format version {v}"),
            ModelIoError::Truncated => write!(f, "model file truncated"),
            ModelIoError::Malformed(m) => write!(f, "malformed model file: {m}"),
        }
    }
}

impl std::error::Error for ModelIoError {}

fn write_activation(out: &mut Vec<u8>, act: Activation) {
    let (tag, param) = match act {
        Activation::Identity => (0u8, 0.0f32),
        Activation::Tanh => (1, 0.0),
        Activation::Relu => (2, 0.0),
        Activation::LeakyRelu(a) => (3, a),
        Activation::PRelu(a) => (4, a),
        Activation::Gelu => (5, 0.0),
    };
    out.push(tag);
    out.extend_from_slice(&param.to_le_bytes());
}

fn read_activation(buf: &[u8], pos: &mut usize) -> Result<Activation, ModelIoError> {
    let tag = *buf.get(*pos).ok_or(ModelIoError::Truncated)?;
    *pos += 1;
    let param = read_f32(buf, pos)?;
    match tag {
        0 => Ok(Activation::Identity),
        1 => Ok(Activation::Tanh),
        2 => Ok(Activation::Relu),
        3 => Ok(Activation::LeakyRelu(param)),
        4 => Ok(Activation::PRelu(param)),
        5 => Ok(Activation::Gelu),
        t => Err(ModelIoError::Malformed(format!("activation tag {t}"))),
    }
}

fn write_layer_params(out: &mut Vec<u8>, layer: &Layer) {
    let w = layer.weights();
    out.extend_from_slice(&(w.rows() as u32).to_le_bytes());
    out.extend_from_slice(&(w.cols() as u32).to_le_bytes());
    for &v in w.as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for &v in layer.bias() {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn read_layer_params(buf: &[u8], pos: &mut usize) -> Result<(Matrix, Vec<f32>), ModelIoError> {
    let rows = read_u32(buf, pos)? as usize;
    let cols = read_u32(buf, pos)? as usize;
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        data.push(read_f32(buf, pos)?);
    }
    let mut bias = Vec::with_capacity(rows);
    for _ in 0..rows {
        bias.push(read_f32(buf, pos)?);
    }
    let w =
        Matrix::from_vec(rows, cols, data).map_err(|e| ModelIoError::Malformed(e.to_string()))?;
    Ok((w, bias))
}

/// Serializes an [`Mlp`] (effective weights; PSN folded in).
pub fn save_mlp(model: &Mlp) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.push(0); // MLP tag
    out.extend_from_slice(&(model.layers().len() as u32).to_le_bytes());
    for layer in model.layers() {
        write_activation(&mut out, layer.activation());
        write_layer_params(&mut out, layer);
    }
    out
}

/// Loads an [`Mlp`] saved by [`save_mlp`].
pub fn load_mlp(buf: &[u8]) -> Result<Mlp, ModelIoError> {
    let mut pos = check_header(buf, 0)?;
    let n_layers = read_u32(buf, &mut pos)? as usize;
    if n_layers == 0 {
        return Err(ModelIoError::Malformed("MLP with zero layers".into()));
    }
    let mut layers = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        let act = read_activation(buf, &mut pos)?;
        let (w, b) = read_layer_params(buf, &mut pos)?;
        layers.push(Layer::dense(w, b, act));
    }
    Ok(Mlp::from_layers(layers))
}

/// Serializes a [`ConvNet`].
pub fn save_convnet(model: &ConvNet) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.push(1); // ConvNet tag
    let shape = model.input_shape();
    out.extend_from_slice(&(shape.channels as u32).to_le_bytes());
    out.extend_from_slice(&(shape.height as u32).to_le_bytes());
    out.extend_from_slice(&(shape.width as u32).to_le_bytes());
    out.extend_from_slice(&(model.feature_channels() as u32).to_le_bytes());
    out.extend_from_slice(&(model.num_blocks() as u32).to_le_bytes());
    out.extend_from_slice(&(model.output_dim() as u32).to_le_bytes());
    write_activation(&mut out, model.activation());
    for layer in model.layers() {
        write_layer_params(&mut out, layer);
    }
    out
}

/// Loads a [`ConvNet`] saved by [`save_convnet`].
pub fn load_convnet(buf: &[u8]) -> Result<ConvNet, ModelIoError> {
    let mut pos = check_header(buf, 1)?;
    let channels = read_u32(buf, &mut pos)? as usize;
    let height = read_u32(buf, &mut pos)? as usize;
    let width = read_u32(buf, &mut pos)? as usize;
    let stem_ch = read_u32(buf, &mut pos)? as usize;
    let n_blocks = read_u32(buf, &mut pos)? as usize;
    let n_classes = read_u32(buf, &mut pos)? as usize;
    let act = read_activation(buf, &mut pos)?;
    let mut model = ConvNet::new(
        MapShape::new(channels, height, width),
        stem_ch,
        n_blocks,
        n_classes,
        act,
        0,
        None,
    );
    for layer in model.layers_mut() {
        let (w, b) = read_layer_params(buf, &mut pos)?;
        if w.shape() != layer.weights().shape() {
            return Err(ModelIoError::Malformed(format!(
                "layer shape {:?} does not match architecture {:?}",
                w.shape(),
                layer.weights().shape()
            )));
        }
        layer.load_parameters(w, b);
    }
    Ok(model)
}

fn check_header(buf: &[u8], expected_tag: u8) -> Result<usize, ModelIoError> {
    if buf.len() < 6 {
        return Err(ModelIoError::Truncated);
    }
    if &buf[0..4] != MAGIC {
        return Err(ModelIoError::BadMagic);
    }
    if buf[4] != VERSION {
        return Err(ModelIoError::BadVersion(buf[4]));
    }
    if buf[5] != expected_tag {
        return Err(ModelIoError::Malformed(format!(
            "model tag {} (expected {expected_tag})",
            buf[5]
        )));
    }
    Ok(6)
}

fn read_u32(buf: &[u8], pos: &mut usize) -> Result<u32, ModelIoError> {
    let bytes: [u8; 4] = buf
        .get(*pos..*pos + 4)
        .and_then(|s| s.try_into().ok())
        .ok_or(ModelIoError::Truncated)?;
    *pos += 4;
    Ok(u32::from_le_bytes(bytes))
}

fn read_f32(buf: &[u8], pos: &mut usize) -> Result<f32, ModelIoError> {
    Ok(f32::from_bits(read_u32(buf, pos)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use errflow_tensor::rng::StdRng;

    fn mlp() -> Mlp {
        Mlp::new(
            &[5, 12, 3],
            Activation::Tanh,
            Activation::Identity,
            9,
            Some(44),
        )
    }

    #[test]
    fn mlp_roundtrip_preserves_outputs() {
        let model = mlp();
        let loaded = load_mlp(&save_mlp(&model)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let x: Vec<f32> = (0..5).map(|_| rng.gen_range(-1.0..1.0)).collect();
            assert_eq!(model.forward(&x), loaded.forward(&x));
        }
    }

    #[test]
    fn convnet_roundtrip_preserves_outputs() {
        let model = ConvNet::new(
            MapShape::new(2, 5, 5),
            4,
            2,
            3,
            Activation::Relu,
            3,
            Some(55),
        );
        let loaded = load_convnet(&save_convnet(&model)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let x: Vec<f32> = (0..50).map(|_| rng.gen_range(-1.0..1.0)).collect();
        assert_eq!(model.forward(&x), loaded.forward(&x));
        assert_eq!(loaded.num_blocks(), 2);
    }

    #[test]
    fn loaded_models_are_frozen() {
        let loaded = load_mlp(&save_mlp(&mlp())).unwrap();
        assert!(loaded.layers().iter().all(|l| !l.has_psn()));
    }

    #[test]
    fn activation_variants_roundtrip() {
        for act in [
            Activation::Identity,
            Activation::Tanh,
            Activation::Relu,
            Activation::LeakyRelu(0.13),
            Activation::PRelu(0.27),
            Activation::Gelu,
        ] {
            let m = Mlp::new(&[3, 4, 2], act, Activation::Identity, 1, None);
            let loaded = load_mlp(&save_mlp(&m)).unwrap();
            assert_eq!(loaded.layers()[0].activation(), act);
        }
    }

    #[test]
    fn corrupt_buffers_rejected() {
        assert_eq!(load_mlp(&[]).unwrap_err(), ModelIoError::Truncated);
        assert_eq!(
            load_mlp(b"NOPE\x01\x00rest").unwrap_err(),
            ModelIoError::BadMagic
        );
        let mut bytes = save_mlp(&mlp());
        bytes[4] = 99;
        assert_eq!(load_mlp(&bytes).unwrap_err(), ModelIoError::BadVersion(99));
        let bytes = save_mlp(&mlp());
        assert!(load_mlp(&bytes[..bytes.len() - 3]).is_err());
        // MLP bytes loaded as a ConvNet must fail on the tag.
        assert!(load_convnet(&bytes).is_err());
    }

    #[test]
    fn error_display() {
        assert!(ModelIoError::BadMagic
            .to_string()
            .contains("not an errflow"));
        assert!(ModelIoError::Malformed("x".into())
            .to_string()
            .contains("x"));
    }
}
