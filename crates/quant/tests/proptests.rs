//! Property-based tests of the quantization contracts, run as plain
//! `#[test]` loops over the workspace's seeded PRNG (64+ random cases per
//! property — no external test-framework dependency).

use errflow_quant::affine::quantize_int8;
use errflow_quant::fp::{round_mantissa, round_to_bf16, round_to_fp16, round_to_tf32};
use errflow_quant::QuantFormat;
use errflow_tensor::rng::StdRng;
use errflow_tensor::Matrix;

const CASES: usize = 64;

#[test]
fn float_rounding_is_idempotent() {
    let mut rng = StdRng::seed_from_u64(0xB0);
    for _ in 0..CASES {
        let x = rng.gen_range(-1e4f32..1e4);
        assert_eq!(round_to_bf16(round_to_bf16(x)), round_to_bf16(x));
        assert_eq!(round_to_tf32(round_to_tf32(x)), round_to_tf32(x));
        assert_eq!(round_to_fp16(round_to_fp16(x)), round_to_fp16(x));
    }
}

#[test]
fn float_rounding_error_within_half_ulp() {
    let mut rng = StdRng::seed_from_u64(0xB1);
    for _ in 0..CASES {
        let x = rng.gen_range(1e-3f32..1e3);
        assert!((round_to_tf32(x) - x).abs() <= x * 2f32.powi(-11) + 1e-12);
        assert!((round_to_bf16(x) - x).abs() <= x * 2f32.powi(-8) + 1e-12);
        assert!((round_to_fp16(x) - x).abs() <= x * 2f32.powi(-11) + 1e-12);
    }
}

#[test]
fn rounding_preserves_sign_and_order() {
    let mut rng = StdRng::seed_from_u64(0xB2);
    for _ in 0..CASES {
        let a = rng.gen_range(-1e3f32..1e3);
        let b = rng.gen_range(-1e3f32..1e3);
        // Rounding is monotone: a ≤ b → round(a) ≤ round(b).
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(round_to_bf16(lo) <= round_to_bf16(hi));
        assert!(round_to_fp16(lo) <= round_to_fp16(hi));
        assert!(round_to_tf32(lo) <= round_to_tf32(hi));
    }
}

#[test]
fn generic_mantissa_dominates_named() {
    let mut rng = StdRng::seed_from_u64(0xB3);
    for _ in 0..CASES {
        let x = rng.gen_range(1e-2f32..1e2);
        let m = rng.gen_range(4u32..20);
        // More mantissa bits never increases the error.
        let coarse = (round_mantissa(x, m) - x).abs();
        let fine = (round_mantissa(x, m + 3) - x).abs();
        assert!(fine <= coarse + 1e-12);
    }
}

#[test]
fn int8_roundtrip_within_half_step() {
    let mut rng = StdRng::seed_from_u64(0xB4);
    for _ in 0..CASES {
        let n = rng.gen_range(1..100usize);
        let vals: Vec<f32> = (0..n).map(|_| rng.gen_range(-50.0f32..50.0)).collect();
        let w = Matrix::from_vec(1, n, vals.clone()).unwrap();
        let q = quantize_int8(&w);
        let back = q.dequantize();
        for (&a, &b) in vals.iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= 0.5 * q.scale() + 1e-5);
        }
    }
}

#[test]
fn step_size_scales_linearly() {
    let mut rng = StdRng::seed_from_u64(0xB5);
    for _ in 0..CASES {
        let n = rng.gen_range(4..64usize);
        let vals: Vec<f32> = (0..n).map(|_| rng.gen_range(0.01f32..10.0)).collect();
        let scale = rng.gen_range(1u32..8);
        // q(c·W) = c·q(W) for power-of-two c (exact binade shifts).
        let w = Matrix::from_vec(1, n, vals).unwrap();
        let c = 2f32.powi(scale as i32);
        let w2 = w.scale(c);
        for f in [QuantFormat::Tf32, QuantFormat::Bf16, QuantFormat::Int8] {
            let q1 = f.step_size(&w);
            let q2 = f.step_size(&w2);
            assert!(
                (q2 - c as f64 * q1).abs() <= 1e-6 * q2.abs().max(1e-12),
                "{}: {} vs {}",
                f,
                q1,
                q2
            );
        }
    }
}

#[test]
fn quantized_matrix_error_within_rms_step_times_margin() {
    let mut rng = StdRng::seed_from_u64(0xB6);
    for _ in 0..CASES {
        let n = rng.gen_range(4..64usize);
        let vals: Vec<f32> = (0..n).map(|_| rng.gen_range(-4.0f32..4.0)).collect();
        let w = Matrix::from_vec(1, n, vals).unwrap();
        for f in [QuantFormat::Tf32, QuantFormat::Fp16, QuantFormat::Bf16] {
            let q = f.step_size(&w);
            let wq = f.quantize_matrix(&w);
            let max_err = w
                .as_slice()
                .iter()
                .zip(wq.as_slice())
                .map(|(&a, &b)| (a - b).abs() as f64)
                .fold(0.0, f64::max);
            // RMS step q under-weights the largest binade by at most the
            // dynamic-range factor; 16x covers the tested value range.
            assert!(max_err <= 16.0 * q + 1e-12, "{}: {} vs q={}", f, max_err, q);
        }
    }
}
