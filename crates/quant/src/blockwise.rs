//! Block-wise INT8 quantization — the second grouping granularity the
//! paper's Future Work names ("block-wise, column-wise, or row-wise").
//!
//! The weight matrix is tiled into `block × block` squares, each with its
//! own affine scale/zero-point (max calibration).  Block-wise sits between
//! per-tensor (one scale) and row-wise (one scale per output neuron): it
//! also captures *column* locality, which matters when input features have
//! very different magnitudes.
//!
//! For the error bound, the per-row effective step is the largest step of
//! any block intersecting the row; feeding those per-row steps to
//! [`crate::rowwise::rowwise_injection`] yields a bound that is never
//! looser than the per-tensor Table-I value.

use crate::affine::{quantize_int8, QuantizedMatrix};
use errflow_tensor::Matrix;

/// A block-wise INT8-quantized matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockwiseQuantizedMatrix {
    blocks: Vec<QuantizedMatrix>,
    rows: usize,
    cols: usize,
    block: usize,
}

impl BlockwiseQuantizedMatrix {
    /// Matrix shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Tile side length.
    pub fn block_size(&self) -> usize {
        self.block
    }

    /// Storage footprint in bytes (codes + per-block scale/zero-point).
    pub fn storage_bytes(&self) -> usize {
        self.blocks.iter().map(|b| b.storage_bytes() + 8).sum()
    }

    /// Reconstructs the `f32` weight matrix.
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        let blocks_per_row = self.cols.div_ceil(self.block);
        for (bi, qb) in self.blocks.iter().enumerate() {
            let br = bi / blocks_per_row;
            let bc = bi % blocks_per_row;
            let deq = qb.dequantize();
            for r in 0..deq.rows() {
                for c in 0..deq.cols() {
                    out.set(br * self.block + r, bc * self.block + c, deq.get(r, c));
                }
            }
        }
        out
    }

    /// Per-row effective step: the largest block scale touching each row.
    pub fn row_steps(&self) -> Vec<f64> {
        let blocks_per_row = self.cols.div_ceil(self.block);
        (0..self.rows)
            .map(|r| {
                let br = r / self.block;
                (0..blocks_per_row)
                    .map(|bc| self.blocks[br * blocks_per_row + bc].scale() as f64)
                    .fold(0.0, f64::max)
            })
            .collect()
    }
}

/// Quantizes `w` in `block × block` tiles with INT8 max calibration.
pub fn quantize_int8_blockwise(w: &Matrix, block: usize) -> BlockwiseQuantizedMatrix {
    assert!(block > 0, "block size must be nonzero");
    let blocks_per_row = w.cols().div_ceil(block);
    let blocks_per_col = w.rows().div_ceil(block);
    let mut blocks = Vec::with_capacity(blocks_per_row * blocks_per_col);
    for br in 0..blocks_per_col {
        for bc in 0..blocks_per_row {
            let r0 = br * block;
            let c0 = bc * block;
            let rows = block.min(w.rows() - r0);
            let cols = block.min(w.cols() - c0);
            let tile = Matrix::from_fn(rows, cols, |r, c| w.get(r0 + r, c0 + c));
            blocks.push(quantize_int8(&tile));
        }
    }
    BlockwiseQuantizedMatrix {
        blocks,
        rows: w.rows(),
        cols: w.cols(),
        block,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rowwise::rowwise_injection;
    use crate::QuantFormat;
    use errflow_tensor::rng::StdRng;

    fn checkerboard(seed: u64) -> Matrix {
        // Quadrants with very different scales: the block-wise sweet spot.
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(16, 16, |r, c| {
            let scale = if (r < 8) ^ (c < 8) { 1e-3 } else { 1.0 };
            rng.gen_range(-scale..scale)
        })
    }

    #[test]
    fn roundtrip_within_per_block_step() {
        let w = checkerboard(1);
        let q = quantize_int8_blockwise(&w, 8);
        let back = q.dequantize();
        let steps = q.row_steps();
        for r in 0..16 {
            for c in 0..16 {
                assert!(
                    (w.get(r, c) - back.get(r, c)).abs() as f64 <= 0.5 * steps[r] + 1e-9,
                    "({r},{c})"
                );
            }
        }
    }

    #[test]
    fn blockwise_beats_per_tensor_on_quadrant_data() {
        let w = checkerboard(2);
        let per_tensor = QuantFormat::Int8.quantize_matrix(&w);
        let blockwise = quantize_int8_blockwise(&w, 8).dequantize();
        // Max error on a small-scale quadrant element.
        let err_at = |a: &Matrix, r: usize, c: usize| (a.get(r, c) - w.get(r, c)).abs();
        let mut worst_tensor = 0.0f32;
        let mut worst_block = 0.0f32;
        for r in 0..8 {
            for c in 8..16 {
                worst_tensor = worst_tensor.max(err_at(&per_tensor, r, c));
                worst_block = worst_block.max(err_at(&blockwise, r, c));
            }
        }
        assert!(
            worst_block < worst_tensor / 50.0,
            "block {worst_block} vs tensor {worst_tensor}"
        );
    }

    #[test]
    fn block_injection_never_looser_than_tensor() {
        for seed in 0..5 {
            let w = checkerboard(seed);
            let q = quantize_int8_blockwise(&w, 4);
            let inject_block = rowwise_injection(&q.row_steps());
            let q_tensor = QuantFormat::Int8.step_size(&w);
            let inject_tensor = q_tensor * (w.rows() as f64).sqrt() / (2.0 * 3f64.sqrt());
            // Per-block scales are /255, per-tensor Table-I step is /256;
            // allow that sliver.
            assert!(
                inject_block <= inject_tensor * (256.0 / 255.0) + 1e-12,
                "seed {seed}: {inject_block} vs {inject_tensor}"
            );
        }
    }

    #[test]
    fn non_divisible_shapes() {
        let mut rng = StdRng::seed_from_u64(9);
        let w = Matrix::from_fn(10, 13, |_, _| rng.gen_range(-2.0..2.0));
        let q = quantize_int8_blockwise(&w, 4);
        assert_eq!(q.shape(), (10, 13));
        let back = q.dequantize();
        let steps = q.row_steps();
        for r in 0..10 {
            for c in 0..13 {
                assert!((w.get(r, c) - back.get(r, c)).abs() as f64 <= 0.5 * steps[r] + 1e-9);
            }
        }
    }

    #[test]
    fn block_one_equals_elementwise_exactness() {
        // 1×1 blocks store each weight at its own scale: exact to ~1 ulp of
        // the scale arithmetic.
        let w = checkerboard(3);
        let q = quantize_int8_blockwise(&w, 1);
        let back = q.dequantize();
        for (a, b) in w.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= a.abs() * 1e-2 + 1e-9);
        }
    }

    #[test]
    fn storage_grows_with_finer_blocks() {
        let w = checkerboard(4);
        let coarse = quantize_int8_blockwise(&w, 16).storage_bytes();
        let fine = quantize_int8_blockwise(&w, 2).storage_bytes();
        assert!(fine > coarse);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_block_size_panics() {
        quantize_int8_blockwise(&Matrix::zeros(4, 4), 0);
    }
}
