//! Bit-accurate low-precision floating-point rounding.
//!
//! Each function rounds an `f32` to the nearest value representable in the
//! target format using round-to-nearest-even — the rounding mode tensor
//! cores and PyTorch's quantization use — and returns it re-widened to
//! `f32`.  This "fake quantization" is numerically identical to storing and
//! computing in the narrow format for the weight-only quantization the
//! paper studies (weights are converted once; the matmul accumulates in
//! FP32, as tensor-core MACs do).
//!
//! Format structure (sign / exponent / mantissa bits):
//!
//! | format | e | m | notes |
//! |---|---|---|---|
//! | FP32 | 8 | 23 | reference |
//! | TF32 | 8 | 10 | FP32 exponent range, FP16 mantissa |
//! | FP16 | 5 | 10 | subnormals below 2⁻¹⁴, saturates at ±65504 |
//! | BF16 | 8 | 7  | truncated FP32 |

/// Rounds to BF16 (8-bit exponent, 7-bit mantissa) with round-to-nearest-even.
pub fn round_to_bf16(x: f32) -> f32 {
    if x.is_nan() {
        return x;
    }
    let bits = x.to_bits();
    // Round the low 16 bits away with nearest-even on bit 16.
    let lsb = (bits >> 16) & 1;
    let rounded = bits.wrapping_add(0x7fff + lsb);
    f32::from_bits(rounded & 0xffff_0000)
}

/// Rounds to TF32 (8-bit exponent, 10-bit mantissa) with round-to-nearest-even.
///
/// TF32 keeps the full FP32 exponent range, so no overflow/underflow handling
/// beyond what FP32 itself does is required.
pub fn round_to_tf32(x: f32) -> f32 {
    if x.is_nan() {
        return x;
    }
    let bits = x.to_bits();
    // Drop 13 mantissa bits (23 → 10), nearest-even on bit 13.
    let lsb = (bits >> 13) & 1;
    let rounded = bits.wrapping_add(0xfff + lsb);
    f32::from_bits(rounded & !0x1fff)
}

/// Rounds to IEEE-754 binary16 (FP16) with round-to-nearest-even, including
/// subnormal handling below 2⁻¹⁴ and saturation to ±∞ above the FP16 max.
pub fn round_to_fp16(x: f32) -> f32 {
    fp16_bits_to_f32(f32_to_fp16_bits(x))
}

/// Converts an `f32` to raw FP16 bits (round-to-nearest-even).
pub fn f32_to_fp16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x7f_ffff;

    if exp == 0xff {
        // Inf / NaN
        let m = if mant != 0 { 0x200 } else { 0 };
        return sign | 0x7c00 | m;
    }
    // Unbiased exponent.
    let e = exp - 127;
    if e > 15 {
        // Overflow → infinity.
        return sign | 0x7c00;
    }
    if e >= -14 {
        // Normal range: keep 10 mantissa bits, round nearest-even on bit 13.
        let mut m = mant >> 13;
        let rem = mant & 0x1fff;
        if rem > 0x1000 || (rem == 0x1000 && (m & 1) == 1) {
            m += 1;
        }
        let mut he = (e + 15) as u32;
        if m == 0x400 {
            // Mantissa rounding overflowed into the exponent.
            m = 0;
            he += 1;
            if he >= 0x1f {
                return sign | 0x7c00;
            }
        }
        return sign | ((he as u16) << 10) | (m as u16);
    }
    if e >= -24 {
        // Subnormal: shift the implicit leading 1 into the mantissa.
        let full = mant | 0x80_0000; // 24-bit significand
        let shift = (-14 - e) + 13; // 13 base + extra for subnormal
        let m = full >> shift;
        let rem = full & ((1u32 << shift) - 1);
        let half = 1u32 << (shift - 1);
        let mut m = m;
        if rem > half || (rem == half && (m & 1) == 1) {
            m += 1;
        }
        // m may carry into the smallest normal — that encoding is still correct.
        return sign | (m as u16);
    }
    // Underflow to signed zero.
    sign
}

/// Converts raw FP16 bits back to `f32` exactly.
pub fn fp16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let mant = (h & 0x3ff) as u32;
    let bits = match (exp, mant) {
        (0, 0) => sign,
        (0, m) => {
            // Subnormal: value = m × 2⁻²⁴ — renormalise for the f32 encoding.
            let lead = 31 - m.leading_zeros(); // index of highest set bit (0..9)
            let shift = 10 - lead;
            let e = 127 - 15 - shift + 1;
            let frac = (m << (13 + shift)) & 0x7f_ffff;
            sign | (e << 23) | frac
        }
        (0x1f, 0) => sign | 0x7f80_0000,
        (0x1f, m) => sign | 0x7f80_0000 | (m << 13),
        (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
    };
    f32::from_bits(bits)
}

/// Machine-epsilon-style relative step of a float format with `m` mantissa
/// bits: the spacing of representable values around 1.0 is `2⁻ᵐ`.
pub fn mantissa_ulp(mantissa_bits: u32) -> f64 {
    2f64.powi(-(mantissa_bits as i32))
}

/// Rounds an `f32` to `m` mantissa bits (round-to-nearest-even), keeping the
/// full 8-bit exponent — a *hypothetical* FP32-exponent format with a
/// configurable significand.
///
/// This is the knob the paper's Future Work section asks about ("formats
/// with increased mantissa bits can offer improved efficiency"): the
/// `ablation_formats` bench sweeps `m` to chart error vs. mantissa width.
/// `m = 23` is a no-op, `m = 10` equals TF32, `m = 7` equals BF16.
pub fn round_mantissa(x: f32, m: u32) -> f32 {
    assert!(m <= 23, "f32 has 23 mantissa bits");
    if x.is_nan() || m == 23 {
        return x;
    }
    let drop = 23 - m;
    let bits = x.to_bits();
    let lsb = (bits >> drop) & 1;
    let bias = (1u32 << (drop - 1)) - 1;
    let rounded = bits.wrapping_add(bias + lsb);
    f32::from_bits(rounded & !((1u32 << drop) - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bf16_exact_values_pass_through() {
        for &v in &[0.0f32, 1.0, -2.0, 0.5, 1.5, 256.0] {
            assert_eq!(round_to_bf16(v), v);
        }
    }

    #[test]
    fn bf16_rounds_to_7_mantissa_bits() {
        // 1 + 2⁻⁸ rounds to 1.0 (nearest even); 1 + 3·2⁻⁸ rounds to 1 + 2⁻⁷·2 = 1+2^-6... check simple cases.
        let x = 1.0f32 + 2f32.powi(-8);
        assert_eq!(round_to_bf16(x), 1.0);
        let y = 1.0f32 + 2f32.powi(-7);
        assert_eq!(round_to_bf16(y), y); // exactly representable
    }

    #[test]
    fn tf32_rounds_to_10_mantissa_bits() {
        let x = 1.0f32 + 2f32.powi(-11);
        assert_eq!(round_to_tf32(x), 1.0); // ties to even
        let y = 1.0f32 + 2f32.powi(-10);
        assert_eq!(round_to_tf32(y), y);
    }

    #[test]
    fn fp16_roundtrip_exact_values() {
        for &v in &[0.0f32, -0.0, 1.0, -1.0, 0.5, 65504.0, 2f32.powi(-14)] {
            assert_eq!(round_to_fp16(v), v, "value {v}");
        }
    }

    #[test]
    fn fp16_overflow_saturates_to_infinity() {
        assert_eq!(round_to_fp16(1e6), f32::INFINITY);
        assert_eq!(round_to_fp16(-1e6), f32::NEG_INFINITY);
    }

    #[test]
    fn fp16_subnormals() {
        let tiny = 2f32.powi(-24); // smallest FP16 subnormal
        assert_eq!(round_to_fp16(tiny), tiny);
        let half_tiny = 2f32.powi(-25);
        // Ties to even → rounds to zero.
        assert_eq!(round_to_fp16(half_tiny), 0.0);
        let sub = 3.0 * 2f32.powi(-24);
        assert_eq!(round_to_fp16(sub), sub);
    }

    #[test]
    fn fp16_underflow_to_zero() {
        assert_eq!(round_to_fp16(1e-10), 0.0);
        assert_eq!(round_to_fp16(-1e-10), -0.0);
    }

    #[test]
    fn fp16_rounding_error_within_half_ulp() {
        // In the normal range the error is ≤ 2⁻¹¹·|x| (half of 2⁻¹⁰ ulp).
        let mut x = 0.001f32;
        while x < 1000.0 {
            let r = round_to_fp16(x);
            assert!(
                (r - x).abs() <= x.abs() * 2f32.powi(-11) + f32::EPSILON,
                "x={x} r={r}"
            );
            x *= 1.37;
        }
    }

    #[test]
    fn bf16_rounding_error_within_half_ulp() {
        let mut x = 1e-3f32;
        while x < 1e6 {
            let r = round_to_bf16(x);
            assert!((r - x).abs() <= x.abs() * 2f32.powi(-8) + f32::EPSILON);
            x *= 1.73;
        }
    }

    #[test]
    fn tf32_rounding_error_within_half_ulp() {
        let mut x = 1e-6f32;
        while x < 1e6 {
            let r = round_to_tf32(x);
            assert!((r - x).abs() <= x.abs() * 2f32.powi(-11) + f32::EPSILON);
            x *= 2.31;
        }
    }

    #[test]
    fn nan_propagates() {
        assert!(round_to_bf16(f32::NAN).is_nan());
        assert!(round_to_tf32(f32::NAN).is_nan());
        assert!(round_to_fp16(f32::NAN).is_nan());
    }

    #[test]
    fn mantissa_ulp_values() {
        assert_eq!(mantissa_ulp(10), 2f64.powi(-10));
        assert_eq!(mantissa_ulp(7), 2f64.powi(-7));
    }

    #[test]
    fn round_mantissa_matches_named_formats() {
        let mut x = 1e-3f32;
        while x < 1e3 {
            assert_eq!(round_mantissa(x, 10), round_to_tf32(x), "x={x}");
            assert_eq!(round_mantissa(x, 7), round_to_bf16(x), "x={x}");
            assert_eq!(round_mantissa(x, 23), x);
            x *= 1.91;
        }
    }

    #[test]
    fn round_mantissa_error_within_half_ulp() {
        for m in [4u32, 8, 12, 16, 20] {
            let mut x = 0.01f32;
            while x < 100.0 {
                let r = round_mantissa(x, m);
                assert!(
                    (r - x).abs() <= x * 2f32.powi(-(m as i32 + 1)) + f32::EPSILON,
                    "m={m} x={x}"
                );
                x *= 1.77;
            }
        }
    }

    #[test]
    fn fp16_bits_roundtrip_all_finite_encodings() {
        for h in 0..=0xffffu16 {
            let exp = (h >> 10) & 0x1f;
            if exp == 0x1f {
                continue; // skip inf/nan encodings
            }
            let f = fp16_bits_to_f32(h);
            let back = f32_to_fp16_bits(f);
            // -0.0 and 0.0 encode distinctly and must round-trip exactly.
            assert_eq!(back, h, "h={h:#06x} f={f}");
        }
    }
}
