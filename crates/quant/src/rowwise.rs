//! Row-wise INT8 quantization — the paper's Future Work extension.
//!
//! §III-A: "Advanced quantization strategies that apply block-wise,
//! column-wise, or row-wise quantization to weight matrices can offer
//! tighter quantization and reduced accuracy loss compared to uniform
//! per-layer quantization.  By grouping subsets of weights and assigning
//! shared quantization parameters (e.g., scaling factors) within each
//! group, these methods capture the local range of weights more precisely."
//!
//! Row-wise grouping is the natural granularity for the error theory: each
//! output neuron's pre-activation is the inner product of one weight *row*
//! with the activations, so a per-row step size `q_i` slots directly into
//! the §III-B concentration argument — the layer injection becomes
//! `‖q‖₂/(2√3)` (the root-sum-square of per-row steps) instead of
//! `q·√n_l/(2√3)` with the per-tensor step `q`.  Since
//! `‖q‖₂ ≤ q_tensor·√n_l` always, row-wise bounds are never looser.

use crate::affine::QuantizedMatrix;
use errflow_tensor::Matrix;

/// A row-wise INT8-quantized matrix: one scale/zero-point pair per row.
#[derive(Debug, Clone, PartialEq)]
pub struct RowwiseQuantizedMatrix {
    rows: Vec<QuantizedMatrix>,
    cols: usize,
}

impl RowwiseQuantizedMatrix {
    /// Matrix shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows.len(), self.cols)
    }

    /// Per-row affine step sizes.
    pub fn row_scales(&self) -> Vec<f32> {
        self.rows.iter().map(QuantizedMatrix::scale).collect()
    }

    /// Storage footprint in bytes (codes + per-row scale/zero-point).
    pub fn storage_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.storage_bytes() + 8)
            .sum::<usize>()
    }

    /// Reconstructs the `f32` weight matrix.
    pub fn dequantize(&self) -> Matrix {
        let mut data = Vec::with_capacity(self.rows.len() * self.cols);
        for row in &self.rows {
            data.extend_from_slice(row.dequantize().as_slice());
        }
        // audit:allow(panic-reach) row-wise dequantize preserves rows*cols by construction
        Matrix::from_vec(self.rows.len(), self.cols, data).expect("shape preserved")
    }
}

/// Quantizes each row of `w` independently with INT8 max calibration.
pub fn quantize_int8_rowwise(w: &Matrix) -> RowwiseQuantizedMatrix {
    let rows = (0..w.rows())
        .map(|r| {
            // audit:allow(panic-reach) chunks_exact(cols) yields rows of exactly `cols` values
            let row = Matrix::from_vec(1, w.cols(), w.row(r).to_vec()).expect("row shape");
            crate::affine::quantize_int8(&row)
        })
        .collect();
    RowwiseQuantizedMatrix {
        rows,
        cols: w.cols(),
    }
}

/// Per-row Table-I-style step sizes for row-wise INT8:
/// `q_i = 2⁻⁸·(max_j W_ij − min_j W_ij)`.
pub fn rowwise_int8_steps(w: &Matrix) -> Vec<f64> {
    (0..w.rows())
        .map(|r| {
            let row = w.row(r);
            let min = row.iter().copied().fold(f32::INFINITY, f32::min);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            ((max - min) as f64).max(0.0) * 2f64.powi(-8)
        })
        .collect()
}

/// The layer quantization injection under row-wise steps:
/// `‖q‖₂/(2√3)` — the row-wise refinement of the paper's
/// `q·√n_l/(2√3)` (see module docs).
pub fn rowwise_injection(steps: &[f64]) -> f64 {
    let sum_sq: f64 = steps.iter().map(|&q| q * q).sum();
    sum_sq.sqrt() / (2.0 * 3f64.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QuantFormat;
    use errflow_tensor::rng::StdRng;

    /// A matrix with wildly different per-row ranges — the case row-wise
    /// quantization exists for.
    fn heterogeneous(seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(8, 16, |r, _| {
            let scale = 10f32.powi(r as i32 - 4);
            rng.gen_range(-scale..scale)
        })
    }

    #[test]
    fn roundtrip_error_within_per_row_step() {
        let w = heterogeneous(1);
        let q = quantize_int8_rowwise(&w);
        let back = q.dequantize();
        let scales = q.row_scales();
        for r in 0..w.rows() {
            for c in 0..w.cols() {
                assert!(
                    (w.get(r, c) - back.get(r, c)).abs() <= 0.5 * scales[r] + 1e-12,
                    "({r},{c})"
                );
            }
        }
    }

    #[test]
    fn rowwise_beats_per_tensor_on_heterogeneous_rows() {
        // The win shows on the *small-range* rows: per-tensor calibration
        // wastes its 256 levels on the widest row, flattening narrow rows
        // to near-zero resolution; row-wise keeps each row's local range.
        let w = heterogeneous(2);
        let per_tensor = QuantFormat::Int8.quantize_matrix(&w);
        let rowwise = quantize_int8_rowwise(&w).dequantize();
        let row_err = |a: &Matrix, r: usize| -> f64 {
            a.row(r)
                .iter()
                .zip(w.row(r))
                .map(|(&x, &y)| ((x - y) as f64).abs())
                .fold(0.0, f64::max)
        };
        // Row 0 has range ~1e-4; per-tensor step is ~1e3/256.
        let e_tensor = row_err(&per_tensor, 0);
        let e_row = row_err(&rowwise, 0);
        assert!(
            e_row < e_tensor / 100.0,
            "row-wise {e_row} should crush per-tensor {e_tensor} on narrow rows"
        );
        // Total Frobenius error also improves (dominated by the wide row,
        // so the margin is modest).
        let fro = |a: &Matrix| -> f64 {
            a.as_slice()
                .iter()
                .zip(w.as_slice())
                .map(|(&x, &y)| ((x - y) as f64).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        assert!(fro(&rowwise) < fro(&per_tensor));
    }

    #[test]
    fn rowwise_injection_never_looser_than_tensor() {
        for seed in 0..10 {
            let w = heterogeneous(seed);
            let steps = rowwise_int8_steps(&w);
            let row_inject = rowwise_injection(&steps);
            let q_tensor = QuantFormat::Int8.step_size(&w);
            let tensor_inject = q_tensor * (w.rows() as f64).sqrt() / (2.0 * 3f64.sqrt());
            assert!(
                row_inject <= tensor_inject + 1e-12,
                "seed {seed}: {row_inject} vs {tensor_inject}"
            );
        }
    }

    #[test]
    fn homogeneous_rows_match_per_tensor_steps() {
        // When all rows share the same range, row-wise ≈ per-tensor.
        let mut rng = StdRng::seed_from_u64(5);
        let w = Matrix::from_fn(6, 20, |_, _| rng.gen_range(-1.0..1.0));
        let steps = rowwise_int8_steps(&w);
        let q_tensor = QuantFormat::Int8.step_size(&w);
        for &q in &steps {
            assert!(q <= q_tensor * 1.01);
            assert!(q >= q_tensor * 0.5, "q={q} tensor={q_tensor}");
        }
    }

    #[test]
    fn storage_accounts_for_per_row_metadata() {
        let w = heterogeneous(7);
        let q = quantize_int8_rowwise(&w);
        assert_eq!(q.storage_bytes(), 8 * 16 + 8 * 8);
        assert_eq!(q.shape(), (8, 16));
    }

    #[test]
    fn steps_of_constant_rows_are_zero() {
        let w = Matrix::filled(3, 5, 2.0);
        let steps = rowwise_int8_steps(&w);
        assert!(steps.iter().all(|&q| q == 0.0));
        assert_eq!(rowwise_injection(&steps), 0.0);
    }
}
