//! Analytical execution-throughput model for quantized inference.
//!
//! The paper measures model-execution throughput per format on an RTX 3080
//! Ti (Fig. 9), reporting up to a 4.5× speedup for FP16 and little gain for
//! TF32/BF16.  No GPU is available here, so — per the substitution rule in
//! DESIGN.md §3 — this module provides an Amdahl-style roofline model whose
//! parameters are calibrated to the paper's reported ratios:
//!
//! * each format has a *kernel speedup* on the matmul-heavy fraction of the
//!   workload (tensor-core arithmetic + halved weight traffic for 16-bit
//!   formats);
//! * each inference carries fixed per-sample overhead (kernel launch,
//!   framework, layout) that no format accelerates;
//! * the matmul fraction grows with model FLOPs, which is why Fig. 9 shows
//!   larger models enjoying larger quantization speedups.

use crate::format::QuantFormat;

/// Kernel-level arithmetic speedup of a format relative to FP32, on the
/// accelerable (GEMM) portion of the workload.
///
/// FP16 tensor cores reach ~8× FP32 FLOPs with half the weight bandwidth
/// (the paper quotes the 8×/2× = 16× peak figure from Wu et al.); INT8
/// doubles that arithmetic rate again but pays per-tensor dequantization.
/// TF32 accelerates arithmetic but keeps 32-bit storage; BF16 is *emulated*
/// on two of the paper's three GPUs, so its effective kernel gain is modest.
pub fn kernel_speedup(format: QuantFormat) -> f64 {
    match format {
        QuantFormat::Fp32 => 1.0,
        QuantFormat::Tf32 => 2.2,
        QuantFormat::Fp16 => 8.0,
        QuantFormat::Bf16 => 2.6,
        QuantFormat::Int8 => 10.0,
    }
}

/// Roofline/Amdahl execution model: `time = overhead + gemm_time` with only
/// `gemm_time` accelerated by the format.
#[derive(Debug, Clone, Copy)]
pub struct ExecutionModel {
    /// Sustained FP32 GEMM throughput, in FLOP/s (calibration constant).
    pub fp32_flops_per_sec: f64,
    /// Fixed per-sample overhead in seconds (launch/framework/layout).
    pub overhead_per_sample: f64,
}

impl Default for ExecutionModel {
    /// Calibrated so the paper's model zoo reproduces Fig. 9's shape:
    /// `mlp_l` (33.7 MFLOP) reaches ≈4.5× under FP16 while `mlp_s`
    /// (0.5 MFLOP) stays overhead-dominated.
    fn default() -> Self {
        ExecutionModel {
            fp32_flops_per_sec: 8.0e12,
            overhead_per_sample: 4.0e-7,
        }
    }
}

impl ExecutionModel {
    /// Seconds to run one sample through a model of `flops` FLOPs stored in
    /// `format`.
    pub fn sample_latency(&self, flops: f64, format: QuantFormat) -> f64 {
        let gemm = flops / (self.fp32_flops_per_sec * kernel_speedup(format));
        self.overhead_per_sample + gemm
    }

    /// Samples per second.
    pub fn samples_per_sec(&self, flops: f64, format: QuantFormat) -> f64 {
        1.0 / self.sample_latency(flops, format)
    }

    /// Speedup of `format` over FP32 for a model of the given FLOPs.
    pub fn speedup(&self, flops: f64, format: QuantFormat) -> f64 {
        self.sample_latency(flops, QuantFormat::Fp32) / self.sample_latency(flops, format)
    }

    /// Execution throughput expressed as GB/s of input data ingested, for a
    /// model reading `input_bytes` bytes per sample — the unit Figs. 9–15
    /// plot so the execution phase is comparable with the I/O phase.
    pub fn ingest_gbps(&self, flops: f64, input_bytes: usize, format: QuantFormat) -> f64 {
        self.samples_per_sec(flops, format) * input_bytes as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MLP_S: f64 = 0.5e6;
    const MLP_L: f64 = 33.7e6;

    #[test]
    fn fp32_speedup_is_one() {
        let m = ExecutionModel::default();
        assert!((m.speedup(MLP_L, QuantFormat::Fp32) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fp16_speedup_matches_paper_headline() {
        // Paper §IV-C: "up to a 4.5-fold increase ... for FP16-quantized
        // models" on the largest models.
        let m = ExecutionModel::default();
        let s = m.speedup(MLP_L, QuantFormat::Fp16);
        assert!(s > 4.0 && s < 5.5, "fp16 speedup on mlp_l = {s}");
    }

    #[test]
    fn small_models_gain_less() {
        let m = ExecutionModel::default();
        let small = m.speedup(MLP_S, QuantFormat::Fp16);
        let large = m.speedup(MLP_L, QuantFormat::Fp16);
        assert!(small < large, "small={small} large={large}");
        assert!(small < 2.0, "mlp_s should be overhead-dominated: {small}");
    }

    #[test]
    fn format_ordering_matches_fig9() {
        // INT8 ≥ FP16 > BF16 ≳ TF32 > FP32 in throughput on a big model.
        let m = ExecutionModel::default();
        let t = |f| m.samples_per_sec(MLP_L, f);
        assert!(t(QuantFormat::Int8) >= t(QuantFormat::Fp16));
        assert!(t(QuantFormat::Fp16) > t(QuantFormat::Bf16));
        assert!(t(QuantFormat::Bf16) > t(QuantFormat::Fp32));
        assert!(t(QuantFormat::Tf32) > t(QuantFormat::Fp32));
    }

    #[test]
    fn tf32_bf16_little_speedup() {
        // Paper: "TF32 and BF16 ... provide little speedup".
        let m = ExecutionModel::default();
        assert!(m.speedup(MLP_L, QuantFormat::Tf32) < 2.5);
        assert!(m.speedup(MLP_L, QuantFormat::Bf16) < 3.0);
    }

    #[test]
    fn latency_positive_and_monotone_in_flops() {
        let m = ExecutionModel::default();
        for f in QuantFormat::ALL {
            assert!(m.sample_latency(1e6, f) > 0.0);
            assert!(m.sample_latency(1e8, f) > m.sample_latency(1e6, f));
        }
    }

    #[test]
    fn ingest_gbps_scales_with_input_size() {
        let m = ExecutionModel::default();
        let g1 = m.ingest_gbps(MLP_L, 1_000, QuantFormat::Fp32);
        let g2 = m.ingest_gbps(MLP_L, 2_000, QuantFormat::Fp32);
        assert!((g2 / g1 - 2.0).abs() < 1e-9);
    }
}
