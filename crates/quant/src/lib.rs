//! # errflow-quant
//!
//! Post-training weight quantization substrate.
//!
//! The paper quantizes trained FP32 weights into one of four lower-precision
//! formats — TF32, FP16, BF16, INT8 — using *uniform affine quantization
//! with max calibration* (its reference \[8\]) and predicts the resulting QoI
//! error from the **average quantization step size** `q(W)` of Table I.
//!
//! This crate provides:
//!
//! * [`QuantFormat`] — the format taxonomy with mantissa/exponent structure
//!   and Table-I step sizes ([`QuantFormat::step_size`]).
//! * [`fp`] — bit-accurate round-to-nearest-even conversions for the float
//!   formats (the "fake quantization" used when validating bounds).
//! * [`affine`] — INT8 affine quantization with max calibration, including a
//!   real `i8` storage type ([`affine::QuantizedMatrix`]).
//! * [`throughput`] — the analytical execution-throughput model standing in
//!   for tensor-core hardware (see DESIGN.md §3, substitution 3).
//!
//! The *numerics* here are exact (every rounded weight is representable in
//! the target format); only the *speed* of executing in that format is
//! modeled rather than measured on a GPU.

pub mod affine;
pub mod blockwise;
pub mod format;
pub mod fp;
pub mod rowwise;
pub mod throughput;

pub use affine::QuantizedMatrix;
pub use blockwise::BlockwiseQuantizedMatrix;
pub use format::QuantFormat;
pub use rowwise::RowwiseQuantizedMatrix;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_compile() {
        let _ = QuantFormat::Fp16;
    }
}
