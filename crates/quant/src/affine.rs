//! Uniform affine INT8 quantization with max calibration.
//!
//! This is the scheme the paper states it uses (§III-A, citing Wu et al.
//! \[8\]): a single scale/zero-point pair per weight tensor, calibrated from
//! the tensor's min/max ("max calibration"), mapping weights linearly onto
//! the 256 integer levels.  [`QuantizedMatrix`] stores the real `i8` codes —
//! the memory layout a deployment would ship — and dequantizes on demand.

use errflow_tensor::Matrix;

/// An INT8-quantized weight matrix: `w ≈ scale · (code − zero_point)`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    codes: Vec<i8>,
    scale: f32,
    zero_point: i32,
}

impl QuantizedMatrix {
    /// Matrix shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The affine scale (step size between adjacent levels).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The affine zero point (the integer code representing 0.0).
    pub fn zero_point(&self) -> i32 {
        self.zero_point
    }

    /// Raw integer codes, row-major.
    pub fn codes(&self) -> &[i8] {
        &self.codes
    }

    /// Storage footprint in bytes (codes only; scale/zero-point amortise).
    pub fn storage_bytes(&self) -> usize {
        self.codes.len()
    }

    /// Reconstructs the `f32` weight matrix.
    pub fn dequantize(&self) -> Matrix {
        let data = self
            .codes
            .iter()
            .map(|&c| self.scale * (c as i32 - self.zero_point) as f32)
            .collect();
        // audit:allow(panic-reach) dequantize preserves the rows*cols len it was built from
        Matrix::from_vec(self.rows, self.cols, data).expect("shape preserved")
    }
}

/// Quantizes a weight matrix to INT8 with asymmetric max calibration:
/// `scale = (max − min)/255`, `zero_point` chosen so the range endpoints map
/// to −128 and 127.
pub fn quantize_int8(w: &Matrix) -> QuantizedMatrix {
    let (rows, cols) = w.shape();
    if w.is_empty() {
        return QuantizedMatrix {
            rows,
            cols,
            codes: Vec::new(),
            scale: 1.0,
            zero_point: 0,
        };
    }
    let min = w.min();
    let max = w.max();
    let range = max - min;
    let (scale, zero_point) = if range > 0.0 {
        let scale = range / 255.0;
        // zero_point = code for value 0; derived from mapping min → -128.
        (scale, (-128.0 - min / scale).round() as i32)
    } else {
        // Degenerate (constant) tensor: pick a scale that represents the
        // constant exactly at code ±127 (zero-point 0).  Without this the
        // MIN_POSITIVE fallback scale sends min/scale to ~1e47 and the
        // zero-point computation overflows.
        (max.abs().max(f32::MIN_POSITIVE) / 127.0, 0)
    };
    let codes = w
        .as_slice()
        .iter()
        .map(|&v| {
            let q = (v / scale).round() as i32 + zero_point;
            q.clamp(-128, 127) as i8
        })
        .collect();
    QuantizedMatrix {
        rows,
        cols,
        codes,
        scale,
        zero_point,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_error_within_half_step() {
        let w = Matrix::from_fn(10, 10, |r, c| ((r * 10 + c) as f32) / 50.0 - 1.0);
        let q = quantize_int8(&w);
        let back = q.dequantize();
        let step = q.scale();
        for (&a, &b) in w.as_slice().iter().zip(back.as_slice()) {
            assert!(
                (a - b).abs() <= 0.5 * step + 1e-6,
                "a={a} b={b} step={step}"
            );
        }
    }

    #[test]
    fn range_endpoints_map_near_extremes() {
        let w = Matrix::from_vec(1, 2, vec![-2.0, 6.0]).unwrap();
        let q = quantize_int8(&w);
        let back = q.dequantize();
        assert!((back.as_slice()[0] + 2.0).abs() <= q.scale());
        assert!((back.as_slice()[1] - 6.0).abs() <= q.scale());
    }

    #[test]
    fn constant_matrix_quantizes_cleanly() {
        for c in [0.7f32, -3.2, 44.19899, 1e-20] {
            let w = Matrix::filled(3, 3, c);
            let q = quantize_int8(&w);
            let back = q.dequantize();
            for &v in back.as_slice() {
                assert!(
                    (v - c).abs() <= 0.5 * q.scale() + 1e-12,
                    "constant {c}: reconstructed {v}"
                );
            }
        }
    }

    #[test]
    fn zero_matrix() {
        let w = Matrix::zeros(4, 4);
        let q = quantize_int8(&w);
        let back = q.dequantize();
        assert!(back.as_slice().iter().all(|&v| v.abs() < 1e-6));
    }

    #[test]
    fn codes_within_i8() {
        let w = Matrix::from_fn(5, 5, |r, c| (r as f32 * 17.0 - c as f32 * 3.0).sin() * 4.0);
        let q = quantize_int8(&w);
        assert_eq!(q.codes().len(), 25);
        assert_eq!(q.storage_bytes(), 25);
    }

    #[test]
    fn empty_matrix_ok() {
        let w = Matrix::zeros(0, 0);
        let q = quantize_int8(&w);
        assert_eq!(q.dequantize().shape(), (0, 0));
    }

    #[test]
    fn step_matches_table1_within_rounding() {
        // Table I: q = 2⁻⁸ (max−min) = (max−min)/256; affine scale is /255.
        let w = Matrix::from_vec(1, 2, vec![0.0, 1.0]).unwrap();
        let q = quantize_int8(&w);
        assert!((q.scale() as f64 - 1.0 / 255.0).abs() < 1e-9);
    }
}
