//! Numerical format taxonomy and Table-I average quantization step sizes.

use crate::affine;
use crate::fp;
use errflow_tensor::Matrix;

/// A weight-storage numerical format.
///
/// The four reduced-precision formats are the ones the paper evaluates
/// (Figs. 5, 6, 9); [`QuantFormat::Fp32`] is the full-precision reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuantFormat {
    /// IEEE-754 binary32 — the reference format; quantization is a no-op.
    Fp32,
    /// NVIDIA TensorFloat-32: 8-bit exponent, 10-bit mantissa.
    Tf32,
    /// IEEE-754 binary16: 5-bit exponent, 10-bit mantissa.
    Fp16,
    /// Brain floating point: 8-bit exponent, 7-bit mantissa.
    Bf16,
    /// 8-bit integer with uniform affine quantization, max calibration.
    Int8,
}

impl QuantFormat {
    /// All reduced-precision formats, ordered from highest to lowest
    /// fidelity for scientific inference (the paper's finding: TF32 ≈ FP16
    /// in error, BF16 worse, INT8 worst).
    pub const REDUCED: [QuantFormat; 4] = [
        QuantFormat::Tf32,
        QuantFormat::Fp16,
        QuantFormat::Bf16,
        QuantFormat::Int8,
    ];

    /// All formats including FP32.
    pub const ALL: [QuantFormat; 5] = [
        QuantFormat::Fp32,
        QuantFormat::Tf32,
        QuantFormat::Fp16,
        QuantFormat::Bf16,
        QuantFormat::Int8,
    ];

    /// Lowercase label used by figure binaries (`"fp16"` etc.).
    pub fn label(&self) -> &'static str {
        match self {
            QuantFormat::Fp32 => "fp32",
            QuantFormat::Tf32 => "tf32",
            QuantFormat::Fp16 => "fp16",
            QuantFormat::Bf16 => "bf16",
            QuantFormat::Int8 => "int8",
        }
    }

    /// Mantissa (fraction) bits; `None` for the integer format.
    pub fn mantissa_bits(&self) -> Option<u32> {
        match self {
            QuantFormat::Fp32 => Some(23),
            QuantFormat::Tf32 | QuantFormat::Fp16 => Some(10),
            QuantFormat::Bf16 => Some(7),
            QuantFormat::Int8 => None,
        }
    }

    /// Exponent bits; `None` for the integer format.
    pub fn exponent_bits(&self) -> Option<u32> {
        match self {
            QuantFormat::Fp32 | QuantFormat::Tf32 | QuantFormat::Bf16 => Some(8),
            QuantFormat::Fp16 => Some(5),
            QuantFormat::Int8 => None,
        }
    }

    /// Storage size in bits per weight.
    ///
    /// TF32 is stored in 19 significant bits but occupies 32 bits in memory
    /// on real hardware; we report the *memory* footprint because that is
    /// what drives bandwidth in the throughput model.
    pub fn storage_bits(&self) -> u32 {
        match self {
            QuantFormat::Fp32 | QuantFormat::Tf32 => 32,
            QuantFormat::Fp16 | QuantFormat::Bf16 => 16,
            QuantFormat::Int8 => 8,
        }
    }

    /// Average quantization step size `q(W)` for a weight matrix — Table I.
    ///
    /// For the float formats the per-element step is `2⁻ᵐ · 2^⌊log₂|W_ij|⌋`
    /// (the ulp at that element's binade); Table I averages in the
    /// root-mean-square sense, i.e.
    /// `q(W) = 2⁻ᵐ · √(mean_ij 2^(2·⌊log₂|W_ij|⌋))`,
    /// with FP16 flooring the exponent at −14 (its subnormal threshold).
    /// For INT8, `q(W) = 2⁻⁸ · (max W_ij − min W_ij)` — the affine step over
    /// 256 levels.  FP32 is treated as exact (`q = 0`): its residual ulp is
    /// the baseline everything is measured against.
    pub fn step_size(&self, w: &Matrix) -> f64 {
        if w.is_empty() {
            return 0.0;
        }
        match self {
            QuantFormat::Fp32 => 0.0,
            QuantFormat::Int8 => {
                let range = (w.max() as f64) - (w.min() as f64);
                range * 2f64.powi(-8)
            }
            QuantFormat::Tf32 | QuantFormat::Fp16 | QuantFormat::Bf16 => {
                // audit:allow(panic-reach) the float-format match arms all define mantissa_bits
                let m = self.mantissa_bits().expect("float format") as i32;
                let floor_at = if *self == QuantFormat::Fp16 {
                    Some(-14)
                } else {
                    None
                };
                let mean_sq: f64 = w
                    .as_slice()
                    .iter()
                    .map(|&v| {
                        let a = (v as f64).abs();
                        if a == 0.0 {
                            return 0.0;
                        }
                        let mut e = a.log2().floor();
                        if let Some(fl) = floor_at {
                            e = e.max(fl as f64);
                        }
                        2f64.powf(2.0 * e)
                    })
                    .sum::<f64>()
                    / w.len() as f64;
                2f64.powi(-m) * mean_sq.sqrt()
            }
        }
    }

    /// Rounds a single weight value to this format (bit-accurate for float
    /// formats).  INT8 needs tensor-level calibration and therefore panics
    /// here; use [`QuantFormat::quantize_matrix`] instead.
    pub fn round_scalar(&self, x: f32) -> f32 {
        match self {
            QuantFormat::Fp32 => x,
            QuantFormat::Tf32 => fp::round_to_tf32(x),
            QuantFormat::Fp16 => fp::round_to_fp16(x),
            QuantFormat::Bf16 => fp::round_to_bf16(x),
            QuantFormat::Int8 => {
                // audit:allow(panic-reach) deliberate API-misuse guard: scalar rounding of INT8 is meaningless
                panic!("INT8 requires tensor-level calibration; use quantize_matrix")
            }
        }
    }

    /// Quantizes an entire weight matrix to this format and returns the
    /// dequantized (`f32`-widened) result — the weights inference will
    /// actually use.
    pub fn quantize_matrix(&self, w: &Matrix) -> Matrix {
        match self {
            QuantFormat::Fp32 => w.clone(),
            QuantFormat::Int8 => affine::quantize_int8(w).dequantize(),
            _ => w.map(|v| self.round_scalar(v)),
        }
    }
}

impl std::fmt::Display for QuantFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            QuantFormat::Fp32 => "FP32",
            QuantFormat::Tf32 => "TF32",
            QuantFormat::Fp16 => "FP16",
            QuantFormat::Bf16 => "BF16",
            QuantFormat::Int8 => "INT8",
        })
    }
}

impl std::str::FromStr for QuantFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "fp32" => Ok(QuantFormat::Fp32),
            "tf32" => Ok(QuantFormat::Tf32),
            "fp16" => Ok(QuantFormat::Fp16),
            "bf16" => Ok(QuantFormat::Bf16),
            "int8" => Ok(QuantFormat::Int8),
            other => Err(format!("unknown quantization format: {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ones() -> Matrix {
        Matrix::filled(4, 4, 1.0)
    }

    #[test]
    fn labels_and_parse_roundtrip() {
        for f in QuantFormat::ALL {
            let parsed: QuantFormat = f.label().parse().unwrap();
            assert_eq!(parsed, f);
        }
        assert!("fp8".parse::<QuantFormat>().is_err());
    }

    #[test]
    fn step_size_tf32_all_ones() {
        // |W_ij| = 1 → floor(log2) = 0 → q = 2⁻¹⁰.
        let q = QuantFormat::Tf32.step_size(&ones());
        assert!((q - 2f64.powi(-10)).abs() < 1e-15);
    }

    #[test]
    fn step_size_bf16_all_ones() {
        let q = QuantFormat::Bf16.step_size(&ones());
        assert!((q - 2f64.powi(-7)).abs() < 1e-15);
    }

    #[test]
    fn step_size_fp16_floors_exponent_at_minus_14() {
        // Tiny weights: TF32 ulp keeps shrinking, FP16 hits the subnormal floor.
        let tiny = Matrix::filled(2, 2, 2f32.powi(-20));
        let q16 = QuantFormat::Fp16.step_size(&tiny);
        let q32 = QuantFormat::Tf32.step_size(&tiny);
        assert!((q16 - 2f64.powi(-10) * 2f64.powi(-14)).abs() < 1e-22);
        assert!(q32 < q16);
    }

    #[test]
    fn step_size_int8_is_range_over_256() {
        let w = Matrix::from_vec(1, 3, vec![-1.0, 0.0, 3.0]).unwrap();
        let q = QuantFormat::Int8.step_size(&w);
        assert!((q - 4.0 / 256.0).abs() < 1e-12);
    }

    #[test]
    fn step_size_fp32_is_zero() {
        assert_eq!(QuantFormat::Fp32.step_size(&ones()), 0.0);
    }

    #[test]
    fn step_size_ordering_matches_paper() {
        // For weights in a typical trained range, TF32 ≈ FP16 < BF16 < INT8.
        let w = Matrix::from_fn(8, 8, |r, c| ((r * 8 + c) as f32 / 32.0) - 1.0);
        let q_tf32 = QuantFormat::Tf32.step_size(&w);
        let q_fp16 = QuantFormat::Fp16.step_size(&w);
        let q_bf16 = QuantFormat::Bf16.step_size(&w);
        let q_int8 = QuantFormat::Int8.step_size(&w);
        assert!(
            (q_tf32 - q_fp16).abs() < 1e-12,
            "TF32 and FP16 share mantissa width"
        );
        assert!(q_bf16 > q_fp16);
        assert!(q_int8 > q_fp16);
    }

    #[test]
    fn quantize_matrix_error_within_step() {
        let w = Matrix::from_fn(6, 6, |r, c| (r as f32 - c as f32) * 0.137);
        for f in [QuantFormat::Tf32, QuantFormat::Fp16, QuantFormat::Bf16] {
            let wq = f.quantize_matrix(&w);
            let q = f.step_size(&w);
            // Worst single-element error ≤ ulp at that element's binade;
            // q is an RMS so allow a generous multiple.
            let max_err = w
                .as_slice()
                .iter()
                .zip(wq.as_slice())
                .map(|(&a, &b)| (a - b).abs() as f64)
                .fold(0.0, f64::max);
            assert!(max_err <= 4.0 * q, "{f}: max_err={max_err} q={q}");
        }
    }

    #[test]
    fn quantize_matrix_fp32_identity() {
        let w = ones();
        assert_eq!(QuantFormat::Fp32.quantize_matrix(&w), w);
    }

    #[test]
    #[should_panic(expected = "tensor-level calibration")]
    fn int8_scalar_rounding_panics() {
        QuantFormat::Int8.round_scalar(0.5);
    }

    #[test]
    fn storage_bits() {
        assert_eq!(QuantFormat::Fp32.storage_bits(), 32);
        assert_eq!(QuantFormat::Tf32.storage_bits(), 32);
        assert_eq!(QuantFormat::Fp16.storage_bits(), 16);
        assert_eq!(QuantFormat::Bf16.storage_bits(), 16);
        assert_eq!(QuantFormat::Int8.storage_bits(), 8);
    }

    #[test]
    fn empty_matrix_step_is_zero() {
        let w = Matrix::zeros(0, 0);
        for f in QuantFormat::ALL {
            assert_eq!(f.step_size(&w), 0.0);
        }
    }
}
