//! Property-based tests of the tensor substrate's algebraic laws.

use errflow_tensor::norms::{l1, l2, linf};
use errflow_tensor::spectral::{spectral_norm, svd_spectral_norm};
use errflow_tensor::Matrix;
use proptest::prelude::*;

fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

proptest! {
    #[test]
    fn transpose_is_involution(m in matrix_strategy(8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity_right(m in matrix_strategy(8)) {
        let i = Matrix::identity(m.cols());
        prop_assert_eq!(m.matmul(&i).unwrap(), m);
    }

    #[test]
    fn matmul_distributes_over_add(
        a in matrix_strategy(6),
        seed in 0u64..1000,
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let b = Matrix::from_fn(a.cols(), 4, |_, _| rng.gen_range(-1.0..1.0));
        let c = Matrix::from_fn(a.cols(), 4, |_, _| rng.gen_range(-1.0..1.0));
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-3 * x.abs().max(1.0));
        }
    }

    #[test]
    fn norm_inequalities(v in proptest::collection::vec(-100.0f32..100.0, 1..64)) {
        let n = v.len() as f64;
        let l2n = l2(&v);
        let linfn = linf(&v);
        let l1n = l1(&v);
        // ‖v‖∞ ≤ ‖v‖₂ ≤ ‖v‖₁ ≤ n·‖v‖∞ and (1/√n)‖v‖₂ ≤ ‖v‖∞.
        prop_assert!(linfn <= l2n + 1e-9);
        prop_assert!(l2n <= l1n + 1e-6);
        prop_assert!(l1n <= n * linfn + 1e-6);
        prop_assert!(l2n / n.sqrt() <= linfn + 1e-9);
    }

    #[test]
    fn spectral_norm_is_operator_norm(m in matrix_strategy(6), seed in 0u64..500) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let sigma = spectral_norm(&m);
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<f32> = (0..m.cols()).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let y = m.matvec(&x).unwrap();
        prop_assert!(l2(&y) <= sigma * l2(&x) * (1.0 + 1e-4) + 1e-6);
    }

    #[test]
    fn spectral_norm_submultiplicative(a in matrix_strategy(5), seed in 0u64..500) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let b = Matrix::from_fn(a.cols(), 5, |_, _| rng.gen_range(-2.0..2.0));
        let ab = a.matmul(&b).unwrap();
        let bound = spectral_norm(&a) * spectral_norm(&b);
        prop_assert!(svd_spectral_norm(&ab) <= bound * (1.0 + 1e-4) + 1e-6);
    }

    #[test]
    fn spectral_norm_triangle_inequality(a in matrix_strategy(5), seed in 0u64..500) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let b = Matrix::from_fn(a.rows(), a.cols(), |_, _| rng.gen_range(-2.0..2.0));
        let sum = a.add(&b).unwrap();
        let bound = spectral_norm(&a) + spectral_norm(&b);
        prop_assert!(svd_spectral_norm(&sum) <= bound * (1.0 + 1e-4) + 1e-6);
    }
}
