//! Property-based tests of the tensor substrate's algebraic laws, run as
//! plain `#[test]` loops over the workspace's seeded PRNG (64+ random
//! cases per property — no external test-framework dependency).

use errflow_tensor::norms::{l1, l2, linf};
use errflow_tensor::rng::StdRng;
use errflow_tensor::spectral::{spectral_norm, svd_spectral_norm};
use errflow_tensor::Matrix;

const CASES: usize = 64;

fn random_matrix(rng: &mut StdRng, max_dim: usize) -> Matrix {
    let r = rng.gen_range(1..=max_dim);
    let c = rng.gen_range(1..=max_dim);
    Matrix::from_fn(r, c, |_, _| rng.gen_range(-10.0..10.0))
}

#[test]
fn transpose_is_involution() {
    let mut rng = StdRng::seed_from_u64(0xA0);
    for _ in 0..CASES {
        let m = random_matrix(&mut rng, 8);
        assert_eq!(m.transpose().transpose(), m);
    }
}

#[test]
fn matmul_identity_right() {
    let mut rng = StdRng::seed_from_u64(0xA1);
    for _ in 0..CASES {
        let m = random_matrix(&mut rng, 8);
        let i = Matrix::identity(m.cols());
        assert_eq!(m.matmul(&i).unwrap(), m);
    }
}

#[test]
fn matmul_distributes_over_add() {
    let mut rng = StdRng::seed_from_u64(0xA2);
    for _ in 0..CASES {
        let a = random_matrix(&mut rng, 6);
        let b = Matrix::from_fn(a.cols(), 4, |_, _| rng.gen_range(-1.0..1.0));
        let c = Matrix::from_fn(a.cols(), 4, |_, _| rng.gen_range(-1.0..1.0));
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            assert!((x - y).abs() <= 1e-3 * x.abs().max(1.0));
        }
    }
}

#[test]
fn norm_inequalities() {
    let mut rng = StdRng::seed_from_u64(0xA3);
    for _ in 0..CASES {
        let len = rng.gen_range(1..64usize);
        let v: Vec<f32> = (0..len).map(|_| rng.gen_range(-100.0f32..100.0)).collect();
        let n = v.len() as f64;
        let l2n = l2(&v);
        let linfn = linf(&v);
        let l1n = l1(&v);
        // ‖v‖∞ ≤ ‖v‖₂ ≤ ‖v‖₁ ≤ n·‖v‖∞ and (1/√n)‖v‖₂ ≤ ‖v‖∞.
        assert!(linfn <= l2n + 1e-9);
        assert!(l2n <= l1n + 1e-6);
        assert!(l1n <= n * linfn + 1e-6);
        assert!(l2n / n.sqrt() <= linfn + 1e-9);
    }
}

#[test]
fn spectral_norm_is_operator_norm() {
    let mut rng = StdRng::seed_from_u64(0xA4);
    for _ in 0..CASES {
        let m = random_matrix(&mut rng, 6);
        let sigma = spectral_norm(&m);
        let x: Vec<f32> = (0..m.cols()).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let y = m.matvec(&x).unwrap();
        assert!(l2(&y) <= sigma * l2(&x) * (1.0 + 1e-4) + 1e-6);
    }
}

#[test]
fn spectral_norm_submultiplicative() {
    let mut rng = StdRng::seed_from_u64(0xA5);
    for _ in 0..CASES {
        let a = random_matrix(&mut rng, 5);
        let b = Matrix::from_fn(a.cols(), 5, |_, _| rng.gen_range(-2.0..2.0));
        let ab = a.matmul(&b).unwrap();
        let bound = spectral_norm(&a) * spectral_norm(&b);
        assert!(svd_spectral_norm(&ab) <= bound * (1.0 + 1e-4) + 1e-6);
    }
}

#[test]
fn spectral_norm_triangle_inequality() {
    let mut rng = StdRng::seed_from_u64(0xA6);
    for _ in 0..CASES {
        let a = random_matrix(&mut rng, 5);
        let b = Matrix::from_fn(a.rows(), a.cols(), |_, _| rng.gen_range(-2.0..2.0));
        let sum = a.add(&b).unwrap();
        let bound = spectral_norm(&a) + spectral_norm(&b);
        assert!(svd_spectral_norm(&sum) <= bound * (1.0 + 1e-4) + 1e-6);
    }
}
