//! Small statistics helpers used when aggregating achieved errors.
//!
//! The paper plots the *geometric mean and range* of achieved QoI errors
//! across compressors and batches (Figs. 3–6); [`Summary`] captures exactly
//! those aggregates.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Population variance; `0.0` for fewer than two samples.
pub fn variance(v: &[f64]) -> f64 {
    if v.len() < 2 {
        return 0.0;
    }
    let m = mean(v);
    v.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
}

/// Geometric mean of strictly positive samples; non-positive samples are
/// skipped (they would otherwise collapse the product to zero, which is not
/// what an error-magnitude aggregate wants).  Returns `0.0` when no positive
/// sample exists.
pub fn geometric_mean(v: &[f64]) -> f64 {
    let logs: Vec<f64> = v.iter().filter(|&&x| x > 0.0).map(|&x| x.ln()).collect();
    if logs.is_empty() {
        0.0
    } else {
        (logs.iter().sum::<f64>() / logs.len() as f64).exp()
    }
}

/// Min/max/geometric-mean summary of a set of achieved errors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Geometric mean of the positive samples.
    pub geo_mean: f64,
    /// Number of samples aggregated.
    pub count: usize,
}

impl Summary {
    /// Aggregates a sample set; returns `None` for an empty slice.
    pub fn of(v: &[f64]) -> Option<Summary> {
        if v.is_empty() {
            return None;
        }
        Some(Summary {
            min: v.iter().copied().fold(f64::INFINITY, f64::min),
            max: v.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            geo_mean: geometric_mean(v),
            count: v.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_basic() {
        assert_eq!(variance(&[1.0, 1.0, 1.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn geometric_mean_known() {
        assert!((geometric_mean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn geometric_mean_skips_nonpositive() {
        assert!((geometric_mean(&[0.0, 4.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[0.0, -1.0]), 0.0);
    }

    #[test]
    fn summary_aggregates() {
        let s = Summary::of(&[1.0, 4.0, 2.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.count, 3);
        assert!((s.geo_mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }
}
