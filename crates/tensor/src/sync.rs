//! Poison-tolerant lock helpers shared across the workspace.
//!
//! Every `Mutex`/`Condvar` in errflow guards state that remains structurally
//! valid if a thread panics while holding the lock — job counters, queues of
//! requests, scratch free-lists.  Panic poisoning is therefore pure
//! collateral damage: propagating it turns one failed request into a wedged
//! server (every subsequent `lock().unwrap()` panics too).  These helpers
//! recover the guard from a poisoned lock so one panicked worker cannot take
//! the process down with it.
//!
//! Do **not** use them for state with multi-step invariants that a mid-update
//! panic could tear; none exists in the workspace today (all guarded updates
//! are single push/pop/flag writes).

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Locks `m`, recovering from poisoning.
#[inline]
pub fn lock_recover<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Waits on `cv`, recovering the guard from poisoning.
#[inline]
pub fn wait_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn lock_recover_survives_poison() {
        let m = Arc::new(Mutex::new(7usize));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock_recover(&m), 7);
        *lock_recover(&m) = 9;
        assert_eq!(*lock_recover(&m), 9);
    }

    #[test]
    fn wait_recover_returns_usable_guard() {
        use std::sync::Condvar;
        use std::time::Duration;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            *lock_recover(&pair2.0) = true;
            pair2.1.notify_all();
        });
        let (m, cv) = &*pair;
        let mut ready = lock_recover(m);
        while !*ready {
            ready = wait_recover(cv, ready);
        }
        assert!(*ready);
        h.join().unwrap();
    }
}
