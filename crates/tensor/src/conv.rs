//! 2-D convolution via im2col.
//!
//! The EuroSAT workload in the paper uses ResNet models, whose building
//! blocks are 3×3 convolutions.  We lower convolution to GEMM through the
//! standard im2col transformation so the rest of the stack (spectral norms,
//! quantization, error bounds) can treat a convolution layer as a single
//! weight matrix of shape `(out_channels, in_channels·kh·kw)` acting on
//! unrolled patches — the same lowering PyTorch's `unfold` performs and the
//! approximation commonly used when spectrally normalising conv layers.

use crate::error::TensorError;
use crate::matrix::Matrix;
use crate::Result;

/// Shape of a 2-D feature map: channels × height × width, stored CHW.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapShape {
    /// Number of channels.
    pub channels: usize,
    /// Spatial height.
    pub height: usize,
    /// Spatial width.
    pub width: usize,
}

impl MapShape {
    /// Creates a shape; all dimensions must be nonzero.
    pub fn new(channels: usize, height: usize, width: usize) -> Self {
        MapShape {
            channels,
            height,
            width,
        }
    }

    /// Total number of scalar elements.
    pub fn len(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// `true` when any dimension is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Static description of a convolution: kernel size, stride, padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvSpec {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero-padding in both dimensions.
    pub padding: usize,
}

impl ConvSpec {
    /// A `k`×`k` kernel with the given stride and padding.
    pub fn square(k: usize, stride: usize, padding: usize) -> Self {
        ConvSpec {
            kh: k,
            kw: k,
            stride,
            padding,
        }
    }

    /// Output spatial size for an input of `(h, w)`.
    pub fn output_hw(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        let ho = (h + 2 * self.padding).checked_sub(self.kh);
        let wo = (w + 2 * self.padding).checked_sub(self.kw);
        match (ho, wo) {
            (Some(ho), Some(wo)) => Ok((ho / self.stride + 1, wo / self.stride + 1)),
            _ => Err(TensorError::InvalidDimension {
                op: "output_hw",
                detail: format!(
                    "kernel {}x{} larger than padded input {}x{}",
                    self.kh,
                    self.kw,
                    h + 2 * self.padding,
                    w + 2 * self.padding
                ),
            }),
        }
    }
}

/// Unrolls a CHW feature map into the im2col matrix.
///
/// The result has shape `(channels·kh·kw, out_h·out_w)`: each column is one
/// receptive-field patch, so a convolution with weight matrix
/// `(out_channels, channels·kh·kw)` becomes a plain GEMM.
pub fn im2col(input: &[f32], shape: MapShape, spec: ConvSpec) -> Result<Matrix> {
    if input.len() != shape.len() {
        return Err(TensorError::InvalidDimension {
            op: "im2col",
            detail: format!(
                "input buffer length {} does not match shape {:?}",
                input.len(),
                shape
            ),
        });
    }
    let (oh, ow) = spec.output_hw(shape.height, shape.width)?;
    let patch_len = shape.channels * spec.kh * spec.kw;
    let mut out = Matrix::zeros(patch_len, oh * ow);
    let h = shape.height as isize;
    let w = shape.width as isize;
    let pad = spec.padding as isize;

    for c in 0..shape.channels {
        for ky in 0..spec.kh {
            for kx in 0..spec.kw {
                let prow = (c * spec.kh + ky) * spec.kw + kx;
                for oy in 0..oh {
                    let iy = (oy * spec.stride) as isize + ky as isize - pad;
                    for ox in 0..ow {
                        let ix = (ox * spec.stride) as isize + kx as isize - pad;
                        let v = if iy >= 0 && iy < h && ix >= 0 && ix < w {
                            input[(c * shape.height + iy as usize) * shape.width + ix as usize]
                        } else {
                            0.0
                        };
                        out.set(prow, oy * ow + ox, v);
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Convolution forward pass: `weights · im2col(input)`.
///
/// `weights` must have shape `(out_channels, in_channels·kh·kw)`.  Returns
/// the CHW output buffer and its shape.
pub fn conv2d(
    input: &[f32],
    shape: MapShape,
    weights: &Matrix,
    spec: ConvSpec,
) -> Result<(Vec<f32>, MapShape)> {
    let patches = im2col(input, shape, spec)?;
    if weights.cols() != patches.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            lhs: weights.shape(),
            rhs: patches.shape(),
        });
    }
    let (oh, ow) = spec.output_hw(shape.height, shape.width)?;
    let out = weights.matmul(&patches)?;
    let out_shape = MapShape::new(weights.rows(), oh, ow);
    Ok((out.into_vec(), out_shape))
}

/// Adjoint of [`im2col`]: scatters a patch matrix back into a CHW buffer,
/// accumulating overlapping contributions.
///
/// This is exactly the operation backpropagation needs to push a gradient
/// through a convolution: if `Y = W · im2col(X)` then
/// `∂L/∂X = col2im(Wᵀ · ∂L/∂Y)`.
pub fn col2im(cols: &Matrix, shape: MapShape, spec: ConvSpec) -> Result<Vec<f32>> {
    let (oh, ow) = spec.output_hw(shape.height, shape.width)?;
    let patch_len = shape.channels * spec.kh * spec.kw;
    if cols.shape() != (patch_len, oh * ow) {
        return Err(TensorError::ShapeMismatch {
            op: "col2im",
            lhs: cols.shape(),
            rhs: (patch_len, oh * ow),
        });
    }
    let mut out = vec![0.0f32; shape.len()];
    let h = shape.height as isize;
    let w = shape.width as isize;
    let pad = spec.padding as isize;
    for c in 0..shape.channels {
        for ky in 0..spec.kh {
            for kx in 0..spec.kw {
                let prow = (c * spec.kh + ky) * spec.kw + kx;
                for oy in 0..oh {
                    let iy = (oy * spec.stride) as isize + ky as isize - pad;
                    if iy < 0 || iy >= h {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * spec.stride) as isize + kx as isize - pad;
                        if ix < 0 || ix >= w {
                            continue;
                        }
                        out[(c * shape.height + iy as usize) * shape.width + ix as usize] +=
                            cols.get(prow, oy * ow + ox);
                    }
                }
            }
        }
    }
    Ok(out)
}

/// 2×2 average pooling with stride 2 (used by the compact ResNet head).
pub fn avg_pool2(input: &[f32], shape: MapShape) -> (Vec<f32>, MapShape) {
    let oh = shape.height / 2;
    let ow = shape.width / 2;
    let mut out = vec![0.0f32; shape.channels * oh * ow];
    for c in 0..shape.channels {
        for y in 0..oh {
            for x in 0..ow {
                let mut acc = 0.0;
                for dy in 0..2 {
                    for dx in 0..2 {
                        acc += input[(c * shape.height + 2 * y + dy) * shape.width + 2 * x + dx];
                    }
                }
                out[(c * oh + y) * ow + x] = acc / 4.0;
            }
        }
    }
    (out, MapShape::new(shape.channels, oh, ow))
}

/// Global average pooling: collapses each channel to its mean.
pub fn global_avg_pool(input: &[f32], shape: MapShape) -> Vec<f32> {
    let hw = (shape.height * shape.width) as f32;
    (0..shape.channels)
        .map(|c| {
            input[c * shape.height * shape.width..(c + 1) * shape.height * shape.width]
                .iter()
                .sum::<f32>()
                / hw
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_hw_same_padding() {
        let spec = ConvSpec::square(3, 1, 1);
        assert_eq!(spec.output_hw(8, 8).unwrap(), (8, 8));
    }

    #[test]
    fn output_hw_stride_two() {
        let spec = ConvSpec::square(3, 2, 1);
        assert_eq!(spec.output_hw(8, 8).unwrap(), (4, 4));
    }

    #[test]
    fn output_hw_kernel_too_large() {
        let spec = ConvSpec::square(5, 1, 0);
        assert!(spec.output_hw(3, 3).is_err());
    }

    #[test]
    fn im2col_identity_kernel_shape() {
        let shape = MapShape::new(1, 3, 3);
        let input: Vec<f32> = (0..9).map(|v| v as f32).collect();
        let cols = im2col(&input, shape, ConvSpec::square(1, 1, 0)).unwrap();
        assert_eq!(cols.shape(), (1, 9));
        assert_eq!(cols.as_slice(), input.as_slice());
    }

    #[test]
    fn im2col_rejects_bad_buffer() {
        let shape = MapShape::new(1, 3, 3);
        assert!(im2col(&[0.0; 4], shape, ConvSpec::square(1, 1, 0)).is_err());
    }

    #[test]
    fn conv2d_identity_kernel_is_noop() {
        let shape = MapShape::new(2, 4, 4);
        let input: Vec<f32> = (0..32).map(|v| v as f32 * 0.1).collect();
        // 1x1 conv whose weight matrix is the 2x2 identity over channels.
        let w = Matrix::identity(2);
        let (out, out_shape) = conv2d(&input, shape, &w, ConvSpec::square(1, 1, 0)).unwrap();
        assert_eq!(out_shape, shape);
        assert_eq!(out, input);
    }

    #[test]
    fn conv2d_averaging_kernel() {
        // 3x3 mean filter over a constant image stays constant (interior).
        let shape = MapShape::new(1, 5, 5);
        let input = vec![2.0f32; 25];
        let w = Matrix::filled(1, 9, 1.0 / 9.0);
        let (out, os) = conv2d(&input, shape, &w, ConvSpec::square(3, 1, 0)).unwrap();
        assert_eq!(os, MapShape::new(1, 3, 3));
        assert!(out.iter().all(|&v| (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn conv2d_padding_zeros_at_border() {
        let shape = MapShape::new(1, 3, 3);
        let input = vec![1.0f32; 9];
        let w = Matrix::filled(1, 9, 1.0); // 3x3 sum filter
        let (out, os) = conv2d(&input, shape, &w, ConvSpec::square(3, 1, 1)).unwrap();
        assert_eq!(os, MapShape::new(1, 3, 3));
        // centre sees all 9 ones; corner sees 4.
        assert_eq!(out[4], 9.0);
        assert_eq!(out[0], 4.0);
    }

    #[test]
    fn avg_pool_halves_dimensions() {
        let shape = MapShape::new(1, 4, 4);
        let input: Vec<f32> = (0..16).map(|v| v as f32).collect();
        let (out, os) = avg_pool2(&input, shape);
        assert_eq!(os, MapShape::new(1, 2, 2));
        assert_eq!(out[0], (0.0 + 1.0 + 4.0 + 5.0) / 4.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // ⟨im2col(x), Y⟩ = ⟨x, col2im(Y)⟩ — the defining adjoint property.
        use crate::rng::StdRng;
        let mut rng = StdRng::seed_from_u64(17);
        let shape = MapShape::new(2, 5, 5);
        let spec = ConvSpec::square(3, 1, 1);
        let x: Vec<f32> = (0..shape.len()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let cols = im2col(&x, shape, spec).unwrap();
        let y = Matrix::from_fn(cols.rows(), cols.cols(), |_, _| rng.gen_range(-1.0..1.0));
        let lhs: f64 = cols
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(&a, &b)| (a as f64) * (b as f64))
            .sum();
        let back = col2im(&y, shape, spec).unwrap();
        let rhs: f64 = x
            .iter()
            .zip(&back)
            .map(|(&a, &b)| (a as f64) * (b as f64))
            .sum();
        assert!((lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0));
    }

    #[test]
    fn col2im_rejects_bad_shape() {
        let shape = MapShape::new(1, 3, 3);
        let bad = Matrix::zeros(2, 2);
        assert!(col2im(&bad, shape, ConvSpec::square(1, 1, 0)).is_err());
    }

    #[test]
    fn col2im_counts_patch_multiplicity() {
        // All-ones patch matrix: each input position accumulates once per
        // patch that covers it.  Centre of a 3x3 image under 3x3/pad1 conv
        // is covered by all 9 patches.
        let shape = MapShape::new(1, 3, 3);
        let spec = ConvSpec::square(3, 1, 1);
        let cols = Matrix::filled(9, 9, 1.0);
        let out = col2im(&cols, shape, spec).unwrap();
        assert_eq!(out[4], 9.0);
        assert_eq!(out[0], 4.0); // corner covered by 4 patches
    }

    #[test]
    fn global_avg_pool_per_channel_mean() {
        let shape = MapShape::new(2, 2, 2);
        let input = vec![1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0];
        let out = global_avg_pool(&input, shape);
        assert_eq!(out, vec![1.0, 2.0]);
    }
}
