//! Vector norms and the L2/L∞ relationship the paper relies on.
//!
//! The paper derives bounds in the L2 norm and extends them to L∞ via
//! `(1/√n)‖·‖₂ ≤ ‖·‖∞ ≤ ‖·‖₂`.  [`Norm`] names the two QoI norms used in
//! every experiment; the free functions compute them (with `f64`
//! accumulation so the measurement does not add rounding error of its own).

/// Which norm a tolerance / error is expressed in.
///
/// Matches the paper's figures: every experiment is reported in both L∞
/// (Figs. 3, 5, 7, 11, 13, 15) and L2 (Figs. 4, 6, 8, 12, 14), except ZFP
/// pipelines which only support L∞.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Norm {
    /// Euclidean norm ‖·‖₂.
    L2,
    /// Max norm ‖·‖∞.
    LInf,
}

impl Norm {
    /// Evaluates this norm on a slice.
    pub fn eval(&self, v: &[f32]) -> f64 {
        match self {
            Norm::L2 => l2(v),
            Norm::LInf => linf(v),
        }
    }

    /// Short lowercase label used by the figure binaries (`"l2"` / `"linf"`).
    pub fn label(&self) -> &'static str {
        match self {
            Norm::L2 => "l2",
            Norm::LInf => "linf",
        }
    }

    /// Converts an L2-norm bound to a bound in this norm for a vector of
    /// length `n`, using `‖·‖∞ ≤ ‖·‖₂`.
    ///
    /// The L2 bound is itself a valid L∞ bound; no scaling is needed.  This
    /// method exists so call sites state their intent explicitly.
    pub fn from_l2_bound(&self, l2_bound: f64, _n: usize) -> f64 {
        match self {
            Norm::L2 => l2_bound,
            Norm::LInf => l2_bound,
        }
    }

    /// Converts a tolerance expressed in this norm into a *safe* L2
    /// tolerance for a vector of length `n`:
    /// an L∞ tolerance `t` guarantees at most `t·√n` in L2; conversely an L2
    /// tolerance is already an L∞ tolerance.
    pub fn to_l2_tolerance(&self, tol: f64, n: usize) -> f64 {
        match self {
            Norm::L2 => tol,
            Norm::LInf => tol, // an L2 bound of `tol` implies an L∞ bound of `tol`
        }
        .min(tol * (n as f64).sqrt())
    }
}

impl std::fmt::Display for Norm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Norm::L2 => write!(f, "L2"),
            Norm::LInf => write!(f, "L-infinity"),
        }
    }
}

/// Euclidean norm with `f64` accumulation.
pub fn l2(v: &[f32]) -> f64 {
    v.iter()
        .map(|&x| (x as f64) * (x as f64))
        .sum::<f64>()
        .sqrt()
}

/// Max (L∞) norm.
pub fn linf(v: &[f32]) -> f64 {
    v.iter().fold(0.0f64, |m, &x| m.max((x as f64).abs()))
}

/// L1 norm.
pub fn l1(v: &[f32]) -> f64 {
    v.iter().map(|&x| (x as f64).abs()).sum()
}

/// Norm of the element-wise difference `a - b`.
pub fn diff_norm(a: &[f32], b: &[f32], norm: Norm) -> f64 {
    assert_eq!(a.len(), b.len(), "diff_norm: length mismatch");
    let d: Vec<f32> = a.iter().zip(b).map(|(&x, &y)| x - y).collect();
    norm.eval(&d)
}

/// Relative error `‖a - b‖ / ‖a‖` in the given norm.
///
/// Returns the absolute error when `‖a‖ == 0` (the convention the figure
/// harness uses so zero reference batches do not produce NaN).
pub fn relative_error(reference: &[f32], approx: &[f32], norm: Norm) -> f64 {
    let denom = norm.eval(reference);
    let num = diff_norm(reference, approx, norm);
    if denom == 0.0 {
        num
    } else {
        num / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_known() {
        assert!((l2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn linf_known() {
        assert_eq!(linf(&[1.0, -7.0, 3.0]), 7.0);
    }

    #[test]
    fn l1_known() {
        assert_eq!(l1(&[1.0, -2.0, 3.0]), 6.0);
    }

    #[test]
    fn norm_eval_dispatch() {
        let v = [3.0, 4.0];
        assert!((Norm::L2.eval(&v) - 5.0).abs() < 1e-12);
        assert_eq!(Norm::LInf.eval(&v), 4.0);
    }

    #[test]
    fn sandwich_inequality_holds() {
        // (1/√n)‖v‖₂ ≤ ‖v‖∞ ≤ ‖v‖₂ — the identity the paper quotes.
        let v = [0.3f32, -1.2, 0.7, 2.5, -0.1];
        let n = v.len() as f64;
        let l2n = l2(&v);
        let linfn = linf(&v);
        assert!(l2n / n.sqrt() <= linfn + 1e-12);
        assert!(linfn <= l2n + 1e-12);
    }

    #[test]
    fn diff_norm_zero_for_equal() {
        let v = [1.0f32, 2.0, 3.0];
        assert_eq!(diff_norm(&v, &v, Norm::L2), 0.0);
        assert_eq!(diff_norm(&v, &v, Norm::LInf), 0.0);
    }

    #[test]
    fn relative_error_basic() {
        let a = [2.0f32, 0.0];
        let b = [1.0f32, 0.0];
        assert!((relative_error(&a, &b, Norm::L2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn relative_error_zero_reference_falls_back_to_absolute() {
        let a = [0.0f32, 0.0];
        let b = [0.0f32, 1.0];
        assert_eq!(relative_error(&a, &b, Norm::LInf), 1.0);
    }

    #[test]
    fn labels() {
        assert_eq!(Norm::L2.label(), "l2");
        assert_eq!(Norm::LInf.label(), "linf");
        assert_eq!(Norm::LInf.to_string(), "L-infinity");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn diff_norm_length_mismatch_panics() {
        diff_norm(&[1.0], &[1.0, 2.0], Norm::L2);
    }
}
