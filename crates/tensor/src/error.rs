//! Error type shared by all tensor operations.

use std::fmt;

/// Errors raised by shape-checked tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes.
    ShapeMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A dimension argument was zero or otherwise invalid.
    InvalidDimension {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Explanation of which dimension was invalid and why.
        detail: String,
    },
    /// An iterative algorithm failed to converge.
    NoConvergence {
        /// Human-readable name of the algorithm.
        op: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "{op}: shape mismatch between {}x{} and {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::InvalidDimension { op, detail } => {
                write!(f, "{op}: invalid dimension: {detail}")
            }
            TensorError::NoConvergence { op, iterations } => {
                write!(f, "{op}: failed to converge after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert_eq!(e.to_string(), "matmul: shape mismatch between 2x3 and 4x5");
    }

    #[test]
    fn display_invalid_dimension() {
        let e = TensorError::InvalidDimension {
            op: "zeros",
            detail: "rows must be nonzero".into(),
        };
        assert!(e.to_string().contains("rows must be nonzero"));
    }

    #[test]
    fn display_no_convergence() {
        let e = TensorError::NoConvergence {
            op: "power_iteration",
            iterations: 100,
        };
        assert!(e.to_string().contains("100 iterations"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<TensorError>();
    }
}
