//! # errflow-tensor
//!
//! Dense linear-algebra substrate for the `errflow` workspace.
//!
//! Everything in the paper's theory is expressed in terms of matrix-vector
//! products, L2/L∞ norms, and spectral norms (largest singular values) of
//! weight matrices.  This crate provides those primitives from scratch:
//!
//! * [`Matrix`] — row-major `f32` dense matrix with GEMM, GEMV and the
//!   element-wise operations needed by the neural-network substrate.
//! * [`gemm`] — the cache-blocked, panel-packed, multi-threaded GEMM/GEMV
//!   kernel every `Matrix` product routes through (with a runtime
//!   AVX2+FMA microkernel on x86-64); the textbook loop survives as
//!   [`Matrix::matmul_naive`] for reference and benchmarking.
//! * [`pool`] — the shared workspace thread pool: persistent workers,
//!   caller participation, per-job concurrency caps.  GEMM row bands,
//!   chunked compression and the serving layer all run on it.
//! * [`norms`] — L1/L2/L∞ vector norms and the L2↔L∞ conversion inequality
//!   used throughout the paper (`(1/√n)‖·‖₂ ≤ ‖·‖∞ ≤ ‖·‖₂`).
//! * [`spectral`] — power iteration (von Mises & Pollaczek-Geiringer, the
//!   paper's reference \[17\]) for σ_W, plus a one-sided Jacobi SVD used as an
//!   exact cross-check in tests.
//! * [`conv`] — im2col-based 2-D convolution used by the ResNet models.
//! * [`init`] — deterministic Xavier/He/uniform weight initialisation.
//! * [`rng`] — the seeded, dependency-free PRNG (xoshiro256++) all
//!   randomness in the workspace flows through.
//! * [`stats`] — small statistics helpers (mean, variance, geometric mean)
//!   used by the benchmark harness when aggregating achieved errors.

pub mod conv;
pub mod error;
pub mod gemm;
pub mod init;
pub mod matrix;
pub mod norms;
pub mod pool;
pub mod rng;
pub mod simd;
pub mod spectral;
pub mod stats;
pub mod sync;

pub use error::TensorError;
pub use matrix::Matrix;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
