//! Cache-blocked, panel-packed, multi-threaded GEMM kernel.
//!
//! Every hot path in the workspace — power iteration for Ineq. 3 spectral
//! analysis, PSN training, im2col convolution, and the serving layer's
//! batched forward pass — bottoms out in dense matrix products.  This
//! module replaces the textbook `i-k-j` loop (kept as
//! [`crate::Matrix::matmul_naive`] for reference and testing) with the
//! standard high-performance decomposition:
//!
//! * **Blocking** — the iteration space is tiled `NC × KC × MC` so the
//!   packed `KC×NC` panel of `B` stays in L2/L3 and each `MC×KC` block of
//!   `A` stays in L2 while it is reused across the whole `B` panel.
//! * **Packing** — `A` blocks are repacked into `MR`-row panels and `B`
//!   blocks into `NR`-column panels, so the microkernel streams both
//!   operands contiguously regardless of the caller's leading dimensions
//!   (this is also what makes `C += A·Bᵀ` free: only the pack changes).
//! * **Microkernel** — a fixed `MR×NR` register tile accumulated over the
//!   packed `KC` dimension with no bounds checks in the hot loop.  The
//!   body is plain scalar Rust written to autovectorize; on x86-64 the
//!   same body is additionally compiled under
//!   `#[target_feature(enable = "avx2,fma")]` and selected at runtime, so
//!   generic builds still get 256-bit FMA arithmetic without giving up
//!   portability.
//! * **Row-band parallelism** — bands of `MC` rows of `C` are distributed
//!   over the shared workspace [`crate::pool`].  Bands write disjoint rows,
//!   so results are bitwise identical for every thread count.
//!
//! Entry points take raw row-major slices; [`crate::Matrix`] wraps them.

use crate::pool;

// ---------------------------------------------------------------------------
// Blocking parameters
// ---------------------------------------------------------------------------

/// Rows of `C` per parallel band and per packed `A` block (L2-sized:
/// `MC·KC·4 B = 128 KiB`).
pub const MC: usize = 128;
/// Depth of the packed `A`/`B` blocks (the microkernel's accumulation
/// length; `KC·NR·4 B` panels stay L1-resident).
pub const KC: usize = 256;
/// Columns of the packed `B` panel (`KC·NC·4 B = 2 MiB`, L3-sized).
pub const NC: usize = 2048;

/// Microkernel tile for the portable autovectorized path: `4×8` keeps the
/// accumulator tile plus one `B` row and an `A` broadcast inside the 16
/// baseline SSE2 registers.
const MR_GEN: usize = 4;
const NR_GEN: usize = 8;

/// Microkernel tile for the AVX2+FMA path: `4×16` is eight 256-bit
/// accumulators (two per row), enough independent FMA chains to hide
/// latency while leaving registers for the `B` loads and `A` broadcast.
#[cfg(target_arch = "x86_64")]
const MR_AVX: usize = 4;
#[cfg(target_arch = "x86_64")]
const NR_AVX: usize = 16;

/// Products with `m·n·k` at or below this run the simple unblocked kernel:
/// packing overhead is quadratic and dominates tiny products.
const SMALL_GEMM: usize = 32 * 32 * 32;

/// `rows·cols` below which GEMV stays on the calling thread.
const SMALL_GEMV: usize = 64 * 1024;

// ---------------------------------------------------------------------------
// Microkernel
// ---------------------------------------------------------------------------

/// The shared microkernel body: `acc[MR][NR] += Ap · Bp` over the packed
/// depth.  `ap` is `kc` columns of `MR` values, `bp` is `kc` rows of `NR`
/// values; both are exact-size panels so the loop carries no bounds checks
/// after the `chunks_exact` split.  `FMA` selects fused `mul_add` (only
/// profitable when the target actually has the instruction — on soft-fma
/// targets it would fall back to a library call).
#[inline(always)]
fn microkernel_body<const MR: usize, const NR: usize, const FMA: bool>(
    ap: &[f32],
    bp: &[f32],
    acc: &mut [[f32; NR]; MR],
) {
    for (a, b) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        let a: &[f32; MR] = a.try_into().expect("packed A panel column");
        let b: &[f32; NR] = b.try_into().expect("packed B panel row");
        for i in 0..MR {
            let ai = a[i];
            for j in 0..NR {
                acc[i][j] = if FMA {
                    ai.mul_add(b[j], acc[i][j])
                } else {
                    acc[i][j] + ai * b[j]
                };
            }
        }
    }
}

/// Portable microkernel: relies on LLVM autovectorizing the fully unrolled
/// `MR×NR` tile (SSE2 on baseline x86-64, NEON on aarch64).
fn microkernel_generic(ap: &[f32], bp: &[f32], acc: &mut [[f32; NR_GEN]; MR_GEN]) {
    microkernel_body::<MR_GEN, NR_GEN, false>(ap, bp, acc);
}

/// AVX2+FMA instantiation of the same body.
///
/// # Safety
/// Callers must have verified `avx2` and `fma` CPU support (see
/// [`kernel_kind`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn microkernel_avx2(ap: &[f32], bp: &[f32], acc: &mut [[f32; NR_AVX]; MR_AVX]) {
    microkernel_body::<MR_AVX, NR_AVX, true>(ap, bp, acc);
}

/// Which instantiation of the kernel this CPU runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Portable autovectorized microkernel.
    Generic,
    /// Runtime-detected AVX2+FMA microkernel (x86-64 only).
    Avx2Fma,
}

/// Runtime CPU dispatch via the shared [`crate::simd`] feature cache.
pub fn kernel_kind() -> KernelKind {
    if crate::simd::has_avx2_fma() {
        KernelKind::Avx2Fma
    } else {
        KernelKind::Generic
    }
}

// ---------------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------------

/// How the `B` operand is laid out in memory.
#[derive(Debug, Clone, Copy)]
enum BLayout {
    /// `B` is `k×n` row-major: element `(p, j)` at `p·n + j`.
    Normal,
    /// The buffer holds `Bᵀ` as `n×k` row-major: element `(p, j)` at
    /// `j·k + p`.  Used by `C += A·Bᵀ` (e.g. batched MLP layers, which
    /// apply `H·Wᵀ` without materialising the transpose).
    Transposed,
}

/// Borrowed `B` operand with logical shape `k×n`.
#[derive(Clone, Copy)]
struct BRef<'a> {
    data: &'a [f32],
    layout: BLayout,
    k: usize,
    n: usize,
}

/// Packs the `kc×nc` block of `B` at `(pc, jc)` into `NR`-column panels:
/// panel-major, depth-major inside a panel, `NR` contiguous values per
/// depth step, zero-padded to full `NR` at the right edge.
fn pack_b<const NR: usize>(
    b: BRef<'_>,
    pc: usize,
    jc: usize,
    kc: usize,
    nc: usize,
    buf: &mut [f32],
) {
    let panels = nc.div_ceil(NR);
    for jp in 0..panels {
        let j0 = jc + jp * NR;
        let width = NR.min(jc + nc - j0);
        let dst = &mut buf[jp * kc * NR..][..kc * NR];
        match b.layout {
            BLayout::Normal => {
                for p in 0..kc {
                    let src = &b.data[(pc + p) * b.n + j0..][..width];
                    let row = &mut dst[p * NR..][..NR];
                    row[..width].copy_from_slice(src);
                    row[width..].fill(0.0);
                }
            }
            BLayout::Transposed => {
                for w in 0..width {
                    let col = &b.data[(j0 + w) * b.k + pc..][..kc];
                    for (p, &v) in col.iter().enumerate() {
                        dst[p * NR + w] = v;
                    }
                }
                for p in 0..kc {
                    dst[p * NR + width..p * NR + NR].fill(0.0);
                }
            }
        }
    }
}

/// Packs the `mc×kc` block of `A` at `(ic, pc)` into `MR`-row panels:
/// panel-major, depth-major inside a panel, `MR` contiguous values per
/// depth step, zero-padded to full `MR` at the bottom edge.
fn pack_a<const MR: usize>(
    a: &[f32],
    lda: usize,
    ic: usize,
    pc: usize,
    mc: usize,
    kc: usize,
    buf: &mut [f32],
) {
    let panels = mc.div_ceil(MR);
    for ip in 0..panels {
        let i0 = ic + ip * MR;
        let height = MR.min(ic + mc - i0);
        let dst = &mut buf[ip * kc * MR..][..kc * MR];
        for p in 0..kc {
            let col = &mut dst[p * MR..][..MR];
            for (r, slot) in col[..height].iter_mut().enumerate() {
                *slot = a[(i0 + r) * lda + pc + p];
            }
            col[height..].fill(0.0);
        }
    }
}

/// Accumulates a microkernel tile into `C` (`ldc`-strided), clipping to the
/// `mr_eff×nr_eff` valid region at the matrix edges.
#[inline(always)]
fn store_tile<const MR: usize, const NR: usize>(
    acc: &[[f32; NR]; MR],
    c: &mut [f32],
    ldc: usize,
    row: usize,
    col: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    if mr_eff == MR && nr_eff == NR {
        for (i, acc_row) in acc.iter().enumerate() {
            let dst = &mut c[(row + i) * ldc + col..][..NR];
            for j in 0..NR {
                dst[j] += acc_row[j];
            }
        }
    } else {
        for (i, acc_row) in acc.iter().take(mr_eff).enumerate() {
            let dst = &mut c[(row + i) * ldc + col..][..nr_eff];
            for (d, &v) in dst.iter_mut().zip(acc_row) {
                *d += v;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Blocked driver
// ---------------------------------------------------------------------------

/// `*mut f32` that may cross threads; each row band writes a disjoint row
/// range of `C`, so shared access is race-free.
#[derive(Clone, Copy)]
struct BandPtr(*mut f32);
// SAFETY: BandPtr is only handed to `parallel_for` closures that index
// disjoint row bands of the target buffer, and the caller blocks until every
// band completes, so the pointee outlives all cross-thread use.
unsafe impl Send for BandPtr {}
// SAFETY: concurrent access is to disjoint ranges only (see Send above); no
// two bands ever alias the same elements.
unsafe impl Sync for BandPtr {}

impl BandPtr {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Sync` wrapper instead of the bare `*mut f32` field.
    #[inline]
    fn get(self) -> *mut f32 {
        self.0
    }
}

/// One `(jc, pc)` step of the blocked driver: row bands of `C` accumulate
/// `A`'s `kc` columns against an already-packed `B` block, in parallel.
/// Shared verbatim by [`gemm_blocked`] (which packs `B` on the fly) and
/// [`gemm_blocked_prepacked`] (which slices a [`PackedB`]), so the two are
/// bitwise identical by construction.
#[allow(clippy::too_many_arguments)]
fn run_bands<const MR: usize, const NR: usize>(
    m: usize,
    n: usize,
    a: &[f32],
    k: usize,
    bpacked: &[f32],
    (jc, pc, kc, nc): (usize, usize, usize, usize),
    c_ptr: BandPtr,
    threads: usize,
    mk: unsafe fn(&[f32], &[f32], &mut [[f32; NR]; MR]),
) {
    let bands = m.div_ceil(MC);
    let b_panels = nc.div_ceil(NR);
    pool::global().parallel_for(bands, threads, move |band| {
        let ic = band * MC;
        let mc = MC.min(m - ic);
        let a_panels = mc.div_ceil(MR);
        let mut abuf = vec![0.0f32; a_panels * MR * kc];
        pack_a::<MR>(a, k, ic, pc, mc, kc, &mut abuf);
        debug_assert!(ic + mc <= m, "band exceeds C's row range");
        // SAFETY: bands index disjoint row ranges of `C` (band i
        // covers rows [i*MC, i*MC+mc)), and the pool blocks the
        // caller until every band finishes, so `c` outlives the
        // borrow and no two bands alias.
        let c_band = unsafe { std::slice::from_raw_parts_mut(c_ptr.get().add(ic * n), mc * n) };
        for jp in 0..b_panels {
            let nr_eff = NR.min(nc - jp * NR);
            let bp = &bpacked[jp * kc * NR..][..kc * NR];
            for ip in 0..a_panels {
                let mr_eff = MR.min(mc - ip * MR);
                let ap = &abuf[ip * kc * MR..][..kc * MR];
                let mut acc = [[0.0f32; NR]; MR];
                debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
                // SAFETY: `mk` is either the safe generic kernel or
                // the AVX2 one, selected only after runtime feature
                // detection; both require fully packed `ap`/`bp`
                // panels, asserted above.
                unsafe { mk(ap, bp, &mut acc) };
                store_tile::<MR, NR>(&acc, c_band, n, ip * MR, jc + jp * NR, mr_eff, nr_eff);
            }
        }
    });
}

/// The blocked, packed, row-band-parallel driver, monomorphised per
/// microkernel tile.
fn gemm_blocked<const MR: usize, const NR: usize>(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: BRef<'_>,
    c: &mut [f32],
    threads: usize,
    mk: unsafe fn(&[f32], &[f32], &mut [[f32; NR]; MR]),
) {
    let nc_cap = NC.min(n.div_ceil(NR) * NR);
    let kc_cap = KC.min(k);
    let mut bbuf = vec![0.0f32; kc_cap * nc_cap];
    let c_ptr = BandPtr(c.as_mut_ptr());

    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            let b_panels = nc.div_ceil(NR);
            let bpacked = &mut bbuf[..kc * b_panels * NR];
            pack_b::<NR>(b, pc, jc, kc, nc, bpacked);
            run_bands::<MR, NR>(m, n, a, k, bpacked, (jc, pc, kc, nc), c_ptr, threads, mk);
            pc += kc;
        }
        jc += nc;
    }
}

/// [`gemm_blocked`] against pre-packed `B` panels: identical traversal, but
/// each `(jc, pc)` block is sliced out of `panels` (stored in traversal
/// order by [`PackedB`]) instead of being packed on the fly.
fn gemm_blocked_prepacked<const MR: usize, const NR: usize>(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    panels: &[f32],
    c: &mut [f32],
    threads: usize,
    mk: unsafe fn(&[f32], &[f32], &mut [[f32; NR]; MR]),
) {
    let c_ptr = BandPtr(c.as_mut_ptr());
    let mut off = 0usize;
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            let block = kc * nc.div_ceil(NR) * NR;
            let bpacked = &panels[off..off + block];
            off += block;
            run_bands::<MR, NR>(m, n, a, k, bpacked, (jc, pc, kc, nc), c_ptr, threads, mk);
            pc += kc;
        }
        jc += nc;
    }
    debug_assert_eq!(off, panels.len(), "packed panel walk out of sync");
}

/// Total length of the panel buffer [`PackedB`] stores for a `k×n` operand
/// under an `NR`-column microkernel: the sum of every `(jc, pc)` block's
/// zero-padded panel size, in traversal order.
fn packed_len<const NR: usize>(k: usize, n: usize) -> usize {
    let mut total = 0usize;
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            total += kc * nc.div_ceil(NR) * NR;
            pc += kc;
        }
        jc += nc;
    }
    total
}

/// `B` packed once into microkernel panel layout for repeated products
/// against the same operand — the serving layer's weight matrices, which
/// otherwise re-pack identical panels on every batch.
///
/// The panel buffer fixes the `NR` of the kernel selected at pack time
/// ([`kernel_kind`] is a pure function of the CPU, so pack- and call-time
/// choices agree within a process); the raw operand is retained so products
/// small enough for the unblocked fallback stay bitwise identical to
/// [`gemm`] / [`gemm_transb`].
pub struct PackedB {
    k: usize,
    n: usize,
    kind: KernelKind,
    panels: Vec<f32>,
    raw: Vec<f32>,
    layout: BLayout,
}

impl PackedB {
    fn pack_ref(b: BRef<'_>) -> Self {
        let kind = kernel_kind();
        let (k, n) = (b.k, b.n);
        let panels = match kind {
            #[cfg(target_arch = "x86_64")]
            KernelKind::Avx2Fma => Self::pack_panels::<NR_AVX>(b),
            _ => Self::pack_panels::<NR_GEN>(b),
        };
        PackedB {
            k,
            n,
            kind,
            panels,
            raw: b.data.to_vec(),
            layout: b.layout,
        }
    }

    fn pack_panels<const NR: usize>(b: BRef<'_>) -> Vec<f32> {
        let (k, n) = (b.k, b.n);
        let mut panels = vec![0.0f32; packed_len::<NR>(k, n)];
        let mut off = 0usize;
        let mut jc = 0;
        while jc < n {
            let nc = NC.min(n - jc);
            let mut pc = 0;
            while pc < k {
                let kc = KC.min(k - pc);
                let block = kc * nc.div_ceil(NR) * NR;
                pack_b::<NR>(b, pc, jc, kc, nc, &mut panels[off..off + block]);
                off += block;
                pc += kc;
            }
            jc += nc;
        }
        panels
    }

    /// Packs `B` (`k×n` row-major) for [`gemm_prepacked`].
    pub fn pack(b: &[f32], k: usize, n: usize) -> Self {
        assert_eq!(b.len(), k * n, "B buffer does not match {k}x{n}");
        Self::pack_ref(BRef {
            data: b,
            layout: BLayout::Normal,
            k,
            n,
        })
    }

    /// Packs from a buffer holding `Bᵀ` as `n×k` row-major — the weight
    /// matrix case (`C += A·Wᵀ`).
    pub fn pack_transb(bt: &[f32], k: usize, n: usize) -> Self {
        assert_eq!(bt.len(), k * n, "Bᵀ buffer does not match {n}x{k}");
        Self::pack_ref(BRef {
            data: bt,
            layout: BLayout::Transposed,
            k,
            n,
        })
    }

    /// Logical `(k, n)` shape of the packed operand.
    pub fn shape(&self) -> (usize, usize) {
        (self.k, self.n)
    }

    /// Bytes held beyond the raw operand (panel buffer), for accounting.
    pub fn packed_bytes(&self) -> usize {
        self.panels.len() * std::mem::size_of::<f32>()
    }
}

/// `C += A·B` against a [`PackedB`], bitwise identical to [`gemm`] /
/// [`gemm_transb`] on the same operands (`A: m×k`, `C: m×n` with `(k, n) =
/// packed.shape()`) for every shape and thread count, but with the `B`
/// packing pass already paid.
pub fn gemm_prepacked(m: usize, a: &[f32], packed: &PackedB, c: &mut [f32], threads: usize) {
    let (k, n) = (packed.k, packed.n);
    assert_eq!(a.len(), m * k, "A buffer does not match {m}x{k}");
    assert_eq!(c.len(), m * n, "C buffer does not match {m}x{n}");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let braw = BRef {
        data: &packed.raw,
        layout: packed.layout,
        k,
        n,
    };
    if m * n * k <= SMALL_GEMM {
        gemm_simple(m, n, k, a, braw, c);
        return;
    }
    let _span = errflow_obs::trace::span("tensor.gemm");
    match packed.kind {
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2Fma => gemm_blocked_prepacked::<MR_AVX, NR_AVX>(
            m,
            n,
            k,
            a,
            &packed.panels,
            c,
            threads,
            microkernel_avx2,
        ),
        _ => gemm_blocked_prepacked::<MR_GEN, NR_GEN>(
            m,
            n,
            k,
            a,
            &packed.panels,
            c,
            threads,
            microkernel_generic as unsafe fn(&[f32], &[f32], &mut [[f32; NR_GEN]; MR_GEN]),
        ),
    }
}

/// Unblocked fallback for tiny products, where packing overhead dominates.
/// Branch-free `i-k-j` (`Normal`) or row-dot (`Transposed`, where both
/// operand rows are contiguous).
fn gemm_simple(m: usize, n: usize, k: usize, a: &[f32], b: BRef<'_>, c: &mut [f32]) {
    match b.layout {
        BLayout::Normal => {
            for i in 0..m {
                let crow = &mut c[i * n..(i + 1) * n];
                let arow = &a[i * k..(i + 1) * k];
                for (p, &aip) in arow.iter().enumerate() {
                    let brow = &b.data[p * n..(p + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += aip * bv;
                    }
                }
            }
        }
        BLayout::Transposed => {
            for i in 0..m {
                let arow = &a[i * k..(i + 1) * k];
                let crow = &mut c[i * n..(i + 1) * n];
                for (j, cv) in crow.iter_mut().enumerate() {
                    *cv += dot(arow, &b.data[j * k..(j + 1) * k]);
                }
            }
        }
    }
}

fn gemm_dispatch(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: BRef<'_>,
    c: &mut [f32],
    threads: usize,
) {
    assert_eq!(a.len(), m * k, "A buffer does not match {m}x{k}");
    assert_eq!(b.data.len(), k * n, "B buffer does not match {k}x{n}");
    assert_eq!(c.len(), m * n, "C buffer does not match {m}x{n}");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if m * n * k <= SMALL_GEMM {
        gemm_simple(m, n, k, a, b, c);
        return;
    }
    // Only blocked products get a span: small GEMMs return above without
    // touching the tracer, so per-sample matvec chains stay unobserved
    // rather than flooding the ring buffers.
    let _span = errflow_obs::trace::span("tensor.gemm");
    match kernel_kind() {
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2Fma => {
            gemm_blocked::<MR_AVX, NR_AVX>(m, n, k, a, b, c, threads, microkernel_avx2)
        }
        _ => gemm_blocked::<MR_GEN, NR_GEN>(
            m,
            n,
            k,
            a,
            b,
            c,
            threads,
            microkernel_generic as unsafe fn(&[f32], &[f32], &mut [[f32; NR_GEN]; MR_GEN]),
        ),
    }
}

/// A sensible thread budget for a product of `flops = m·n·k` multiply-adds:
/// single-threaded below the parallel threshold, the shared pool clamped
/// to the physical core count above it.  The clamp matters on small
/// machines: the global pool floors its size at 4 threads to keep
/// concurrency paths exercised, but a GEMM that fans out wider than the
/// hardware just pays dispatch and preemption stalls for no extra FLOPs
/// (results are bitwise identical at any thread count, so this is purely
/// a scheduling choice).
pub fn auto_threads(flops: usize) -> usize {
    if flops < 1 << 18 {
        1
    } else {
        pool::global()
            .max_concurrency()
            .min(pool::hardware_threads())
            .max(1)
    }
}

/// `C += A·B` on row-major slices, using up to `threads` threads
/// (`A: m×k`, `B: k×n`, `C: m×n`).  Deterministic: results are bitwise
/// identical for every `threads` value.
pub fn gemm(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32], threads: usize) {
    gemm_dispatch(
        m,
        n,
        k,
        a,
        BRef {
            data: b,
            layout: BLayout::Normal,
            k,
            n,
        },
        c,
        threads,
    );
}

/// `C += A·Bᵀ` where the buffer holds `Bᵀ` as `n×k` row-major
/// (`A: m×k`, `C: m×n`).  Same kernel as [`gemm`]; only the `B` pack
/// indexing differs.
pub fn gemm_transb(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    bt: &[f32],
    c: &mut [f32],
    threads: usize,
) {
    gemm_dispatch(
        m,
        n,
        k,
        a,
        BRef {
            data: bt,
            layout: BLayout::Transposed,
            k,
            n,
        },
        c,
        threads,
    );
}

// ---------------------------------------------------------------------------
// GEMV
// ---------------------------------------------------------------------------

/// Dot product with eight independent accumulator lanes so LLVM can
/// vectorize the reduction (a single running sum is a serial dependency
/// chain the autovectorizer must preserve).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    const LANES: usize = 8;
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (x, y) in (&mut ca).zip(&mut cb) {
        for l in 0..LANES {
            acc[l] += x[l] * y[l];
        }
    }
    let mut s = 0.0f32;
    for v in acc {
        s += v;
    }
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        s += x * y;
    }
    s
}

/// `y = A·x` (`A: rows×cols` row-major).  Rows are split into bands over
/// the shared pool when the product is large enough to amortise dispatch.
pub fn gemv(rows: usize, cols: usize, a: &[f32], x: &[f32], y: &mut [f32], threads: usize) {
    assert_eq!(
        a.len(),
        rows * cols,
        "A buffer does not match {rows}x{cols}"
    );
    assert_eq!(x.len(), cols, "x length != cols");
    assert_eq!(y.len(), rows, "y length != rows");
    if rows == 0 {
        return;
    }
    if threads <= 1 || rows * cols < SMALL_GEMV {
        for (r, out) in y.iter_mut().enumerate() {
            *out = dot(&a[r * cols..(r + 1) * cols], x);
        }
        return;
    }
    let band = rows
        .div_ceil(pool::global().max_concurrency().max(1))
        .max(1);
    let bands = rows.div_ceil(band);
    let y_ptr = BandPtr(y.as_mut_ptr());
    pool::global().parallel_for(bands, threads, move |t| {
        let r0 = t * band;
        let r1 = rows.min(r0 + band);
        debug_assert!(r0 <= r1 && r1 <= rows, "band exceeds y's range");
        // SAFETY: bands cover disjoint `y` ranges ([r0, r1) per band) and
        // the pool blocks the caller until all bands finish, so `y` outlives
        // the borrow and no two bands alias.
        let y_band = unsafe { std::slice::from_raw_parts_mut(y_ptr.get().add(r0), r1 - r0) };
        for (i, out) in y_band.iter_mut().enumerate() {
            let r = r0 + i;
            *out = dot(&a[r * cols..(r + 1) * cols], x);
        }
    });
}

/// `y = Aᵀ·x` (`A: rows×cols` row-major, `x` of length `rows`) without
/// materialising the transpose: a branch-free AXPY per row, which streams
/// both `y` and the row contiguously and autovectorizes.
pub fn gemv_t(rows: usize, cols: usize, a: &[f32], x: &[f32], y: &mut [f32]) {
    assert_eq!(
        a.len(),
        rows * cols,
        "A buffer does not match {rows}x{cols}"
    );
    assert_eq!(x.len(), rows, "x length != rows");
    assert_eq!(y.len(), cols, "y length != cols");
    for (r, &xr) in x.iter().enumerate() {
        let row = &a[r * cols..(r + 1) * cols];
        for (out, &w) in y.iter_mut().zip(row) {
            *out += xr * w;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StdRng;

    fn random(n: usize, rng: &mut StdRng) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    /// Reference triple loop in f64 for tight parity checks.
    fn reference(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f64> {
        let mut c = vec![0.0f64; m * n];
        for i in 0..m {
            for p in 0..k {
                let aip = a[i * k + p] as f64;
                for j in 0..n {
                    c[i * n + j] += aip * b[p * n + j] as f64;
                }
            }
        }
        c
    }

    fn assert_close(m: usize, n: usize, got: &[f32], want: &[f64]) {
        for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
            let tol = 1e-5 * w.abs().max(1.0);
            assert!(
                (g as f64 - w).abs() <= tol,
                "({m}x{n}) element {i}: got {g}, want {w}"
            );
        }
    }

    #[test]
    fn matches_reference_across_shapes() {
        let mut rng = StdRng::seed_from_u64(42);
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (1, 7, 5),
            (5, 1, 3),
            (3, 4, 1),
            (17, 19, 23),
            (33, 65, 129),
            (64, 64, 64),
            (100, 1, 50),
            (1, 100, 50),
            (130, 70, 300),
        ] {
            let a = random(m * k, &mut rng);
            let b = random(k * n, &mut rng);
            let mut c = vec![0.0f32; m * n];
            gemm(m, n, k, &a, &b, &mut c, 4);
            assert_close(m, n, &c, &reference(m, n, k, &a, &b));
        }
    }

    #[test]
    fn degenerate_dimensions_are_noops() {
        for &(m, n, k) in &[(0usize, 5usize, 4usize), (5, 0, 4), (5, 4, 0)] {
            let a = vec![1.0f32; m * k];
            let b = vec![1.0f32; k * n];
            let mut c = vec![0.0f32; m * n];
            gemm(m, n, k, &a, &b, &mut c, 4);
            assert!(c.iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn accumulates_into_c() {
        let a = vec![1.0f32; 4];
        let b = vec![1.0f32; 4];
        let mut c = vec![10.0f32; 4];
        gemm(2, 2, 2, &a, &b, &mut c, 1);
        assert!(c.iter().all(|&v| v == 12.0));
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let mut rng = StdRng::seed_from_u64(7);
        let (m, n, k) = (200, 150, 170);
        let a = random(m * k, &mut rng);
        let b = random(k * n, &mut rng);
        let mut reference_c = vec![0.0f32; m * n];
        gemm(m, n, k, &a, &b, &mut reference_c, 1);
        for threads in [2usize, 3, 4, 8] {
            let mut c = vec![0.0f32; m * n];
            gemm(m, n, k, &a, &b, &mut c, threads);
            assert_eq!(c, reference_c, "threads={threads} changed the result");
        }
    }

    #[test]
    fn transb_matches_normal() {
        let mut rng = StdRng::seed_from_u64(3);
        for &(m, n, k) in &[(5usize, 9usize, 7usize), (40, 60, 130), (129, 31, 257)] {
            let a = random(m * k, &mut rng);
            let b = random(k * n, &mut rng);
            // bt[j*k + p] = b[p*n + j]
            let mut bt = vec![0.0f32; n * k];
            for p in 0..k {
                for j in 0..n {
                    bt[j * k + p] = b[p * n + j];
                }
            }
            let mut c = vec![0.0f32; m * n];
            gemm_transb(m, n, k, &a, &bt, &mut c, 4);
            assert_close(m, n, &c, &reference(m, n, k, &a, &b));
        }
    }

    #[test]
    fn gemv_matches_reference() {
        let mut rng = StdRng::seed_from_u64(11);
        for &(rows, cols) in &[(1usize, 1usize), (3, 17), (65, 33), (300, 400)] {
            let a = random(rows * cols, &mut rng);
            let x = random(cols, &mut rng);
            let mut y = vec![0.0f32; rows];
            gemv(rows, cols, &a, &x, &mut y, 4);
            for r in 0..rows {
                let want: f64 = (0..cols)
                    .map(|c| a[r * cols + c] as f64 * x[c] as f64)
                    .sum();
                assert!((y[r] as f64 - want).abs() <= 1e-5 * want.abs().max(1.0));
            }
        }
    }

    #[test]
    fn gemv_t_matches_reference() {
        let mut rng = StdRng::seed_from_u64(13);
        let (rows, cols) = (37, 53);
        let a = random(rows * cols, &mut rng);
        let x = random(rows, &mut rng);
        let mut y = vec![0.0f32; cols];
        gemv_t(rows, cols, &a, &x, &mut y);
        for c in 0..cols {
            let want: f64 = (0..rows)
                .map(|r| a[r * cols + c] as f64 * x[r] as f64)
                .sum();
            assert!((y[c] as f64 - want).abs() <= 1e-5 * want.abs().max(1.0));
        }
    }

    #[test]
    fn dot_handles_remainders() {
        for n in [0usize, 1, 7, 8, 9, 31] {
            let a: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let b = vec![2.0f32; n];
            let want: f32 = (0..n).map(|i| 2.0 * i as f32).sum();
            assert_eq!(dot(&a, &b), want);
        }
    }

    #[test]
    fn kernel_kind_is_stable() {
        assert_eq!(kernel_kind(), kernel_kind());
    }

    /// `gemm_prepacked` must be bitwise identical to the pack-on-the-fly
    /// drivers — including shapes small enough for the unblocked fallback
    /// and shapes spanning multiple `KC`/`NC` blocks — under whatever
    /// kernel the host dispatches to.
    #[test]
    fn prepacked_bitwise_matches_gemm() {
        let mut rng = StdRng::seed_from_u64(17);
        for &(m, n, k) in &[
            (2usize, 3usize, 4usize), // small-product fallback
            (33, 65, 129),
            (130, 70, 300),
            (64, 2100, 300), // n spans two NC blocks
            (257, 128, 600), // k spans three KC blocks, m spans MC bands
        ] {
            let a = random(m * k, &mut rng);
            let b = random(k * n, &mut rng);
            for threads in [1usize, 4] {
                let mut want = vec![0.0f32; m * n];
                gemm(m, n, k, &a, &b, &mut want, threads);
                let packed = PackedB::pack(&b, k, n);
                let mut got = vec![0.0f32; m * n];
                gemm_prepacked(m, &a, &packed, &mut got, threads);
                assert_eq!(got, want, "({m}x{n}x{k}) threads={threads}");
            }
        }
    }

    #[test]
    fn prepacked_transb_bitwise_matches_gemm_transb() {
        let mut rng = StdRng::seed_from_u64(19);
        for &(m, n, k) in &[(2usize, 3usize, 4usize), (40, 60, 130), (129, 31, 257)] {
            let a = random(m * k, &mut rng);
            let bt = random(n * k, &mut rng);
            let mut want = vec![0.0f32; m * n];
            gemm_transb(m, n, k, &a, &bt, &mut want, 4);
            let packed = PackedB::pack_transb(&bt, k, n);
            assert_eq!(packed.shape(), (k, n));
            let mut got = vec![0.0f32; m * n];
            gemm_prepacked(m, &a, &packed, &mut got, 4);
            assert_eq!(got, want, "({m}x{n}x{k})");
        }
    }

    /// Both microkernel instantiations must agree with their pack-on-the-fly
    /// counterparts: the generic tile is checked explicitly by packing and
    /// multiplying through the `NR_GEN` monomorphisation, the host's
    /// dispatched tile by the public entry points above.
    #[test]
    fn prepacked_generic_tile_matches_blocked_generic() {
        let mut rng = StdRng::seed_from_u64(23);
        let (m, n, k) = (130, 70, 300);
        let a = random(m * k, &mut rng);
        let b = random(k * n, &mut rng);
        let bref = BRef {
            data: &b,
            layout: BLayout::Normal,
            k,
            n,
        };
        let mk = microkernel_generic as unsafe fn(&[f32], &[f32], &mut [[f32; NR_GEN]; MR_GEN]);
        let mut want = vec![0.0f32; m * n];
        gemm_blocked::<MR_GEN, NR_GEN>(m, n, k, &a, bref, &mut want, 4, mk);
        let panels = PackedB::pack_panels::<NR_GEN>(bref);
        assert_eq!(panels.len(), packed_len::<NR_GEN>(k, n));
        let mut got = vec![0.0f32; m * n];
        gemm_blocked_prepacked::<MR_GEN, NR_GEN>(m, n, k, &a, &panels, &mut got, 4, mk);
        assert_eq!(got, want);
    }
}
