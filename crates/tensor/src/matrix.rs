//! Row-major dense `f32` matrix.
//!
//! The layouts and operations here are deliberately minimal: the neural
//! networks in the paper (compact MLPs and ResNet blocks) only need GEMM,
//! GEMV, transpose, and element-wise maps.  All matrix products route
//! through the blocked, packed, multi-threaded kernel in [`crate::gemm`];
//! the textbook `i-k-j` loop survives as [`Matrix::matmul_naive`] as the
//! reference implementation for parity tests and the `gemm-bench`
//! baseline.

use crate::error::TensorError;
use crate::gemm;
use crate::Result;

/// A dense row-major matrix of `f32` values.
///
/// Weight matrices `W^(l)` in the paper map activations of layer `l-1`
/// (length `cols`) to pre-activations of layer `l` (length `rows`), i.e.
/// `z = W h` with `W` of shape `(n_l, n_{l-1})`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.  Fails if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::InvalidDimension {
                op: "from_vec",
                detail: format!(
                    "buffer of length {} cannot be viewed as {rows}x{cols}",
                    data.len()
                ),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix from rows of equal length.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        if rows.iter().any(|r| r.len() != ncols) {
            return Err(TensorError::InvalidDimension {
                op: "from_rows",
                detail: "rows have unequal lengths".into(),
            });
        }
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the row-major backing buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the row-major backing buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access; panics when out of range (debug-friendly hot path).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment; panics when out of range.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of the contiguous row slab `[r0, r0 + n_rows)` — the
    /// zero-copy decode target for batch assembly: each payload's decoder
    /// writes its samples straight into its row range of the batch matrix.
    pub fn rows_mut(&mut self, r0: usize, n_rows: usize) -> Result<&mut [f32]> {
        let end = r0.checked_add(n_rows).filter(|&e| e <= self.rows);
        match end {
            Some(e) => Ok(&mut self.data[r0 * self.cols..e * self.cols]),
            None => Err(TensorError::InvalidDimension {
                op: "rows_mut",
                detail: format!(
                    "row slab [{r0}, {r0}+{n_rows}) out of range for {} rows",
                    self.rows
                ),
            }),
        }
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// GEMM: `self · rhs`, shape-checked.
    ///
    /// Routes through the blocked, panel-packed, multi-threaded kernel in
    /// [`crate::gemm`] (thread budget chosen from the product size); see
    /// [`Matrix::matmul_naive`] for the reference loop.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let threads = gemm::auto_threads(self.rows * self.cols * rhs.cols);
        gemm::gemm(
            self.rows,
            rhs.cols,
            self.cols,
            &self.data,
            &rhs.data,
            &mut out.data,
            threads,
        );
        Ok(out)
    }

    /// GEMM against a stored transpose: `self · rhsᵀ` where `rhs` has shape
    /// `(n, self.cols)`.
    ///
    /// Batched layer application is `H·Wᵀ`; this entry point feeds `W`
    /// directly to the kernel's transposed packing, avoiding the
    /// materialised transpose per layer.
    pub fn matmul_transb(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_transb",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        let threads = gemm::auto_threads(self.rows * self.cols * rhs.rows);
        gemm::gemm_transb(
            self.rows,
            rhs.rows,
            self.cols,
            &self.data,
            &rhs.data,
            &mut out.data,
            threads,
        );
        Ok(out)
    }

    /// [`Matrix::matmul_transb`] against weight panels packed once with
    /// [`gemm::PackedB::pack_transb`] — bitwise identical, but the per-call
    /// `B` packing pass is already paid (the serving layer packs each plan's
    /// weights at cache-insert time).
    pub fn matmul_transb_prepacked(&self, packed: &gemm::PackedB) -> Result<Matrix> {
        let (k, n) = packed.shape();
        if self.cols != k {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_transb_prepacked",
                lhs: self.shape(),
                rhs: (n, k),
            });
        }
        let mut out = Matrix::zeros(self.rows, n);
        let threads = gemm::auto_threads(self.rows * k * n);
        gemm::gemm_prepacked(self.rows, &self.data, packed, &mut out.data, threads);
        Ok(out)
    }

    /// Reference GEMM: the textbook single-threaded `i-k-j` loop.
    ///
    /// Kept as the parity baseline for the blocked kernel (tests assert
    /// agreement within 1e-5 relative error) and as the `gemm-bench`
    /// speedup denominator.  Branch-free on purpose: the old
    /// `if a == 0.0 { continue; }` early-out defeated autovectorization of
    /// the inner AXPY and mispredicted on dense weights.
    pub fn matmul_naive(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// GEMV: `self · x` for a vector `x` of length `cols`.
    ///
    /// Routed through [`crate::gemm::gemv`]: lane-split dot products that
    /// autovectorize, with row bands fanned out over the shared pool for
    /// large matrices (this is the power-iteration hot path).
    pub fn matvec(&self, x: &[f32]) -> Result<Vec<f32>> {
        if x.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        let mut out = vec![0.0f32; self.rows];
        let threads = gemm::auto_threads(self.rows * self.cols);
        gemm::gemv(self.rows, self.cols, &self.data, x, &mut out, threads);
        Ok(out)
    }

    /// Transposed GEMV: `selfᵀ · x` for a vector `x` of length `rows`.
    ///
    /// Used by backpropagation (`Wᵀ δ`) without materialising the
    /// transpose.  Branch-free AXPY per row (see [`crate::gemm::gemv_t`]).
    pub fn matvec_t(&self, x: &[f32]) -> Result<Vec<f32>> {
        if x.len() != self.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matvec_t",
                lhs: (self.cols, self.rows),
                rhs: (x.len(), 1),
            });
        }
        let mut out = vec![0.0f32; self.cols];
        gemm::gemv_t(self.rows, self.cols, &self.data, x, &mut out);
        Ok(out)
    }

    /// Element-wise sum: `self + rhs`.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with("add", rhs, |a, b| a + b)
    }

    /// Element-wise difference: `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with("sub", rhs, |a, b| a - b)
    }

    /// Element-wise product (Hadamard).
    pub fn hadamard(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with("hadamard", rhs, |a, b| a * b)
    }

    fn zip_with(
        &self,
        op: &'static str,
        rhs: &Matrix,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|v| v * s)
    }

    /// In-place AXPY: `self += alpha * rhs`.
    pub fn axpy(&mut self, alpha: f32, rhs: &Matrix) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "axpy",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Frobenius norm `√Σ w_ij²`.
    pub fn frobenius_norm(&self) -> f32 {
        self.data
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Largest absolute element.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Minimum element value (`+inf` for an empty matrix).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Maximum element value (`-inf` for an empty matrix).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m23() -> Matrix {
        Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn zeros_shape_and_values() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_diagonal() {
        let m = Matrix::identity(4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(m.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_rows_builds_and_rejects_ragged() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = m23();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = m23();
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = m23();
        let c = a.matmul(&Matrix::identity(3)).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = m23();
        assert!(a.matmul(&m23()).is_err());
    }

    #[test]
    fn matmul_naive_matches_blocked_kernel() {
        use crate::rng::StdRng;
        let mut rng = StdRng::seed_from_u64(21);
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (2, 3, 4),
            (33, 65, 40),
            (70, 50, 90),
        ] {
            let a = Matrix::from_fn(m, k, |_, _| rng.gen_range(-1.0f32..1.0));
            let b = Matrix::from_fn(k, n, |_, _| rng.gen_range(-1.0f32..1.0));
            let fast = a.matmul(&b).unwrap();
            let naive = a.matmul_naive(&b).unwrap();
            for (f, w) in fast.as_slice().iter().zip(naive.as_slice()) {
                assert!(
                    (f - w).abs() <= 1e-5 * w.abs().max(1.0),
                    "({m}x{n}x{k}): {f} vs {w}"
                );
            }
        }
    }

    #[test]
    fn matmul_naive_exact_zero_rows_and_columns() {
        // The zero-skip branch is gone; exact-result parity on sparse
        // inputs must hold regardless.
        let mut a = Matrix::zeros(3, 3);
        a.set(1, 1, 2.0);
        let b = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let naive = a.matmul_naive(&b).unwrap();
        let fast = a.matmul(&b).unwrap();
        assert_eq!(naive, fast);
        assert_eq!(naive.as_slice(), &[0.0, 0.0, 6.0, 8.0, 0.0, 0.0]);
    }

    #[test]
    fn matmul_transb_matches_explicit_transpose() {
        use crate::rng::StdRng;
        let mut rng = StdRng::seed_from_u64(23);
        let a = Matrix::from_fn(13, 29, |_, _| rng.gen_range(-1.0f32..1.0));
        let w = Matrix::from_fn(17, 29, |_, _| rng.gen_range(-1.0f32..1.0));
        let via_transpose = a.matmul(&w.transpose()).unwrap();
        let fused = a.matmul_transb(&w).unwrap();
        assert_eq!(fused.shape(), (13, 17));
        for (f, t) in fused.as_slice().iter().zip(via_transpose.as_slice()) {
            assert!((f - t).abs() <= 1e-5 * t.abs().max(1.0), "{f} vs {t}");
        }
        assert!(a.matmul_transb(&Matrix::zeros(4, 5)).is_err());
    }

    #[test]
    fn matmul_transb_prepacked_bitwise_matches() {
        use crate::rng::StdRng;
        let mut rng = StdRng::seed_from_u64(29);
        for &(m, n, k) in &[(3usize, 5usize, 4usize), (64, 128, 256)] {
            let a = Matrix::from_fn(m, k, |_, _| rng.gen_range(-1.0f32..1.0));
            let w = Matrix::from_fn(n, k, |_, _| rng.gen_range(-1.0f32..1.0));
            let want = a.matmul_transb(&w).unwrap();
            let packed = gemm::PackedB::pack_transb(w.as_slice(), k, n);
            let got = a.matmul_transb_prepacked(&packed).unwrap();
            assert_eq!(got, want, "({m}x{n}x{k})");
        }
        let packed = gemm::PackedB::pack_transb(&[0.0; 20], 5, 4);
        assert!(m23().matmul_transb_prepacked(&packed).is_err());
    }

    #[test]
    fn rows_mut_slab_views_and_bounds() {
        let mut m = Matrix::zeros(4, 3);
        m.rows_mut(1, 2).unwrap().fill(7.0);
        assert!(m.row(0).iter().all(|&v| v == 0.0));
        assert!(m.row(1).iter().chain(m.row(2)).all(|&v| v == 7.0));
        assert!(m.row(3).iter().all(|&v| v == 0.0));
        assert_eq!(m.rows_mut(4, 0).unwrap().len(), 0);
        assert!(m.rows_mut(3, 2).is_err());
        assert!(m.rows_mut(usize::MAX, 2).is_err());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = m23();
        let x = vec![1.0, -1.0, 2.0];
        let y = a.matvec(&x).unwrap();
        assert_eq!(y, vec![5.0, 11.0]);
    }

    #[test]
    fn matvec_t_is_transpose_product() {
        let a = m23();
        let x = vec![1.0, 2.0];
        let direct = a.transpose().matvec(&x).unwrap();
        let fused = a.matvec_t(&x).unwrap();
        assert_eq!(direct, fused);
    }

    #[test]
    fn matvec_rejects_wrong_length() {
        assert!(m23().matvec(&[1.0, 2.0]).is_err());
        assert!(m23().matvec_t(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = m23();
        let sum = a.add(&a).unwrap();
        assert_eq!(sum.get(1, 2), 12.0);
        let diff = a.sub(&a).unwrap();
        assert!(diff.as_slice().iter().all(|&v| v == 0.0));
        let prod = a.hadamard(&a).unwrap();
        assert_eq!(prod.get(0, 1), 4.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::filled(2, 2, 3.0);
        a.axpy(0.5, &b).unwrap();
        assert!(a.as_slice().iter().all(|&v| v == 1.5));
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn extrema() {
        let m = Matrix::from_vec(1, 3, vec![-5.0, 2.0, 3.0]).unwrap();
        assert_eq!(m.max_abs(), 5.0);
        assert_eq!(m.min(), -5.0);
        assert_eq!(m.max(), 3.0);
    }

    #[test]
    fn map_and_scale() {
        let m = m23();
        assert_eq!(m.scale(2.0).get(0, 0), 2.0);
        assert_eq!(m.map(|v| v - 1.0).get(0, 0), 0.0);
    }
}
