//! Runtime CPU-feature dispatch shared by every SIMD kernel in the
//! workspace.
//!
//! The GEMM microkernel ([`crate::gemm`]) and the codec decode kernels
//! (`errflow_compress::{huffman_simd, zfp_simd}`) all follow the same
//! pattern: a portable scalar body that autovectorizes, plus an
//! AVX2-instantiated body selected at runtime.  This module centralises the
//! detection so every kernel asks one cached question instead of repeating
//! `is_x86_feature_detected!` probes, and so tests can reason about which
//! arm a host will take.

/// Instruction-set tier a kernel body can target, from weakest to
/// strongest.  Detection is monotone: a host reporting [`Level::Avx2`]
/// supports everything below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Portable scalar / autovectorized code only.
    Scalar,
    /// 256-bit integer + FP SIMD with gathers (x86-64 `avx2`).
    Avx2,
    /// AVX2 plus fused multiply-add (x86-64 `avx2,fma`) — the GEMM tier.
    Avx2Fma,
}

/// The strongest [`Level`] this host supports, detected once per process.
pub fn level() -> Level {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static LEVEL: OnceLock<Level> = OnceLock::new();
        *LEVEL.get_or_init(|| {
            if std::arch::is_x86_feature_detected!("avx2") {
                if std::arch::is_x86_feature_detected!("fma") {
                    Level::Avx2Fma
                } else {
                    Level::Avx2
                }
            } else {
                Level::Scalar
            }
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Level::Scalar
    }
}

/// `true` when 256-bit AVX2 integer/FP kernels (gathers, variable shifts)
/// may be selected.  Used by the codec decode kernels, which carry no FMA.
pub fn has_avx2() -> bool {
    level() >= Level::Avx2
}

/// `true` when the AVX2+FMA GEMM microkernel may be selected.
pub fn has_avx2_fma() -> bool {
    level() >= Level::Avx2Fma
}

/// Environment override for kernel-parity testing: setting
/// `ERRFLOW_NO_SIMD=1` forces every dispatcher that consults
/// [`force_scalar`] onto its portable arm, so portable-vs-SIMD parity can
/// be exercised from the test harness on any host.  Read once per process.
pub fn force_scalar() -> bool {
    use std::sync::OnceLock;
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| {
        std::env::var("ERRFLOW_NO_SIMD")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_is_stable_and_monotone() {
        let l = level();
        assert_eq!(l, level(), "detection must be cached");
        if has_avx2_fma() {
            assert!(has_avx2());
        }
        if !has_avx2() {
            assert_eq!(l, Level::Scalar);
        }
    }

    #[test]
    fn ordering_matches_capability() {
        assert!(Level::Scalar < Level::Avx2);
        assert!(Level::Avx2 < Level::Avx2Fma);
    }
}
