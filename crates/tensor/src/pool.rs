//! Shared workspace thread pool.
//!
//! Every data-parallel hot path in the workspace — GEMM row bands, chunked
//! compression/decompression, batched serving — used to pay a
//! `std::thread::spawn` per call.  This module replaces all of that with a
//! single pool of **persistent** workers (std-only: `Mutex` + `Condvar` +
//! atomics, no external crates) shared process-wide through [`global`].
//!
//! Design points:
//!
//! * **Caller participation.**  [`ThreadPool::parallel_for`] never hands the
//!   whole job to the workers and blocks idle: the submitting thread claims
//!   task indices from the same atomic counter the workers do.  This makes
//!   nested use (a serve worker decompressing chunks while GEMM bands run)
//!   deadlock-free by construction — even with zero free workers the caller
//!   drains its own job.
//! * **Per-job concurrency caps.**  Each job carries `max_threads`; workers
//!   only join a job while its participant count is below the cap, so a
//!   `ChunkedCompressor::with_threads(2)` never occupies more than two
//!   threads no matter how large the pool is.
//! * **Deterministic results.**  Tasks are identified by index; callers
//!   write results into disjoint slots, so outputs are independent of which
//!   thread ran which task (asserted by the GEMM determinism tests).
//! * **Dedicated threads.**  Long-running blocking loops (the serve
//!   dispatcher threads that park on the request queue) must not occupy
//!   compute workers; [`ThreadPool::spawn_dedicated`] creates them as named,
//!   pool-accounted threads outside the task-stealing set.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Lifetime-erased pointer to the job closure.  Safety: the submitting
/// thread blocks in [`ThreadPool::parallel_for`] until every claimed task
/// has finished, so the pointee outlives every dereference.
struct RawTask(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is a `Sync` closure that the submitting thread keeps
// alive until every claimed task finished (`parallel_for` blocks on the
// job's done flag), so sending the pointer to workers cannot outlive it.
unsafe impl Send for RawTask {}
// SAFETY: the pointee is `Sync` by construction (`dyn Fn(usize) + Sync`),
// so shared `&RawTask` access from many workers is sound.
unsafe impl Sync for RawTask {}

/// One `parallel_for` invocation: a task counter workers race on.
struct Job {
    f: RawTask,
    n_tasks: usize,
    /// Next unclaimed task index (may grow past `n_tasks`).
    next: AtomicUsize,
    /// Tasks that have finished running (success or panic).
    finished: AtomicUsize,
    /// Current participants (caller + joined workers).
    active: AtomicUsize,
    /// Maximum participants allowed (the job's thread budget).
    cap: usize,
    /// Set when any task panicked; re-raised on the calling thread.
    panicked: AtomicBool,
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl Job {
    /// Claims and runs tasks until the counter is exhausted.
    fn run_tasks(&self) {
        // SAFETY: see `RawTask` — the caller keeps the closure alive until
        // `finished == n_tasks`, and we bump `finished` only after `f`
        // returns.
        let f = unsafe { &*self.f.0 };
        // One span per participating thread per job, opened lazily so a
        // worker that finds the counter already exhausted records nothing.
        let mut span = None;
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n_tasks {
                return;
            }
            if span.is_none() {
                span = Some(errflow_obs::trace::span("pool.job"));
            }
            if std::panic::catch_unwind(AssertUnwindSafe(|| f(i))).is_err() {
                self.panicked.store(true, Ordering::Relaxed);
            }
            // AcqRel chains every participant's writes into whoever observes
            // the final count, so the caller sees all task side effects.
            if self.finished.fetch_add(1, Ordering::AcqRel) + 1 == self.n_tasks {
                // Poison-recovering lock: a panicked task must still mark the
                // job done, or the caller waits forever.
                let mut done = crate::sync::lock_recover(&self.done);
                *done = true;
                self.done_cv.notify_all();
            }
        }
    }

    fn is_exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.n_tasks
    }
}

struct Shared {
    queue: Mutex<VecDeque<Arc<Job>>>,
    work_ready: Condvar,
    shutdown: AtomicBool,
    workers: usize,
    dedicated: AtomicUsize,
}

/// A pool of persistent worker threads executing indexed data-parallel jobs.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns a pool with `workers` persistent threads.  `workers = 0` is a
    /// valid degenerate pool: every [`ThreadPool::parallel_for`] runs
    /// entirely on the calling thread.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            workers,
            dedicated: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("errflow-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    // audit:allow(panic-reach) one-time startup: a workspace without worker threads cannot serve
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, handles }
    }

    /// Number of persistent workers (excludes callers and dedicated threads).
    pub fn workers(&self) -> usize {
        self.shared.workers
    }

    /// Maximum useful `max_threads` for a job: every worker plus the caller.
    pub fn max_concurrency(&self) -> usize {
        self.shared.workers + 1
    }

    /// Runs `f(0..n_tasks)` across at most `max_threads` threads (the
    /// calling thread counts as one) and returns once every task finished.
    ///
    /// Tasks must be independent; the closure is shared by reference, so
    /// per-task state belongs in indexed slots.  Panics in any task are
    /// re-raised here after all tasks have completed.
    pub fn parallel_for(&self, n_tasks: usize, max_threads: usize, f: impl Fn(usize) + Sync) {
        if n_tasks == 0 {
            return;
        }
        let helpers = max_threads
            .saturating_sub(1)
            .min(self.shared.workers)
            .min(n_tasks - 1);
        if helpers == 0 {
            for i in 0..n_tasks {
                f(i);
            }
            return;
        }
        let f_ref: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: extending the closure's lifetime is sound because this
        // function does not return until `finished == n_tasks` (the wait
        // below runs even when a task panicked).
        let f_static: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f_ref) };
        let job = Arc::new(Job {
            f: RawTask(f_static),
            n_tasks,
            next: AtomicUsize::new(0),
            finished: AtomicUsize::new(0),
            active: AtomicUsize::new(1), // the caller
            cap: helpers + 1,
            panicked: AtomicBool::new(false),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        crate::sync::lock_recover(&self.shared.queue).push_back(Arc::clone(&job));
        self.shared.work_ready.notify_all();

        job.run_tasks();

        let mut done = crate::sync::lock_recover(&job.done);
        while !*done {
            done = crate::sync::wait_recover(&job.done_cv, done);
        }
        drop(done);
        // Drop the job from the queue in case no worker ever woke to
        // retire it.
        crate::sync::lock_recover(&self.shared.queue).retain(|j| !Arc::ptr_eq(j, &job));
        if job.panicked.load(Ordering::Relaxed) {
            // audit:allow(panic-reach) deliberate policy: job panics are re-raised on the caller, not swallowed
            panic!("thread pool task panicked");
        }
    }

    /// Spawns a named, pool-accounted thread for a long-running blocking
    /// loop (e.g. a serve dispatcher parked on its request queue).  These
    /// threads are deliberately *outside* the data-parallel worker set so
    /// they can block indefinitely without starving compute jobs.
    pub fn spawn_dedicated(
        &self,
        name: impl Into<String>,
        f: impl FnOnce() + Send + 'static,
    ) -> JoinHandle<()> {
        let shared = Arc::clone(&self.shared);
        shared.dedicated.fetch_add(1, Ordering::Relaxed);
        std::thread::Builder::new()
            .name(name.into())
            .spawn(move || {
                struct Leave(Arc<Shared>);
                impl Drop for Leave {
                    fn drop(&mut self) {
                        self.0.dedicated.fetch_sub(1, Ordering::Relaxed);
                    }
                }
                let _leave = Leave(shared);
                f();
            })
            // audit:allow(panic-reach) one-time startup: dedicated I/O threads are required infrastructure
            .expect("spawn dedicated thread")
    }

    /// Number of live dedicated threads created by
    /// [`ThreadPool::spawn_dedicated`].
    pub fn dedicated_threads(&self) -> usize {
        self.shared.dedicated.load(Ordering::Relaxed)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.work_ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = crate::sync::lock_recover(&shared.queue);
            loop {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                queue.retain(|j| !j.is_exhausted());
                // Join the oldest job that still has unclaimed tasks and a
                // free participant slot; increment under the lock so the
                // per-job cap is never exceeded.
                let joined = queue.iter().find_map(|j| {
                    if j.active.load(Ordering::Relaxed) < j.cap {
                        j.active.fetch_add(1, Ordering::Relaxed);
                        Some(Arc::clone(j))
                    } else {
                        None
                    }
                });
                match joined {
                    Some(j) => break j,
                    None => queue = crate::sync::wait_recover(&shared.work_ready, queue),
                }
            }
        };
        job.run_tasks();
        job.active.fetch_sub(1, Ordering::Relaxed);
        // A slot freed up: another queued job (or this one, refilled) may
        // now admit a waiting worker.
        shared.work_ready.notify_one();
    }
}

/// The `ERRFLOW_THREADS` override when set to a positive integer.
fn env_threads() -> Option<usize> {
    std::env::var("ERRFLOW_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Concurrency that actually speeds up compute-bound fan-out: the
/// `ERRFLOW_THREADS` override when set, otherwise `available_parallelism`
/// **without** the exercise floor [`global`] applies.
///
/// The distinction matters on small machines: the global pool floors its
/// size at 4 total threads so concurrency paths stay exercised even on a
/// 1-core CI box, but a data-parallel hot path that sizes its fan-out
/// from the pool then runs 4 software threads on 1 core and measures
/// pure oversubscription (this was the flat chunked-decode scaling —
/// 1.09× at 4 threads — in `BENCH_compress.json`).  Throughput-sized
/// defaults should use this; the floored pool remains the right cap for
/// correctness-exercising paths.
pub fn hardware_threads() -> usize {
    env_threads().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The process-wide shared pool.
///
/// Sized from `ERRFLOW_THREADS` when set (total concurrency: workers =
/// `ERRFLOW_THREADS - 1`), otherwise from `available_parallelism`, with a
/// floor of 4 total so concurrency paths are exercised (and the thread-count
/// sweep in `gemm-bench` is meaningful) even on small CI machines —
/// oversubscription is benign for correctness and mild for throughput.
/// Paths that size fan-out for throughput should clamp with
/// [`hardware_threads`].
pub fn global() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let total = env_threads().unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .max(4)
        });
        ThreadPool::new(total - 1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn every_index_runs_exactly_once() {
        let pool = ThreadPool::new(3);
        let n = 257;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(n, 4, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_worker_pool_runs_on_caller() {
        let pool = ThreadPool::new(0);
        let caller = std::thread::current().id();
        let ran = AtomicUsize::new(0);
        pool.parallel_for(8, 4, |_| {
            assert_eq!(std::thread::current().id(), caller);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn concurrency_never_exceeds_cap() {
        let pool = ThreadPool::new(7);
        for cap in [1usize, 2, 3] {
            let live = AtomicUsize::new(0);
            let peak = AtomicUsize::new(0);
            pool.parallel_for(24, cap, |_| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(2));
                live.fetch_sub(1, Ordering::SeqCst);
            });
            assert!(
                peak.load(Ordering::SeqCst) <= cap,
                "peak {} > cap {cap}",
                peak.load(Ordering::SeqCst)
            );
        }
    }

    #[test]
    fn workers_actually_participate() {
        let pool = ThreadPool::new(3);
        let caller = std::thread::current().id();
        let foreign = AtomicUsize::new(0);
        // Long-ish tasks so workers have time to wake up and join.
        pool.parallel_for(16, 4, |_| {
            if std::thread::current().id() != caller {
                foreign.fetch_add(1, Ordering::Relaxed);
            }
            std::thread::sleep(Duration::from_millis(3));
        });
        assert!(
            foreign.load(Ordering::Relaxed) > 0,
            "no worker ever ran a task"
        );
    }

    #[test]
    fn nested_parallel_for_does_not_deadlock() {
        let pool = ThreadPool::new(2);
        let total = AtomicUsize::new(0);
        pool.parallel_for(4, 3, |_| {
            pool.parallel_for(4, 3, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn task_panic_propagates_after_completion() {
        let pool = ThreadPool::new(2);
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for(8, 3, |i| {
                ran2.fetch_add(1, Ordering::Relaxed);
                if i == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        assert_eq!(ran.load(Ordering::Relaxed), 8, "all tasks still ran");
        // The pool survives a panicked job.
        pool.parallel_for(4, 3, |_| {});
    }

    #[test]
    fn sequential_jobs_reuse_the_same_workers() {
        let pool = ThreadPool::new(2);
        for round in 0..50 {
            let sum = AtomicUsize::new(0);
            pool.parallel_for(10, 3, |i| {
                sum.fetch_add(i + round, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 45 + 10 * round);
        }
    }

    #[test]
    fn dedicated_threads_are_counted_and_joinable() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.dedicated_threads(), 0);
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let h = pool.spawn_dedicated("errflow-test-dedicated", move || {
            rx.recv().ok();
        });
        assert_eq!(pool.dedicated_threads(), 1);
        tx.send(()).unwrap();
        h.join().unwrap();
        assert_eq!(pool.dedicated_threads(), 0);
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let pool = global();
        assert!(pool.max_concurrency() >= 1);
        let sum = AtomicUsize::new(0);
        pool.parallel_for(100, pool.max_concurrency(), |i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }
}
