//! Spectral-norm estimation.
//!
//! The paper's error bounds (Ineq. 3 and 5) are written in terms of the
//! spectral norm σ_W — the largest singular value — of each weight matrix
//! (Eq. 2).  The paper computes it with the power-iteration method of von
//! Mises & Pollaczek-Geiringer (its reference \[17\]); [`power_iteration`]
//! implements exactly that on the Gram operator `WᵀW`.
//!
//! [`svd_spectral_norm`] is an exact one-sided Jacobi SVD used by the test
//! suite to cross-check the iterative estimate, and is practical for the
//! small weight matrices of the paper's MLPs.

use crate::error::TensorError;
use crate::matrix::Matrix;
use crate::norms::l2;
use crate::rng::StdRng;
use crate::Result;

/// Options for [`power_iteration`].
#[derive(Debug, Clone, Copy)]
pub struct PowerIterationOpts {
    /// Maximum number of `v ← WᵀW v` iterations.
    pub max_iters: usize,
    /// Relative change in the estimate below which iteration stops.
    pub tolerance: f64,
    /// RNG seed for the random start vector (deterministic by default).
    pub seed: u64,
}

impl Default for PowerIterationOpts {
    fn default() -> Self {
        PowerIterationOpts {
            max_iters: 500,
            tolerance: 1e-10,
            seed: 0x5eed_5eed,
        }
    }
}

/// Estimates the spectral norm σ_W of `w` via power iteration on `WᵀW`.
///
/// Returns an error for an empty matrix or when the iteration fails to
/// converge within `opts.max_iters` (which in practice only happens for
/// pathological tolerance settings — the top two singular values of trained
/// weight matrices are almost never exactly tied).
pub fn power_iteration(w: &Matrix, opts: PowerIterationOpts) -> Result<f64> {
    if w.is_empty() {
        return Err(TensorError::InvalidDimension {
            op: "power_iteration",
            detail: "matrix is empty".into(),
        });
    }
    if w.max_abs() == 0.0 {
        return Ok(0.0);
    }
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut v: Vec<f32> = (0..w.cols()).map(|_| rng.gen_range(-1.0..1.0)).collect();
    normalize(&mut v);

    let mut last = 0.0f64;
    for it in 0..opts.max_iters {
        // u = W v ; v' = Wᵀ u ; σ ≈ ‖u‖ after normalising v each round.
        let u = w.matvec(&v)?;
        let sigma = l2(&u);
        if sigma == 0.0 {
            // v landed exactly in the null space — restart from a new vector.
            v = (0..w.cols()).map(|_| rng.gen_range(-1.0..1.0)).collect();
            normalize(&mut v);
            continue;
        }
        let mut vn = w.matvec_t(&u)?;
        normalize(&mut vn);
        v = vn;
        if it > 0 && (sigma - last).abs() <= opts.tolerance * sigma.max(1e-300) {
            return Ok(sigma);
        }
        last = sigma;
    }
    // The estimate is monotonically non-decreasing and bounded; after
    // max_iters it is still a high-quality estimate, but we surface the
    // convergence failure so callers can widen the budget if they care.
    Err(TensorError::NoConvergence {
        op: "power_iteration",
        iterations: opts.max_iters,
    })
}

/// Convenience wrapper: power iteration with default options, falling back
/// to the exact Jacobi SVD when iteration does not converge (tied top
/// singular values).
pub fn spectral_norm(w: &Matrix) -> f64 {
    match power_iteration(w, PowerIterationOpts::default()) {
        Ok(s) => s,
        Err(_) => svd_spectral_norm(w),
    }
}

// The Jacobi sweeps index two columns simultaneously; range loops are
// the clearest expression.
#[allow(clippy::needless_range_loop)]
/// Exact spectral norm via one-sided Jacobi SVD.
///
/// Orthogonalises the columns of `A` (or `Aᵀ`, whichever has fewer columns)
/// with Jacobi rotations until convergence; the largest column norm is then
/// the largest singular value.  `O(n²·m)` per sweep — fine for the compact
/// weight matrices the paper studies, and used as ground truth in tests.
pub fn svd_spectral_norm(w: &Matrix) -> f64 {
    if w.is_empty() {
        return 0.0;
    }
    // Work on the orientation with fewer columns for speed.
    let a = if w.cols() <= w.rows() {
        w.clone()
    } else {
        w.transpose()
    };
    let m = a.rows();
    let n = a.cols();
    // Column-major copy in f64 for numerical headroom.
    let mut cols: Vec<Vec<f64>> = (0..n)
        .map(|c| (0..m).map(|r| a.get(r, c) as f64).collect())
        .collect();

    let eps = 1e-14;
    for _sweep in 0..60 {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                let (mut app, mut aqq, mut apq) = (0.0f64, 0.0f64, 0.0f64);
                for i in 0..m {
                    app += cols[p][i] * cols[p][i];
                    aqq += cols[q][i] * cols[q][i];
                    apq += cols[p][i] * cols[q][i];
                }
                off = off.max(apq.abs() / (app * aqq).sqrt().max(1e-300));
                if apq.abs() <= eps * (app * aqq).sqrt() {
                    continue;
                }
                let tau = (aqq - app) / (2.0 * apq);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let vp = cols[p][i];
                    let vq = cols[q][i];
                    cols[p][i] = c * vp - s * vq;
                    cols[q][i] = s * vp + c * vq;
                }
            }
        }
        if off < 1e-13 {
            break;
        }
    }
    cols.iter()
        .map(|c| c.iter().map(|&v| v * v).sum::<f64>().sqrt())
        .fold(0.0, f64::max)
}

#[allow(clippy::needless_range_loop)]
/// All singular values (descending) via the same one-sided Jacobi sweep.
///
/// Exposed for diagnostics (condition numbers of PSN-trained layers) and for
/// property tests relating the spectral norm to the full spectrum.
pub fn singular_values(w: &Matrix) -> Vec<f64> {
    if w.is_empty() {
        return Vec::new();
    }
    let a = if w.cols() <= w.rows() {
        w.clone()
    } else {
        w.transpose()
    };
    let m = a.rows();
    let n = a.cols();
    let mut cols: Vec<Vec<f64>> = (0..n)
        .map(|c| (0..m).map(|r| a.get(r, c) as f64).collect())
        .collect();
    for _ in 0..60 {
        let mut converged = true;
        for p in 0..n {
            for q in (p + 1)..n {
                let (mut app, mut aqq, mut apq) = (0.0, 0.0, 0.0);
                for i in 0..m {
                    app += cols[p][i] * cols[p][i];
                    aqq += cols[q][i] * cols[q][i];
                    apq += cols[p][i] * cols[q][i];
                }
                if apq.abs() <= 1e-14 * (app * aqq).sqrt() {
                    continue;
                }
                converged = false;
                let tau = (aqq - app) / (2.0 * apq);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let vp = cols[p][i];
                    let vq = cols[q][i];
                    cols[p][i] = c * vp - s * vq;
                    cols[q][i] = s * vp + c * vq;
                }
            }
        }
        if converged {
            break;
        }
    }
    let mut sv: Vec<f64> = cols
        .iter()
        .map(|c| c.iter().map(|&v| v * v).sum::<f64>().sqrt())
        .collect();
    sv.sort_by(|a, b| b.partial_cmp(a).unwrap());
    sv
}

fn normalize(v: &mut [f32]) {
    let n = l2(v);
    if n > 0.0 {
        let inv = (1.0 / n) as f32;
        for x in v {
            *x *= inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_has_unit_spectral_norm() {
        let w = Matrix::identity(8);
        assert!((spectral_norm(&w) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn diagonal_matrix_spectral_norm_is_max_abs_entry() {
        let mut w = Matrix::zeros(4, 4);
        w.set(0, 0, 0.5);
        w.set(1, 1, -3.0);
        w.set(2, 2, 2.0);
        w.set(3, 3, 1.0);
        assert!((spectral_norm(&w) - 3.0).abs() < 1e-6);
        assert!((svd_spectral_norm(&w) - 3.0).abs() < 1e-10);
    }

    #[test]
    fn zero_matrix_has_zero_norm() {
        let w = Matrix::zeros(5, 3);
        assert_eq!(spectral_norm(&w), 0.0);
        assert_eq!(svd_spectral_norm(&w), 0.0);
    }

    #[test]
    fn rank_one_matrix_known_norm() {
        // uvᵀ with ‖u‖=√2, ‖v‖=√3 → σ = √6.
        let u = [1.0f32, 1.0];
        let v = [1.0f32, 1.0, 1.0];
        let w = Matrix::from_fn(2, 3, |r, c| u[r] * v[c]);
        let expected = 6.0f64.sqrt();
        assert!((spectral_norm(&w) - expected).abs() < 1e-7);
        assert!((svd_spectral_norm(&w) - expected).abs() < 1e-10);
    }

    #[test]
    fn power_iteration_matches_jacobi_on_random_matrices() {
        let mut rng = StdRng::seed_from_u64(42);
        for &(r, c) in &[(3usize, 3usize), (5, 8), (10, 4), (16, 16)] {
            let w = Matrix::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0));
            let pi = spectral_norm(&w);
            let sv = svd_spectral_norm(&w);
            assert!(
                (pi - sv).abs() < 1e-6 * sv.max(1.0),
                "{r}x{c}: power={pi} jacobi={sv}"
            );
        }
    }

    #[test]
    fn spectral_norm_bounded_by_frobenius() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = Matrix::from_fn(6, 6, |_, _| rng.gen_range(-2.0..2.0));
        assert!(spectral_norm(&w) <= w.frobenius_norm() as f64 + 1e-6);
    }

    #[test]
    fn spectral_norm_defines_operator_bound() {
        // ‖Wx‖₂ ≤ σ_W ‖x‖₂ for arbitrary x — the definition in Eq. (2).
        let mut rng = StdRng::seed_from_u64(99);
        let w = Matrix::from_fn(7, 5, |_, _| rng.gen_range(-1.0..1.0));
        let sigma = spectral_norm(&w);
        for _ in 0..20 {
            let x: Vec<f32> = (0..5).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let y = w.matvec(&x).unwrap();
            assert!(l2(&y) <= sigma * l2(&x) + 1e-5);
        }
    }

    #[test]
    fn singular_values_sorted_and_consistent() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = Matrix::from_fn(4, 6, |_, _| rng.gen_range(-1.0..1.0));
        let sv = singular_values(&w);
        assert_eq!(sv.len(), 4);
        assert!(sv.windows(2).all(|p| p[0] >= p[1] - 1e-12));
        assert!((sv[0] - svd_spectral_norm(&w)).abs() < 1e-9);
        // Σσᵢ² = ‖W‖_F²
        let fro2 = (w.frobenius_norm() as f64).powi(2);
        let sum2: f64 = sv.iter().map(|s| s * s).sum();
        assert!((fro2 - sum2).abs() < 1e-6 * fro2.max(1.0));
    }

    #[test]
    fn empty_matrix_is_an_error_for_power_iteration() {
        let w = Matrix::zeros(0, 0);
        assert!(power_iteration(&w, PowerIterationOpts::default()).is_err());
    }

    #[test]
    fn scaling_scales_spectral_norm() {
        let mut rng = StdRng::seed_from_u64(11);
        let w = Matrix::from_fn(5, 5, |_, _| rng.gen_range(-1.0..1.0));
        let s1 = spectral_norm(&w);
        let s3 = spectral_norm(&w.scale(3.0));
        assert!((s3 - 3.0 * s1).abs() < 1e-5 * s1.max(1.0));
    }
}
