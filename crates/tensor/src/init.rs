//! Deterministic weight initialisation.
//!
//! All randomness flows through seeded [`StdRng`] instances so every model,
//! test, and figure in the repository is bit-reproducible run to run.

use crate::matrix::Matrix;
use crate::rng::StdRng;

/// Xavier/Glorot uniform initialisation: `U(-a, a)` with
/// `a = √(6/(fan_in+fan_out))`.  Appropriate for Tanh networks (the H2
/// combustion MLP in the paper uses Tanh).
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let a = (6.0 / (rows + cols) as f64).sqrt() as f32;
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-a..a))
}

/// He/Kaiming uniform initialisation: `U(-a, a)` with `a = √(6/fan_in)`.
/// Appropriate for ReLU-family activations (Borghesi MLP, EuroSAT ResNet).
pub fn he_uniform(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let a = (6.0 / cols as f64).sqrt() as f32;
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-a..a))
}

/// Plain uniform initialisation `U(-scale, scale)`.
pub fn uniform(rows: usize, cols: usize, scale: f32, rng: &mut StdRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-scale..scale))
}

/// A random vector with entries in `U(-scale, scale)`.
pub fn uniform_vec(n: usize, scale: f32, rng: &mut StdRng) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(-scale..scale)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_within_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = xavier_uniform(10, 20, &mut rng);
        let a = (6.0f64 / 30.0).sqrt() as f32;
        assert!(w.as_slice().iter().all(|&v| v.abs() <= a));
    }

    #[test]
    fn he_within_bound() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = he_uniform(10, 24, &mut rng);
        let a = (6.0f64 / 24.0).sqrt() as f32;
        assert!(w.as_slice().iter().all(|&v| v.abs() <= a));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = StdRng::seed_from_u64(99);
        let mut r2 = StdRng::seed_from_u64(99);
        assert_eq!(
            xavier_uniform(4, 4, &mut r1).as_slice(),
            xavier_uniform(4, 4, &mut r2).as_slice()
        );
    }

    #[test]
    fn uniform_vec_length_and_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = uniform_vec(100, 0.5, &mut rng);
        assert_eq!(v.len(), 100);
        assert!(v.iter().all(|&x| x.abs() <= 0.5));
    }

    #[test]
    fn nonzero_output() {
        let mut rng = StdRng::seed_from_u64(6);
        let w = uniform(5, 5, 1.0, &mut rng);
        assert!(w.max_abs() > 0.0);
    }
}
