//! Seeded, dependency-free pseudo-random number generation.
//!
//! The workspace is built and tested fully offline, so it cannot depend on
//! crates.io `rand`.  This module provides the small slice of the `rand`
//! API the repository actually uses — a seedable generator with
//! `gen_range`, `gen`, `gen_bool`, and slice shuffling — backed by
//! xoshiro256++ seeded through SplitMix64 (Blackman & Vigna).  Every
//! model, test, and figure stays bit-reproducible run to run, exactly as
//! with the previous `StdRng` seeds.

/// SplitMix64 step: expands a 64-bit seed into a stream of well-mixed
/// words (the recommended seeder for the xoshiro family).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded xoshiro256++ generator.
///
/// Named `StdRng` so call sites read identically to the `rand` crate they
/// replace; the algorithm differs (xoshiro256++ instead of ChaCha12) but
/// every consumer in this workspace only relies on *seeded determinism*,
/// never on a specific stream.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Builds a generator from a 64-bit seed (SplitMix64-expanded).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }

    /// Next raw 64-bit output (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` (24 mantissa bits).
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform value over a range, e.g. `rng.gen_range(-1.0..1.0)` or
    /// `rng.gen_range(0..n)`.  Half-open and inclusive integer ranges are
    /// supported; float ranges are half-open.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// A uniformly random value of a primitive type (`u8`, `u32`, `u64`,
    /// `f32`/`f64` in `[0,1)`, or `bool`).
    #[inline]
    pub fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// `true` with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle_slice<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = (self.next_u64() % (i as u64 + 1)) as usize;
            slice.swap(i, j);
        }
    }
}

/// Types producible directly from the generator via [`StdRng::gen`].
pub trait FromRng {
    /// Draws one uniform value.
    fn from_rng(rng: &mut StdRng) -> Self;
}

impl FromRng for u8 {
    fn from_rng(rng: &mut StdRng) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}
impl FromRng for u32 {
    fn from_rng(rng: &mut StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}
impl FromRng for u64 {
    fn from_rng(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}
impl FromRng for f32 {
    fn from_rng(rng: &mut StdRng) -> f32 {
        rng.next_f32()
    }
}
impl FromRng for f64 {
    fn from_rng(rng: &mut StdRng) -> f64 {
        rng.next_f64()
    }
}
impl FromRng for bool {
    fn from_rng(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`StdRng::gen_range`] can sample from.  The element type is a
/// trait parameter (not an associated type) so the *output* context can
/// drive inference of un-suffixed range literals, as with `rand`.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! float_range {
    ($t:ty, $next:ident) => {
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + rng.$next() * (self.end - self.start)
            }
        }
    };
}
float_range!(f32, next_f32);
float_range!(f64, next_f64);

macro_rules! uint_range {
    ($t:ty) => {
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    };
}
uint_range!(u8);
uint_range!(u16);
uint_range!(u32);
uint_range!(u64);
uint_range!(usize);

macro_rules! int_range {
    ($t:ty) => {
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    };
}
int_range!(i8);
int_range!(i16);
int_range!(i32);
int_range!(i64);
int_range!(isize);

/// Slice shuffling, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle(&mut self, rng: &mut StdRng);
}

impl<T> SliceRandom for [T] {
    fn shuffle(&mut self, rng: &mut StdRng) {
        rng.shuffle_slice(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be effectively independent");
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f32 = rng.gen_range(-2.5..1.5);
            assert!((-2.5..1.5).contains(&x));
            let y: f64 = rng.gen_range(0.0..1e-6);
            assert!((0.0..1e-6).contains(&y));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = rng.gen_range(0..8u8);
            seen[v as usize] = true;
            let w = rng.gen_range(-20i64..20);
            assert!((-20..20).contains(&w));
            let u = rng.gen_range(1..=64u32);
            assert!((1..=64).contains(&u));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.next_f32();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn mean_of_uniform_is_centered() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(-1.0f64..1.0)).sum();
        assert!((sum / n as f64).abs() < 0.02);
    }
}
