//! Model quantization: applying a numerical format to every weight matrix.

use errflow_nn::Model;
use errflow_quant::QuantFormat;

/// Returns a frozen copy of `model` with every weight matrix quantized to
/// `format` (weight-only quantization with max calibration, §III-A).
/// Biases stay in FP32, matching the paper's setup.
pub fn quantize_model<M: Model>(model: &M, format: QuantFormat) -> M {
    model.map_weights(&mut |w| format.quantize_matrix(w))
}

/// Mixed-granularity quantization: one format per layer, in the same
/// flattened block/layer order as
/// [`crate::NetworkAnalysis::combined_bound_mixed`].
pub fn quantize_model_mixed<M: Model>(model: &M, formats: &[QuantFormat]) -> M {
    let mut idx = 0usize;
    let quantized = model.map_weights(&mut |w| {
        let f = formats[idx];
        idx += 1;
        f.quantize_matrix(w)
    });
    assert_eq!(idx, formats.len(), "one format per layer");
    quantized
}

#[cfg(test)]
mod tests {
    use super::*;
    use errflow_nn::{Activation, Mlp};
    use errflow_tensor::norms::{diff_norm, Norm};

    fn mlp() -> Mlp {
        Mlp::new(&[4, 16, 4], Activation::Tanh, Activation::Identity, 3, None)
    }

    #[test]
    fn fp32_quantization_is_identity() {
        let m = mlp();
        let q = quantize_model(&m, QuantFormat::Fp32);
        let x = vec![0.3, -0.2, 0.9, 0.0];
        assert_eq!(m.forward(&x), q.forward(&x));
    }

    #[test]
    fn lower_precision_changes_outputs_more() {
        let m = mlp();
        let x = vec![0.3f32, -0.2, 0.9, 0.1];
        let y = m.forward(&x);
        let err = |f: QuantFormat| {
            let q = quantize_model(&m, f);
            diff_norm(&y, &q.forward(&x), Norm::L2)
        };
        let e_fp16 = err(QuantFormat::Fp16);
        let e_bf16 = err(QuantFormat::Bf16);
        let e_int8 = err(QuantFormat::Int8);
        assert!(e_fp16 > 0.0);
        assert!(e_bf16 > e_fp16, "bf16 {e_bf16} vs fp16 {e_fp16}");
        assert!(e_int8 > e_fp16, "int8 {e_int8} vs fp16 {e_fp16}");
    }

    #[test]
    fn quantized_weights_are_representable() {
        // Double quantization must be a fixed point: Q(Q(W)) == Q(W).
        let m = mlp();
        for f in [QuantFormat::Tf32, QuantFormat::Fp16, QuantFormat::Bf16] {
            let q1 = quantize_model(&m, f);
            let q2 = quantize_model(&q1, f);
            for (a, b) in q1.layers().iter().zip(q2.layers()) {
                assert_eq!(a.weights(), b.weights(), "{f}");
            }
        }
    }
}
