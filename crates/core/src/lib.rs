//! # errflow-core
//!
//! The paper's primary contribution: **error-flow analysis** for neural
//! networks whose inputs are lossily compressed and whose weights are
//! post-training quantized.
//!
//! Given a trained model, [`NetworkAnalysis`] extracts the per-layer
//! spectral norms σ_W (Eq. 2, via power iteration) and Table-I quantization
//! step sizes, and evaluates:
//!
//! * the **compression error bound** of Ineq. (5):
//!   `‖Δy‖₂ ≤ (σ_s + Π_l σ_W^(l)) · ‖Δx‖₂`,
//! * the **quantization error bound** (the concentration argument of
//!   §III-B: each layer contributes `q_l √(n₀ n_l) / (2√3)` scaled by the
//!   spectral gains of the surrounding layers),
//! * the **combined bound** of Ineq. (3), which is their sum — the additive
//!   decomposition justified by the path integral of Eq. (4),
//!
//! in both global and per-output-feature form.  [`flow`] provides the
//! empirical counterpart: the exact two-leg path decomposition
//! `(x, W) → (x̃, W) → (x̃, W̃)` of an observed output error, used to
//! validate that each leg stays under its predicted bound.
//!
//! The bound recurrence in [`bound`] generalizes Eq. (3) from a single
//! residual building block to a *sequence* of blocks (stem → residual
//! blocks → head), which is how the ResNet models decompose; for a single
//! MLP-style block it reduces exactly to the printed Eq. (3)
//! ([`bound::equation3_bound`] implements the printed form verbatim and the
//! test suite checks the reduction).

pub mod analysis;
pub mod bound;
pub mod flow;
pub mod quantize;

pub use analysis::{BlockSpec, BoundBreakdown, LayerSpec, NetworkAnalysis};
pub use flow::ErrorFlow;
pub use quantize::{quantize_model, quantize_model_mixed};
