//! Empirical error-flow decomposition — the measurable counterpart of the
//! path integral of Eq. (4).
//!
//! The paper computes the total output error along the two-leg path
//! `(x, W) → (x̃, W) → (x̃, W̃)`: first perturb the input (compression leg,
//! weights fixed), then perturb the weights (quantization leg, noisy input
//! fixed).  [`ErrorFlow::decompose`] evaluates both legs exactly by running
//! the three inferences, so each observed leg can be checked against its
//! predicted bound — this is how Figs. 3–6 pair "achieved" with "predicted".

use errflow_nn::Model;
use errflow_tensor::norms::{l2, linf, Norm};

/// The exact two-leg decomposition of one sample's output error.
#[derive(Debug, Clone)]
pub struct ErrorFlow {
    /// Reference output `y(x, W)`.
    pub reference: Vec<f32>,
    /// Compression leg `y(x̃, W) − y(x, W)`.
    pub compression_leg: Vec<f32>,
    /// Quantization leg `y(x̃, W̃) − y(x̃, W)`.
    pub quantization_leg: Vec<f32>,
    /// Total error `y(x̃, W̃) − y(x, W)`.
    pub total: Vec<f32>,
}

impl ErrorFlow {
    /// Runs the three inferences and decomposes the error.
    ///
    /// `model` holds the original weights `W`; `quantized` holds `W̃`;
    /// `x` is the original input and `x_tilde` its lossy reconstruction.
    pub fn decompose<M: Model>(model: &M, quantized: &M, x: &[f32], x_tilde: &[f32]) -> Self {
        let y = model.forward(x);
        let y_c = model.forward(x_tilde);
        let y_q = quantized.forward(x_tilde);
        let compression_leg: Vec<f32> = y_c.iter().zip(&y).map(|(&a, &b)| a - b).collect();
        let quantization_leg: Vec<f32> = y_q.iter().zip(&y_c).map(|(&a, &b)| a - b).collect();
        let total: Vec<f32> = y_q.iter().zip(&y).map(|(&a, &b)| a - b).collect();
        ErrorFlow {
            reference: y,
            compression_leg,
            quantization_leg,
            total,
        }
    }

    /// Norm of the compression leg.
    pub fn compression_error(&self, norm: Norm) -> f64 {
        norm.eval(&self.compression_leg)
    }

    /// Norm of the quantization leg.
    pub fn quantization_error(&self, norm: Norm) -> f64 {
        norm.eval(&self.quantization_leg)
    }

    /// Norm of the total error.
    pub fn total_error(&self, norm: Norm) -> f64 {
        norm.eval(&self.total)
    }

    /// Relative total error `‖Δy‖/‖y‖` in the given norm.
    pub fn relative_total_error(&self, norm: Norm) -> f64 {
        let denom = match norm {
            Norm::L2 => l2(&self.reference),
            Norm::LInf => linf(&self.reference),
        };
        if denom == 0.0 {
            self.total_error(norm)
        } else {
            self.total_error(norm) / denom
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantize::quantize_model;
    use errflow_nn::{Activation, Mlp};
    use errflow_quant::QuantFormat;
    use errflow_tensor::rng::StdRng;

    fn setup() -> (Mlp, Mlp, Vec<f32>, Vec<f32>) {
        let model = Mlp::new(&[6, 24, 6], Activation::Tanh, Activation::Identity, 5, None);
        let qm = quantize_model(&model, QuantFormat::Bf16);
        let mut rng = StdRng::seed_from_u64(6);
        let x: Vec<f32> = (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let xt: Vec<f32> = x
            .iter()
            .map(|&v| v + rng.gen_range(-1e-3..1e-3f32))
            .collect();
        (model, qm, x, xt)
    }

    #[test]
    fn legs_telescope_exactly() {
        let (m, q, x, xt) = setup();
        let flow = ErrorFlow::decompose(&m, &q, &x, &xt);
        for i in 0..flow.total.len() {
            let sum = flow.compression_leg[i] + flow.quantization_leg[i];
            assert!((sum - flow.total[i]).abs() < 1e-6, "telescoping at {i}");
        }
    }

    #[test]
    fn total_error_bounded_by_leg_sum() {
        // Triangle inequality on the decomposition.
        let (m, q, x, xt) = setup();
        let flow = ErrorFlow::decompose(&m, &q, &x, &xt);
        for norm in [Norm::L2, Norm::LInf] {
            assert!(
                flow.total_error(norm)
                    <= flow.compression_error(norm) + flow.quantization_error(norm) + 1e-9
            );
        }
    }

    #[test]
    fn zero_perturbations_give_zero_legs() {
        let (m, _, x, _) = setup();
        let flow = ErrorFlow::decompose(&m, &m, &x, &x);
        assert_eq!(flow.total_error(Norm::L2), 0.0);
        assert_eq!(flow.compression_error(Norm::LInf), 0.0);
        assert_eq!(flow.quantization_error(Norm::LInf), 0.0);
    }

    #[test]
    fn compression_leg_independent_of_quantized_model() {
        let (m, q, x, xt) = setup();
        let q2 = quantize_model(&m, QuantFormat::Int8);
        let f1 = ErrorFlow::decompose(&m, &q, &x, &xt);
        let f2 = ErrorFlow::decompose(&m, &q2, &x, &xt);
        assert_eq!(f1.compression_leg, f2.compression_leg);
        assert_ne!(f1.quantization_leg, f2.quantization_leg);
    }

    #[test]
    fn relative_error_scales() {
        let (m, q, x, xt) = setup();
        let flow = ErrorFlow::decompose(&m, &q, &x, &xt);
        let rel = flow.relative_total_error(Norm::L2);
        let abs = flow.total_error(Norm::L2);
        assert!(rel > 0.0 && abs > 0.0);
        assert!((rel - abs / l2(&flow.reference)).abs() < 1e-12);
    }
}
