//! [`NetworkAnalysis`]: extracting the bound parameters from a trained
//! model and evaluating the paper's error bounds.

use crate::bound::{self, network_amplification, propagate_network, FlowState};
use errflow_nn::{Model, ShortcutView};
use errflow_quant::QuantFormat;
use errflow_tensor::norms::l2;
use errflow_tensor::spectral::spectral_norm;

/// Bound-relevant description of one layer, extracted once from the weights.
#[derive(Debug, Clone)]
pub struct LayerSpec {
    /// Spectral norm σ_W of the (lowered) weight matrix (Eq. 2).
    pub sigma: f64,
    /// Activation Lipschitz constant `C = sup φ′` (§III-A).
    pub lipschitz: f64,
    /// √(patch multiplicity) of the im2col lowering (1 for dense layers).
    pub replication: f64,
    /// Rows of the weight matrix (the `n_l` of the `√(n₀ n_l)` injection).
    pub quant_rows: usize,
    /// `min(rows, cols)` of the weight matrix (the σ̃ inflation dimension).
    pub min_dim: usize,
    /// Scalar inputs to the layer.
    pub in_elems: usize,
    /// Scalar outputs of the layer.
    pub out_elems: usize,
    /// L2 norm of each weight row — the per-feature operator norms used by
    /// the per-feature QoI bounds (Figs. 3–6, right panels).
    pub row_norms: Vec<f64>,
    /// Table-I average step size per format, indexed by [`format_index`].
    pub q_steps: [f64; 5],
    /// Measured bound on this layer's input magnitude `‖h^{(l-1)}‖₂`
    /// (calibration data maximum × safety factor).  `None` = use the
    /// paper's worst-case `√n₀·Πσ̃` — see
    /// [`NetworkAnalysis::of_calibrated`].
    pub calibrated_input_magnitude: Option<f64>,
}

/// Bound-relevant description of one residual building block (Eq. 1).
#[derive(Debug, Clone)]
pub struct BlockSpec {
    /// The residual branch's layers.
    pub layers: Vec<LayerSpec>,
    /// Spectral norm σ_s of the shortcut (0 = none, 1 = identity).
    pub shortcut_sigma: f64,
    /// Operator norm of a fixed post-block linear map (e.g. GAP), else 1.
    pub output_scale: f64,
}

/// Stable index of a format into [`LayerSpec::q_steps`].
pub fn format_index(format: QuantFormat) -> usize {
    match format {
        QuantFormat::Fp32 => 0,
        QuantFormat::Tf32 => 1,
        QuantFormat::Fp16 => 2,
        QuantFormat::Bf16 => 3,
        QuantFormat::Int8 => 4,
    }
}

/// The two additive components of Ineq. (3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundBreakdown {
    /// Compression term: `(σ_s + Πσ)·‖Δx‖₂` composed across blocks (Ineq. 5).
    pub compression: f64,
    /// Quantization term: the concentration sum of §III-B.
    pub quantization: f64,
}

impl BoundBreakdown {
    /// The combined bound (the right-hand side of Ineq. 3).
    pub fn total(&self) -> f64 {
        self.compression + self.quantization
    }
}

/// Spectral/step-size summary of a trained network plus bound evaluation.
///
/// Constructed once per model ([`NetworkAnalysis::of`]); all bound queries
/// are then closed-form arithmetic, which is what makes the paper's
/// framework cheap enough to run inside a tolerance-allocation loop.
#[derive(Debug, Clone)]
pub struct NetworkAnalysis {
    blocks: Vec<BlockSpec>,
    input_dim: usize,
    output_dim: usize,
}

impl NetworkAnalysis {
    /// Extracts the analysis from a model: spectral norms via power
    /// iteration, Table-I step sizes per format, per-row norms.
    pub fn of(model: &impl Model) -> Self {
        let blocks = model
            .blocks()
            .iter()
            .map(|bv| BlockSpec {
                layers: bv
                    .layers
                    .iter()
                    .map(|lv| {
                        let w = lv.weights;
                        let row_norms = (0..w.rows()).map(|r| l2(w.row(r))).collect();
                        let mut q_steps = [0.0f64; 5];
                        for f in QuantFormat::ALL {
                            q_steps[format_index(f)] = f.step_size(w);
                        }
                        LayerSpec {
                            sigma: spectral_norm(w),
                            lipschitz: lv.activation.lipschitz(),
                            replication: lv.replication,
                            quant_rows: w.rows(),
                            min_dim: w.rows().min(w.cols()),
                            in_elems: lv.in_elems,
                            out_elems: lv.out_elems,
                            row_norms,
                            q_steps,
                            calibrated_input_magnitude: None,
                        }
                    })
                    .collect(),
                shortcut_sigma: match bv.shortcut {
                    ShortcutView::None => 0.0,
                    ShortcutView::Identity => 1.0,
                    ShortcutView::Projection(m) => spectral_norm(m),
                },
                output_scale: bv.output_scale,
            })
            .collect();
        NetworkAnalysis {
            blocks,
            input_dim: model.input_dim(),
            output_dim: model.output_dim(),
        }
    }

    /// **Extension beyond the paper**: analysis with *calibrated* layer
    /// magnitudes.
    ///
    /// The paper bounds every layer's activation magnitude by the
    /// worst-case `√n₀·Π σ̃` (inputs fill the `[-1,1]` box and every layer
    /// amplifies maximally), which makes the quantization injections very
    /// conservative for deep networks.  This constructor instead measures
    /// `max ‖h^{(l-1)}‖₂` over `calibration_inputs` and multiplies by
    /// `safety_factor` (≥ 1; it must absorb the input perturbation and the
    /// quantized-weight inflation the calibration runs don't see — 1.5 is a
    /// robust default, validated by the `calibrated_bounds_*` tests and the
    /// `ablation_calibration` bench).  The compression amplification is
    /// unchanged; only the quantization injection magnitudes tighten.
    pub fn of_calibrated(
        model: &impl Model,
        calibration_inputs: &[Vec<f32>],
        safety_factor: f64,
    ) -> Self {
        assert!(safety_factor >= 1.0, "safety factor must be ≥ 1");
        assert!(
            !calibration_inputs.is_empty(),
            "calibration needs at least one input"
        );
        let mut analysis = Self::of(model);
        let n_layers: usize = analysis.blocks.iter().map(|b| b.layers.len()).sum();
        let mut maxima = vec![0.0f64; n_layers];
        for x in calibration_inputs {
            for (m, v) in maxima.iter_mut().zip(model.layer_input_magnitudes(x)) {
                *m = m.max(v);
            }
        }
        let mut it = maxima.into_iter();
        for block in &mut analysis.blocks {
            for layer in &mut block.layers {
                let measured = it.next().expect("one magnitude per layer");
                layer.calibrated_input_magnitude = Some(measured * safety_factor);
            }
        }
        analysis
    }

    /// The per-block specs (for reporting and ablations).
    pub fn blocks(&self) -> &[BlockSpec] {
        &self.blocks
    }

    /// Network input dimension `n₀`.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Network output (QoI) dimension.
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// All layer spectral norms, flattened in forward order.
    pub fn sigmas(&self) -> Vec<f64> {
        self.blocks
            .iter()
            .flat_map(|b| b.layers.iter().map(|l| l.sigma))
            .collect()
    }

    /// Network-wide compression-error amplification: multiplying by
    /// `‖Δx‖₂` yields Ineq. (5).
    pub fn amplification(&self) -> f64 {
        network_amplification(&self.blocks)
    }

    /// Compression-only output error bound (Ineq. 5) for an input error of
    /// L2 norm `dx_l2`.
    pub fn compression_bound(&self, dx_l2: f64) -> f64 {
        self.amplification() * dx_l2
    }

    /// Quantization-only output error bound for the given format, assuming
    /// exact inputs normalized to `[-1, 1]` (so `‖x‖₂ ≤ √n₀`).
    pub fn quantization_bound(&self, format: QuantFormat) -> f64 {
        self.combined_bound(0.0, format).quantization
    }

    /// The combined bound of Ineq. (3): compression term + quantization
    /// term for input error `dx_l2` and the given weight format.
    ///
    /// The quantization term uses the noisy-input magnitude `√n₀ + ‖Δx‖₂`
    /// (the paper assumes `√n₀`; the extra `dx` term keeps the bound sound
    /// for inputs that leave the normalized box after reconstruction).
    pub fn combined_bound(&self, dx_l2: f64, format: QuantFormat) -> BoundBreakdown {
        let compression = self.compression_bound(dx_l2);
        let qs: Vec<Vec<f64>> = self
            .blocks
            .iter()
            .map(|b| {
                b.layers
                    .iter()
                    .map(|l| l.q_steps[format_index(format)])
                    .collect()
            })
            .collect();
        let state = propagate_network(
            &self.blocks,
            &qs,
            FlowState {
                error: 0.0,
                magnitude: (self.input_dim as f64).sqrt() + dx_l2,
            },
        );
        BoundBreakdown {
            compression,
            quantization: state.error,
        }
    }

    /// **Future-work extension** (§IV-D: "the granularity of quantization
    /// can be improved by enabling per-layer quantization with different
    /// formats, thereby introducing a significantly larger optimization
    /// space"): the combined bound with one format *per layer*, `formats`
    /// flattened in block/layer order.  Reduces to
    /// [`NetworkAnalysis::combined_bound`] when all entries are equal.
    pub fn combined_bound_mixed(&self, dx_l2: f64, formats: &[QuantFormat]) -> BoundBreakdown {
        let n_layers: usize = self.blocks.iter().map(|b| b.layers.len()).sum();
        assert_eq!(formats.len(), n_layers, "one format per layer");
        let compression = self.compression_bound(dx_l2);
        let mut it = formats.iter();
        let qs: Vec<Vec<f64>> = self
            .blocks
            .iter()
            .map(|b| {
                b.layers
                    .iter()
                    .map(|l| l.q_steps[format_index(*it.next().expect("count checked"))])
                    .collect()
            })
            .collect();
        let state = propagate_network(
            &self.blocks,
            &qs,
            FlowState {
                error: 0.0,
                magnitude: (self.input_dim as f64).sqrt() + dx_l2,
            },
        );
        BoundBreakdown {
            compression,
            quantization: state.error,
        }
    }

    /// Per-output-feature combined bounds: for feature `i`, the final
    /// layer's operator norm is replaced by the L2 norm of its `i`-th weight
    /// row (`Δy_i = W_row_i · Δh`), and its injection dimension drops to 1.
    ///
    /// Requires the network to end in a shortcut-free block whose last layer
    /// is dense (true for all three of the paper's workloads); otherwise the
    /// global bound is returned for every feature.
    pub fn per_feature_bounds(&self, dx_l2: f64, format: QuantFormat) -> Vec<f64> {
        let last = self.blocks.last().expect("nonempty network");
        let last_layer = last.layers.last().expect("nonempty block");
        let feature_friendly = last.shortcut_sigma == 0.0
            && last_layer.replication == 1.0
            && last_layer.row_norms.len() == self.output_dim;
        if !feature_friendly {
            let global = self.combined_bound(dx_l2, format).total();
            return vec![global; self.output_dim];
        }
        (0..self.output_dim)
            .map(|i| {
                let mut clone = self.clone();
                {
                    let lb = clone.blocks.last_mut().expect("nonempty");
                    let ll = lb.layers.last_mut().expect("nonempty");
                    ll.sigma = ll.row_norms[i];
                    ll.quant_rows = 1;
                    ll.min_dim = 1;
                }
                clone.combined_bound(dx_l2, format).total()
            })
            .collect()
    }

    /// Bound on the QoI error introduced by *activation* quantization at
    /// one layer (§III-B: "the error introduced by activation quantization
    /// can be addressed similarly to compression error by applying
    /// Equation (5), while excluding all layers preceding the affected
    /// activation").
    ///
    /// Quantizing the activations after flat layer index `layer_idx`
    /// (0-based over the flattened block/layer sequence) with step `q_act`
    /// perturbs each of the layer's `n_l` outputs by at most `q_act/2`, so
    /// `‖Δh‖₂ ≤ q_act·√n_l/2`; that perturbation then propagates through
    /// the *remaining* layers with their compression amplification.
    pub fn activation_quantization_bound(&self, layer_idx: usize, q_act: f64) -> f64 {
        let mut flat = 0usize;
        let mut injected: Option<f64> = None;
        let mut amplify = 1.0f64;
        for block in &self.blocks {
            // Shortcut paths bypass the interior layers, so an interior
            // injection is (conservatively) amplified by the full block
            // factor once the block containing it completes; injections
            // propagate through later blocks with their block amplification.
            let mut within = 1.0f64;
            let mut in_this_block = false;
            for layer in &block.layers {
                if injected.is_some() && in_this_block {
                    within *= bound::layer_gain(layer);
                }
                if injected.is_none() && flat == layer_idx {
                    let inject = q_act * (layer.out_elems as f64).sqrt() / 2.0;
                    injected = Some(inject);
                    in_this_block = true;
                    within = 1.0;
                }
                flat += 1;
            }
            if injected.is_some() {
                if in_this_block {
                    amplify *= within * block.output_scale;
                } else {
                    amplify *= bound::block_amplification(block);
                }
            }
        }
        match injected {
            Some(inject) => inject * amplify,
            None => panic!("layer index {layer_idx} out of range"),
        }
    }

    /// The printed single-block Ineq. (3) for MLP-style networks (one block,
    /// dense layers, no shortcut).  Returns `None` for other architectures.
    /// Used to cross-check the recurrence against the paper's exact formula.
    pub fn equation3(&self, dx_l2: f64, format: QuantFormat) -> Option<BoundBreakdown> {
        if self.blocks.len() != 1 {
            return None;
        }
        let b = &self.blocks[0];
        if b.layers.iter().any(|l| l.replication != 1.0) {
            return None;
        }
        let sigmas: Vec<f64> = b.layers.iter().map(|l| l.sigma).collect();
        let qs: Vec<f64> = b
            .layers
            .iter()
            .map(|l| l.q_steps[format_index(format)])
            .collect();
        let rows: Vec<usize> = b.layers.iter().map(|l| l.quant_rows).collect();
        let min_dims: Vec<usize> = b.layers.iter().map(|l| l.min_dim).collect();
        let (comp, quant) = bound::equation3_bound(
            b.shortcut_sigma,
            &sigmas,
            &qs,
            &rows,
            &min_dims,
            self.input_dim,
        );
        Some(BoundBreakdown {
            compression: comp * dx_l2,
            quantization: quant,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantize::quantize_model;
    use errflow_nn::{Activation, ConvNet, Mlp};
    use errflow_tensor::conv::MapShape;
    use errflow_tensor::norms::{diff_norm, Norm};
    use errflow_tensor::rng::StdRng;

    fn mlp() -> Mlp {
        Mlp::new(
            &[9, 50, 50, 9],
            Activation::Tanh,
            Activation::Identity,
            42,
            None,
        )
    }

    fn random_inputs(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect()
    }

    #[test]
    fn analysis_extracts_shapes() {
        let a = NetworkAnalysis::of(&mlp());
        assert_eq!(a.input_dim(), 9);
        assert_eq!(a.output_dim(), 9);
        assert_eq!(a.blocks().len(), 1);
        assert_eq!(a.sigmas().len(), 3);
        assert!(a.amplification() > 0.0);
    }

    #[test]
    fn compression_bound_dominates_observed_error() {
        let model = mlp();
        let a = NetworkAnalysis::of(&model);
        let mut rng = StdRng::seed_from_u64(7);
        for x in random_inputs(20, 9, 8) {
            let dx = 1e-3f32;
            let xt: Vec<f32> = x.iter().map(|&v| v + rng.gen_range(-dx..dx)).collect();
            let dx_l2 = diff_norm(&x, &xt, Norm::L2);
            let y = model.forward(&x);
            let yt = model.forward(&xt);
            let err = diff_norm(&y, &yt, Norm::L2);
            let bound = a.compression_bound(dx_l2);
            assert!(err <= bound + 1e-9, "err={err} bound={bound}");
        }
    }

    #[test]
    fn quantization_bound_dominates_observed_error() {
        let model = mlp();
        let a = NetworkAnalysis::of(&model);
        for format in QuantFormat::REDUCED {
            let qm = quantize_model(&model, format);
            let bound = a.quantization_bound(format);
            for x in random_inputs(10, 9, 9) {
                let y = model.forward(&x);
                let yq = qm.forward(&x);
                let err = diff_norm(&y, &yq, Norm::L2);
                assert!(err <= bound + 1e-9, "{format}: err={err} bound={bound}");
            }
        }
    }

    #[test]
    fn combined_bound_dominates_observed_error() {
        let model = mlp();
        let a = NetworkAnalysis::of(&model);
        let mut rng = StdRng::seed_from_u64(10);
        let format = QuantFormat::Fp16;
        let qm = quantize_model(&model, format);
        for x in random_inputs(10, 9, 11) {
            let dx = 1e-4f32;
            let xt: Vec<f32> = x.iter().map(|&v| v + rng.gen_range(-dx..dx)).collect();
            let dx_l2 = diff_norm(&x, &xt, Norm::L2);
            let y = model.forward(&x);
            let yq = qm.forward(&xt);
            let err = diff_norm(&y, &yq, Norm::L2);
            let b = a.combined_bound(dx_l2, format);
            assert!(err <= b.total() + 1e-9, "err={err} bound={}", b.total());
            // L∞ is also covered (‖·‖∞ ≤ ‖·‖₂).
            let err_inf = diff_norm(&y, &yq, Norm::LInf);
            assert!(err_inf <= b.total() + 1e-9);
        }
    }

    #[test]
    fn combined_is_sum_of_parts() {
        let a = NetworkAnalysis::of(&mlp());
        let b = a.combined_bound(1e-3, QuantFormat::Bf16);
        assert!((b.total() - (b.compression + b.quantization)).abs() < 1e-15);
        assert!(b.compression > 0.0 && b.quantization > 0.0);
    }

    #[test]
    fn bound_monotone_in_input_error() {
        let a = NetworkAnalysis::of(&mlp());
        let b1 = a.combined_bound(1e-5, QuantFormat::Fp16).total();
        let b2 = a.combined_bound(1e-3, QuantFormat::Fp16).total();
        assert!(b2 > b1);
    }

    #[test]
    fn bound_orders_formats_as_paper() {
        // TF32 ≈ FP16 < BF16 < INT8 in predicted quantization error.
        let a = NetworkAnalysis::of(&mlp());
        let q = |f| a.quantization_bound(f);
        assert!(q(QuantFormat::Fp32) == 0.0);
        assert!((q(QuantFormat::Tf32) - q(QuantFormat::Fp16)).abs() < 0.3 * q(QuantFormat::Fp16));
        assert!(q(QuantFormat::Bf16) > q(QuantFormat::Fp16));
        assert!(q(QuantFormat::Int8) > q(QuantFormat::Bf16));
    }

    #[test]
    fn equation3_matches_recurrence_closely_and_is_dominated() {
        let a = NetworkAnalysis::of(&mlp());
        for format in QuantFormat::REDUCED {
            let rec = a.combined_bound(1e-4, format);
            let eq3 = a.equation3(1e-4, format).expect("single-block MLP");
            assert!((rec.compression - eq3.compression).abs() < 1e-12);
            assert!(rec.quantization >= eq3.quantization - 1e-12);
            assert!(
                rec.quantization <= eq3.quantization * 2.0,
                "{format}: rec={} eq3={}",
                rec.quantization,
                eq3.quantization
            );
        }
    }

    #[test]
    fn per_feature_bounds_dominated_by_global_and_observed() {
        let model = mlp();
        let a = NetworkAnalysis::of(&model);
        let format = QuantFormat::Fp16;
        let global = a.combined_bound(1e-4, format).total();
        let per = a.per_feature_bounds(1e-4, format);
        assert_eq!(per.len(), 9);
        for &b in &per {
            assert!(b <= global + 1e-12, "per-feature ≤ global");
            assert!(b > 0.0);
        }
        // Observed per-feature errors stay below their bounds.
        let qm = quantize_model(&model, format);
        let mut rng = StdRng::seed_from_u64(13);
        for x in random_inputs(5, 9, 14) {
            let xt: Vec<f32> = x
                .iter()
                .map(|&v| v + rng.gen_range(-1e-4..1e-4f32))
                .collect();
            let y = model.forward(&x);
            let yq = qm.forward(&xt);
            for i in 0..9 {
                let err = (y[i] - yq[i]).abs() as f64;
                assert!(
                    err <= per[i] + 1e-9,
                    "feature {i}: err={err} bound={}",
                    per[i]
                );
            }
        }
    }

    #[test]
    fn convnet_bounds_dominate_observed() {
        let model = ConvNet::new(MapShape::new(2, 8, 8), 4, 1, 3, Activation::Relu, 21, None);
        let a = NetworkAnalysis::of(&model);
        assert_eq!(a.blocks().len(), 3); // stem + block + head
        let format = QuantFormat::Bf16;
        let qm = quantize_model(&model, format);
        let mut rng = StdRng::seed_from_u64(22);
        for x in random_inputs(5, 128, 23) {
            let xt: Vec<f32> = x
                .iter()
                .map(|&v| v + rng.gen_range(-1e-3..1e-3f32))
                .collect();
            let dx_l2 = diff_norm(&x, &xt, Norm::L2);
            let y = model.forward(&x);
            let yq = qm.forward(&xt);
            let err = diff_norm(&y, &yq, Norm::L2);
            let b = a.combined_bound(dx_l2, format).total();
            assert!(err <= b + 1e-9, "err={err} bound={b}");
        }
        let _ = rng;
    }

    #[test]
    fn activation_quantization_bound_dominates_observed() {
        // Quantize the hidden activations after layer 0 of the MLP with a
        // uniform step and compare to the predicted bound.
        let model = mlp();
        let a = NetworkAnalysis::of(&model);
        let q_act = 1e-3f32;
        let bound = a.activation_quantization_bound(0, q_act as f64);
        assert!(bound > 0.0);
        let layers = model.layers();
        for x in random_inputs(10, 9, 91) {
            // Manual forward with quantized post-layer-0 activations.
            let h0 = layers[0].forward(&x);
            let h0q: Vec<f32> = h0.iter().map(|&v| (v / q_act).round() * q_act).collect();
            let mut clean = h0;
            let mut noisy = h0q;
            for layer in &layers[1..] {
                clean = layer.forward(&clean);
                noisy = layer.forward(&noisy);
            }
            let err = diff_norm(&clean, &noisy, Norm::L2);
            assert!(err <= bound + 1e-9, "err={err} bound={bound}");
        }
    }

    #[test]
    fn activation_quantization_bound_shrinks_with_depth() {
        // Injecting later in the network passes through fewer layers.
        let model = mlp();
        let a = NetworkAnalysis::of(&model);
        let early = a.activation_quantization_bound(0, 1e-3);
        let late = a.activation_quantization_bound(2, 1e-3);
        // Not strictly monotone in general (layer widths differ), but with
        // σ > 1 layers the early injection must dominate here.
        assert!(early > late, "early={early} late={late}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn activation_quantization_bound_rejects_bad_index() {
        let a = NetworkAnalysis::of(&mlp());
        a.activation_quantization_bound(99, 1e-3);
    }

    #[test]
    fn mixed_format_bound_reduces_to_uniform() {
        let a = NetworkAnalysis::of(&mlp());
        for f in QuantFormat::REDUCED {
            let uniform = a.combined_bound(1e-4, f);
            let mixed = a.combined_bound_mixed(1e-4, &[f, f, f]);
            assert!((uniform.total() - mixed.total()).abs() < 1e-15 * uniform.total());
        }
    }

    #[test]
    fn mixed_format_bound_dominates_observed() {
        use crate::quantize::quantize_model_mixed;
        let model = mlp();
        let a = NetworkAnalysis::of(&model);
        // Cheap formats where the bound allows, FP32 where it does not.
        let formats = [QuantFormat::Int8, QuantFormat::Fp16, QuantFormat::Fp32];
        let bound = a.combined_bound_mixed(0.0, &formats).total();
        let qm = quantize_model_mixed(&model, &formats);
        for x in random_inputs(10, 9, 171) {
            let err = diff_norm(&model.forward(&x), &qm.forward(&x), Norm::L2);
            assert!(err <= bound + 1e-9, "err={err} bound={bound}");
        }
        // And it must sit between the all-FP16-ish extremes sensibly.
        let all_int8 = a.quantization_bound(QuantFormat::Int8);
        assert!(a.combined_bound_mixed(0.0, &formats).quantization <= all_int8);
    }

    #[test]
    #[should_panic(expected = "one format per layer")]
    fn mixed_format_wrong_arity_panics() {
        let a = NetworkAnalysis::of(&mlp());
        a.combined_bound_mixed(0.0, &[QuantFormat::Fp16]);
    }

    #[test]
    fn calibrated_bounds_tighter_and_still_sound() {
        let model = mlp();
        let inputs = random_inputs(40, 9, 77);
        let worst = NetworkAnalysis::of(&model);
        let cal = NetworkAnalysis::of_calibrated(&model, &inputs, 1.5);
        for format in QuantFormat::REDUCED {
            let b_worst = cal.quantization_bound(format);
            let b_paper = worst.quantization_bound(format);
            assert!(
                b_worst <= b_paper,
                "{format}: calibration loosened the bound"
            );
            // Soundness on fresh data (not in the calibration set).
            let qm = quantize_model(&model, format);
            for x in random_inputs(15, 9, 78) {
                let y = model.forward(&x);
                let yq = qm.forward(&x);
                let err = diff_norm(&y, &yq, Norm::L2);
                assert!(
                    err <= b_worst + 1e-9,
                    "{format}: calibrated bound violated ({err} > {b_worst})"
                );
            }
        }
    }

    #[test]
    fn calibrated_bounds_much_tighter_for_deep_networks() {
        // The motivation for the extension: a 9-layer stack's worst-case
        // Πσ̃ magnitude is wildly pessimistic.
        let model = Mlp::new(
            &[13, 48, 48, 48, 48, 48, 48, 48, 48, 3],
            Activation::Relu,
            Activation::Identity,
            55,
            None,
        );
        let inputs = random_inputs(30, 13, 56);
        let worst = NetworkAnalysis::of(&model);
        let cal = NetworkAnalysis::of_calibrated(&model, &inputs, 1.5);
        let ratio =
            worst.quantization_bound(QuantFormat::Fp16) / cal.quantization_bound(QuantFormat::Fp16);
        assert!(ratio > 3.0, "expected large tightening, got {ratio}x");
    }

    #[test]
    fn layer_input_magnitudes_align_with_block_layers() {
        let model = ConvNet::new(MapShape::new(2, 6, 6), 4, 2, 3, Activation::Relu, 61, None);
        let n_layers: usize = model.blocks().iter().map(|b| b.layers.len()).sum();
        let mags = model.layer_input_magnitudes(&vec![0.3; 72]);
        assert_eq!(mags.len(), n_layers);
        assert!(mags.iter().all(|&m| m.is_finite() && m >= 0.0));
    }

    #[test]
    #[should_panic(expected = "safety factor")]
    fn calibration_rejects_sub_unit_safety() {
        let model = mlp();
        NetworkAnalysis::of_calibrated(&model, &random_inputs(2, 9, 1), 0.5);
    }

    #[test]
    fn psn_network_has_much_tighter_amplification() {
        // The PSN + spectral-penalty training keeps Πσ small; an untrained
        // PSN model's α starts at the raw σ, so compare a trained-style
        // construction: shrink alphas manually via map over weights.
        let plain = Mlp::new(
            &[9, 50, 50, 9],
            Activation::Tanh,
            Activation::Identity,
            30,
            None,
        );
        // Normalize each layer to σ = 1 — what PSN with α = 1 would give.
        let normalized = plain.map_weights(&mut |w| {
            let s = spectral_norm(w) as f32;
            w.scale(1.0 / s)
        });
        let a_plain = NetworkAnalysis::of(&plain);
        let a_norm = NetworkAnalysis::of(&normalized);
        assert!((a_norm.amplification() - 1.0).abs() < 1e-3);
        // Plain Xavier init has σ > 1 per layer at these widths.
        assert!(a_plain.amplification() > a_norm.amplification());
    }
}
