//! The bound arithmetic: Ineq. (5), the quantization concentration bound,
//! and the combined Ineq. (3), generalized to block sequences.
//!
//! All arithmetic is `f64`: the estimator itself must not suffer the
//! rounding it reasons about.

use crate::analysis::{BlockSpec, LayerSpec};

/// `√3`, which appears in every quantization term (the standard deviation
/// of a centered uniform step is `q/√12 = q/(2√3)`).
const SQRT3: f64 = 1.732_050_807_568_877_2;

/// Inflated spectral norm of a quantized layer:
/// `σ_W̃ ≤ σ_W + q·√min(n_{l-1}, n_l)/√3` (§III-B).
pub fn quantized_spectral_inflation(sigma: f64, q: f64, min_dim: usize) -> f64 {
    sigma + q * (min_dim as f64).sqrt() / SQRT3
}

/// Error-amplification gain of one layer under compression only:
/// `C · σ_W · replication` (the activation's Lipschitz constant times the
/// operator norm of the lowered weight matrix).
pub fn layer_gain(layer: &LayerSpec) -> f64 {
    layer.lipschitz * layer.sigma * layer.replication
}

/// Gain of one layer with quantized weights (σ inflated per the paper).
pub fn layer_gain_quantized(layer: &LayerSpec, q: f64) -> f64 {
    layer.lipschitz
        * quantized_spectral_inflation(layer.sigma, q, layer.min_dim)
        * layer.replication
}

/// Additive error injected by quantizing one layer's weights, per unit of
/// incoming activation magnitude: `q·√(rows)·replication/(2√3)` — the
/// concentration limit of `‖ΔW·h̃‖₂ / ‖h̃‖₂` (§III-B).
pub fn layer_quant_injection(layer: &LayerSpec, q: f64) -> f64 {
    q * (layer.quant_rows as f64).sqrt() * layer.replication / (2.0 * SQRT3)
}

/// Compression-error amplification of one block (Ineq. 5 applied to the
/// block): `(σ_s + Π_l C_l σ_l ρ_l) · output_scale`.
pub fn block_amplification(block: &BlockSpec) -> f64 {
    let path: f64 = block.layers.iter().map(layer_gain).product();
    (block.shortcut_sigma + path) * block.output_scale
}

/// Compression-error amplification of a whole network: the product of its
/// blocks' amplifications.  Multiplying by `‖Δx‖₂` yields the network-wide
/// Ineq. (5).
pub fn network_amplification(blocks: &[BlockSpec]) -> f64 {
    blocks.iter().map(block_amplification).product()
}

/// State threaded through the combined-bound recurrence:
/// `error` bounds `‖Δh‖₂`, `magnitude` bounds `‖h̃‖₂` (needed by the
/// quantization injections downstream).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowState {
    /// Bound on the L2 norm of the accumulated error.
    pub error: f64,
    /// Bound on the L2 norm of the (noisy) activations.
    pub magnitude: f64,
}

/// Propagates the flow state through one block with per-layer quantization
/// steps `qs` (use zeros for unquantized propagation).
///
/// For a single block with `magnitude = √n₀`, `error = ‖Δx‖₂` and plain
/// dense layers this recurrence expands to exactly the quantization sum in
/// Ineq. (3) with σ̃ kept on *every* propagation factor — a slightly safer
/// variant of the printed bound, which relaxes the factors after the
/// injecting layer to plain σ (see [`equation3_bound`]).
pub fn propagate_block(block: &BlockSpec, qs: &[f64], state: FlowState) -> FlowState {
    assert_eq!(qs.len(), block.layers.len(), "one q per layer");
    let mut path_err = state.error;
    let mut path_mag = state.magnitude;
    for (layer, &q) in block.layers.iter().zip(qs) {
        let gain = layer_gain_quantized(layer, q);
        // The injection scales with the layer's input magnitude: worst-case
        // (the running √n₀·Πσ̃ bound) unless a calibrated measurement is
        // available, in which case the tighter of the two applies.
        let mag = match layer.calibrated_input_magnitude {
            Some(c) => c.min(path_mag),
            None => path_mag,
        };
        // The injection lands on the pre-activation z; the activation's
        // Lipschitz constant applies to it like to everything else.
        let inject = layer.lipschitz * layer_quant_injection(layer, q) * mag;
        path_err = gain * path_err + inject;
        // σ̃ already bounds the *quantized* operator norm, so the magnitude
        // needs no separate injection term.
        path_mag *= gain;
    }
    FlowState {
        error: (path_err + block.shortcut_sigma * state.error) * block.output_scale,
        magnitude: (path_mag + block.shortcut_sigma * state.magnitude) * block.output_scale,
    }
}

/// Propagates through a block sequence.
pub fn propagate_network(blocks: &[BlockSpec], qs: &[Vec<f64>], state: FlowState) -> FlowState {
    assert_eq!(qs.len(), blocks.len(), "one q-vector per block");
    blocks
        .iter()
        .zip(qs)
        .fold(state, |s, (b, q)| propagate_block(b, q, s))
}

/// The printed Ineq. (3), verbatim, for a **single** residual building
/// block with dense layers:
///
/// ```text
/// ‖Δy‖₂ ≤ (σ_s + Π σ_l)·‖Δx‖₂
///        + Σ_l [ Π_{i<l}(σ_i + q_i√min(n_{i-1},n_i)/√3)
///              · Π_{j>l} σ_j · q_l √(n₀ n_l)/(2√3) ]
/// ```
///
/// `n0` is the block's input dimension; `sigmas[l]`, `qs[l]`, `rows[l]`,
/// `min_dims[l]` describe layer `l`.  Returns `(compression_term_per_unit_dx,
/// quantization_term)` so callers can scale the first by `‖Δx‖₂`.
pub fn equation3_bound(
    shortcut_sigma: f64,
    sigmas: &[f64],
    qs: &[f64],
    rows: &[usize],
    min_dims: &[usize],
    n0: usize,
) -> (f64, f64) {
    let len = sigmas.len();
    assert!(len == qs.len() && len == rows.len() && len == min_dims.len());
    let compression = shortcut_sigma + sigmas.iter().product::<f64>();
    let mut quantization = 0.0;
    for l in 0..len {
        let mut prefix = 1.0;
        for i in 0..l {
            prefix *= quantized_spectral_inflation(sigmas[i], qs[i], min_dims[i]);
        }
        let suffix: f64 = sigmas[l + 1..].iter().product();
        let inject = qs[l] * ((n0 * rows[l]) as f64).sqrt() / (2.0 * SQRT3);
        quantization += prefix * suffix * inject;
    }
    (compression, quantization)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_layer(sigma: f64, rows: usize, cols: usize) -> LayerSpec {
        LayerSpec {
            sigma,
            lipschitz: 1.0,
            replication: 1.0,
            quant_rows: rows,
            min_dim: rows.min(cols),
            in_elems: cols,
            out_elems: rows,
            row_norms: vec![sigma; rows],
            q_steps: [0.0; 5],
            calibrated_input_magnitude: None,
        }
    }

    #[test]
    fn calibrated_magnitude_tightens_injection() {
        let mut layer = dense_layer(1.0, 4, 4);
        let block_worst = BlockSpec {
            layers: vec![layer.clone()],
            shortcut_sigma: 0.0,
            output_scale: 1.0,
        };
        layer.calibrated_input_magnitude = Some(0.5);
        let block_cal = BlockSpec {
            layers: vec![layer],
            shortcut_sigma: 0.0,
            output_scale: 1.0,
        };
        let s0 = FlowState {
            error: 0.0,
            magnitude: 2.0,
        };
        let worst = propagate_block(&block_worst, &[0.01], s0);
        let cal = propagate_block(&block_cal, &[0.01], s0);
        assert!(cal.error < worst.error);
        // Calibration never loosens: min(c, path_mag).
        assert!((cal.error - worst.error * 0.25).abs() < 1e-15);
    }

    fn mlp_block(sigmas: &[(f64, usize, usize)]) -> BlockSpec {
        BlockSpec {
            layers: sigmas
                .iter()
                .map(|&(s, r, c)| dense_layer(s, r, c))
                .collect(),
            shortcut_sigma: 0.0,
            output_scale: 1.0,
        }
    }

    #[test]
    fn inflation_formula() {
        // σ̃ = 2 + 0.1·√9/√3 = 2 + 0.3/1.732... ·√9 → 2 + 0.1·3/√3.
        let inflated = quantized_spectral_inflation(2.0, 0.1, 9);
        assert!((inflated - (2.0 + 0.3 / SQRT3)).abs() < 1e-12);
        assert_eq!(quantized_spectral_inflation(2.0, 0.0, 9), 2.0);
    }

    #[test]
    fn amplification_of_plain_mlp_is_sigma_product() {
        let block = mlp_block(&[(2.0, 8, 4), (3.0, 8, 8), (0.5, 2, 8)]);
        assert!((block_amplification(&block) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn amplification_with_shortcut_adds_sigma_s() {
        let mut block = mlp_block(&[(2.0, 8, 8), (0.5, 8, 8)]);
        block.shortcut_sigma = 1.0; // identity shortcut
        assert!((block_amplification(&block) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn output_scale_multiplies() {
        let mut block = mlp_block(&[(2.0, 8, 8)]);
        block.output_scale = 0.25;
        assert!((block_amplification(&block) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn network_amplification_is_product_of_blocks() {
        let b1 = mlp_block(&[(2.0, 4, 4)]);
        let b2 = mlp_block(&[(3.0, 4, 4)]);
        assert!((network_amplification(&[b1, b2]) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn propagate_without_quantization_matches_amplification() {
        let block = mlp_block(&[(2.0, 8, 4), (1.5, 8, 8)]);
        let s = propagate_block(
            &block,
            &[0.0, 0.0],
            FlowState {
                error: 0.1,
                magnitude: 2.0,
            },
        );
        assert!((s.error - 0.1 * 3.0).abs() < 1e-12);
        assert!((s.magnitude - 2.0 * 3.0).abs() < 1e-12);
    }

    #[test]
    fn propagate_with_quantization_adds_injections() {
        let block = mlp_block(&[(1.0, 4, 4)]);
        let q = 0.01;
        let s0 = FlowState {
            error: 0.0,
            magnitude: 2.0, // √4 = input magnitude
        };
        let s = propagate_block(&block, &[q], s0);
        // error = inject·M = q·√4/(2√3)·2
        let expected = q * 2.0 / (2.0 * SQRT3) * 2.0;
        assert!(
            (s.error - expected).abs() < 1e-12,
            "{} vs {expected}",
            s.error
        );
        assert!(s.magnitude > 2.0 * 1.0, "magnitude grows by σ inflation");
    }

    #[test]
    fn recurrence_reduces_to_equation3_single_layer() {
        // One layer, no shortcut: both forms must agree exactly.
        let sigma = 1.7;
        let q = 0.02;
        let (rows, cols) = (6usize, 4usize);
        let block = mlp_block(&[(sigma, rows, cols)]);
        let n0 = cols;
        let dx = 0.05;
        let (comp, quant) = equation3_bound(0.0, &[sigma], &[q], &[rows], &[rows.min(cols)], n0);
        let state = propagate_block(
            &block,
            &[q],
            FlowState {
                error: dx,
                magnitude: (n0 as f64).sqrt(),
            },
        );
        // The recurrence folds compression and quantization together; the
        // printed form separates them.  For one layer:
        // recurrence error = σ̃·dx + inject·√n0; printed = σ·dx + inject·√n0.
        let printed_total = comp * dx + quant;
        assert!(
            state.error >= printed_total - 1e-12,
            "recurrence must dominate"
        );
        let slack = (state.error - printed_total).abs();
        // Difference is exactly the inflation acting on dx.
        let inflation = quantized_spectral_inflation(sigma, q, rows.min(cols)) - sigma;
        assert!((slack - inflation * dx).abs() < 1e-12);
    }

    #[test]
    fn recurrence_dominates_equation3_deep_block() {
        let specs = [(1.5, 50usize, 9usize), (1.2, 50, 50), (0.8, 9, 50)];
        let sigmas: Vec<f64> = specs.iter().map(|s| s.0).collect();
        let rows: Vec<usize> = specs.iter().map(|s| s.1).collect();
        let min_dims: Vec<usize> = specs.iter().map(|s| s.1.min(s.2)).collect();
        let qs = vec![1e-3; 3];
        let n0 = 9usize;
        let dx = 1e-4;
        let (comp, quant) = equation3_bound(0.0, &sigmas, &qs, &rows, &min_dims, n0);
        let printed = comp * dx + quant;
        let block = mlp_block(&specs);
        let state = propagate_block(
            &block,
            &qs,
            FlowState {
                error: dx,
                magnitude: (n0 as f64).sqrt(),
            },
        );
        assert!(state.error >= printed - 1e-15);
        // And the two stay within a small factor of each other (tightness).
        assert!(state.error < printed * 1.5, "{} vs {printed}", state.error);
    }

    #[test]
    fn zero_quantization_collapses_equation3_to_inequality5() {
        let sigmas = [2.0, 0.5, 3.0];
        let (comp, quant) = equation3_bound(0.0, &sigmas, &[0.0; 3], &[4, 4, 4], &[4, 4, 4], 4);
        assert_eq!(quant, 0.0);
        assert!((comp - 3.0).abs() < 1e-12);
    }

    #[test]
    fn bigger_step_bigger_bound() {
        let sigmas = [1.5, 1.5];
        let mk = |q: f64| equation3_bound(0.0, &sigmas, &[q, q], &[32, 8], &[8, 8], 8).1;
        assert!(mk(1e-2) > mk(1e-3));
        assert!(mk(1e-3) > mk(1e-4));
    }

    #[test]
    fn prop_recurrence_monotone_in_error() {
        let mut rng = errflow_tensor::rng::StdRng::seed_from_u64(0x3B0);
        for _ in 0..64 {
            let sigma = rng.gen_range(0.1f64..3.0);
            let q = rng.gen_range(0.0f64..0.1);
            let e1 = rng.gen_range(0.0f64..1.0);
            let e2 = rng.gen_range(0.0f64..1.0);
            let block = mlp_block(&[(sigma, 8, 8)]);
            let run = |e: f64| {
                propagate_block(
                    &block,
                    &[q],
                    FlowState {
                        error: e,
                        magnitude: 3.0,
                    },
                )
                .error
            };
            let (lo, hi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
            assert!(run(lo) <= run(hi) + 1e-12);
        }
    }

    #[test]
    fn prop_recurrence_dominates_printed_form() {
        let mut rng = errflow_tensor::rng::StdRng::seed_from_u64(0x3B1);
        for _ in 0..64 {
            let s1 = rng.gen_range(0.2f64..2.5);
            let s2 = rng.gen_range(0.2f64..2.5);
            let q = 10f64.powf(rng.gen_range(-6.0f64..-2.0));
            let dx = rng.gen_range(0.0f64..0.1);
            let specs = [(s1, 16usize, 8usize), (s2, 4, 16)];
            let block = mlp_block(&specs);
            let (comp, quant) = equation3_bound(0.0, &[s1, s2], &[q, q], &[16, 4], &[8, 4], 8);
            let state = propagate_block(
                &block,
                &[q, q],
                FlowState {
                    error: dx,
                    magnitude: 8f64.sqrt(),
                },
            );
            assert!(state.error >= comp * dx + quant - 1e-12);
        }
    }
}
