//! End-to-end socket-path tests: a live [`NetServer`] over loopback,
//! driven through [`NetClient`] / raw frames.
//!
//! The backpressure regression here is the load-bearing one: admission
//! rejection (`QueueFull`) must surface as a *retryable* typed error
//! frame on a connection that stays open — never a dropped connection.

use errflow_net::proto::{self, ErrorCode, FrameType, RequestFrame, HEADER_LEN};
use errflow_net::{run_net_loadgen, NetConfig, NetServer};
use errflow_nn::{Activation, Mlp};
use errflow_pipeline::planner::PayloadLayout;
use errflow_serve::{LoadgenConfig, ServeConfig, Server};
use errflow_tensor::norms::Norm;
use errflow_tensor::rng::StdRng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn test_server(workers: usize, queue_capacity: usize) -> Arc<Server<Mlp>> {
    let model = Mlp::new(&[5, 16, 3], Activation::Tanh, Activation::Identity, 2, None);
    let mut rng = StdRng::seed_from_u64(3);
    let calibration: Vec<Vec<f32>> = (0..24)
        .map(|_| (0..5).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    Arc::new(Server::new(
        model,
        calibration,
        ServeConfig {
            workers,
            queue_capacity,
            ..ServeConfig::default()
        },
    ))
}

fn request_frame(samples: usize) -> RequestFrame {
    RequestFrame {
        model_id: 0,
        rel_tolerance: 1e-2,
        norm: Norm::L2,
        layout: PayloadLayout::FeatureMajor,
        samples: vec![vec![0.25f32; 5]; samples],
    }
}

/// Reads exactly one frame (header + body) off a blocking stream.
fn read_frame(stream: &mut TcpStream) -> (FrameType, Vec<u8>) {
    let mut head = [0u8; HEADER_LEN];
    stream.read_exact(&mut head).expect("read frame header");
    let header = proto::parse_header(&head).expect("parse frame header");
    let mut body = vec![0u8; header.body_len];
    stream.read_exact(&mut body).expect("read frame body");
    (header.frame_type, body)
}

#[test]
fn loadgen_over_loopback_certifies_every_bound() {
    let server = test_server(2, 32);
    let net = NetServer::start(
        Arc::clone(&server),
        "127.0.0.1:0",
        NetConfig {
            io_threads: 2,
            ..NetConfig::default()
        },
    )
    .expect("start net server");

    let cfg = LoadgenConfig {
        clients: 3,
        requests_per_client: 20,
        samples_per_request: 8,
        tolerances: vec![1e-2],
        seed: 11,
        ..LoadgenConfig::default()
    };
    let summary = run_net_loadgen(&server, net.local_addr(), &cfg);

    assert_eq!(summary.base.requests, 60);
    assert!(summary.base.all_bounds_certified);
    assert!(summary.base.max_rel_bound <= 1e-2);
    assert_eq!(summary.base.bound_fail, 0);
    // The wire path stamped frontend stages on every request.
    assert!(
        summary.base.stages.ingress.count >= 60,
        "ingress count {}",
        summary.base.stages.ingress.count
    );
    assert!(
        summary.base.stages.egress.count >= 60,
        "egress count {}",
        summary.base.stages.egress.count
    );
    // RTT was measured per request and must dominate server latency.
    assert_eq!(summary.rtt.count, 60);
    assert!(summary.rtt.p50_us >= summary.base.latency.p50_us);
    assert!(summary.overhead_p50_us.is_finite());
    // JSON surface carries the net block.
    let j = summary.to_json();
    assert!(j.contains("\"net\":{\"rtt_us\":{"), "{j}");
    assert!(j.contains("\"overhead_p50_us\":"), "{j}");
    assert_eq!(j.matches('{').count(), j.matches('}').count());
}

#[test]
fn queue_full_is_a_retryable_frame_and_the_connection_survives() {
    // Admission-only server: zero workers, capacity one.  The first
    // request parks in the queue forever; every later one deterministically
    // hits QueueFull.
    let server = test_server(0, 1);
    let net = NetServer::start(Arc::clone(&server), "127.0.0.1:0", NetConfig::default())
        .expect("start net server");

    let mut stream = TcpStream::connect(net.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let frame = proto::encode_request(&request_frame(2)).expect("encode");

    // First request occupies the queue; no reply will ever come for it.
    stream.write_all(&frame).expect("write first");
    // The next requests must each come back as a typed, retryable
    // backpressure frame on the SAME connection.
    for attempt in 0..3 {
        stream.write_all(&frame).expect("write overflow request");
        let (ftype, body) = read_frame(&mut stream);
        assert_eq!(ftype, FrameType::Error, "attempt {attempt}");
        let err = proto::decode_error(&body).expect("decode error frame");
        assert_eq!(err.code, ErrorCode::QueueFull, "attempt {attempt}");
        assert!(err.retryable, "backpressure must be retryable");
    }
    // The connection is still alive and well-framed after three rejections
    // — backpressure never cost us the socket.
}

#[test]
fn malformed_frame_gets_typed_error_then_close() {
    let server = test_server(1, 8);
    let net = NetServer::start(Arc::clone(&server), "127.0.0.1:0", NetConfig::default())
        .expect("start net server");

    let mut stream = TcpStream::connect(net.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream.write_all(&[0xFFu8; 32]).expect("write garbage");

    let (ftype, body) = read_frame(&mut stream);
    assert_eq!(ftype, FrameType::Error);
    let err = proto::decode_error(&body).expect("decode error frame");
    assert_eq!(err.code, ErrorCode::Malformed);
    assert!(!err.retryable);
    // After the error frame the server closes: next read hits EOF.
    let mut probe = [0u8; 1];
    let n = stream.read(&mut probe).expect("read after error frame");
    assert_eq!(n, 0, "connection must close after a malformed frame");
}

#[test]
fn wrong_model_id_is_invalid_but_connection_stays_open() {
    let server = test_server(1, 8);
    let served = server.model_id();
    let net = NetServer::start(Arc::clone(&server), "127.0.0.1:0", NetConfig::default())
        .expect("start net server");

    let mut stream = TcpStream::connect(net.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");

    let mut wrong = request_frame(2);
    wrong.model_id = served.wrapping_add(1);
    stream
        .write_all(&proto::encode_request(&wrong).expect("encode"))
        .expect("write");
    let (ftype, body) = read_frame(&mut stream);
    assert_eq!(ftype, FrameType::Error);
    let err = proto::decode_error(&body).expect("decode error frame");
    assert_eq!(err.code, ErrorCode::Invalid);

    // Same connection, correct id (and the 0 wildcard) both still served.
    for id in [served, 0] {
        let mut ok = request_frame(2);
        ok.model_id = id;
        stream
            .write_all(&proto::encode_request(&ok).expect("encode"))
            .expect("write");
        let (ftype, body) = read_frame(&mut stream);
        assert_eq!(ftype, FrameType::Response);
        let resp = proto::decode_response(&body).expect("decode response");
        assert!(resp.rel_bound <= 1e-2);
        assert_eq!(resp.outputs.len(), 2);
    }
}

#[test]
fn disconnect_with_inflight_request_frees_the_connection_slot() {
    // Regression: a client vanishing with a request still in flight used
    // to leak its connection slot forever (the dead conn left the poll
    // set before its completion drained), so `max_connections` such
    // disconnects bricked the server for all future clients.
    let server = test_server(1, 8);
    let net = NetServer::start(
        Arc::clone(&server),
        "127.0.0.1:0",
        NetConfig {
            max_connections: 2,
            ..NetConfig::default()
        },
    )
    .expect("start net server");

    let frame = proto::encode_request(&request_frame(2)).expect("encode");
    // Churn well past the connection limit, always disconnecting before
    // the response comes back.
    for _ in 0..6 {
        let mut stream = TcpStream::connect(net.local_addr()).expect("connect");
        stream.write_all(&frame).expect("write request");
        drop(stream); // gone before the completion delivers
        std::thread::sleep(Duration::from_millis(50));
    }
    // A few poll ticks for the last completions to drain and reap.
    std::thread::sleep(Duration::from_millis(400));

    // Every slot must be free again: a fresh connection is admitted and
    // served end to end.
    let mut stream = TcpStream::connect(net.local_addr()).expect("connect after churn");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream.write_all(&frame).expect("write request");
    let (ftype, body) = read_frame(&mut stream);
    assert_eq!(
        ftype,
        FrameType::Response,
        "leaked slots rejected a fresh connection"
    );
    let resp = proto::decode_response(&body).expect("decode response");
    assert_eq!(resp.outputs.len(), 2);
}

#[test]
fn no_trailing_frames_after_malformed_error() {
    // A request and garbage in the same burst: the request goes in flight,
    // then the malformed bytes trigger the error frame.  The completion of
    // that earlier request must NOT be sent behind the error frame — the
    // protocol says the connection closes after it.
    let server = test_server(1, 8);
    let net = NetServer::start(Arc::clone(&server), "127.0.0.1:0", NetConfig::default())
        .expect("start net server");

    let mut stream = TcpStream::connect(net.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut bytes = proto::encode_request(&request_frame(2)).expect("encode");
    bytes.extend_from_slice(&[0xFFu8; 32]);
    stream.write_all(&bytes).expect("write request + garbage");

    let (ftype, body) = read_frame(&mut stream);
    assert_eq!(
        ftype,
        FrameType::Error,
        "first frame back must be the error"
    );
    let err = proto::decode_error(&body).expect("decode error frame");
    assert_eq!(err.code, ErrorCode::Malformed);
    // Then EOF — no response frame trails the error.
    let mut probe = [0u8; 1];
    let n = stream.read(&mut probe).expect("read after error frame");
    assert_eq!(n, 0, "got trailing bytes after the malformed error frame");
}

#[test]
fn idle_connections_are_reaped() {
    let server = test_server(1, 8);
    let net = NetServer::start(
        Arc::clone(&server),
        "127.0.0.1:0",
        NetConfig {
            idle_timeout: Duration::from_millis(150),
            ..NetConfig::default()
        },
    )
    .expect("start net server");

    let mut stream = TcpStream::connect(net.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    // Never send anything: within a generous window the sweep must close
    // us (poll tick 100ms + timeout 150ms << 10s).
    let mut probe = [0u8; 1];
    let n = stream.read(&mut probe).expect("read on idle connection");
    assert_eq!(n, 0, "idle connection must be closed by the sweep");
}
