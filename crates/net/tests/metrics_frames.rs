//! Loopback end-to-end tests for the telemetry frames: live scrapes of a
//! serving process, and the structural guarantee that a scrape is
//! answered on the io thread — never queued behind the request path.

use errflow_net::proto::{self, FrameType, MetricsFormat, HEADER_LEN, TIER_ALL};
use errflow_net::{MetricsResponseFrame, NetClient, NetConfig, NetServer};
use errflow_nn::{Activation, Mlp};
use errflow_serve::{LoadgenConfig, ServeConfig, Server, TelemetryConfig};
use errflow_tensor::rng::StdRng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn test_server(workers: usize, queue_capacity: usize) -> Arc<Server<Mlp>> {
    let model = Mlp::new(&[5, 16, 3], Activation::Tanh, Activation::Identity, 2, None);
    let mut rng = StdRng::seed_from_u64(3);
    let calibration: Vec<Vec<f32>> = (0..24)
        .map(|_| (0..5).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    Arc::new(Server::new(
        model,
        calibration,
        ServeConfig {
            workers,
            queue_capacity,
            ..ServeConfig::default()
        },
    ))
}

fn start_net(server: &Arc<Server<Mlp>>) -> NetServer {
    NetServer::start(
        Arc::clone(server),
        "127.0.0.1:0",
        NetConfig {
            io_threads: 1,
            ..NetConfig::default()
        },
    )
    .expect("start net server")
}

/// Serve real load with the telemetry pump running, then scrape over the
/// wire: the tiered dump must carry live series, the Prometheus text must
/// carry serve metrics, and health must report the default objectives.
#[test]
fn scrape_while_serving_returns_live_telemetry() {
    let server = test_server(2, 32);
    let net = start_net(&server);
    // Fast pump so the test needs milliseconds of wall clock, not seconds.
    let _telemetry = errflow_serve::start_telemetry(
        server.stats_source(),
        TelemetryConfig {
            interval: Duration::from_millis(20),
            ..TelemetryConfig::default()
        },
    );

    let cfg = LoadgenConfig {
        clients: 2,
        requests_per_client: 15,
        samples_per_request: 8,
        tolerances: vec![1e-2],
        seed: 11,
        ..LoadgenConfig::default()
    };
    let summary = errflow_net::run_net_loadgen(&server, net.local_addr(), &cfg);
    assert_eq!(summary.base.requests, 30);
    // Let the pump observe the completed load (needs ≥ 2 ticks: baseline
    // then delta).
    std::thread::sleep(Duration::from_millis(120));

    let mut client = NetClient::connect(net.local_addr()).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    // Binary scrape: non-empty tiered series incl. the completed-rate
    // series, plus live histogram dumps.
    match client.scrape(MetricsFormat::Binary, TIER_ALL, 256).unwrap() {
        MetricsResponseFrame::Binary(p) => {
            assert!(!p.dump.tiers.is_empty());
            let tier0 = &p.dump.tiers[0];
            assert!(!tier0.series.is_empty(), "no live series retained");
            let completed = tier0
                .series
                .iter()
                .find(|s| s.name == "serve.completed")
                .expect("completed-rate series missing");
            assert!(!completed.points.is_empty());
            assert!(
                p.hists
                    .iter()
                    .any(|h| h.name == "serve.latency_ns" && h.count > 0),
                "latency histogram missing from scrape"
            );
            assert!(
                p.hists
                    .iter()
                    .any(|h| h.name == "serve.bound_margin" && h.count > 0),
                "bound-margin histogram missing from scrape"
            );
        }
        other => panic!("expected binary payload, got {other:?}"),
    }

    // Single-tier selector trims the dump.
    match client.scrape(MetricsFormat::Binary, 0, 256).unwrap() {
        MetricsResponseFrame::Binary(p) => {
            assert_eq!(p.dump.tiers.len(), 1);
            assert_eq!(p.dump.tiers[0].tier, 0);
        }
        other => panic!("expected binary payload, got {other:?}"),
    }

    // Prometheus scrape: exposition text with serve metrics, and it
    // passes the conformance checker.
    match client
        .scrape(MetricsFormat::Prometheus, TIER_ALL, 0)
        .unwrap()
    {
        MetricsResponseFrame::Text { body, .. } => {
            assert!(body.contains("errflow_serve_completed"), "{body}");
            let violations = errflow_obs::promcheck::validate(&body);
            assert!(violations.is_empty(), "{violations:?}");
        }
        other => panic!("expected text payload, got {other:?}"),
    }

    // JSON scrape: well-formed shell with series and slo blocks.
    match client.scrape(MetricsFormat::Json, TIER_ALL, 64).unwrap() {
        MetricsResponseFrame::Text { body, .. } => {
            assert!(body.starts_with("{\"series\":"), "{body}");
            assert!(body.contains("\"slo\":"), "{body}");
            assert_eq!(body.matches('{').count(), body.matches('}').count());
        }
        other => panic!("expected text payload, got {other:?}"),
    }

    // Health: the default objective set, every state decodable.
    let statuses = client.health().unwrap();
    assert!(
        statuses.iter().any(|s| s.name == "bound_certification"),
        "{statuses:?}"
    );
}

/// The structural guarantee: metrics/health frames are answered on the io
/// thread, so a server whose serve queue is jammed (zero workers, jobs
/// parked forever) still answers scrapes immediately.
#[test]
fn scrape_never_blocks_behind_the_request_path() {
    let server = test_server(0, 4);
    let net = start_net(&server);

    // Jam the serve queue: admit requests that no worker will ever drain.
    // Raw stream, fire-and-forget — the (never-coming) responses are
    // never read.
    let mut jammer = TcpStream::connect(net.local_addr()).expect("connect jammer");
    let req = errflow_net::RequestFrame {
        model_id: 0,
        rel_tolerance: 1e-2,
        norm: errflow_tensor::norms::Norm::L2,
        layout: errflow_pipeline::planner::PayloadLayout::FeatureMajor,
        samples: vec![vec![0.25f32; 5]; 4],
    };
    let bytes = proto::encode_request(&req).unwrap();
    for _ in 0..4 {
        jammer.write_all(&bytes).unwrap();
    }
    // Give the io thread a moment to admit the jobs into the full queue.
    std::thread::sleep(Duration::from_millis(100));

    // A scrape on a second connection must be answered within the read
    // timeout even though every queued request is stuck forever.
    let mut observer = NetClient::connect(net.local_addr()).expect("connect observer");
    observer
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let t0 = std::time::Instant::now();
    match observer.scrape(MetricsFormat::Binary, TIER_ALL, 64) {
        Ok(MetricsResponseFrame::Binary(_)) => {}
        other => panic!("scrape on jammed server failed: {other:?}"),
    }
    let statuses = observer.health();
    assert!(statuses.is_ok(), "{statuses:?}");
    assert!(
        t0.elapsed() < Duration::from_secs(4),
        "scrape waited on the request path: {:?}",
        t0.elapsed()
    );
}

/// Forged headers and truncated bodies on telemetry frames surface as
/// typed error frames (then the connection closes) — never hangs or
/// panics.
#[test]
fn forged_and_truncated_telemetry_frames_get_typed_errors() {
    let server = test_server(1, 8);
    let net = start_net(&server);

    // Oversized tier selector inside a valid header.
    let mut s = TcpStream::connect(net.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut frame = proto::encode_metrics_request(&proto::MetricsRequestFrame {
        format: MetricsFormat::Prometheus,
        tier: 0,
        window: 16,
    })
    .unwrap();
    frame[HEADER_LEN + 1] = 42; // tier byte → out of range
    s.write_all(&frame).unwrap();
    let (ftype, body) = read_frame(&mut s);
    assert_eq!(ftype, FrameType::Error);
    let err = proto::decode_error(&body).unwrap();
    assert!(!err.retryable);
    assert!(err.message.contains("tier"), "{err:?}");

    // Truncated body: header promises more bytes than ever arrive, then
    // the stream closes — the server must simply drop the connection.
    let mut s = TcpStream::connect(net.local_addr()).unwrap();
    let full = proto::encode_metrics_request(&proto::MetricsRequestFrame {
        format: MetricsFormat::Json,
        tier: TIER_ALL,
        window: 16,
    })
    .unwrap();
    s.write_all(&full[..HEADER_LEN + 2]).unwrap();
    drop(s);

    // A health frame with trailing garbage in the body is malformed.
    let mut s = TcpStream::connect(net.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut req = proto::encode_health_request();
    // Forge a nonzero body length with junk payload.
    req[8] = 3;
    req.extend_from_slice(&[1, 2, 3]);
    s.write_all(&req).unwrap();
    let (ftype, body) = read_frame(&mut s);
    assert_eq!(ftype, FrameType::Error);
    assert!(proto::decode_error(&body).is_ok());

    // The server is still healthy after all of that.
    let mut client = NetClient::connect(net.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    assert!(client.health().is_ok());
}

/// Reads exactly one frame (header + body) off a blocking stream.
fn read_frame(stream: &mut TcpStream) -> (FrameType, Vec<u8>) {
    let mut head = [0u8; HEADER_LEN];
    stream.read_exact(&mut head).expect("read frame header");
    let header = proto::parse_header(&head).expect("parse frame header");
    let mut body = vec![0u8; header.body_len];
    stream.read_exact(&mut body).expect("read frame body");
    (header.frame_type, body)
}
